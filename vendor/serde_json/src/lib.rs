//! Offline stand-in for `serde_json`, layered on the vendored `serde`
//! crate's [`Value`] model. Provides the subset this workspace uses:
//! [`json!`], [`to_value`], [`to_string`], [`to_string_pretty`],
//! [`from_str`], and [`Value`] itself (re-exported so both crates share
//! one type).

use std::fmt;

pub use serde::Value;

/// JSON error (parse or conversion).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error(msg.into())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error: {}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::DeError> for Error {
    fn from(e: serde::DeError) -> Self {
        Error(e.to_string())
    }
}

/// Converts any `Serialize` type to a [`Value`].
pub fn to_value<T: serde::Serialize + ?Sized>(value: &T) -> Result<Value, Error> {
    Ok(value.to_json_value())
}

/// Reconstructs a `Deserialize` type from a [`Value`].
pub fn from_value<T: serde::Deserialize>(value: Value) -> Result<T, Error> {
    T::from_json_value(&value).map_err(Error::from)
}

/// Compact JSON text for any `Serialize` type.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(value.to_json_value().to_string())
}

/// Two-space-indented JSON text for any `Serialize` type.
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(serde::PrettyValue(&value.to_json_value()).to_string())
}

/// Canonical compact JSON text: object keys recursively sorted, floats
/// in shortest-round-trip form. Two structurally equal values always
/// render to identical bytes.
pub fn to_string_canonical<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut v = value.to_json_value();
    v.sort_keys();
    Ok(v.to_string())
}

/// Canonical two-space-indented JSON text (sorted keys), for files that
/// are checked into git and must diff byte-stably.
pub fn to_string_canonical_pretty<T: serde::Serialize + ?Sized>(
    value: &T,
) -> Result<String, Error> {
    let mut v = value.to_json_value();
    v.sort_keys();
    Ok(serde::PrettyValue(&v).to_string())
}

/// Parses JSON text into a `Deserialize` type (commonly [`Value`]).
pub fn from_str<T: serde::Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing characters at byte {}", p.pos)));
    }
    T::from_json_value(&v).map_err(Error::from)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            match b {
                b' ' | b'\t' | b'\n' | b'\r' => self.pos += 1,
                _ => break,
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.parse_string()?)),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            other => Err(Error::new(format!(
                "unexpected {:?} at byte {}",
                other.map(|c| c as char),
                self.pos
            ))),
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error::new("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| Error::new("bad escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| Error::new("bad \\u escape"))?;
                            self.pos += 4;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error::new("bad \\u escape"))?,
                                16,
                            )
                            .map_err(|_| Error::new("bad \\u escape"))?;
                            // Surrogate pairs are not needed for the data
                            // this workspace writes; map lone surrogates
                            // to the replacement character.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        other => {
                            return Err(Error::new(format!("bad escape `\\{}`", other as char)))
                        }
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar value.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error::new("invalid UTF-8"))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if !is_float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::U64(u));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::I64(i));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| Error::new(format!("invalid number `{text}`")))
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected `,` or `]` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(pairs));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected `,` or `}}` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }
}

/// Builds a [`Value`] from JSON-like syntax. Supports the flat object,
/// array, and bare-expression forms used in this workspace.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ([ $($item:expr),* $(,)? ]) => {
        $crate::Value::Array(vec![ $( $crate::to_value(&$item).unwrap() ),* ])
    };
    ({ $($key:tt : $val:expr),* $(,)? }) => {
        $crate::Value::Object(vec![
            $( (($key).to_string(), $crate::to_value(&$val).unwrap()) ),*
        ])
    };
    ($other:expr) => {
        $crate::to_value(&$other).unwrap()
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_object() {
        let v = json!({"a": 1u64, "b": [1.5f64, 2.0f64], "s": "x\"y"});
        let text = to_string(&v).unwrap();
        let back: Value = from_str(&text).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn parse_literals() {
        assert_eq!(from_str::<Value>("null").unwrap(), Value::Null);
        assert_eq!(from_str::<Value>("true").unwrap(), Value::Bool(true));
        assert_eq!(from_str::<Value>("-3").unwrap(), Value::I64(-3));
        assert_eq!(from_str::<Value>("2.5e2").unwrap(), Value::F64(250.0));
        assert_eq!(
            from_str::<Value>(r#""a\nb""#).unwrap(),
            Value::String("a\nb".into())
        );
    }

    #[test]
    fn pretty_has_indentation() {
        let v = json!({"k": 1u64});
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains("\n  \"k\": 1"));
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(from_str::<Value>("{} x").is_err());
    }

    #[test]
    fn canonical_is_insertion_order_independent() {
        let a = json!({"b": 1u64, "a": [json!({"y": 2u64, "x": 3u64})]});
        let b = json!({"a": [json!({"x": 3u64, "y": 2u64})], "b": 1u64});
        assert_eq!(
            to_string_canonical(&a).unwrap(),
            to_string_canonical(&b).unwrap()
        );
        assert_eq!(
            to_string_canonical(&a).unwrap(),
            r#"{"a":[{"x":3,"y":2}],"b":1}"#
        );
        assert_eq!(
            to_string_canonical_pretty(&a).unwrap(),
            to_string_canonical_pretty(&b).unwrap()
        );
        // Repeated rendering is byte-identical.
        assert_eq!(
            to_string_canonical_pretty(&a).unwrap(),
            to_string_canonical_pretty(&a).unwrap()
        );
    }
}

//! Offline stand-in for `rand_chacha`: a genuine ChaCha8 keystream
//! generator implementing the vendored `rand` traits. Deterministic per
//! seed; the stream layout is not guaranteed bit-identical to the real
//! crate (this workspace only relies on determinism, not cross-crate
//! reproducibility).

use rand::{RngCore, SeedableRng};

const ROUNDS: usize = 8;

/// ChaCha8-based RNG.
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    /// ChaCha state input block: constants, key, counter, nonce.
    state: [u32; 16],
    /// Buffered keystream block.
    block: [u32; 16],
    /// Next unread index into `block` (16 = exhausted).
    idx: usize,
}

#[inline(always)]
fn quarter_round(s: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(16);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(12);
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(8);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(7);
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut work = self.state;
        for _ in 0..ROUNDS / 2 {
            // Column rounds.
            quarter_round(&mut work, 0, 4, 8, 12);
            quarter_round(&mut work, 1, 5, 9, 13);
            quarter_round(&mut work, 2, 6, 10, 14);
            quarter_round(&mut work, 3, 7, 11, 15);
            // Diagonal rounds.
            quarter_round(&mut work, 0, 5, 10, 15);
            quarter_round(&mut work, 1, 6, 11, 12);
            quarter_round(&mut work, 2, 7, 8, 13);
            quarter_round(&mut work, 3, 4, 9, 14);
        }
        for (i, w) in work.iter().enumerate() {
            self.block[i] = w.wrapping_add(self.state[i]);
        }
        // 64-bit block counter in words 12..14.
        let counter = (self.state[12] as u64 | ((self.state[13] as u64) << 32)).wrapping_add(1);
        self.state[12] = counter as u32;
        self.state[13] = (counter >> 32) as u32;
        self.idx = 0;
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.idx >= 16 {
            self.refill();
        }
        let w = self.block[self.idx];
        self.idx += 1;
        w
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        lo | (hi << 32)
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        // "expand 32-byte k" constants.
        let mut state = [0u32; 16];
        state[0] = 0x6170_7865;
        state[1] = 0x3320_646e;
        state[2] = 0x7962_2d32;
        state[3] = 0x6b20_6574;
        for i in 0..8 {
            state[4 + i] = u32::from_le_bytes([
                seed[4 * i],
                seed[4 * i + 1],
                seed[4 * i + 2],
                seed[4 * i + 3],
            ]);
        }
        // Counter and nonce start at zero.
        ChaCha8Rng {
            state,
            block: [0; 16],
            idx: 16,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic_per_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(123);
        let mut b = ChaCha8Rng::seed_from_u64(123);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        let same = (0..16).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4);
    }

    #[test]
    fn uniform_unit_interval() {
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let mean: f64 = (0..10_000).map(|_| rng.gen::<f64>()).sum::<f64>() / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean} far from 0.5");
    }
}

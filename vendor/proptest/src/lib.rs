//! Offline stand-in for `proptest`, covering the subset this workspace
//! uses: the [`Strategy`] trait over ranges/tuples/`prop_map`/
//! `collection::vec`/`any`, the [`proptest!`] test-generating macro with
//! `#![proptest_config(..)]`, and `prop_assert!`/`prop_assert_eq!`.
//!
//! Unlike real proptest there is no shrinking and no failure
//! persistence: each case is generated from a deterministic RNG seeded
//! by (test name, case index), so failures reproduce exactly on re-run.

use std::ops::{Range, RangeInclusive};

use rand::rngs::SmallRng;
use rand::{Rng, RngCore, SeedableRng};

/// The RNG handed to strategies.
pub type TestRng = SmallRng;

/// Builds the deterministic RNG for one test case.
pub fn test_rng(test_name: &str, case: u32) -> TestRng {
    // FNV-1a over the name, mixed with the case index.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    TestRng::seed_from_u64(h ^ ((case as u64) << 1 | 1).wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

/// Per-block configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Failure raised by `prop_assert!` family; propagated as `Err` out of
/// the case body.
#[derive(Debug, Clone)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// Creates a failure with the given message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError(msg.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for TestCaseError {}

/// A generator of random values.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<T, F: Fn(Self::Value) -> T>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { strat: self, f }
    }
}

/// Strategy produced by [`Strategy::prop_map`].
pub struct Map<S, F> {
    strat: S,
    f: F,
}

impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.f)(self.strat.generate(rng))
    }
}

macro_rules! range_strategy {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

macro_rules! tuple_strategy {
    ($(($($n:tt $t:ident),+)),+ $(,)?) => {$(
        impl<$($t: Strategy),+> Strategy for ($($t,)+) {
            type Value = ($($t::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$n.generate(rng),)+)
            }
        }
    )+};
}

tuple_strategy! {
    (0 A),
    (0 A, 1 B),
    (0 A, 1 B, 2 C),
    (0 A, 1 B, 2 C, 3 D),
    (0 A, 1 B, 2 C, 3 D, 4 E),
}

/// Strategy for "any value of T" (full-range / standard distribution).
pub struct AnyStrategy<T>(std::marker::PhantomData<T>);

/// Full-range strategy constructor, `any::<u64>()` style.
pub fn any<T>() -> AnyStrategy<T>
where
    AnyStrategy<T>: Strategy,
{
    AnyStrategy(std::marker::PhantomData)
}

macro_rules! any_int {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for AnyStrategy<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

any_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for AnyStrategy<bool> {
    type Value = bool;
    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Strategy for AnyStrategy<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        rng.gen::<f64>()
    }
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng;

    /// Length bounds for [`vec`]: `n` (exact), `lo..hi`, or `lo..=hi`.
    pub struct SizeRange {
        lo: usize,
        /// Exclusive upper bound.
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end() + 1,
            }
        }
    }

    /// Strategy generating `Vec`s of another strategy's values.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `proptest::collection::vec(element, len)` — vectors with length
    /// drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = if self.size.lo + 1 >= self.size.hi {
                self.size.lo
            } else {
                rng.gen_range(self.size.lo..self.size.hi)
            };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// `use proptest::prelude::*` surface.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, proptest, ProptestConfig, Strategy, TestCaseError,
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(
                concat!("assertion failed: ", stringify!($cond)).to_string(),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Fails the current case unless the two values are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `left == right`\n  left: {:?}\n right: {:?}",
                __l, __r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "{}\n  left: {:?}\n right: {:?}",
                format!($($fmt)+),
                __l,
                __r
            )));
        }
    }};
}

/// Expands property definitions into `#[test]` functions running N
/// deterministic cases each.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_items! { config = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { config = $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (config = $cfg:expr;) => {};
    (
        config = $cfg:expr;
        $(#[$meta:meta])*
        fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config = $cfg;
            for __case in 0..__config.cases {
                let mut __rng = $crate::test_rng(stringify!($name), __case);
                $(let $arg = $crate::Strategy::generate(&($strat), &mut __rng);)+
                let __outcome: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                    $body
                    ::std::result::Result::Ok(())
                })();
                if let ::std::result::Result::Err(e) = __outcome {
                    panic!(
                        "proptest {} failed at case {}/{}: {}",
                        stringify!($name),
                        __case,
                        __config.cases,
                        e
                    );
                }
            }
        }
        $crate::__proptest_items! { config = $cfg; $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u32..10, y in 0.5f64..2.0, z in 1usize..=4) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((0.5..2.0).contains(&y));
            prop_assert!((1..=4).contains(&z));
        }

        #[test]
        fn vec_and_tuple_strategies(
            v in crate::collection::vec(0u8..=255, 1..20),
            pair in (0u32..5, 10u32..20),
        ) {
            prop_assert!(!v.is_empty() && v.len() < 20);
            prop_assert!(pair.0 < 5 && pair.1 >= 10);
        }

        #[test]
        fn prop_map_applies(sum in (1u32..5, 1u32..5).prop_map(|(a, b)| a + b)) {
            prop_assert!((2..=8).contains(&sum));
            prop_assert_eq!(sum, sum);
        }
    }

    #[test]
    fn deterministic_per_name_and_case() {
        use crate::Strategy;
        let s = 0u64..1_000_000;
        let a = s.generate(&mut crate::test_rng("t", 3));
        let b = s.generate(&mut crate::test_rng("t", 3));
        let c = s.generate(&mut crate::test_rng("t", 4));
        assert_eq!(a, b);
        assert_ne!(a, c);
    }
}

//! Offline stand-in for `rayon`, covering the two patterns this
//! workspace uses:
//!
//! 1. `(0..n).into_par_iter().map(f).collect::<Vec<_>>()` — the block
//!    fan-out in the GPU simulator. This one is genuinely parallel
//!    (std scoped threads, one chunk per core) because simulator test
//!    and bench wall-time depends on it.
//! 2. `slice.par_iter() / par_iter_mut() / par_chunks_mut(k)` with
//!    `zip`/`for_each` — the CPU MoG pixel loop. These return ordinary
//!    sequential iterators: zip fusion across five lock-step mutable
//!    slices cannot be expressed without rayon's producer machinery,
//!    and the CPU path is a correctness baseline, not a benchmark
//!    target, in this offline build.

use std::ops::Range;

/// Conversion into a "parallel" iterator.
pub trait IntoParallelIterator {
    /// Element type.
    type Item;
    /// Resulting iterator type.
    type Iter;
    /// Converts `self`.
    fn into_par_iter(self) -> Self::Iter;
}

macro_rules! impl_range {
    ($($t:ty),*) => {$(
        impl IntoParallelIterator for Range<$t> {
            type Item = $t;
            type Iter = ParRange<$t>;
            fn into_par_iter(self) -> ParRange<$t> {
                ParRange { range: self }
            }
        }
    )*};
}

impl_range!(u32, u64, usize, i32, i64);

/// Parallel view over an integer range.
pub struct ParRange<I> {
    range: Range<I>,
}

/// A mapped parallel range, ready to collect.
pub struct ParMap<I, F> {
    range: Range<I>,
    f: F,
}

/// A mapped parallel range with per-worker state, ready to collect.
pub struct ParMapInit<I, INIT, F> {
    range: Range<I>,
    init: INIT,
    f: F,
}

macro_rules! impl_par_range {
    ($($t:ty),*) => {$(
        impl ParRange<$t> {
            /// Maps each index through `f`.
            pub fn map<T, F: Fn($t) -> T + Sync>(self, f: F) -> ParMap<$t, F> {
                ParMap { range: self.range, f }
            }

            /// Maps each index through `f` with mutable per-worker state
            /// created by `init` — rayon's `map_init`. `init` runs once
            /// per worker chunk, so the state amortizes across every
            /// index that worker processes.
            pub fn map_init<T, S, INIT, F>(self, init: INIT, f: F) -> ParMapInit<$t, INIT, F>
            where
                INIT: Fn() -> S + Sync,
                F: Fn(&mut S, $t) -> T + Sync,
            {
                ParMapInit { range: self.range, init, f }
            }
        }

        impl<T: Send, F: Fn($t) -> T + Sync> ParMap<$t, F> {
            /// Evaluates the map across scoped threads and collects the
            /// results in index order.
            pub fn collect<C: From<Vec<T>>>(self) -> C {
                let start = self.range.start;
                let end = self.range.end;
                let n = end.saturating_sub(start) as usize;
                let workers = std::thread::available_parallelism()
                    .map(|p| p.get())
                    .unwrap_or(1)
                    .min(n.max(1));
                let f = &self.f;
                if workers <= 1 || n <= 1 {
                    return C::from((start..end).map(f).collect());
                }
                let chunk = n.div_ceil(workers);
                let mut out: Vec<T> = Vec::with_capacity(n);
                std::thread::scope(|s| {
                    let handles: Vec<_> = (0..workers)
                        .map(|w| {
                            let lo = start + (w * chunk) as $t;
                            let hi = (lo + chunk as $t).min(end);
                            s.spawn(move || (lo..hi).map(f).collect::<Vec<T>>())
                        })
                        .collect();
                    for h in handles {
                        out.extend(h.join().expect("rayon shim worker panicked"));
                    }
                });
                C::from(out)
            }
        }

        impl<T, S, INIT, F> ParMapInit<$t, INIT, F>
        where
            T: Send,
            INIT: Fn() -> S + Sync,
            F: Fn(&mut S, $t) -> T + Sync,
        {
            /// Evaluates the map across scoped threads (one state per
            /// worker) and collects the results in index order.
            pub fn collect<C: From<Vec<T>>>(self) -> C {
                let start = self.range.start;
                let end = self.range.end;
                let n = end.saturating_sub(start) as usize;
                let workers = std::thread::available_parallelism()
                    .map(|p| p.get())
                    .unwrap_or(1)
                    .min(n.max(1));
                let init = &self.init;
                let f = &self.f;
                if workers <= 1 || n <= 1 {
                    let mut state = init();
                    return C::from((start..end).map(|i| f(&mut state, i)).collect());
                }
                let chunk = n.div_ceil(workers);
                let mut out: Vec<T> = Vec::with_capacity(n);
                std::thread::scope(|s| {
                    let handles: Vec<_> = (0..workers)
                        .map(|w| {
                            let lo = start + (w * chunk) as $t;
                            let hi = (lo + chunk as $t).min(end);
                            s.spawn(move || {
                                let mut state = init();
                                (lo..hi).map(|i| f(&mut state, i)).collect::<Vec<T>>()
                            })
                        })
                        .collect();
                    for h in handles {
                        out.extend(h.join().expect("rayon shim worker panicked"));
                    }
                });
                C::from(out)
            }
        }
    )*};
}

impl_par_range!(u32, u64, usize, i32, i64);

/// Sequential stand-ins for rayon's shared-slice methods.
pub trait ParallelSlice<T> {
    /// Sequential `iter()` under rayon's name.
    fn par_iter(&self) -> std::slice::Iter<'_, T>;
    /// Sequential `chunks()` under rayon's name.
    fn par_chunks(&self, size: usize) -> std::slice::Chunks<'_, T>;
}

impl<T> ParallelSlice<T> for [T] {
    fn par_iter(&self) -> std::slice::Iter<'_, T> {
        self.iter()
    }
    fn par_chunks(&self, size: usize) -> std::slice::Chunks<'_, T> {
        self.chunks(size)
    }
}

/// Sequential stand-ins for rayon's mutable-slice methods.
pub trait ParallelSliceMut<T> {
    /// Sequential `iter_mut()` under rayon's name.
    fn par_iter_mut(&mut self) -> std::slice::IterMut<'_, T>;
    /// Sequential `chunks_mut()` under rayon's name.
    fn par_chunks_mut(&mut self, size: usize) -> std::slice::ChunksMut<'_, T>;
}

impl<T> ParallelSliceMut<T> for [T] {
    fn par_iter_mut(&mut self) -> std::slice::IterMut<'_, T> {
        self.iter_mut()
    }
    fn par_chunks_mut(&mut self, size: usize) -> std::slice::ChunksMut<'_, T> {
        self.chunks_mut(size)
    }
}

/// Everything a `use rayon::prelude::*` consumer expects.
pub mod prelude {
    pub use crate::{IntoParallelIterator, ParallelSlice, ParallelSliceMut};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn par_map_collect_preserves_order() {
        let v: Vec<u64> = (0u32..1000)
            .into_par_iter()
            .map(|i| (i as u64) * 2)
            .collect();
        assert_eq!(v.len(), 1000);
        assert!(v.iter().enumerate().all(|(i, &x)| x == (i as u64) * 2));
    }

    #[test]
    fn par_map_empty_range() {
        let v: Vec<u32> = (5u32..5).into_par_iter().map(|i| i).collect();
        assert!(v.is_empty());
    }

    #[test]
    fn slice_adapters_compose_with_zip() {
        let mut out = [0u8; 4];
        let src = [1u8, 2, 3, 4];
        out.par_iter_mut()
            .zip(src.par_iter())
            .for_each(|(o, &s)| *o = s * 10);
        assert_eq!(out, [10, 20, 30, 40]);
    }
}

//! Offline stand-in for `criterion`, covering the subset this workspace
//! uses. Real wall-clock measurement (median of N samples) with simple
//! text output; none of criterion's statistics, HTML reports, or
//! baseline management.
//!
//! `cargo test` runs `harness = false` bench binaries with `--test`;
//! like real criterion, that mode only checks the benches execute.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Benchmark runner configuration and entry point.
pub struct Criterion {
    sample_size: usize,
    /// `--test` mode: run every benchmark body once, skip measurement.
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        let test_mode = std::env::args().any(|a| a == "--test");
        Criterion {
            sample_size: 10,
            test_mode,
        }
    }
}

impl Criterion {
    /// Sets how many timed samples to take per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
        }
    }

    /// Benchmarks a single function outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) {
        let sample_size = self.sample_size;
        let test_mode = self.test_mode;
        run_one(name, None, sample_size, test_mode, f);
    }
}

/// Units for reporting relative throughput.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Identifier for one benchmark within a group.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Parameter-only form.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// A group of related benchmarks sharing a name prefix and throughput.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the per-iteration throughput used in reports.
    pub fn throughput(&mut self, throughput: Throughput) {
        self.throughput = Some(throughput);
    }

    /// Benchmarks `f` under `group_name/name`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) {
        let full = format!("{}/{}", self.name, name);
        run_one(
            &full,
            self.throughput,
            self.criterion.sample_size,
            self.criterion.test_mode,
            f,
        );
    }

    /// Benchmarks `f` with an input value.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) {
        let full = format!("{}/{}", self.name, id.id);
        run_one(
            &full,
            self.throughput,
            self.criterion.sample_size,
            self.criterion.test_mode,
            |b| f(b, input),
        );
    }

    /// Ends the group (kept for API compatibility).
    pub fn finish(self) {}
}

/// Timing context passed to benchmark closures.
pub struct Bencher {
    /// Duration of the sample recorded by the last `iter` call.
    sample: Duration,
    /// When true, run the body once without timing.
    test_mode: bool,
}

impl Bencher {
    /// Times one sample of `f`.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        if self.test_mode {
            black_box(f());
            self.sample = Duration::ZERO;
            return;
        }
        let start = Instant::now();
        black_box(f());
        self.sample = start.elapsed();
    }
}

fn run_one<F: FnMut(&mut Bencher)>(
    name: &str,
    throughput: Option<Throughput>,
    sample_size: usize,
    test_mode: bool,
    mut f: F,
) {
    let mut b = Bencher {
        sample: Duration::ZERO,
        test_mode,
    };
    if test_mode {
        f(&mut b);
        println!("Testing {name} ... ok");
        return;
    }
    // One warm-up run, then the timed samples.
    f(&mut b);
    let mut samples: Vec<Duration> = Vec::with_capacity(sample_size);
    for _ in 0..sample_size {
        f(&mut b);
        samples.push(b.sample);
    }
    samples.sort();
    let median = samples[samples.len() / 2];
    let rate = match throughput {
        Some(Throughput::Elements(n)) if median > Duration::ZERO => {
            format!("  {:.3} Melem/s", n as f64 / median.as_secs_f64() / 1e6)
        }
        Some(Throughput::Bytes(n)) if median > Duration::ZERO => {
            format!(
                "  {:.3} MiB/s",
                n as f64 / median.as_secs_f64() / (1024.0 * 1024.0)
            )
        }
        _ => String::new(),
    };
    println!(
        "{name:<48} time: [{:>10.3?} .. {:>10.3?} .. {:>10.3?}]{rate}",
        samples[0],
        median,
        samples[samples.len() - 1]
    );
}

/// Declares a group function calling each target with a shared config.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares `main` running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn target(c: &mut Criterion) {
        let mut group = c.benchmark_group("g");
        group.throughput(Throughput::Elements(1000));
        group.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        group.bench_with_input(BenchmarkId::from_parameter(7), &7u64, |b, &n| {
            b.iter(|| n * 2)
        });
        group.finish();
    }

    criterion_group! {
        name = unit;
        config = Criterion::default().sample_size(3);
        targets = target
    }

    #[test]
    fn runner_executes_benches() {
        unit();
    }

    #[test]
    fn benchmark_id_forms() {
        assert_eq!(BenchmarkId::new("f", 32).id, "f/32");
        assert_eq!(BenchmarkId::from_parameter("A").id, "A");
    }
}

//! Offline stand-in for `serde`, API-compatible with the subset this
//! workspace uses.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors a minimal serialization framework under the same crate names.
//! Unlike real serde's visitor architecture, this implementation round-
//! trips every value through one concrete JSON-like [`Value`] tree — a
//! deliberate simplification that keeps the derive macro dependency-free
//! (no `syn`/`quote`) while preserving the `#[derive(Serialize,
//! Deserialize)]` surface and externally-tagged enum representation the
//! real crate produces.

use std::collections::BTreeMap;
use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

/// A JSON value tree: the single wire format of this shim. Re-exported by
/// the vendored `serde_json` as `serde_json::Value`.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Signed integer (serialized without a decimal point).
    I64(i64),
    /// Unsigned integer (serialized without a decimal point).
    U64(u64),
    /// Floating-point number.
    F64(f64),
    /// JSON string.
    String(String),
    /// JSON array.
    Array(Vec<Value>),
    /// JSON object, preserving insertion order.
    Object(Vec<(String, Value)>),
}

static NULL: Value = Value::Null;

impl Value {
    /// Member lookup on objects; `None` for other kinds or missing keys.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(m) => m.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Numeric view (integers widen losslessly enough for JSON use).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::I64(i) => Some(*i as f64),
            Value::U64(u) => Some(*u as f64),
            Value::F64(f) => Some(*f),
            _ => None,
        }
    }

    /// Unsigned view of integer values.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::U64(u) => Some(*u),
            Value::I64(i) if *i >= 0 => Some(*i as u64),
            _ => None,
        }
    }

    /// String view.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// Bool view.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Array view.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// Object view (ordered key/value pairs).
    pub fn as_object(&self) -> Option<&Vec<(String, Value)>> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// True for `Value::Null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Recursively sorts object keys (stable, so duplicate keys keep
    /// their relative order). Struct serialization already emits fields
    /// in declaration order; sorting on top makes the rendered text
    /// independent of insertion order everywhere — the canonical form
    /// used for files under `results/` so their diffs are byte-stable.
    pub fn sort_keys(&mut self) {
        match self {
            Value::Array(a) => a.iter_mut().for_each(Value::sort_keys),
            Value::Object(m) => {
                m.iter_mut().for_each(|(_, v)| v.sort_keys());
                m.sort_by(|(a, _), (b, _)| a.cmp(b));
            }
            _ => {}
        }
    }
}

impl std::ops::Index<&str> for Value {
    type Output = Value;
    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;
    fn index(&self, idx: usize) -> &Value {
        match self {
            Value::Array(a) => a.get(idx).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

impl PartialEq<f64> for Value {
    fn eq(&self, other: &f64) -> bool {
        self.as_f64() == Some(*other)
    }
}

impl PartialEq<u64> for Value {
    fn eq(&self, other: &u64) -> bool {
        self.as_u64() == Some(*other)
    }
}

impl PartialEq<i32> for Value {
    fn eq(&self, other: &i32) -> bool {
        self.as_f64() == Some(*other as f64)
    }
}

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}

impl PartialEq<bool> for Value {
    fn eq(&self, other: &bool) -> bool {
        self.as_bool() == Some(*other)
    }
}

/// Compact JSON rendering (what `serde_json::to_string` produces).
impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write_value(f, self, None, 0)
    }
}

fn write_json_string(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    f.write_str("\"")
}

fn write_indent(f: &mut fmt::Formatter<'_>, depth: usize) -> fmt::Result {
    for _ in 0..depth {
        f.write_str("  ")?;
    }
    Ok(())
}

/// Shared compact/pretty printer: `indent = None` is compact, `Some(())`
/// pretty-prints with two-space indentation like serde_json.
pub(crate) fn write_value(
    f: &mut fmt::Formatter<'_>,
    v: &Value,
    pretty: Option<()>,
    depth: usize,
) -> fmt::Result {
    match v {
        Value::Null => f.write_str("null"),
        Value::Bool(b) => write!(f, "{b}"),
        Value::I64(i) => write!(f, "{i}"),
        Value::U64(u) => write!(f, "{u}"),
        Value::F64(x) => {
            if x.is_finite() {
                // `{:?}` prints the shortest representation that round-
                // trips, always with a decimal point or exponent.
                write!(f, "{x:?}")
            } else {
                // JSON has no NaN/Infinity; mirror serde_json's `null`
                // for the lossy-but-parseable choice.
                f.write_str("null")
            }
        }
        Value::String(s) => write_json_string(f, s),
        Value::Array(a) => {
            if a.is_empty() {
                return f.write_str("[]");
            }
            f.write_str("[")?;
            for (i, x) in a.iter().enumerate() {
                if i > 0 {
                    f.write_str(",")?;
                }
                if pretty.is_some() {
                    f.write_str("\n")?;
                    write_indent(f, depth + 1)?;
                }
                write_value(f, x, pretty, depth + 1)?;
            }
            if pretty.is_some() {
                f.write_str("\n")?;
                write_indent(f, depth)?;
            }
            f.write_str("]")
        }
        Value::Object(m) => {
            if m.is_empty() {
                return f.write_str("{}");
            }
            f.write_str("{")?;
            for (i, (k, x)) in m.iter().enumerate() {
                if i > 0 {
                    f.write_str(",")?;
                }
                if pretty.is_some() {
                    f.write_str("\n")?;
                    write_indent(f, depth + 1)?;
                }
                write_json_string(f, k)?;
                f.write_str(if pretty.is_some() { ": " } else { ":" })?;
                write_value(f, x, pretty, depth + 1)?;
            }
            if pretty.is_some() {
                f.write_str("\n")?;
                write_indent(f, depth)?;
            }
            f.write_str("}")
        }
    }
}

/// Display adapter that pretty-prints a [`Value`] with two-space
/// indentation, matching `serde_json::to_string_pretty`.
#[doc(hidden)]
pub struct PrettyValue<'a>(pub &'a Value);

impl fmt::Display for PrettyValue<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write_value(f, self.0, Some(()), 0)
    }
}

/// Deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError(String);

impl DeError {
    /// Creates an error with the given message.
    pub fn new(msg: impl Into<String>) -> Self {
        DeError(msg.into())
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "deserialization error: {}", self.0)
    }
}

impl std::error::Error for DeError {}

/// Types that can render themselves into a [`Value`].
pub trait Serialize {
    /// Converts `self` to a JSON value tree.
    fn to_json_value(&self) -> Value;
}

/// Types reconstructible from a [`Value`].
pub trait Deserialize: Sized {
    /// Parses `self` out of a JSON value tree.
    fn from_json_value(v: &Value) -> Result<Self, DeError>;
}

/// Field lookup helper used by the derive macro.
#[doc(hidden)]
pub fn __get_field<'a>(
    obj: &'a [(String, Value)],
    ty: &str,
    key: &str,
) -> Result<&'a Value, DeError> {
    obj.iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v)
        .ok_or_else(|| DeError::new(format!("missing field `{key}` for {ty}")))
}

macro_rules! impl_int {
    ($($t:ty => $var:ident as $conv:ty),* $(,)?) => {$(
        impl Serialize for $t {
            fn to_json_value(&self) -> Value {
                Value::$var(*self as $conv)
            }
        }
        impl Deserialize for $t {
            fn from_json_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::I64(i) => Ok(*i as $t),
                    Value::U64(u) => Ok(*u as $t),
                    Value::F64(f) if f.fract() == 0.0 => Ok(*f as $t),
                    other => Err(DeError::new(format!(
                        concat!("expected ", stringify!($t), ", got {:?}"),
                        other
                    ))),
                }
            }
        }
    )*};
}

impl_int! {
    u8 => U64 as u64, u16 => U64 as u64, u32 => U64 as u64, u64 => U64 as u64,
    usize => U64 as u64,
    i8 => I64 as i64, i16 => I64 as i64, i32 => I64 as i64, i64 => I64 as i64,
    isize => I64 as i64,
}

impl Serialize for f64 {
    fn to_json_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Deserialize for f64 {
    fn from_json_value(v: &Value) -> Result<Self, DeError> {
        v.as_f64()
            .ok_or_else(|| DeError::new(format!("expected f64, got {v:?}")))
    }
}

impl Serialize for f32 {
    fn to_json_value(&self) -> Value {
        Value::F64(*self as f64)
    }
}

impl Deserialize for f32 {
    fn from_json_value(v: &Value) -> Result<Self, DeError> {
        v.as_f64()
            .map(|f| f as f32)
            .ok_or_else(|| DeError::new("expected f32"))
    }
}

impl Serialize for bool {
    fn to_json_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_json_value(v: &Value) -> Result<Self, DeError> {
        v.as_bool().ok_or_else(|| DeError::new("expected bool"))
    }
}

impl Serialize for String {
    fn to_json_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn from_json_value(v: &Value) -> Result<Self, DeError> {
        v.as_str()
            .map(str::to_string)
            .ok_or_else(|| DeError::new("expected string"))
    }
}

impl Serialize for str {
    fn to_json_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Serialize for char {
    fn to_json_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_json_value(&self) -> Value {
        (**self).to_json_value()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_json_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_json_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_json_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_json_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_json_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_json_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_json_value(v: &Value) -> Result<Self, DeError> {
        v.as_array()
            .ok_or_else(|| DeError::new("expected array"))?
            .iter()
            .map(T::from_json_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_json_value(&self) -> Value {
        match self {
            Some(x) => x.to_json_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_json_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_json_value(other).map(Some),
        }
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_json_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_json_value()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_json_value(v: &Value) -> Result<Self, DeError> {
        v.as_object()
            .ok_or_else(|| DeError::new("expected object"))?
            .iter()
            .map(|(k, v)| Ok((k.clone(), V::from_json_value(v)?)))
            .collect()
    }
}

impl Serialize for Value {
    fn to_json_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_json_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

macro_rules! impl_tuple {
    ($(($($n:tt $t:ident),+)),+ $(,)?) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_json_value(&self) -> Value {
                Value::Array(vec![$(self.$n.to_json_value()),+])
            }
        }
    )+};
}

impl_tuple! {
    (0 A),
    (0 A, 1 B),
    (0 A, 1 B, 2 C),
    (0 A, 1 B, 2 C, 3 D),
    (0 A, 1 B, 2 C, 3 D, 4 E),
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_compact_json() {
        let v = Value::Object(vec![
            ("a".into(), Value::U64(1)),
            ("b".into(), Value::Array(vec![Value::F64(0.5), Value::Null])),
        ]);
        assert_eq!(v.to_string(), r#"{"a":1,"b":[0.5,null]}"#);
    }

    #[test]
    fn non_finite_floats_serialize_as_null() {
        assert_eq!(Value::F64(f64::INFINITY).to_string(), "null");
        assert_eq!(Value::F64(f64::NAN).to_string(), "null");
    }

    #[test]
    fn string_escapes() {
        assert_eq!(
            Value::String("a\"b\\c\n".into()).to_string(),
            r#""a\"b\\c\n""#
        );
    }

    #[test]
    fn index_and_eq() {
        let v = Value::Object(vec![("x".into(), Value::F64(97.0))]);
        assert_eq!(v["x"], 97.0);
        assert!(v["missing"].is_null());
    }
}

//! `#[derive(Serialize, Deserialize)]` for the vendored serde shim.
//!
//! Implemented directly on `proc_macro::TokenStream` (the offline build
//! cannot pull `syn`/`quote`). Supports the shapes this workspace uses:
//!
//! * structs with named fields, including generic ones (every type
//!   parameter gets a `Serialize`/`Deserialize` bound),
//! * tuple structs,
//! * enums with unit, struct, and tuple variants, encoded externally
//!   tagged exactly like real serde (`"A"`, `{"Windowed":{"group":8}}`).
//!
//! Attributes (`#[serde(...)]` customization) are not supported; the
//! workspace does not use them.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// One parsed generic parameter.
struct GenericParam {
    /// Full declaration text, e.g. `T: DeviceReal` or `'a`.
    decl: String,
    /// Bare name used in the type position, e.g. `T` or `'a`.
    name: String,
    /// True for lifetime parameters (no serde bound added).
    is_lifetime: bool,
}

/// A struct field or variant payload element.
struct Field {
    /// Field name (empty for tuple fields).
    name: String,
}

enum Body {
    /// Named-field struct.
    Struct(Vec<Field>),
    /// Tuple struct with this many fields.
    Tuple(usize),
    /// Enum variants: (name, payload).
    Enum(Vec<(String, VariantBody)>),
}

enum VariantBody {
    Unit,
    Struct(Vec<Field>),
    Tuple(usize),
}

struct Item {
    name: String,
    generics: Vec<GenericParam>,
    body: Body,
}

/// Skips `#[...]` / doc-comment attributes at the cursor.
fn skip_attrs(toks: &[TokenTree], mut i: usize) -> usize {
    while i < toks.len() {
        match &toks[i] {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                i += 1; // '#'
                if i < toks.len() {
                    if let TokenTree::Punct(p2) = &toks[i] {
                        if p2.as_char() == '!' {
                            i += 1; // inner attribute '!'
                        }
                    }
                }
                if i < toks.len() {
                    if let TokenTree::Group(g) = &toks[i] {
                        if g.delimiter() == Delimiter::Bracket {
                            i += 1; // [...]
                            continue;
                        }
                    }
                }
                panic!("serde_derive: malformed attribute");
            }
            _ => break,
        }
    }
    i
}

/// Skips a visibility qualifier (`pub`, `pub(crate)`, ...).
fn skip_vis(toks: &[TokenTree], mut i: usize) -> usize {
    if let Some(TokenTree::Ident(id)) = toks.get(i) {
        if id.to_string() == "pub" {
            i += 1;
            if let Some(TokenTree::Group(g)) = toks.get(i) {
                if g.delimiter() == Delimiter::Parenthesis {
                    i += 1;
                }
            }
        }
    }
    i
}

/// Parses `<...>` generics starting at the `<`; returns (params, next index).
fn parse_generics(toks: &[TokenTree], mut i: usize) -> (Vec<GenericParam>, usize) {
    let mut params = Vec::new();
    let mut depth = 0usize;
    let mut cur: Vec<String> = Vec::new();
    loop {
        let t = toks.get(i).expect("serde_derive: unterminated generics");
        i += 1;
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => {
                depth += 1;
                if depth > 1 {
                    cur.push("<".into());
                }
            }
            TokenTree::Punct(p) if p.as_char() == '>' => {
                depth -= 1;
                if depth == 0 {
                    if !cur.is_empty() {
                        params.push(finish_param(&cur));
                    }
                    return (params, i);
                }
                cur.push(">".into());
            }
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 1 => {
                if !cur.is_empty() {
                    params.push(finish_param(&cur));
                }
                cur = Vec::new();
            }
            other => cur.push(other.to_string()),
        }
    }
}

fn finish_param(parts: &[String]) -> GenericParam {
    let decl = parts.join(" ").replace("' ", "'");
    let is_lifetime = parts.first().is_some_and(|p| p == "'");
    let name = if is_lifetime {
        format!("'{}", parts.get(1).cloned().unwrap_or_default())
    } else {
        // `const N : usize` or `T : Bound` or bare `T`.
        if parts.first().is_some_and(|p| p == "const") {
            parts.get(1).cloned().unwrap_or_default()
        } else {
            parts.first().cloned().unwrap_or_default()
        }
    };
    GenericParam {
        decl,
        name,
        is_lifetime,
    }
}

/// Parses the named fields of a brace-delimited body.
fn parse_named_fields(body: TokenStream) -> Vec<Field> {
    let toks: Vec<TokenTree> = body.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0usize;
    while i < toks.len() {
        i = skip_attrs(&toks, i);
        if i >= toks.len() {
            break;
        }
        i = skip_vis(&toks, i);
        let name = match &toks[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("serde_derive: expected field name, got {other}"),
        };
        i += 1;
        match &toks[i] {
            TokenTree::Punct(p) if p.as_char() == ':' => i += 1,
            other => panic!("serde_derive: expected `:` after field `{name}`, got {other}"),
        }
        // Skip the type: tokens until a top-level comma.
        let mut angle = 0i32;
        while i < toks.len() {
            match &toks[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
        fields.push(Field { name });
    }
    fields
}

/// Counts the fields of a paren-delimited tuple body.
fn count_tuple_fields(body: TokenStream) -> usize {
    let toks: Vec<TokenTree> = body.into_iter().collect();
    if toks.is_empty() {
        return 0;
    }
    let mut n = 1usize;
    let mut angle = 0i32;
    for (i, t) in toks.iter().enumerate() {
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 && i + 1 < toks.len() => {
                n += 1;
            }
            _ => {}
        }
    }
    n
}

fn parse_enum_variants(body: TokenStream) -> Vec<(String, VariantBody)> {
    let toks: Vec<TokenTree> = body.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0usize;
    while i < toks.len() {
        i = skip_attrs(&toks, i);
        if i >= toks.len() {
            break;
        }
        let name = match &toks[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("serde_derive: expected variant name, got {other}"),
        };
        i += 1;
        let vbody = match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                VariantBody::Struct(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                VariantBody::Tuple(count_tuple_fields(g.stream()))
            }
            _ => VariantBody::Unit,
        };
        // Skip an optional discriminant and the trailing comma.
        while i < toks.len() {
            if let TokenTree::Punct(p) = &toks[i] {
                if p.as_char() == ',' {
                    i += 1;
                    break;
                }
            }
            i += 1;
        }
        variants.push((name, vbody));
    }
    variants
}

fn parse_item(input: TokenStream) -> Item {
    let toks: Vec<TokenTree> = input.into_iter().collect();
    let mut i = skip_attrs(&toks, 0);
    i = skip_vis(&toks, i);
    let kind = match &toks[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde_derive: expected struct/enum, got {other}"),
    };
    i += 1;
    let name = match &toks[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde_derive: expected type name, got {other}"),
    };
    i += 1;
    let (generics, ni) = match toks.get(i) {
        Some(TokenTree::Punct(p)) if p.as_char() == '<' => parse_generics(&toks, i),
        _ => (Vec::new(), i),
    };
    i = ni;
    // Skip a possible where-clause up to the body group.
    let body_group = loop {
        match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => break g,
            Some(TokenTree::Group(g))
                if g.delimiter() == Delimiter::Parenthesis && kind == "struct" =>
            {
                let n = count_tuple_fields(g.stream());
                return Item {
                    name,
                    generics,
                    body: Body::Tuple(n),
                };
            }
            Some(_) => i += 1,
            None => panic!("serde_derive: `{name}` has no body"),
        }
    };
    let body = match kind.as_str() {
        "struct" => Body::Struct(parse_named_fields(body_group.stream())),
        "enum" => Body::Enum(parse_enum_variants(body_group.stream())),
        other => panic!("serde_derive: cannot derive for `{other}`"),
    };
    Item {
        name,
        generics,
        body,
    }
}

/// Renders `impl<...> Trait for Name<...>` header parts:
/// (impl-generics, type-generics).
fn generics_for(item: &Item, bound: &str) -> (String, String) {
    if item.generics.is_empty() {
        return (String::new(), String::new());
    }
    let impl_g: Vec<String> = item
        .generics
        .iter()
        .map(|p| {
            if p.is_lifetime || p.decl.starts_with("const") {
                p.decl.clone()
            } else if p.decl.contains(':') {
                format!("{} + {bound}", p.decl)
            } else {
                format!("{}: {bound}", p.decl)
            }
        })
        .collect();
    let ty_g: Vec<String> = item.generics.iter().map(|p| p.name.clone()).collect();
    (
        format!("<{}>", impl_g.join(", ")),
        format!("<{}>", ty_g.join(", ")),
    )
}

/// `#[derive(Serialize)]` for the vendored serde shim.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let (impl_g, ty_g) = generics_for(&item, "::serde::Serialize");
    let name = &item.name;
    let body = match &item.body {
        Body::Struct(fields) => {
            let pushes: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "__obj.push(({:?}.to_string(), ::serde::Serialize::to_json_value(&self.{})));",
                        f.name, f.name
                    )
                })
                .collect();
            format!(
                "let mut __obj: Vec<(String, ::serde::Value)> = Vec::new();\n{}\n::serde::Value::Object(__obj)",
                pushes.join("\n")
            )
        }
        Body::Tuple(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_json_value(&self.{i})"))
                .collect();
            if *n == 1 {
                items[0].clone()
            } else {
                format!("::serde::Value::Array(vec![{}])", items.join(", "))
            }
        }
        Body::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|(vname, vbody)| match vbody {
                    VariantBody::Unit => format!(
                        "{name}::{vname} => ::serde::Value::String({vname:?}.to_string()),"
                    ),
                    VariantBody::Struct(fields) => {
                        let binds: Vec<&str> =
                            fields.iter().map(|f| f.name.as_str()).collect();
                        let pushes: Vec<String> = fields
                            .iter()
                            .map(|f| {
                                format!(
                                    "__v.push(({:?}.to_string(), ::serde::Serialize::to_json_value({})));",
                                    f.name, f.name
                                )
                            })
                            .collect();
                        format!(
                            "{name}::{vname} {{ {} }} => {{\n\
                             let mut __v: Vec<(String, ::serde::Value)> = Vec::new();\n{}\n\
                             ::serde::Value::Object(vec![({vname:?}.to_string(), ::serde::Value::Object(__v))])\n}}",
                            binds.join(", "),
                            pushes.join("\n")
                        )
                    }
                    VariantBody::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                        let payload = if *n == 1 {
                            "::serde::Serialize::to_json_value(__f0)".to_string()
                        } else {
                            let items: Vec<String> = binds
                                .iter()
                                .map(|b| format!("::serde::Serialize::to_json_value({b})"))
                                .collect();
                            format!("::serde::Value::Array(vec![{}])", items.join(", "))
                        };
                        format!(
                            "{name}::{vname}({}) => ::serde::Value::Object(vec![({vname:?}.to_string(), {payload})]),",
                            binds.join(", ")
                        )
                    }
                })
                .collect();
            format!("match self {{\n{}\n}}", arms.join("\n"))
        }
    };
    let out = format!(
        "impl{impl_g} ::serde::Serialize for {name}{ty_g} {{\n\
         fn to_json_value(&self) -> ::serde::Value {{\n{body}\n}}\n}}"
    );
    out.parse()
        .expect("serde_derive: generated Serialize impl must parse")
}

/// `#[derive(Deserialize)]` for the vendored serde shim.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let (impl_g, ty_g) = generics_for(&item, "::serde::Deserialize");
    let name = &item.name;
    let body = match &item.body {
        Body::Struct(fields) => {
            let gets: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "{}: ::serde::Deserialize::from_json_value(::serde::__get_field(__obj, {:?}, {:?})?)?,",
                        f.name, name, f.name
                    )
                })
                .collect();
            format!(
                "let __obj = __v.as_object().ok_or_else(|| ::serde::DeError::new(format!(\"expected object for {name}, got {{:?}}\", __v)))?;\n\
                 Ok({name} {{\n{}\n}})",
                gets.join("\n")
            )
        }
        Body::Tuple(n) => {
            if *n == 1 {
                format!("Ok({name}(::serde::Deserialize::from_json_value(__v)?))")
            } else {
                let gets: Vec<String> = (0..*n)
                    .map(|i| format!("::serde::Deserialize::from_json_value(&__arr[{i}])?,"))
                    .collect();
                format!(
                    "let __arr = __v.as_array().ok_or_else(|| ::serde::DeError::new(\"expected array for {name}\"))?;\n\
                     if __arr.len() != {n} {{ return Err(::serde::DeError::new(\"wrong tuple arity for {name}\")); }}\n\
                     Ok({name}({}))",
                    gets.join("\n")
                )
            }
        }
        Body::Enum(variants) => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|(_, b)| matches!(b, VariantBody::Unit))
                .map(|(vname, _)| format!("{vname:?} => Ok({name}::{vname}),"))
                .collect();
            let payload_arms: Vec<String> = variants
                .iter()
                .filter_map(|(vname, vbody)| match vbody {
                    VariantBody::Unit => None,
                    VariantBody::Struct(fields) => {
                        let gets: Vec<String> = fields
                            .iter()
                            .map(|f| {
                                format!(
                                    "{}: ::serde::Deserialize::from_json_value(::serde::__get_field(__fields, {:?}, {:?})?)?,",
                                    f.name, vname, f.name
                                )
                            })
                            .collect();
                        Some(format!(
                            "{vname:?} => {{\n\
                             let __fields = __payload.as_object().ok_or_else(|| ::serde::DeError::new(\"expected object payload for {name}::{vname}\"))?;\n\
                             Ok({name}::{vname} {{\n{}\n}})\n}}",
                            gets.join("\n")
                        ))
                    }
                    VariantBody::Tuple(n) => {
                        let expr = if *n == 1 {
                            format!("Ok({name}::{vname}(::serde::Deserialize::from_json_value(__payload)?))")
                        } else {
                            let gets: Vec<String> = (0..*n)
                                .map(|i| {
                                    format!("::serde::Deserialize::from_json_value(&__arr[{i}])?,")
                                })
                                .collect();
                            format!(
                                "let __arr = __payload.as_array().ok_or_else(|| ::serde::DeError::new(\"expected array payload for {name}::{vname}\"))?;\n\
                                 Ok({name}::{vname}({}))",
                                gets.join("\n")
                            )
                        };
                        Some(format!("{vname:?} => {{ {expr} }}"))
                    }
                })
                .collect();
            format!(
                "match __v {{\n\
                 ::serde::Value::String(__s) => match __s.as_str() {{\n{}\n\
                 other => Err(::serde::DeError::new(format!(\"unknown variant {{other:?}} for {name}\"))),\n}},\n\
                 ::serde::Value::Object(__m) if __m.len() == 1 => {{\n\
                 let (__tag, __payload) = &__m[0];\n\
                 match __tag.as_str() {{\n{}\n\
                 other => Err(::serde::DeError::new(format!(\"unknown variant {{other:?}} for {name}\"))),\n}}\n}},\n\
                 other => Err(::serde::DeError::new(format!(\"expected string or single-key object for {name}, got {{other:?}}\"))),\n}}",
                unit_arms.join("\n"),
                payload_arms.join("\n")
            )
        }
    };
    let out = format!(
        "impl{impl_g} ::serde::Deserialize for {name}{ty_g} {{\n\
         fn from_json_value(__v: &::serde::Value) -> ::core::result::Result<Self, ::serde::DeError> {{\n{body}\n}}\n}}"
    );
    out.parse()
        .expect("serde_derive: generated Deserialize impl must parse")
}

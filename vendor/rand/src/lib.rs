//! Offline stand-in for `rand`, covering the subset this workspace uses:
//! `Rng::gen::<f64>()`, `Rng::gen_range(..)` over float/integer ranges,
//! and `SeedableRng::seed_from_u64`. Deterministic given a seed, but the
//! streams are not bit-identical to the real crate's.

use std::ops::{Range, RangeInclusive};

/// Minimal core RNG interface: a source of 64-bit words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// User-facing convenience methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value from the "standard" distribution (uniform in
    /// `[0, 1)` for floats, full-range for integers).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Samples uniformly from a range.
    fn gen_range<S: SampleRange>(&mut self, range: S) -> S::Output
    where
        Self: Sized,
    {
        range.sample_uniform(self)
    }

    /// Returns true with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore> Rng for R {}

/// Standard-distribution sampling, used by [`Rng::gen`].
pub trait Standard {
    /// Draws one sample from `rng`.
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: RngCore>(rng: &mut R) -> f64 {
        // 53 high bits → uniform in [0, 1) with full double precision.
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for u64 {
    fn sample_standard<R: RngCore>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore>(rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Range sampling, used by [`Rng::gen_range`].
pub trait SampleRange {
    /// Element type of the range.
    type Output;
    /// Draws one uniform sample from the range.
    fn sample_uniform<R: RngCore>(self, rng: &mut R) -> Self::Output;
}

impl SampleRange for Range<f64> {
    type Output = f64;
    fn sample_uniform<R: RngCore>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        let u = f64::sample_standard(rng);
        let x = self.start + u * (self.end - self.start);
        // Guard against rounding to the exclusive upper bound.
        if x >= self.end {
            self.start
        } else {
            x
        }
    }
}

impl SampleRange for RangeInclusive<f64> {
    type Output = f64;
    fn sample_uniform<R: RngCore>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "gen_range: empty range");
        lo + f64::sample_standard(rng) * (hi - lo)
    }
}

macro_rules! impl_int_range {
    ($($t:ty),* $(,)?) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample_uniform<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let r = ((rng.next_u64() as u128) % span) as i128;
                (self.start as i128 + r) as $t
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample_uniform<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let r = ((rng.next_u64() as u128) % span) as i128;
                (lo as i128 + r) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// RNGs constructible from a fixed-size seed.
pub trait SeedableRng: Sized {
    /// Raw seed type (e.g. `[u8; 32]`).
    type Seed: Default + AsMut<[u8]>;

    /// Builds the RNG from a raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Expands a `u64` into a full seed via SplitMix64, then builds the
    /// RNG. Deterministic, but not bit-identical to the real crate.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            let x = splitmix64(&mut state);
            chunk.copy_from_slice(&x.to_le_bytes()[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// SplitMix64 step, used for seed expansion.
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Small self-contained default RNG (xoshiro-like splitmix chain); handy
/// for tests and the vendored proptest shim.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// SplitMix64-based RNG: tiny, fast, deterministic.
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        state: u64,
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            super::splitmix64(&mut self.state)
        }
    }

    impl SeedableRng for SmallRng {
        type Seed = [u8; 8];
        fn from_seed(seed: Self::Seed) -> Self {
            SmallRng {
                state: u64::from_le_bytes(seed),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::*;

    #[test]
    fn gen_f64_in_unit_interval() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = SmallRng::seed_from_u64(42);
        for _ in 0..1000 {
            let x = rng.gen_range(-20.0..20.0);
            assert!((-20.0..20.0).contains(&x));
            let n = rng.gen_range(3usize..10);
            assert!((3..10).contains(&n));
        }
    }

    #[test]
    fn seeding_is_deterministic() {
        let a: Vec<u64> = {
            let mut r = SmallRng::seed_from_u64(5);
            (0..4).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = SmallRng::seed_from_u64(5);
            (0..4).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
    }
}

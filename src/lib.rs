//! # mogpu
//!
//! A faithful, laptop-scale reproduction of *"A GPU-based
//! Algorithm-specific Optimization for High-performance Background
//! Subtraction"* (Zhang, Tabkhi & Schirner, ICPP 2014): GPU-optimized
//! Mixture-of-Gaussians background subtraction, evaluated on a
//! from-scratch Fermi-class SIMT GPU simulator.
//!
//! This facade crate re-exports the workspace:
//!
//! * [`frame`] — frames and synthetic surveillance scenes,
//! * [`sim`] — the GPU simulator substrate (SIMT execution, coalescing and
//!   divergence analysis, occupancy, analytic timing, DMA pipeline) and
//!   the calibrated CPU cost model,
//! * [`mog`] — the MoG algorithm (serial reference, algorithm variants,
//!   rayon multi-threaded CPU),
//! * [`core`] — the paper's contribution: GPU kernels for optimization
//!   levels A–F and the windowed/tiled variant, plus the host pipeline,
//! * [`metrics`] — SSIM / MS-SSIM / mask-accuracy metrics for the quality
//!   study,
//! * [`bench`] — the experiment harness and the performance-regression
//!   baseline gate (`mogpu bench record` / `bench check`).
//!
//! ## Quickstart
//!
//! ```
//! use mogpu::prelude::*;
//!
//! // A synthetic surveillance scene with two walkers.
//! let scene = SceneBuilder::new(Resolution::TINY).walkers(2).build();
//! let (frames, _truth) = scene.render_sequence(8);
//! let frames = frames.into_frames();
//!
//! // The paper's fully optimized GPU configuration (level F).
//! let mut gpu = GpuMog::<f64>::new(
//!     Resolution::TINY,
//!     MogParams::default(),
//!     OptLevel::F,
//!     frames[0].as_slice(),
//!     GpuConfig::tesla_c2075(),
//! ).unwrap();
//! let report = gpu.process_all(&frames[1..]).unwrap();
//!
//! println!("branch efficiency: {:.1}%", 100.0 * report.metrics.branch_efficiency);
//! println!("kernel time/frame: {:.3} ms", 1e3 * report.kernel_time_per_frame());
//! assert_eq!(report.masks.len(), 7);
//! ```

pub mod serve;

pub use mogpu_bench as bench;
pub use mogpu_core as core;
pub use mogpu_frame as frame;
pub use mogpu_metrics as metrics;
pub use mogpu_mog as mog;
pub use mogpu_sim as sim;
pub use serde_json as json;

/// One-stop imports for examples and downstream users.
pub mod prelude {
    pub use mogpu_core::{
        DeviceModel, FleetPipeline, FleetRunReport, GpuMog, Layout, MultiGpuMog, MultiStreamReport,
        OptLevel, ProfileMode, ProfileReport, RunReport, StreamRunReport,
    };
    pub use mogpu_frame::{
        Frame, FrameSequence, Mask, MovingObject, ObjectShape, Resolution, Scene, SceneBuilder,
    };
    pub use mogpu_metrics::{mask_confusion, ms_ssim, ssim};
    pub use mogpu_mog::{parallel::ParallelMog, MogParams, SerialMog, Variant};
    pub use mogpu_sim::cpu::CpuModel;
    pub use mogpu_sim::{CheckKind, CpuConfig, Finding, GpuConfig, SanReport};
}

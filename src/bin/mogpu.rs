//! `mogpu` — command-line background subtraction on the simulated GPU.
//!
//! ```text
//! mogpu info                      # print the simulated hardware
//! mogpu demo --out demo_out       # synthetic scene -> masks (PGM + Y4M)
//! mogpu ladder --frames 24        # climb optimization levels A..F, W(8)
//! mogpu run -i in.y4m -o out.y4m  # subtract a real Y4M capture
//! ```

use mogpu::frame::{save_pgm, write_y4m};
use mogpu::prelude::*;
use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("info") => cmd_info(),
        Some("demo") => cmd_demo(&args[1..]),
        Some("ladder") => cmd_ladder(&args[1..]),
        Some("run") => cmd_run(&args[1..]),
        Some("help") | Some("--help") | Some("-h") | None => {
            print_help();
            Ok(())
        }
        Some(other) => Err(format!("unknown command {other:?}; try `mogpu help`")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn print_help() {
    println!(
        "mogpu — GPU-optimized MoG background subtraction (ICPP'14 reproduction)

USAGE:
    mogpu info
        Print the simulated GPU/CPU hardware configuration.

    mogpu demo [--out DIR] [--frames N] [--level L]
        Render a synthetic surveillance scene, subtract its background,
        and write input/mask PGM snapshots plus Y4M clips into DIR
        (default: mogpu_demo). L is one of A B C D E F W8 (default F).

    mogpu ladder [--frames N] [--k K] [--float]
        Climb the paper's optimization ladder on a synthetic scene and
        print per-level performance (default: 24 frames, K=3, double).

    mogpu run --input IN.y4m [--output OUT.y4m] [--level L] [--k K] [--float]
        Background-subtract a YUV4MPEG2 clip; writes the mask sequence
        as Y4M when --output is given, else prints per-frame stats."
    );
}

/// Looks up `--flag value` in an argument list.
fn opt_value(args: &[String], flag: &str) -> Option<String> {
    args.iter().position(|a| a == flag).and_then(|i| args.get(i + 1)).cloned()
}

fn opt_flag(args: &[String], flag: &str) -> bool {
    args.iter().any(|a| a == flag)
}

fn parse_level(s: &str) -> Result<OptLevel, String> {
    match s.to_ascii_uppercase().as_str() {
        "A" => Ok(OptLevel::A),
        "B" => Ok(OptLevel::B),
        "C" => Ok(OptLevel::C),
        "D" => Ok(OptLevel::D),
        "E" => Ok(OptLevel::E),
        "F" => Ok(OptLevel::F),
        w if w.starts_with('W') => {
            let group: usize = w[1..].trim_start_matches('(').trim_end_matches(')').parse()
                .map_err(|_| format!("bad windowed level {s:?}; use e.g. W8"))?;
            Ok(OptLevel::Windowed { group })
        }
        _ => Err(format!("unknown level {s:?} (A..F or W<group>)")),
    }
}

fn cmd_info() -> Result<(), String> {
    let gpu = GpuConfig::tesla_c2075();
    let cpu = CpuConfig::xeon_e5_2620();
    println!("simulated GPU : {}", gpu.name);
    println!("  SMs x cores : {} x {}", gpu.num_sms, gpu.cores_per_sm);
    println!("  clock       : {:.2} GHz", gpu.clock_hz / 1e9);
    println!("  peak f32    : {:.2} TFLOPS", gpu.peak_f32_flops() / 1e12);
    println!("  DRAM        : {:.0} GB/s GDDR5", gpu.dram_peak_bw / 1e9);
    println!("  shared/SM   : {} KB", gpu.shared_mem_per_sm / 1024);
    println!("modelled CPU  : {}", cpu.name);
    println!("  cores       : {} @ {:.1} GHz", cpu.cores, cpu.clock_hz / 1e9);
    println!("  DRAM        : {:.1} GB/s DDR3", cpu.dram_bw / 1e9);
    println!("also available: GpuConfig::embedded_tegra(), ::tesla_c2075_with_l2()");
    Ok(())
}

fn cmd_demo(args: &[String]) -> Result<(), String> {
    let out_dir = PathBuf::from(opt_value(args, "--out").unwrap_or_else(|| "mogpu_demo".into()));
    let n_frames: usize =
        opt_value(args, "--frames").map(|v| v.parse().unwrap_or(40)).unwrap_or(40);
    let level = parse_level(&opt_value(args, "--level").unwrap_or_else(|| "F".into()))?;

    std::fs::create_dir_all(&out_dir).map_err(|e| e.to_string())?;
    let res = Resolution::QVGA;
    let scene = SceneBuilder::new(res).seed(2014).walkers(4).bimodal_fraction(0.05).build();
    let (frames_seq, _) = scene.render_sequence(n_frames);
    let frames = frames_seq.clone().into_frames();

    let mut gpu = GpuMog::<f64>::new(res, MogParams::default(), level, frames[0].as_slice(),
                                     GpuConfig::tesla_c2075())
        .map_err(|e| e.to_string())?;
    let report = gpu.process_all(&frames[1..]).map_err(|e| e.to_string())?;

    // Snapshots of the last frame.
    let last = report.masks.len() - 1;
    save_pgm(&frames[last + 1], out_dir.join("input_last.pgm")).map_err(|e| e.to_string())?;
    save_pgm(&report.masks[last], out_dir.join("mask_last.pgm")).map_err(|e| e.to_string())?;
    // Full clips.
    let mut mask_seq = FrameSequence::new(res);
    for m in &report.masks {
        mask_seq.push(m.clone()).map_err(|e| e.to_string())?;
    }
    let f_in = std::fs::File::create(out_dir.join("input.y4m")).map_err(|e| e.to_string())?;
    write_y4m(&frames_seq, 30, f_in).map_err(|e| e.to_string())?;
    let f_out = std::fs::File::create(out_dir.join("masks.y4m")).map_err(|e| e.to_string())?;
    write_y4m(&mask_seq, 30, f_out).map_err(|e| e.to_string())?;

    println!("level {} on {res}, {} frames:", level.name(), report.frames);
    println!("  kernel      : {:.3} ms/frame (modelled)", 1e3 * report.kernel_time_per_frame());
    println!("  end-to-end  : {:.3} ms/frame", 1e3 * report.gpu_time_per_frame());
    println!("  occupancy   : {:.1}%", 100.0 * report.occupancy.occupancy);
    println!("  branch eff  : {:.1}%", 100.0 * report.metrics.branch_efficiency);
    println!("  memory eff  : {:.1}%", 100.0 * report.metrics.mem_access_efficiency);
    println!("wrote {}/{{input,masks}}.y4m and *_last.pgm", out_dir.display());
    Ok(())
}

fn cmd_ladder(args: &[String]) -> Result<(), String> {
    let n_frames: usize =
        opt_value(args, "--frames").map(|v| v.parse().unwrap_or(24)).unwrap_or(24);
    let k: usize = opt_value(args, "--k").map(|v| v.parse().unwrap_or(3)).unwrap_or(3);
    let use_f32 = opt_flag(args, "--float");

    let res = Resolution::QQVGA;
    let frames = SceneBuilder::new(res)
        .seed(7)
        .walkers(3)
        .build()
        .render_sequence(n_frames)
        .0
        .into_frames();
    println!(
        "optimization ladder — {res}, {} frames, K={k}, {}",
        n_frames - 1,
        if use_f32 { "float" } else { "double" }
    );
    println!("{:<6} {:>10} {:>10} {:>9} {:>9}", "level", "kern ms", "e2e ms", "occup", "memEff");
    for level in OptLevel::LADDER.into_iter().chain([OptLevel::Windowed { group: 8 }]) {
        let report = if use_f32 {
            run_level_cli::<f32>(level, k, &frames)?
        } else {
            run_level_cli::<f64>(level, k, &frames)?
        };
        println!(
            "{:<6} {:>10.4} {:>10.4} {:>8.1}% {:>8.1}%",
            level.name(),
            1e3 * report.kernel_time_per_frame(),
            1e3 * report.gpu_time_per_frame(),
            100.0 * report.occupancy.occupancy,
            100.0 * report.metrics.mem_access_efficiency,
        );
    }
    Ok(())
}

fn run_level_cli<T: mogpu::core::DeviceReal>(
    level: OptLevel,
    k: usize,
    frames: &[Frame<u8>],
) -> Result<RunReport, String> {
    let mut gpu = GpuMog::<T>::new(
        frames[0].resolution(),
        MogParams::new(k),
        level,
        frames[0].as_slice(),
        GpuConfig::tesla_c2075(),
    )
    .map_err(|e| e.to_string())?;
    gpu.process_all(&frames[1..]).map_err(|e| e.to_string())
}

fn cmd_run(args: &[String]) -> Result<(), String> {
    let input = opt_value(args, "--input")
        .or_else(|| opt_value(args, "-i"))
        .ok_or("missing --input FILE.y4m")?;
    let output = opt_value(args, "--output").or_else(|| opt_value(args, "-o"));
    let level = parse_level(&opt_value(args, "--level").unwrap_or_else(|| "F".into()))?;
    let k: usize = opt_value(args, "--k").map(|v| v.parse().unwrap_or(3)).unwrap_or(3);
    let use_f32 = opt_flag(args, "--float");

    let file = std::fs::File::open(&input).map_err(|e| format!("{input}: {e}"))?;
    let seq = mogpu::frame::read_y4m(file).map_err(|e| e.to_string())?;
    if seq.len() < 2 {
        return Err("need at least 2 frames (the first seeds the model)".into());
    }
    let res = seq.resolution();
    let frames = seq.into_frames();
    println!("{input}: {} frames at {res}", frames.len());

    let report = if use_f32 {
        run_level_cli::<f32>(level, k, &frames)?
    } else {
        run_level_cli::<f64>(level, k, &frames)?
    };

    println!("level {} results:", level.name());
    println!("  kernel     : {:.3} ms/frame (modelled Tesla C2075)",
        1e3 * report.kernel_time_per_frame());
    println!("  end-to-end : {:.3} ms/frame", 1e3 * report.gpu_time_per_frame());
    println!("  foreground : {:.2}% of pixels (mean)",
        100.0 * report.masks.iter().map(|m| m.fraction_set()).sum::<f64>()
            / report.masks.len() as f64);

    if let Some(out) = output {
        let mut mask_seq = FrameSequence::new(res);
        for m in &report.masks {
            mask_seq.push(m.clone()).map_err(|e| e.to_string())?;
        }
        let f = std::fs::File::create(&out).map_err(|e| format!("{out}: {e}"))?;
        write_y4m(&mask_seq, 30, f).map_err(|e| e.to_string())?;
        println!("wrote {out}");
    }
    Ok(())
}

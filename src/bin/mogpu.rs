//! `mogpu` — command-line background subtraction on the simulated GPU.
//!
//! ```text
//! mogpu info                      # print the simulated hardware
//! mogpu demo --out demo_out       # synthetic scene -> masks (PGM + Y4M)
//! mogpu ladder --frames 24        # climb optimization levels A..F, W(8)
//! mogpu run -i in.y4m -o out.y4m  # subtract a real Y4M capture
//! ```

use mogpu::frame::{save_pgm, write_y4m};
use mogpu::prelude::*;
use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("info") => cmd_info(),
        Some("demo") => cmd_demo(&args[1..]),
        Some("ladder") => cmd_ladder(&args[1..]),
        Some("run") => cmd_run(&args[1..]),
        Some("profile") => cmd_profile(&args[1..]),
        Some("advise") => cmd_advise(&args[1..]),
        Some("diff") => cmd_diff(&args[1..]),
        Some("dataflow") => cmd_dataflow(&args[1..]),
        Some("streams") => cmd_streams(&args[1..]),
        Some("fleet") => cmd_fleet(&args[1..]),
        Some("serve") => cmd_serve(&args[1..]),
        Some("check") => cmd_check(&args[1..]),
        Some("metrics") => cmd_metrics(&args[1..]),
        Some("bench") => cmd_bench(&args[1..]),
        Some("help") | Some("--help") | Some("-h") | None => {
            print_help();
            Ok(())
        }
        Some(other) => Err(format!("unknown command {other:?}; try `mogpu help`")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn print_help() {
    println!(
        "mogpu — GPU-optimized MoG background subtraction (ICPP'14 reproduction)

COMMANDS:
    info      Print the simulated GPU/CPU hardware configuration
    demo      Render a synthetic scene and write input/mask clips
    ladder    Climb optimization levels A..F, W(8) and print a table
    run       Background-subtract a Y4M clip (or a synthetic scene)
    profile   Hotspot table, roofline bounds, bottleneck classification
    advise    Ranked optimization advisories from stall/roofline analysis
    diff      Differential profiling: attribute the delta between two runs
    dataflow  Cross-kernel memory-flow graph: who produces what, who reads it
    streams   Serve N camera streams from one device, CUDA-streams style
    fleet     Shard N streams across M heterogeneous simulated devices
    serve     Replay a serving report on a Prometheus scrape endpoint
    check     Sanitizer sweep over every shipped kernel
    metrics   Emit time-resolved telemetry in Prometheus text format
    bench     Record / check the performance-regression baseline
    help      Show this help

USAGE:
    mogpu info
        Print the simulated GPU/CPU hardware configuration.

    mogpu demo [--out DIR] [--frames N] [--level L]
        Render a synthetic surveillance scene, subtract its background,
        and write input/mask PGM snapshots plus Y4M clips into DIR
        (default: mogpu_demo). L is one of A B C D E F W8 (default F).

    mogpu ladder [--frames N] [--k K] [--float] [--json]
        Climb the paper's optimization ladder on a synthetic scene and
        print per-level performance (default: 24 frames, K=3, double).
        --json prints the per-level profile reports as a JSON array.

    mogpu run [--input IN.y4m] [--output OUT.y4m] [--level L] [--k K]
              [--frames N] [--float]
        Background-subtract a YUV4MPEG2 clip; writes the mask sequence
        as Y4M when --output is given, else prints per-frame stats.
        Without --input, runs on a synthetic scene of N frames
        (default 16) — handy for exercising the observability outputs.

    mogpu profile [--level L] [--frames N] [--k K] [--float] [--top N]
                  [--input IN.y4m]
        Run with the source-attributed profiler on and print the hotspot
        table, roofline bounds, and bottleneck classification (default:
        level F on a synthetic QQVGA scene, top 10 hotspots).

    mogpu advise [--level L] [--frames N] [--k K] [--float] [--tpb T]
                 [--top N] [--json]
        Analyze a profiled run with the guided-analysis advisor: decompose
        the modelled kernel time into warp stall reasons, place the kernel
        on the roofline, and print ranked advisories (finding, file:line
        evidence, recommended transform, modelled benefit). At each ladder
        level the top advisory names the paper's next optimization. --tpb
        overrides the launch block size; an unlaunchable configuration is
        reported as a structured diagnostic and exits nonzero (findings
        alone never do). Default: level A, 16 frames, K=3, double.
        With --fleet-report FILE.json (a `mogpu fleet --report-out` or
        --json document), instead replays the fleet dispatcher with one
        extra device of each class and prints which device class to add
        next, ranked by the whole-run streams-at-SLO it would buy.

    mogpu diff A.json B.json [--json] [--top N] [--out FILE.json]
               [--dot-out FILE.dot] [--metrics-out FILE.prom] [--config P]
        Differential profiling: diff two serialized reports of the same
        kind — profile reports (`--report-out`, single or ladder array),
        streams/serving reports, fleet reports, bench baselines, or
        dataflow graph JSON — and attribute the movement. For profile
        reports the kernel-time delta is decomposed through the stall
        reason buckets (the bucket deltas sum to the kernel delta
        exactly), per-site deltas carry file:line evidence, and each
        counter set is priced by a counterfactual re-run of the timing
        model (swap one counter at a time, the advisor's machinery).
        Histogram-carrying reports diff per bucket plus p50/p95/p99
        shifts; dataflow graphs get a what-changed overlay (--dot-out
        writes Graphviz DOT with grown edges red, shrunk green). --json
        prints the canonical byte-stable DiffReport, --out writes it,
        --metrics-out writes mogpu_diff_* Prometheus gauges, --top
        bounds the text tables (default 10), --config picks the device
        preset used for counterfactual re-timing (default c2075).

    mogpu dataflow [--level L] [--frames N] [--k K] [--float] [--json]
                   [--dot-out FILE.dot] [--metrics-out FILE.prom]
        Trace every global-memory access of a profiled synthetic run
        (MoG update followed by the morphology open) and stitch the
        per-launch read/write sets into a producer->consumer dataflow
        graph: nodes are launches, edges carry the bytes stored by one
        launch and loaded by the next, and every node accounts for its
        stores exactly (consumed + dead + live-at-exit). Prints
        Graphviz DOT to stdout by default; --json emits the canonical
        JSON document (byte-stable across runs), --dot-out/--metrics-out
        write the DOT and Prometheus counter forms to files. The same
        graph feeds `mogpu advise`, where the fat MoG->morphology edge
        surfaces as a kernel-fusion advisory once the per-kernel ladder
        is exhausted. Default: level F, 16 frames, K=3, double.

    mogpu streams [--streams N] [--frames M] [--level L] [--k K] [--float]
                  [--buffers B] [--fps R] [--json] [--slo-ms D]
                  [--error-budget E] [--window-ms W] [--events-out FILE.jsonl]
                  [--serve-metrics HOST:PORT] [--serve-seconds S]
                  [--replay-ms R]
        Serve N independent synthetic camera streams (distinct scenes)
        from one simulated device, CUDA-streams style: per-stream model
        state, shared compute/copy engines, B in-flight buffers per
        stream (default 2 = double buffering). --fps R paces each stream
        at R frames/s arrival (a live camera; default: offline, frames
        available up front). Prints per-stream latency (mean and exact
        p50/p95/p99 percentiles) and aggregate throughput; --json emits
        the same machine-readably, including the full serving report.
        Serving observability: every frame's end-to-end latency is
        judged against an SLO of D ms (default 40) with error budget E
        (default 0.01); the run is cut into schedule-clock windows of W
        ms (default: makespan/8) with cumulative counters monotone
        across windows. --events-out writes the JSONL event log
        (frame_admitted / launch / frame_completed / slo_violation with
        device+stream+site attribution). --serve-metrics binds a
        dependency-free HTTP endpoint and replays the window snapshots
        on /metrics (one window per --replay-ms of wall time, default
        500), for --serve-seconds S (default 0 = until interrupted).

    mogpu fleet [--devices LIST] [--streams N] [--frames M] [--level L]
                [--k K] [--float] [--buffers B] [--fps R] [--json]
                [--slo-ms D] [--error-budget E] [--window-ms W]
                [--headroom H] [--device-mem-mb MB] [--report-out FILE.json]
                [--events-out FILE.jsonl] [--serve-metrics HOST:PORT]
                [--serve-seconds S] [--replay-ms R]
        Shard N synthetic camera streams across a fleet of heterogeneous
        simulated devices. --devices is a comma-separated list of preset
        keys (c2075, c2075-l2, k20, embedded, hbm; repeat a key for more
        instances of that class; default c2075,embedded,hbm). Streams
        are priced per class (one-frame probes) and placed greedily by
        modelled load under per-device memory budgets; streams no device
        can admit are *shed* — every frame becomes an attributed
        frame_dropped event instead of an out-of-memory error.
        --device-mem-mb overrides every device's memory budget (the
        oversubscription lever), --headroom the load admission ceiling
        (default 1.0). Prints per-device load/memory/SLO attainment,
        shed streams, and the which-device-to-add-next advisory; --json
        emits the full fleet report machine-readably. --events-out
        writes the merged JSONL event log (all devices + drops).
        --serve-metrics replays the fleet on a Prometheus endpoint with
        per-device label cardinality and monotone drop counters.

    mogpu serve --report FILE.json [--addr HOST:PORT] [--serve-seconds S]
                [--replay-ms R]
        Replay a previously recorded serving report (`mogpu streams
        --report-out FILE.json`, or a bare serving report) on a
        Prometheus scrape endpoint at HOST:PORT (default
        127.0.0.1:9184), advancing one window snapshot per --replay-ms
        of wall time so scrapes see the counters grow monotonically.

    mogpu check [--frames N] [--k K] [--float] [--json]
        Run every shipped kernel (levels A..F, W8, adaptive, morph) under
        the sanitizer (memcheck / racecheck / synccheck / initcheck) on a
        synthetic scene and report findings with file:line attribution.
        Exits nonzero on any finding; --json emits machine-readable
        per-target reports (default: 8 frames, K=3, double).

    mogpu metrics [--level L] [--frames N] [--k K] [--float] [--out FILE]
        Run a profiled synthetic workload and emit its time-resolved
        telemetry (per-SM occupancy/IPC/warps, DRAM bandwidth, L2 hit
        rate, copy-engine utilization) in Prometheus text exposition
        format, to stdout or to --out FILE.prom.

    mogpu bench record [--out FILE.json] [--frames N] [--k K] [--streams S]
        Measure the ladder (A..F, W8) and a multi-stream run over the
        standard deterministic workload and write a tolerance-annotated
        performance baseline (default: results/baselines/default.json)
        plus slim per-level profile reports under reports/ next to it —
        the stored side of the drift attribution `bench check` emits.

    mogpu bench check [--baseline FILE.json] [--json] [--diff-out FILE]
        Re-measure with the baseline's recorded workload shape and diff
        against it metric by metric. Prints a table (or JSON with
        --json) and exits nonzero if any metric drifts beyond its
        tolerance — regressions and unexplained improvements both fail.
        On failure the drift is attributed through `mogpu diff`: stored
        per-level reports vs fresh profiles, stall-bucket and counter
        deltas with file:line evidence on stderr, and the canonical
        DiffReport JSON written to --diff-out (default: diff.json next
        to the baseline) for CI artifact capture.

    Observability (demo / ladder / run / profile / streams):
        --report-out FILE.json   machine-readable profile report(s),
                                 embedded time-resolved telemetry included
        --trace-out FILE.json    Chrome trace of the DMA/kernel timeline
                                 plus telemetry counter tracks (streams:
                                 one track triple per stream; load in
                                 chrome://tracing or Perfetto)
        --metrics-out FILE.prom  telemetry in Prometheus text format
                                 (ladder: all levels in one exposition)"
    );
}

/// Looks up `--flag value` in an argument list.
fn opt_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn opt_flag(args: &[String], flag: &str) -> bool {
    args.iter().any(|a| a == flag)
}

/// Parses `--replay-ms` into seconds. The replay interval divides the
/// wall clock, so zero, negative and non-finite values are rejected
/// here with a usable error instead of being clamped downstream.
fn parse_replay_s(args: &[String]) -> Result<f64, String> {
    match opt_value(args, "--replay-ms") {
        None => Ok(mogpu::serve::DEFAULT_REPLAY_INTERVAL_S),
        Some(v) => {
            let ms: f64 = v.parse().map_err(|_| format!("bad --replay-ms {v:?}"))?;
            if !ms.is_finite() || ms <= 0.0 {
                return Err(format!(
                    "--replay-ms must be a positive number of milliseconds, got {v:?}"
                ));
            }
            Ok(ms / 1e3)
        }
    }
}

fn parse_level(s: &str) -> Result<OptLevel, String> {
    match s.to_ascii_uppercase().as_str() {
        "A" => Ok(OptLevel::A),
        "B" => Ok(OptLevel::B),
        "C" => Ok(OptLevel::C),
        "D" => Ok(OptLevel::D),
        "E" => Ok(OptLevel::E),
        "F" => Ok(OptLevel::F),
        w if w.starts_with('W') => {
            let digits = w[1..].trim_start_matches('(').trim_end_matches(')');
            let group: usize = if digits.is_empty() {
                8 // bare "W" means the paper's default group size
            } else {
                digits
                    .parse()
                    .map_err(|_| format!("bad windowed level {s:?}; use e.g. W8"))?
            };
            Ok(OptLevel::Windowed { group })
        }
        _ => Err(format!("unknown level {s:?} (A..F or W<group>)")),
    }
}

fn cmd_info() -> Result<(), String> {
    let gpu = GpuConfig::tesla_c2075();
    let cpu = CpuConfig::xeon_e5_2620();
    println!("simulated GPU : {}", gpu.name);
    println!("  SMs x cores : {} x {}", gpu.num_sms, gpu.cores_per_sm);
    println!("  clock       : {:.2} GHz", gpu.clock_hz / 1e9);
    println!("  peak f32    : {:.2} TFLOPS", gpu.peak_f32_flops() / 1e12);
    println!("  DRAM        : {:.0} GB/s GDDR5", gpu.dram_peak_bw / 1e9);
    println!("  shared/SM   : {} KB", gpu.shared_mem_per_sm / 1024);
    println!("modelled CPU  : {}", cpu.name);
    println!(
        "  cores       : {} @ {:.1} GHz",
        cpu.cores,
        cpu.clock_hz / 1e9
    );
    println!("  DRAM        : {:.1} GB/s DDR3", cpu.dram_bw / 1e9);
    println!(
        "device presets (mogpu fleet --devices): {}",
        GpuConfig::preset_names().join(", ")
    );
    Ok(())
}

fn cmd_demo(args: &[String]) -> Result<(), String> {
    let out_dir = PathBuf::from(opt_value(args, "--out").unwrap_or_else(|| "mogpu_demo".into()));
    let n_frames: usize = opt_value(args, "--frames")
        .map(|v| v.parse().unwrap_or(40))
        .unwrap_or(40);
    let level = parse_level(&opt_value(args, "--level").unwrap_or_else(|| "F".into()))?;
    let obs = ObsFlags::parse(args)?;

    std::fs::create_dir_all(&out_dir).map_err(|e| e.to_string())?;
    let res = Resolution::QVGA;
    let scene = SceneBuilder::new(res)
        .seed(2014)
        .walkers(4)
        .bimodal_fraction(0.05)
        .build();
    let (frames_seq, _) = scene.render_sequence(n_frames);
    let frames = frames_seq.clone().into_frames();

    let mut gpu = GpuMog::<f64>::new(
        res,
        MogParams::default(),
        level,
        frames[0].as_slice(),
        GpuConfig::tesla_c2075(),
    )
    .map_err(|e| e.to_string())?;
    if obs.wanted() {
        gpu.set_profile_mode(ProfileMode::On);
    }
    let report = gpu.process_all(&frames[1..]).map_err(|e| e.to_string())?;
    if let Some(profile) = gpu.take_profile_report() {
        obs.write(&[profile])?;
    }

    // Snapshots of the last frame.
    let last = report.masks.len() - 1;
    save_pgm(&frames[last + 1], out_dir.join("input_last.pgm")).map_err(|e| e.to_string())?;
    save_pgm(&report.masks[last], out_dir.join("mask_last.pgm")).map_err(|e| e.to_string())?;
    // Full clips.
    let mut mask_seq = FrameSequence::new(res);
    for m in &report.masks {
        mask_seq.push(m.clone()).map_err(|e| e.to_string())?;
    }
    let f_in = std::fs::File::create(out_dir.join("input.y4m")).map_err(|e| e.to_string())?;
    write_y4m(&frames_seq, 30, f_in).map_err(|e| e.to_string())?;
    let f_out = std::fs::File::create(out_dir.join("masks.y4m")).map_err(|e| e.to_string())?;
    write_y4m(&mask_seq, 30, f_out).map_err(|e| e.to_string())?;

    println!("level {} on {res}, {} frames:", level.name(), report.frames);
    println!(
        "  kernel      : {:.3} ms/frame (modelled)",
        1e3 * report.kernel_time_per_frame()
    );
    println!(
        "  end-to-end  : {:.3} ms/frame",
        1e3 * report.gpu_time_per_frame()
    );
    println!("  occupancy   : {:.1}%", 100.0 * report.occupancy.occupancy);
    println!(
        "  branch eff  : {:.1}%",
        100.0 * report.metrics.branch_efficiency
    );
    println!(
        "  memory eff  : {:.1}%",
        100.0 * report.metrics.mem_access_efficiency
    );
    println!(
        "wrote {}/{{input,masks}}.y4m and *_last.pgm",
        out_dir.display()
    );
    Ok(())
}

fn cmd_ladder(args: &[String]) -> Result<(), String> {
    let n_frames: usize = opt_value(args, "--frames")
        .map(|v| v.parse().unwrap_or(24))
        .unwrap_or(24);
    let k: usize = opt_value(args, "--k")
        .map(|v| v.parse().unwrap_or(3))
        .unwrap_or(3);
    let use_f32 = opt_flag(args, "--float");
    let json = opt_flag(args, "--json");
    let obs = ObsFlags::parse(args)?;
    let profile = json || obs.wanted();

    let res = Resolution::QQVGA;
    let frames = SceneBuilder::new(res)
        .seed(7)
        .walkers(3)
        .build()
        .render_sequence(n_frames)
        .0
        .into_frames();
    if !json {
        println!(
            "optimization ladder — {res}, {} frames, K={k}, {}",
            n_frames - 1,
            if use_f32 { "float" } else { "double" }
        );
        println!(
            "{:<6} {:>10} {:>10} {:>9} {:>9}  bottleneck",
            "level", "kern ms", "e2e ms", "occup", "memEff"
        );
    }
    let mut profiles: Vec<ProfileReport> = Vec::new();
    let mut graphs: Vec<Option<mogpu::sim::DataflowGraph>> = Vec::new();
    for level in OptLevel::LADDER
        .into_iter()
        .chain([OptLevel::Windowed { group: 8 }])
    {
        let (report, prof, graph) = if use_f32 {
            run_level_profiled::<f32>(level, k, &frames, profile)?
        } else {
            run_level_profiled::<f64>(level, k, &frames, profile)?
        };
        let bottleneck = prof
            .as_ref()
            .map(|p| p.bottleneck.to_string())
            .unwrap_or_default();
        if !json {
            println!(
                "{:<6} {:>10.4} {:>10.4} {:>8.1}% {:>8.1}%  {}",
                level.name(),
                1e3 * report.kernel_time_per_frame(),
                1e3 * report.gpu_time_per_frame(),
                100.0 * report.occupancy.occupancy,
                100.0 * report.metrics.mem_access_efficiency,
                bottleneck,
            );
        }
        if prof.is_some() {
            graphs.push(graph);
        }
        profiles.extend(prof);
    }
    if json {
        println!(
            "{}",
            mogpu::json::to_string_pretty(&profiles).map_err(|e| e.to_string())?
        );
    }
    obs.write_traced(&profiles, &graphs)?;
    Ok(())
}

fn run_level_profiled<T: mogpu::core::DeviceReal>(
    level: OptLevel,
    k: usize,
    frames: &[Frame<u8>],
    profile: bool,
) -> Result<
    (
        RunReport,
        Option<ProfileReport>,
        Option<mogpu::sim::DataflowGraph>,
    ),
    String,
> {
    let mut gpu = GpuMog::<T>::new(
        frames[0].resolution(),
        MogParams::new(k),
        level,
        frames[0].as_slice(),
        GpuConfig::tesla_c2075(),
    )
    .map_err(|e| e.to_string())?;
    if profile {
        gpu.set_profile_mode(ProfileMode::On);
        // Recording is transparent (bit-identical masks and counters);
        // the graph feeds the Chrome-trace flow arrows.
        gpu.enable_dataflow();
    }
    let run = gpu.process_all(&frames[1..]).map_err(|e| e.to_string())?;
    let graph = gpu.dataflow_graph();
    Ok((run, gpu.take_profile_report(), graph))
}

/// Observability flags shared by demo / ladder / run / profile / streams.
struct ObsFlags {
    report_out: Option<PathBuf>,
    trace_out: Option<PathBuf>,
    metrics_out: Option<PathBuf>,
}

impl ObsFlags {
    fn parse(args: &[String]) -> Result<ObsFlags, String> {
        for flag in ["--report-out", "--trace-out", "--metrics-out"] {
            if opt_flag(args, flag) && opt_value(args, flag).is_none() {
                return Err(format!("{flag} requires a FILE value"));
            }
        }
        Ok(ObsFlags {
            report_out: opt_value(args, "--report-out").map(PathBuf::from),
            trace_out: opt_value(args, "--trace-out").map(PathBuf::from),
            metrics_out: opt_value(args, "--metrics-out").map(PathBuf::from),
        })
    }

    /// True when any output (so profiling) is requested.
    fn wanted(&self) -> bool {
        self.report_out.is_some() || self.trace_out.is_some() || self.metrics_out.is_some()
    }

    /// Writes the requested outputs from the collected reports.
    fn write(&self, reports: &[ProfileReport]) -> Result<(), String> {
        self.write_traced(reports, &[])
    }

    /// Like [`ObsFlags::write`], with a per-report dataflow graph whose
    /// cross-launch edges become Chrome-trace flow arrows.
    fn write_traced(
        &self,
        reports: &[ProfileReport],
        graphs: &[Option<mogpu::sim::DataflowGraph>],
    ) -> Result<(), String> {
        if let Some(path) = &self.report_out {
            let json = if reports.len() == 1 {
                mogpu::json::to_string_pretty(&reports[0]).map_err(|e| e.to_string())?
            } else {
                mogpu::json::to_string_pretty(&reports.to_vec()).map_err(|e| e.to_string())?
            };
            std::fs::write(path, json).map_err(|e| format!("{}: {e}", path.display()))?;
            println!("wrote profile report to {}", path.display());
        }
        if let Some(path) = &self.trace_out {
            let mut builder = mogpu::sim::chrome_trace::TraceBuilder::new();
            for (i, report) in reports.iter().enumerate() {
                let pid =
                    builder.add_pipeline(&format!("level {}", report.level), &report.schedule);
                builder.add_counters(pid, &report.telemetry);
                builder.add_stall_counters(pid, &report.telemetry, &report.stalls);
                if let Some(Some(graph)) = graphs.get(i) {
                    builder.add_dataflow_flows(pid, &report.schedule, graph);
                }
            }
            let json =
                mogpu::json::to_string_pretty(&builder.finish()).map_err(|e| e.to_string())?;
            std::fs::write(path, json).map_err(|e| format!("{}: {e}", path.display()))?;
            println!(
                "wrote Chrome trace to {} (load in chrome://tracing or ui.perfetto.dev)",
                path.display()
            );
        }
        if let Some(path) = &self.metrics_out {
            let pipelines: Vec<(
                String,
                &mogpu::sim::PipelineTelemetry,
                Option<mogpu::sim::KernelGauges>,
            )> = reports
                .iter()
                .map(|r| {
                    (
                        format!("level {}", r.level),
                        &r.telemetry,
                        Some(mogpu::sim::KernelGauges::new(&r.metrics, &r.occupancy)),
                    )
                })
                .collect();
            let text = mogpu::sim::telemetry::prometheus(&pipelines);
            std::fs::write(path, text).map_err(|e| format!("{}: {e}", path.display()))?;
            println!("wrote Prometheus metrics to {}", path.display());
        }
        Ok(())
    }
}

fn cmd_run(args: &[String]) -> Result<(), String> {
    let input = opt_value(args, "--input").or_else(|| opt_value(args, "-i"));
    let output = opt_value(args, "--output").or_else(|| opt_value(args, "-o"));
    let level = parse_level(&opt_value(args, "--level").unwrap_or_else(|| "F".into()))?;
    let k: usize = opt_value(args, "--k")
        .map(|v| v.parse().unwrap_or(3))
        .unwrap_or(3);
    let use_f32 = opt_flag(args, "--float");
    let obs = ObsFlags::parse(args)?;

    let frames = match &input {
        Some(input) => {
            let file = std::fs::File::open(input).map_err(|e| format!("{input}: {e}"))?;
            let seq = mogpu::frame::read_y4m(file).map_err(|e| e.to_string())?;
            if seq.len() < 2 {
                return Err("need at least 2 frames (the first seeds the model)".into());
            }
            println!("{input}: {} frames at {}", seq.len(), seq.resolution());
            seq.into_frames()
        }
        None => {
            // No capture given: fall back to the synthetic surveillance
            // scene so observability outputs can be exercised standalone.
            let n_frames: usize = opt_value(args, "--frames")
                .map(|v| v.parse().unwrap_or(16))
                .unwrap_or(16)
                .max(2);
            let res = Resolution::QQVGA;
            println!("no --input given: synthetic scene, {n_frames} frames at {res}");
            SceneBuilder::new(res)
                .seed(7)
                .walkers(3)
                .build()
                .render_sequence(n_frames)
                .0
                .into_frames()
        }
    };
    let res = frames[0].resolution();

    let (report, prof, graph) = if use_f32 {
        run_level_profiled::<f32>(level, k, &frames, obs.wanted())?
    } else {
        run_level_profiled::<f64>(level, k, &frames, obs.wanted())?
    };
    if let Some(profile) = prof {
        obs.write_traced(&[profile], &[graph])?;
    }

    println!("level {} results:", level.name());
    println!(
        "  kernel     : {:.3} ms/frame (modelled Tesla C2075)",
        1e3 * report.kernel_time_per_frame()
    );
    println!(
        "  end-to-end : {:.3} ms/frame",
        1e3 * report.gpu_time_per_frame()
    );
    println!(
        "  foreground : {:.2}% of pixels (mean)",
        100.0 * report.masks.iter().map(|m| m.fraction_set()).sum::<f64>()
            / report.masks.len() as f64
    );

    if let Some(out) = output {
        let mut mask_seq = FrameSequence::new(res);
        for m in &report.masks {
            mask_seq.push(m.clone()).map_err(|e| e.to_string())?;
        }
        let f = std::fs::File::create(&out).map_err(|e| format!("{out}: {e}"))?;
        write_y4m(&mask_seq, 30, f).map_err(|e| e.to_string())?;
        println!("wrote {out}");
    }
    Ok(())
}

fn cmd_profile(args: &[String]) -> Result<(), String> {
    let level = parse_level(&opt_value(args, "--level").unwrap_or_else(|| "F".into()))?;
    let n_frames: usize = opt_value(args, "--frames")
        .map(|v| v.parse().unwrap_or(16))
        .unwrap_or(16);
    let k: usize = opt_value(args, "--k")
        .map(|v| v.parse().unwrap_or(3))
        .unwrap_or(3);
    let use_f32 = opt_flag(args, "--float");
    let top: usize = opt_value(args, "--top")
        .map(|v| v.parse().unwrap_or(10))
        .unwrap_or(10);
    let obs = ObsFlags::parse(args)?;

    let frames = match opt_value(args, "--input").or_else(|| opt_value(args, "-i")) {
        Some(input) => {
            let file = std::fs::File::open(&input).map_err(|e| format!("{input}: {e}"))?;
            let seq = mogpu::frame::read_y4m(file).map_err(|e| e.to_string())?;
            if seq.len() < 2 {
                return Err("need at least 2 frames (the first seeds the model)".into());
            }
            println!("{input}: {} frames at {}", seq.len(), seq.resolution());
            seq.into_frames()
        }
        None => SceneBuilder::new(Resolution::QQVGA)
            .seed(7)
            .walkers(3)
            .build()
            .render_sequence(n_frames)
            .0
            .into_frames(),
    };

    let (_, prof, graph) = if use_f32 {
        run_level_profiled::<f32>(level, k, &frames, true)?
    } else {
        run_level_profiled::<f64>(level, k, &frames, true)?
    };
    let profile = prof.expect("profiling was enabled");
    print!("{}", profile.text(top));
    obs.write_traced(&[profile], &[graph])?;
    Ok(())
}

fn cmd_advise(args: &[String]) -> Result<(), String> {
    if let Some(path) = opt_value(args, "--fleet-report") {
        return cmd_advise_fleet(&PathBuf::from(path), opt_flag(args, "--json"));
    }
    let level = parse_level(&opt_value(args, "--level").unwrap_or_else(|| "A".into()))?;
    let n_frames: usize = opt_value(args, "--frames")
        .map(|v| v.parse().unwrap_or(16))
        .unwrap_or(16)
        .max(2);
    let k: usize = opt_value(args, "--k")
        .map(|v| v.parse().unwrap_or(3))
        .unwrap_or(3);
    let use_f32 = opt_flag(args, "--float");
    let json = opt_flag(args, "--json");
    let top: usize = opt_value(args, "--top")
        .map(|v| v.parse().unwrap_or(10))
        .unwrap_or(10)
        .max(1);
    let tpb: Option<u32> = match opt_value(args, "--tpb") {
        Some(v) => Some(v.parse().map_err(|_| format!("bad --tpb {v:?}"))?),
        None => None,
    };

    let frames = SceneBuilder::new(Resolution::QQVGA)
        .seed(7)
        .walkers(3)
        .build()
        .render_sequence(n_frames)
        .0
        .into_frames();
    let result = if use_f32 {
        advise_run::<f32>(level, k, tpb, &frames)
    } else {
        advise_run::<f64>(level, k, tpb, &frames)
    };
    let profile = match result {
        Ok(profile) => profile,
        Err(mogpu::core::PipelineError::Launch(e)) => {
            // The kernel never became resident: emit the structured
            // diagnostic the rules engine defines for this case, then
            // exit nonzero (invalid input, not a finding).
            let advisory = mogpu::sim::advisor::unlaunchable_advisory(&e.to_string());
            if json {
                let doc = mogpu::json::json!({
                    "level": level.name(),
                    "launchable": false,
                    "error": e.to_string(),
                    "advisories": [advisory],
                });
                println!(
                    "{}",
                    mogpu::json::to_string_pretty(&doc).map_err(|e| e.to_string())?
                );
            } else {
                println!("advisor — level {}: kernel is unlaunchable", level.name());
                print_advisory(1, &advisory);
            }
            return Err(format!("kernel launch rejected: {e}"));
        }
        Err(e) => return Err(e.to_string()),
    };

    if json {
        let advisories = &profile.advisories[..top.min(profile.advisories.len())];
        let doc = mogpu::json::json!({
            "level": level.name(),
            "launchable": true,
            "frames": profile.frames,
            "bottleneck": profile.bottleneck.to_string(),
            "kernel_time_s": profile.timing.total,
            "roofline": profile.roofline,
            "stalls": profile.stalls,
            "dma_starvation_s": profile.dma_starvation,
            "advisories": advisories,
        });
        println!(
            "{}",
            mogpu::json::to_string_pretty(&doc).map_err(|e| e.to_string())?
        );
        return Ok(());
    }

    println!(
        "advisor — level {}, {} frames, K={k}, {}",
        level.name(),
        profile.frames,
        if use_f32 { "float" } else { "double" }
    );
    println!("  bottleneck : {}", profile.bottleneck);
    let roof = &profile.roofline;
    println!(
        "  roofline   : {:.3} FLOP/B, {:.2} GFLOP/s of {:.2} GFLOP/s {} ceiling",
        roof.arithmetic_intensity,
        roof.achieved_flops / 1e9,
        roof.ceiling_flops / 1e9,
        if roof.compute_bound {
            "compute"
        } else {
            "memory"
        },
    );
    let (reason, secs) = profile.stalls.dominant();
    println!(
        "  stalls     : {reason} dominates at {:.3} ms of {:.3} ms kernel time",
        1e3 * secs,
        1e3 * profile.stalls.sum(),
    );
    if profile.dma_starvation > 0.0 {
        println!(
            "  starvation : compute engine idle {:.3} ms waiting on DMA",
            1e3 * profile.dma_starvation
        );
    }
    if profile.advisories.is_empty() {
        println!("no advisories: the profiled run is at the modelled optimum");
        return Ok(());
    }
    for (i, advisory) in profile.advisories.iter().take(top).enumerate() {
        print_advisory(i + 1, advisory);
    }
    Ok(())
}

/// `mogpu advise --fleet-report FILE.json`: replay the fleet dispatcher
/// from a recorded report and rank the device classes to add next.
fn cmd_advise_fleet(path: &PathBuf, json: bool) -> Result<(), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
    let doc: mogpu::json::Value =
        mogpu::json::from_str(&text).map_err(|e| format!("{}: {e}", path.display()))?;
    // Accept either a `mogpu fleet --report-out` document (fleet report
    // under the "report" key) or a bare fleet report.
    let value = doc.get("report").unwrap_or(&doc);
    let report = <mogpu::sim::fleet::FleetReport as serde::Deserialize>::from_json_value(value)
        .map_err(|e| format!("{}: not a fleet report: {e}", path.display()))?;
    let advisories = mogpu::sim::fleet::advise_fleet(&report);
    if json {
        let doc = mogpu::json::json!({
            "devices": report.devices.len(),
            "streams_total": report.streams_total(),
            "streams_admitted": report.streams_admitted(),
            "streams_at_slo": report.streams_at_slo(),
            "frames_dropped": report.frames_dropped(),
            "advisories": advisories,
        });
        println!(
            "{}",
            mogpu::json::to_string_pretty(&doc).map_err(|e| e.to_string())?
        );
        return Ok(());
    }
    println!(
        "fleet advisor — {} device(s), {}/{} streams admitted, {} at SLO, {} frame(s) dropped",
        report.devices.len(),
        report.streams_admitted(),
        report.streams_total(),
        report.streams_at_slo(),
        report.frames_dropped(),
    );
    if advisories.is_empty() {
        println!("no device classes to evaluate");
        return Ok(());
    }
    for (i, a) in advisories.iter().enumerate() {
        print_fleet_advisory(i + 1, a);
    }
    Ok(())
}

fn print_advisory(rank: usize, a: &mogpu::sim::Advisory) {
    println!(
        "\n#{rank} {} -> {:?}: est. {:.3} ms saved ({:.2}x)",
        a.rule,
        a.transform,
        1e3 * a.estimated_benefit_s,
        a.estimated_speedup,
    );
    println!("   {}", a.finding);
    if !a.evidence.is_empty() {
        let ev: Vec<String> = a
            .evidence
            .iter()
            .map(|e| {
                if e.value.abs() >= 1000.0 && e.value.fract() == 0.0 {
                    format!("{}={:.0}", e.metric, e.value)
                } else {
                    format!("{}={:.4}", e.metric, e.value)
                }
            })
            .collect();
        println!("   evidence: {}", ev.join(", "));
    }
    for site in &a.sites {
        println!("   site: {site}");
    }
}

fn advise_run<T: mogpu::core::DeviceReal>(
    level: OptLevel,
    k: usize,
    tpb: Option<u32>,
    frames: &[Frame<u8>],
) -> Result<ProfileReport, mogpu::core::PipelineError> {
    let mut gpu = GpuMog::<T>::new(
        frames[0].resolution(),
        MogParams::new(k),
        level,
        frames[0].as_slice(),
        GpuConfig::tesla_c2075(),
    )?;
    if let Some(t) = tpb {
        gpu.set_threads_per_block(t);
    }
    gpu.set_profile_mode(ProfileMode::On);
    // Record the cross-kernel dataflow graph alongside the profile so
    // the advisor can see producer->consumer byte overlap. Morphology
    // gives the MoG kernel a downstream consumer, as in the paper's
    // full pipeline; per-kernel metrics are unaffected.
    gpu.enable_dataflow();
    gpu.enable_morphology()?;
    gpu.process_all(&frames[1..])?;
    Ok(gpu.take_profile_report().expect("profiling was enabled"))
}

fn cmd_diff(args: &[String]) -> Result<(), String> {
    // Strict surface like `dataflow`: exactly two positional report
    // paths, reject unknown flags instead of silently ignoring typos.
    let valued = ["--top", "--out", "--dot-out", "--metrics-out", "--config"];
    let bare = ["--json"];
    let mut paths: Vec<PathBuf> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        let a = args[i].as_str();
        if valued.contains(&a) {
            if args.get(i + 1).is_none() {
                return Err(format!("{a} needs a value"));
            }
            i += 2;
        } else if bare.contains(&a) {
            i += 1;
        } else if a.starts_with('-') {
            return Err(format!("unknown diff option {a:?}; try `mogpu help`"));
        } else {
            paths.push(PathBuf::from(a));
            i += 1;
        }
    }
    if paths.len() != 2 {
        return Err(format!(
            "diff needs exactly two report files, got {} (usage: mogpu diff A.json B.json)",
            paths.len()
        ));
    }
    let json = opt_flag(args, "--json");
    let top: usize = match opt_value(args, "--top") {
        Some(v) => v.parse().map_err(|_| format!("bad --top {v:?}"))?,
        None => 10,
    };
    let cfg = match opt_value(args, "--config") {
        Some(name) => GpuConfig::preset(&name).ok_or_else(|| {
            format!(
                "unknown --config {name:?}; presets: {}",
                GpuConfig::preset_names().join(", ")
            )
        })?,
        None => GpuConfig::tesla_c2075(),
    };

    let load = |path: &PathBuf| -> Result<mogpu::json::Value, String> {
        let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
        mogpu::json::from_str(&text).map_err(|e| format!("{}: {e}", path.display()))
    };
    let (a, b) = (load(&paths[0])?, load(&paths[1])?);
    let label = |p: &PathBuf| p.display().to_string();
    let report = mogpu::sim::diff_values(&a, &b, &label(&paths[0]), &label(&paths[1]), &cfg)?;

    if let Some(path) = opt_value(args, "--out").map(PathBuf::from) {
        let text = mogpu::json::to_string_canonical_pretty(&report).map_err(|e| e.to_string())?;
        std::fs::write(&path, text + "\n").map_err(|e| format!("{}: {e}", path.display()))?;
        eprintln!("wrote diff report to {}", path.display());
    }
    if let Some(path) = opt_value(args, "--dot-out").map(PathBuf::from) {
        let Some(df) = &report.dataflow else {
            return Err(
                "--dot-out needs two dataflow graph documents (`mogpu dataflow --json`)".into(),
            );
        };
        std::fs::write(&path, df.to_dot()).map_err(|e| format!("{}: {e}", path.display()))?;
        eprintln!("wrote dataflow diff overlay to {}", path.display());
    }
    if let Some(path) = opt_value(args, "--metrics-out").map(PathBuf::from) {
        std::fs::write(&path, report.prometheus(top))
            .map_err(|e| format!("{}: {e}", path.display()))?;
        eprintln!("wrote diff metrics to {}", path.display());
    }
    if json {
        println!(
            "{}",
            mogpu::json::to_string_canonical_pretty(&report).map_err(|e| e.to_string())?
        );
    } else {
        print!("{}", report.text(top));
    }
    Ok(())
}

fn cmd_dataflow(args: &[String]) -> Result<(), String> {
    // New command, strict surface: reject anything unrecognized instead
    // of silently ignoring a typo'd flag.
    let valued = ["--level", "--frames", "--k", "--dot-out", "--metrics-out"];
    let bare = ["--float", "--json"];
    let mut i = 0;
    while i < args.len() {
        let a = args[i].as_str();
        if valued.contains(&a) {
            if args.get(i + 1).is_none() {
                return Err(format!("{a} needs a value"));
            }
            i += 2;
        } else if bare.contains(&a) {
            i += 1;
        } else {
            return Err(format!("unknown dataflow option {a:?}; try `mogpu help`"));
        }
    }

    let level = parse_level(&opt_value(args, "--level").unwrap_or_else(|| "F".into()))?;
    let n_frames: usize = opt_value(args, "--frames")
        .map(|v| v.parse().unwrap_or(16))
        .unwrap_or(16)
        .max(2);
    let k: usize = opt_value(args, "--k")
        .map(|v| v.parse().unwrap_or(3))
        .unwrap_or(3);
    let use_f32 = opt_flag(args, "--float");
    let json = opt_flag(args, "--json");
    let dot_out = opt_value(args, "--dot-out").map(PathBuf::from);
    let metrics_out = opt_value(args, "--metrics-out").map(PathBuf::from);

    let frames = SceneBuilder::new(Resolution::QQVGA)
        .seed(7)
        .walkers(3)
        .build()
        .render_sequence(n_frames)
        .0
        .into_frames();
    let graph = if use_f32 {
        dataflow_run::<f32>(level, k, &frames)
    } else {
        dataflow_run::<f64>(level, k, &frames)
    }
    .map_err(|e| e.to_string())?;

    if let Some(path) = &dot_out {
        std::fs::write(path, graph.to_dot()).map_err(|e| format!("{}: {e}", path.display()))?;
        println!("wrote dataflow DOT to {}", path.display());
    }
    if let Some(path) = &metrics_out {
        std::fs::write(path, graph.prometheus()).map_err(|e| format!("{}: {e}", path.display()))?;
        println!("wrote dataflow Prometheus counters to {}", path.display());
    }
    if json {
        println!(
            "{}",
            mogpu::json::to_string_canonical_pretty(&graph.to_json()).map_err(|e| e.to_string())?
        );
    } else if dot_out.is_none() {
        print!("{}", graph.to_dot());
    }
    Ok(())
}

fn dataflow_run<T: mogpu::core::DeviceReal>(
    level: OptLevel,
    k: usize,
    frames: &[Frame<u8>],
) -> Result<mogpu::sim::DataflowGraph, mogpu::core::PipelineError> {
    let mut gpu = GpuMog::<T>::new(
        frames[0].resolution(),
        MogParams::new(k),
        level,
        frames[0].as_slice(),
        GpuConfig::tesla_c2075(),
    )?;
    gpu.enable_dataflow();
    gpu.enable_morphology()?;
    gpu.process_all(&frames[1..])?;
    Ok(gpu.dataflow_graph().expect("dataflow was enabled"))
}

fn cmd_streams(args: &[String]) -> Result<(), String> {
    let n_streams: usize = opt_value(args, "--streams")
        .map(|v| v.parse().unwrap_or(4))
        .unwrap_or(4)
        .max(1);
    let n_frames: usize = opt_value(args, "--frames")
        .map(|v| v.parse().unwrap_or(16))
        .unwrap_or(16)
        .max(2);
    let level = parse_level(&opt_value(args, "--level").unwrap_or_else(|| "F".into()))?;
    let k: usize = opt_value(args, "--k")
        .map(|v| v.parse().unwrap_or(3))
        .unwrap_or(3);
    let use_f32 = opt_flag(args, "--float");
    let buffers: usize = opt_value(args, "--buffers")
        .map(|v| v.parse().unwrap_or(2))
        .unwrap_or(2);
    let fps: f64 = opt_value(args, "--fps")
        .map(|v| v.parse().unwrap_or(0.0))
        .unwrap_or(0.0);
    let json = opt_flag(args, "--json");
    let slo_ms: f64 = opt_value(args, "--slo-ms")
        .map(|v| v.parse().unwrap_or(40.0))
        .unwrap_or(40.0);
    let error_budget: f64 = opt_value(args, "--error-budget")
        .map(|v| v.parse().unwrap_or(0.01))
        .unwrap_or(0.01);
    let slo = mogpu::sim::serving::SloConfig {
        deadline_s: slo_ms.max(0.0) / 1e3,
        error_budget: error_budget.max(0.0),
    };
    let window_ms: f64 = opt_value(args, "--window-ms")
        .map(|v| v.parse().unwrap_or(0.0))
        .unwrap_or(0.0);
    let window_s = window_ms.max(0.0) / 1e3;
    let events_out = opt_value(args, "--events-out").map(PathBuf::from);
    let serve_addr = opt_value(args, "--serve-metrics");
    let serve_seconds: f64 = opt_value(args, "--serve-seconds")
        .map(|v| v.parse().unwrap_or(0.0))
        .unwrap_or(0.0);
    let replay_s = parse_replay_s(args)?;
    let obs = ObsFlags::parse(args)?;

    // One distinct synthetic scene per camera.
    let res = Resolution::QQVGA;
    let scenes: Vec<Vec<Frame<u8>>> = (0..n_streams)
        .map(|s| {
            SceneBuilder::new(res)
                .seed(100 + s as u64)
                .walkers(2 + s % 3)
                .build()
                .render_sequence(n_frames)
                .0
                .into_frames()
        })
        .collect();
    let report = if use_f32 {
        run_streams::<f32>(&scenes, level, k, buffers, fps, slo, window_s)?
    } else {
        run_streams::<f64>(&scenes, level, k, buffers, fps, slo, window_s)?
    };

    let doc = streams_json_doc(&report, n_streams, n_frames, level, buffers, fps, slo);
    if json {
        println!(
            "{}",
            mogpu::json::to_string_pretty(&doc).map_err(|e| e.to_string())?
        );
    } else {
        println!(
            "{n_streams} streams x {} frames, level {}, {} buffers/stream{}",
            n_frames - 1,
            level.name(),
            buffers.max(1),
            if fps > 0.0 {
                format!(", arrivals at {fps:.0} fps")
            } else {
                ", offline".into()
            }
        );
        println!(
            "{:<8} {:>7} {:>10} {:>9} {:>9} {:>9} {:>9} {:>6} {:>10} {:>9}",
            "stream",
            "frames",
            "mean ms",
            "p50 ms",
            "p95 ms",
            "p99 ms",
            "max ms",
            "viol",
            "done s",
            "fps"
        );
        for (s, r) in report.per_stream.iter().enumerate() {
            println!(
                "{:<8} {:>7} {:>10.3} {:>9.3} {:>9.3} {:>9.3} {:>9.3} {:>6} {:>10.4} {:>9.1}",
                format!("s{s}"),
                r.frames,
                1e3 * r.latency.mean,
                1e3 * r.latency.p50,
                1e3 * r.latency.p95,
                1e3 * r.latency.p99,
                1e3 * r.latency.max,
                report.serving.streams[s].slo_violations,
                r.completion,
                r.fps
            );
        }
        println!(
            "aggregate: {} frames in {:.4} s = {:.1} fps, compute engine {:.1}% busy",
            report.total_frames,
            report.makespan,
            report.aggregate_fps,
            100.0 * report.kernel_utilization
        );
        println!(
            "slo: {:.1} ms deadline, {}/{} streams at SLO, {} violation(s), {} windows of {:.1} ms",
            1e3 * slo.deadline_s,
            report.serving.streams_at_slo(),
            n_streams,
            report.serving.total_violations(),
            report.serving.snapshots.len(),
            1e3 * report.serving.window_s,
        );
    }

    if let Some(path) = &events_out {
        let mut writer = mogpu::sim::serving::EventLogWriter::create(path)
            .map_err(|e| format!("{}: {e}", path.display()))?;
        writer
            .write_events(&report.serving.events)
            .and_then(|()| writer.flush())
            .map_err(|e| format!("{}: {e}", path.display()))?;
        println!(
            "wrote {} serving events to {}",
            report.serving.events.len(),
            path.display()
        );
    }
    if let Some(path) = &obs.report_out {
        let text = mogpu::json::to_string_pretty(&doc).map_err(|e| e.to_string())?;
        std::fs::write(path, text).map_err(|e| format!("{}: {e}", path.display()))?;
        println!("wrote multi-stream report to {}", path.display());
    }

    if let Some(path) = &obs.trace_out {
        let mut builder = mogpu::sim::chrome_trace::TraceBuilder::new();
        let pid = builder.add_multi_stream(
            &format!("{n_streams} streams, level {}", level.name()),
            &report.schedule,
        );
        builder.add_counters(pid, &report.telemetry);
        let json = mogpu::json::to_string_pretty(&builder.finish()).map_err(|e| e.to_string())?;
        std::fs::write(path, json).map_err(|e| format!("{}: {e}", path.display()))?;
        println!(
            "wrote Chrome trace to {} (load in chrome://tracing or ui.perfetto.dev)",
            path.display()
        );
    }
    if let Some(path) = &obs.metrics_out {
        // Stream aggregates have no single-kernel identity, so no kernel gauges.
        let label = format!("{n_streams} streams, level {}", level.name());
        let text = mogpu::sim::telemetry::prometheus(&[(label, &report.telemetry, None)]);
        std::fs::write(path, text).map_err(|e| format!("{}: {e}", path.display()))?;
        println!("wrote Prometheus metrics to {}", path.display());
    }
    if let Some(addr) = &serve_addr {
        let label = format!("{n_streams} streams, level {}", level.name());
        let extra = mogpu::sim::telemetry::prometheus(&[(label, &report.telemetry, None)]);
        serve_metrics(report.serving, addr, replay_s, serve_seconds, extra)?;
    }
    Ok(())
}

/// Machine-readable multi-stream report document: run shape, aggregate
/// and per-stream latency summaries (with exact percentiles), and the
/// full serving report (SLO accounting, windowed snapshots, event log).
fn streams_json_doc(
    report: &MultiStreamReport,
    n_streams: usize,
    n_frames: usize,
    level: OptLevel,
    buffers: usize,
    fps: f64,
    slo: mogpu::sim::serving::SloConfig,
) -> mogpu::json::Value {
    let streams: Vec<mogpu::json::Value> = report
        .per_stream
        .iter()
        .enumerate()
        .map(|(s, r)| {
            mogpu::json::json!({
                "stream": s,
                "frames": r.frames,
                "kernel_s": r.kernel_time_total,
                "latency_mean_ms": 1e3 * r.latency.mean,
                "latency_p50_ms": 1e3 * r.latency.p50,
                "latency_p95_ms": 1e3 * r.latency.p95,
                "latency_p99_ms": 1e3 * r.latency.p99,
                "latency_p999_ms": 1e3 * r.latency.p999,
                "latency_max_ms": 1e3 * r.latency.max,
                "slo_violations": report.serving.streams[s].slo_violations,
                "completion_s": r.completion,
                "fps": r.fps,
            })
        })
        .collect();
    mogpu::json::json!({
        "streams": n_streams,
        "frames_per_stream": n_frames - 1,
        "level": level.name(),
        "buffers_per_stream": buffers.max(1),
        "arrival_fps": fps,
        "slo_deadline_ms": 1e3 * slo.deadline_s,
        "slo_error_budget": slo.error_budget,
        "total_frames": report.total_frames,
        "makespan_s": report.makespan,
        "aggregate_fps": report.aggregate_fps,
        "kernel_utilization": report.kernel_utilization,
        "streams_at_slo": report.serving.streams_at_slo(),
        "slo_violations_total": report.serving.total_violations(),
        "per_stream": streams,
        "serving": report.serving,
    })
}

/// Binds the scrape endpoint and serves snapshot replays until the
/// duration elapses (0 = forever).
fn serve_metrics(
    serving: mogpu::sim::serving::ServingReport,
    addr: &str,
    replay_s: f64,
    serve_seconds: f64,
    extra_exposition: String,
) -> Result<(), String> {
    let server = mogpu::serve::MetricsServer::bind(addr, serving, replay_s)
        .map_err(|e| format!("bind {addr}: {e}"))?
        .with_extra_exposition(extra_exposition);
    println!(
        "serving /metrics on http://{} ({})",
        server.local_addr(),
        if serve_seconds > 0.0 {
            format!("for {serve_seconds:.0} s")
        } else {
            "until interrupted".into()
        }
    );
    let handled = server
        .serve_for(serve_seconds)
        .map_err(|e| format!("serve: {e}"))?;
    println!("served {handled} request(s)");
    Ok(())
}

fn cmd_fleet(args: &[String]) -> Result<(), String> {
    let devices_arg = opt_value(args, "--devices").unwrap_or_else(|| "c2075,embedded,hbm".into());
    let keys: Vec<String> = devices_arg
        .split(',')
        .map(|k| k.trim().to_string())
        .filter(|k| !k.is_empty())
        .collect();
    if keys.is_empty() {
        return Err(format!(
            "--devices needs at least one preset key (one of: {})",
            GpuConfig::preset_names().join(", ")
        ));
    }
    let key_refs: Vec<&str> = keys.iter().map(String::as_str).collect();
    let n_streams: usize = opt_value(args, "--streams")
        .map(|v| v.parse().unwrap_or(4))
        .unwrap_or(4)
        .max(1);
    let n_frames: usize = opt_value(args, "--frames")
        .map(|v| v.parse().unwrap_or(12))
        .unwrap_or(12)
        .max(2);
    let level = parse_level(&opt_value(args, "--level").unwrap_or_else(|| "F".into()))?;
    let k: usize = opt_value(args, "--k")
        .map(|v| v.parse().unwrap_or(3))
        .unwrap_or(3);
    let use_f32 = opt_flag(args, "--float");
    let buffers: usize = opt_value(args, "--buffers")
        .map(|v| v.parse().unwrap_or(2))
        .unwrap_or(2);
    let fps: f64 = opt_value(args, "--fps")
        .map(|v| v.parse().unwrap_or(0.0))
        .unwrap_or(0.0);
    let json = opt_flag(args, "--json");
    let slo_ms: f64 = opt_value(args, "--slo-ms")
        .map(|v| v.parse().unwrap_or(40.0))
        .unwrap_or(40.0);
    let error_budget: f64 = opt_value(args, "--error-budget")
        .map(|v| v.parse().unwrap_or(0.01))
        .unwrap_or(0.01);
    let slo = mogpu::sim::serving::SloConfig {
        deadline_s: slo_ms.max(0.0) / 1e3,
        error_budget: error_budget.max(0.0),
    };
    let window_ms: f64 = opt_value(args, "--window-ms")
        .map(|v| v.parse().unwrap_or(0.0))
        .unwrap_or(0.0);
    let window_s = window_ms.max(0.0) / 1e3;
    let headroom: f64 = opt_value(args, "--headroom")
        .map(|v| v.parse().unwrap_or(1.0))
        .unwrap_or(1.0);
    let device_mem: Option<usize> = match opt_value(args, "--device-mem-mb") {
        Some(v) => {
            let mb: f64 = v
                .parse()
                .map_err(|_| format!("bad --device-mem-mb {v:?}"))?;
            if !mb.is_finite() || mb < 0.0 {
                return Err(format!("--device-mem-mb must be >= 0, got {v:?}"));
            }
            Some((mb * 1024.0 * 1024.0) as usize)
        }
        None => None,
    };
    let events_out = opt_value(args, "--events-out").map(PathBuf::from);
    let serve_addr = opt_value(args, "--serve-metrics");
    let serve_seconds: f64 = opt_value(args, "--serve-seconds")
        .map(|v| v.parse().unwrap_or(0.0))
        .unwrap_or(0.0);
    let replay_s = parse_replay_s(args)?;
    let obs = ObsFlags::parse(args)?;

    // One distinct synthetic scene per camera, as in `mogpu streams`.
    let res = Resolution::QQVGA;
    let scenes: Vec<Vec<Frame<u8>>> = (0..n_streams)
        .map(|s| {
            SceneBuilder::new(res)
                .seed(100 + s as u64)
                .walkers(2 + s % 3)
                .build()
                .render_sequence(n_frames)
                .0
                .into_frames()
        })
        .collect();
    let run = if use_f32 {
        run_fleet::<f32>(
            &scenes, &key_refs, level, k, buffers, fps, slo, window_s, headroom, device_mem,
        )?
    } else {
        run_fleet::<f64>(
            &scenes, &key_refs, level, k, buffers, fps, slo, window_s, headroom, device_mem,
        )?
    };
    let report = &run.report;

    let doc = mogpu::json::json!({
        "streams": n_streams,
        "frames_per_stream": n_frames - 1,
        "level": level.name(),
        "buffers_per_stream": buffers.max(1),
        "arrival_fps": fps,
        "slo_deadline_ms": 1e3 * slo.deadline_s,
        "slo_error_budget": slo.error_budget,
        "streams_admitted": report.streams_admitted(),
        "streams_shed": report.shed.len(),
        "streams_at_slo": report.streams_at_slo(),
        "frames_dropped": report.frames_dropped(),
        "makespan_s": report.makespan_s,
        "report": report,
        "advisories": run.advisories,
    });
    if json {
        println!(
            "{}",
            mogpu::json::to_string_pretty(&doc).map_err(|e| e.to_string())?
        );
    } else {
        println!(
            "fleet: {} device(s), {n_streams} streams x {} frames, level {}{}",
            report.devices.len(),
            n_frames - 1,
            level.name(),
            if fps > 0.0 {
                format!(", arrivals at {fps:.0} fps")
            } else {
                ", offline".into()
            }
        );
        println!(
            "{:<12} {:<10} {:>7} {:>6} {:>14} {:>7} {:>10}",
            "device", "class", "streams", "load", "mem MB", "at-SLO", "makespan s"
        );
        for d in &report.devices {
            println!(
                "{:<12} {:<10} {:>7} {:>6.2} {:>7.1}/{:<6.0} {:>4}/{:<2} {:>10.4}",
                d.label,
                report.classes[d.class].key,
                d.admitted.len(),
                d.load,
                d.mem_used as f64 / (1024.0 * 1024.0),
                d.mem_budget as f64 / (1024.0 * 1024.0),
                d.serving.streams_at_slo(),
                d.admitted.len(),
                d.serving.makespan_s,
            );
        }
        for s in &report.shed {
            println!(
                "shed: stream {} ({}; nearest miss {}), {} frame(s) dropped",
                s.stream, s.reason, report.devices[s.device].label, s.frames
            );
        }
        println!(
            "fleet: {}/{} streams admitted, {} at SLO ({:.1} ms deadline), {} frame(s) dropped, makespan {:.4} s",
            report.streams_admitted(),
            report.streams_total(),
            report.streams_at_slo(),
            1e3 * slo.deadline_s,
            report.frames_dropped(),
            report.makespan_s,
        );
        if run.advisories.is_empty() {
            println!("advisor: no device classes to evaluate");
        } else {
            for (i, a) in run.advisories.iter().enumerate() {
                print_fleet_advisory(i + 1, a);
            }
        }
    }

    if let Some(path) = &events_out {
        let events = report.all_events();
        let mut writer = mogpu::sim::serving::EventLogWriter::create(path)
            .map_err(|e| format!("{}: {e}", path.display()))?;
        writer
            .write_events(&events)
            .and_then(|()| writer.flush())
            .map_err(|e| format!("{}: {e}", path.display()))?;
        println!(
            "wrote {} serving events to {}",
            events.len(),
            path.display()
        );
    }
    if let Some(path) = &obs.report_out {
        let text = mogpu::json::to_string_pretty(&doc).map_err(|e| e.to_string())?;
        std::fs::write(path, text).map_err(|e| format!("{}: {e}", path.display()))?;
        println!("wrote fleet report to {}", path.display());
    }
    if let Some(addr) = &serve_addr {
        serve_fleet_metrics(run.report, addr, replay_s, serve_seconds)?;
    }
    Ok(())
}

#[allow(clippy::too_many_arguments)]
fn run_fleet<T: mogpu::core::DeviceReal>(
    scenes: &[Vec<Frame<u8>>],
    keys: &[&str],
    level: OptLevel,
    k: usize,
    buffers: usize,
    fps: f64,
    slo: mogpu::sim::serving::SloConfig,
    window_s: f64,
    headroom: f64,
    device_mem: Option<usize>,
) -> Result<FleetRunReport, String> {
    let seeds: Vec<&[u8]> = scenes.iter().map(|f| f[0].as_slice()).collect();
    let mut fleet = FleetPipeline::<T>::new(
        scenes[0][0].resolution(),
        MogParams::new(k),
        level,
        &seeds,
        keys,
    )
    .map_err(|e| e.to_string())?
    .with_buffers(buffers)
    .with_slo(slo)
    .with_window(window_s)
    .with_headroom(headroom);
    if fps > 0.0 {
        fleet = fleet.with_arrival_period(1.0 / fps);
    }
    if let Some(bytes) = device_mem {
        fleet = fleet.with_device_mem(bytes);
    }
    let frames: Vec<Vec<Frame<u8>>> = scenes.iter().map(|f| f[1..].to_vec()).collect();
    fleet.process_all(&frames).map_err(|e| e.to_string())
}

fn print_fleet_advisory(rank: usize, a: &mogpu::sim::fleet::FleetAdvisory) {
    println!(
        "advisor #{rank} add {:?}: {:+} stream(s) at SLO (-> {}), {:+} dropped frame(s) (-> {})",
        a.class,
        a.streams_at_slo_gain,
        a.streams_at_slo_after,
        -a.frames_dropped_cut,
        a.frames_dropped_after,
    );
    println!("   {}", a.finding);
}

/// Binds the scrape endpoint on a fleet report and replays its window
/// snapshots until the duration elapses (0 = forever).
fn serve_fleet_metrics(
    report: mogpu::sim::fleet::FleetReport,
    addr: &str,
    replay_s: f64,
    serve_seconds: f64,
) -> Result<(), String> {
    let server = mogpu::serve::MetricsServer::bind_fleet(addr, report, replay_s)
        .map_err(|e| format!("bind {addr}: {e}"))?;
    println!(
        "serving /metrics on http://{} ({})",
        server.local_addr(),
        if serve_seconds > 0.0 {
            format!("for {serve_seconds:.0} s")
        } else {
            "until interrupted".into()
        }
    );
    let handled = server
        .serve_for(serve_seconds)
        .map_err(|e| format!("serve: {e}"))?;
    println!("served {handled} request(s)");
    Ok(())
}

fn cmd_serve(args: &[String]) -> Result<(), String> {
    let report_path = PathBuf::from(opt_value(args, "--report").ok_or(
        "usage: mogpu serve --report FILE.json [--addr HOST:PORT] [--serve-seconds N] [--replay-ms N]",
    )?);
    let addr = opt_value(args, "--addr").unwrap_or_else(|| "127.0.0.1:9184".into());
    let serve_seconds: f64 = opt_value(args, "--serve-seconds")
        .map(|v| v.parse().unwrap_or(0.0))
        .unwrap_or(0.0);
    let replay_s = parse_replay_s(args)?;

    let text = std::fs::read_to_string(&report_path)
        .map_err(|e| format!("{}: {e}", report_path.display()))?;
    let doc: mogpu::json::Value =
        mogpu::json::from_str(&text).map_err(|e| format!("{}: {e}", report_path.display()))?;
    // Accept either a `mogpu streams --report-out` document (serving
    // report under the "serving" key) or a bare serving report.
    let serving_value = doc.get("serving").unwrap_or(&doc);
    let serving =
        <mogpu::sim::serving::ServingReport as serde::Deserialize>::from_json_value(serving_value)
            .map_err(|e| format!("{}: not a serving report: {e}", report_path.display()))?;
    println!(
        "replaying {}: device {:?}, {} stream(s), {} snapshot(s), {:.4} s makespan",
        report_path.display(),
        serving.device,
        serving.streams.len(),
        serving.snapshots.len(),
        serving.makespan_s
    );
    serve_metrics(serving, &addr, replay_s, serve_seconds, String::new())
}

fn cmd_metrics(args: &[String]) -> Result<(), String> {
    let level = parse_level(&opt_value(args, "--level").unwrap_or_else(|| "F".into()))?;
    let n_frames: usize = opt_value(args, "--frames")
        .map(|v| v.parse().unwrap_or(16))
        .unwrap_or(16)
        .max(2);
    let k: usize = opt_value(args, "--k")
        .map(|v| v.parse().unwrap_or(3))
        .unwrap_or(3);
    let use_f32 = opt_flag(args, "--float");
    let out = opt_value(args, "--out").map(PathBuf::from);

    let frames = SceneBuilder::new(Resolution::QQVGA)
        .seed(7)
        .walkers(3)
        .build()
        .render_sequence(n_frames)
        .0
        .into_frames();
    let (_, prof, _) = if use_f32 {
        run_level_profiled::<f32>(level, k, &frames, true)?
    } else {
        run_level_profiled::<f64>(level, k, &frames, true)?
    };
    let profile = prof.expect("profiling was enabled");
    let text = mogpu::sim::telemetry::prometheus(&[(
        format!("level {}", profile.level),
        &profile.telemetry,
        Some(mogpu::sim::KernelGauges::new(
            &profile.metrics,
            &profile.occupancy,
        )),
    )]);
    match out {
        Some(path) => {
            std::fs::write(&path, text).map_err(|e| format!("{}: {e}", path.display()))?;
            println!("wrote Prometheus metrics to {}", path.display());
        }
        None => print!("{text}"),
    }
    Ok(())
}

fn cmd_bench(args: &[String]) -> Result<(), String> {
    match args.first().map(String::as_str) {
        Some("record") => cmd_bench_record(&args[1..]),
        Some("check") => cmd_bench_check(&args[1..]),
        _ => Err("usage: mogpu bench record|check (see `mogpu help`)".into()),
    }
}

fn cmd_bench_record(args: &[String]) -> Result<(), String> {
    let out = PathBuf::from(
        opt_value(args, "--out")
            .unwrap_or_else(|| mogpu::bench::baseline::DEFAULT_BASELINE_PATH.into()),
    );
    let mut cfg = mogpu::bench::BenchConfig::default();
    if let Some(v) = opt_value(args, "--frames") {
        cfg.frames = v.parse().map_err(|_| format!("bad --frames {v:?}"))?;
    }
    if let Some(v) = opt_value(args, "--k") {
        cfg.k = v.parse().map_err(|_| format!("bad --k {v:?}"))?;
    }
    if let Some(v) = opt_value(args, "--streams") {
        cfg.streams = v.parse().map_err(|_| format!("bad --streams {v:?}"))?;
    }
    cfg.frames = cfg.frames.max(2);
    cfg.streams = cfg.streams.max(1);

    let mut baseline = mogpu::bench::baseline::measure(&cfg, mogpu::bench::Tolerances::default());
    // Per-level slim profile reports next to the baseline: the stored
    // side of the attribution a failing `bench check` emits.
    mogpu::bench::baseline::attach_reports(&mut baseline, &out)?;
    mogpu::bench::baseline::write_baseline(&baseline, &out)
        .map_err(|e| format!("{}: {e}", out.display()))?;
    println!(
        "recorded baseline ({} ladder levels + {}-stream run, {} frames, K={}) to {}",
        baseline.levels.len(),
        cfg.streams,
        cfg.frames - 1,
        cfg.k,
        out.display()
    );
    println!(
        "recorded {} per-level profile reports under {}",
        baseline.reports.len(),
        out.parent()
            .unwrap_or(std::path::Path::new("."))
            .join("reports")
            .display()
    );
    Ok(())
}

fn cmd_bench_check(args: &[String]) -> Result<(), String> {
    let path = PathBuf::from(
        opt_value(args, "--baseline")
            .unwrap_or_else(|| mogpu::bench::baseline::DEFAULT_BASELINE_PATH.into()),
    );
    let json = opt_flag(args, "--json");

    let baseline = mogpu::bench::baseline::read_baseline(&path)?;
    // Re-measure with the *baseline's* recorded workload shape so the
    // comparison is apples to apples even if the defaults have moved.
    let current = mogpu::bench::baseline::measure(&baseline.config, baseline.tolerances);
    let report = mogpu::bench::baseline::check(&baseline, &current);
    if json {
        println!(
            "{}",
            mogpu::json::to_string_pretty(&report).map_err(|e| e.to_string())?
        );
    } else {
        println!("{}", mogpu::bench::baseline::render_table(&report));
    }
    if !report.pass {
        // Attribute the drift before failing: stored per-level reports
        // vs fresh profiles, through the differential engine. The text
        // goes to stderr (CI logs), the canonical JSON next to the
        // baseline (CI artifacts).
        match mogpu::bench::baseline::attribute_failures(&baseline, &report, &path) {
            Ok(Some(diff_report)) => {
                let diff_path = opt_value(args, "--diff-out")
                    .map(PathBuf::from)
                    .unwrap_or_else(|| {
                        path.parent()
                            .unwrap_or(std::path::Path::new("."))
                            .join("diff.json")
                    });
                let text = mogpu::json::to_string_canonical_pretty(&diff_report)
                    .map_err(|e| e.to_string())?;
                if let Err(e) = std::fs::write(&diff_path, text + "\n") {
                    eprintln!("warning: cannot write {}: {e}", diff_path.display());
                } else {
                    eprintln!("wrote drift attribution to {}", diff_path.display());
                }
                eprint!("{}", diff_report.text(10));
            }
            Ok(None) => {}
            Err(e) => eprintln!("warning: drift attribution failed: {e}"),
        }
        return Err(format!(
            "performance drifted beyond tolerance of {}",
            path.display()
        ));
    }
    Ok(())
}

fn cmd_check(args: &[String]) -> Result<(), String> {
    let n_frames: usize = opt_value(args, "--frames")
        .map(|v| v.parse().unwrap_or(8))
        .unwrap_or(8)
        .max(2);
    let k: usize = opt_value(args, "--k")
        .map(|v| v.parse().unwrap_or(3))
        .unwrap_or(3);
    let use_f32 = opt_flag(args, "--float");
    let json = opt_flag(args, "--json");

    let res = Resolution::QQVGA;
    let scene = SceneBuilder::new(res).seed(7).walkers(3).build();
    let frames = scene.render_sequence(n_frames).0.into_frames();
    let (_, truth_mask) = scene.render(n_frames / 2);

    let mut results: Vec<(String, mogpu::sim::SanReport)> = Vec::new();
    for level in OptLevel::LADDER
        .into_iter()
        .chain([OptLevel::Windowed { group: 8 }])
    {
        let report = if use_f32 {
            check_level::<f32>(level, k, &frames)?
        } else {
            check_level::<f64>(level, k, &frames)?
        };
        results.push((format!("level {}", level.name()), report));
    }
    results.push(("adaptive".into(), check_adaptive(k, &frames, use_f32)?));
    for (name, op) in [
        ("morph erode", mogpu::core::kernels::MorphOp::Erode),
        ("morph dilate", mogpu::core::kernels::MorphOp::Dilate),
    ] {
        let (_, report) = mogpu::core::kernels::gpu_morph_with(
            &truth_mask,
            op,
            &GpuConfig::tesla_c2075(),
            mogpu::sim::LaunchOptions {
                sanitize: true,
                ..Default::default()
            },
        )
        .map_err(|e| e.to_string())?;
        results.push((
            name.into(),
            report.sanitizer.expect("sanitize was requested"),
        ));
    }

    let total: usize = results.iter().map(|(_, r)| r.len()).sum();
    if json {
        let targets: Vec<mogpu::json::Value> = results
            .iter()
            .map(|(name, report)| {
                mogpu::json::json!({
                    "target": name.as_str(),
                    "report": report,
                })
            })
            .collect();
        let doc = mogpu::json::json!({
            "frames": n_frames - 1,
            "k": k,
            "clean": total == 0,
            "findings": total as u64,
            "targets": targets,
        });
        println!(
            "{}",
            mogpu::json::to_string_pretty(&doc).map_err(|e| e.to_string())?
        );
    } else {
        println!(
            "sanitizer sweep — {res}, {} frames, K={k}, {}",
            n_frames - 1,
            if use_f32 { "float" } else { "double" }
        );
        for (name, report) in &results {
            if report.is_clean() {
                println!("{name:<14} clean");
            } else {
                println!("{name:<14} {} finding(s):", report.len());
                print!("{}", report.table());
            }
        }
    }
    if total > 0 {
        return Err(format!("sanitizer reported {total} finding(s)"));
    }
    Ok(())
}

fn check_level<T: mogpu::core::DeviceReal>(
    level: OptLevel,
    k: usize,
    frames: &[Frame<u8>],
) -> Result<mogpu::sim::SanReport, String> {
    let mut gpu = GpuMog::<T>::new(
        frames[0].resolution(),
        MogParams::new(k),
        level,
        frames[0].as_slice(),
        GpuConfig::tesla_c2075(),
    )
    .map_err(|e| e.to_string())?;
    gpu.set_sanitize(true);
    gpu.process_all(&frames[1..]).map_err(|e| e.to_string())?;
    Ok(gpu.take_san_report().expect("sanitize was on"))
}

fn check_adaptive(
    k: usize,
    frames: &[Frame<u8>],
    use_f32: bool,
) -> Result<mogpu::sim::SanReport, String> {
    fn go<T: mogpu::core::DeviceReal>(
        k: usize,
        frames: &[Frame<u8>],
    ) -> Result<mogpu::sim::SanReport, String> {
        let mut gpu = mogpu::core::AdaptiveGpuMog::<T>::new(
            frames[0].resolution(),
            MogParams::new(k),
            frames[0].as_slice(),
            GpuConfig::tesla_c2075(),
        )
        .map_err(|e| e.to_string())?;
        gpu.set_sanitize(true);
        gpu.process_all(&frames[1..]).map_err(|e| e.to_string())?;
        Ok(gpu.take_san_report().expect("sanitize was on"))
    }
    if use_f32 {
        go::<f32>(k, frames)
    } else {
        go::<f64>(k, frames)
    }
}

fn run_streams<T: mogpu::core::DeviceReal>(
    scenes: &[Vec<Frame<u8>>],
    level: OptLevel,
    k: usize,
    buffers: usize,
    fps: f64,
    slo: mogpu::sim::serving::SloConfig,
    window_s: f64,
) -> Result<MultiStreamReport, String> {
    let seeds: Vec<&[u8]> = scenes.iter().map(|f| f[0].as_slice()).collect();
    let mut multi = MultiGpuMog::<T>::new(
        scenes[0][0].resolution(),
        MogParams::new(k),
        level,
        &seeds,
        GpuConfig::tesla_c2075(),
    )
    .map_err(|e| e.to_string())?
    .with_buffers(buffers)
    .with_slo(slo)
    .with_window(window_s);
    if fps > 0.0 {
        multi = multi.with_arrival_period(1.0 / fps);
    }
    let frames: Vec<Vec<Frame<u8>>> = scenes.iter().map(|f| f[1..].to_vec()).collect();
    multi.process_all(&frames).map_err(|e| e.to_string())
}

//! Dependency-free Prometheus scrape endpoint over
//! [`std::net::TcpListener`].
//!
//! Serves `GET /metrics` from a [`ServingReport`]'s windowed snapshots,
//! replaying the schedule-clock windows in wall-clock time: snapshot `i`
//! is served until `(i + 1) * replay_interval` seconds after start, then
//! the next one — so a scraper polling the endpoint sees the counters
//! advance monotonically exactly as they did on the schedule clock, and
//! the final snapshot (the whole-run totals) is served forever after the
//! replay finishes. The full-run hardware telemetry exposition can be
//! appended to every response so one scrape carries both the serving
//! families and the `mogpu_*` gauges of [`mogpu_sim::telemetry`].
//!
//! The implementation is deliberately minimal — blocking accept loop with
//! a short socket timeout, one request per connection, HTTP/1.0-style
//! `Connection: close` — because the only client it needs to satisfy is a
//! Prometheus scraper or `curl` in CI, and the workspace vendors no async
//! runtime.

use mogpu_sim::fleet::{prometheus_fleet, FleetReport};
use mogpu_sim::serving::{prometheus_serving, ServingReport};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::time::{Duration, Instant};

/// Default wall-clock seconds each snapshot window is served for.
pub const DEFAULT_REPLAY_INTERVAL_S: f64 = 0.5;

/// What the endpoint replays: one device's serving report, or a whole
/// fleet report (per-device families under one exposition).
enum Source {
    Single(ServingReport),
    Fleet(FleetReport),
}

impl Source {
    /// How many replay snapshots the source carries.
    fn snapshot_count(&self) -> usize {
        match self {
            Source::Single(r) => r.snapshots.len(),
            Source::Fleet(r) => r
                .devices
                .iter()
                .map(|d| d.serving.snapshots.len())
                .max()
                .unwrap_or(0),
        }
    }
}

/// A running scrape endpoint.
pub struct MetricsServer {
    listener: TcpListener,
    addr: SocketAddr,
    source: Source,
    replay_interval: Duration,
    /// Extra exposition text appended to every `/metrics` response
    /// (e.g. the full-run hardware telemetry).
    extra: String,
    started: Instant,
}

/// A finite, positive replay interval: non-finite or non-positive
/// values (a `--replay-ms 0` that slipped past CLI validation, or NaN
/// from a corrupt config) fall back to [`DEFAULT_REPLAY_INTERVAL_S`] so
/// the snapshot index math below can never divide by zero.
fn clamp_interval(replay_interval_s: f64) -> f64 {
    if replay_interval_s.is_finite() && replay_interval_s > 0.0 {
        replay_interval_s
    } else {
        DEFAULT_REPLAY_INTERVAL_S
    }
}

impl MetricsServer {
    /// Binds `addr` (e.g. `127.0.0.1:9184`; port 0 picks a free port)
    /// and prepares to serve `report`'s snapshots every
    /// `replay_interval` seconds (non-finite or `<= 0` values use
    /// [`DEFAULT_REPLAY_INTERVAL_S`]).
    pub fn bind(
        addr: &str,
        report: ServingReport,
        replay_interval_s: f64,
    ) -> std::io::Result<MetricsServer> {
        Self::bind_source(addr, Source::Single(report), replay_interval_s)
    }

    /// Like [`MetricsServer::bind`], but replays a fleet report: one
    /// exposition carrying every device's families plus the fleet
    /// gauges and drop counters.
    pub fn bind_fleet(
        addr: &str,
        report: FleetReport,
        replay_interval_s: f64,
    ) -> std::io::Result<MetricsServer> {
        Self::bind_source(addr, Source::Fleet(report), replay_interval_s)
    }

    fn bind_source(
        addr: &str,
        source: Source,
        replay_interval_s: f64,
    ) -> std::io::Result<MetricsServer> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        Ok(MetricsServer {
            listener,
            addr,
            source,
            replay_interval: Duration::from_secs_f64(clamp_interval(replay_interval_s)),
            extra: String::new(),
            started: Instant::now(),
        })
    }

    /// The bound address (useful when binding port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Appends `exposition` to every `/metrics` response.
    pub fn with_extra_exposition(mut self, exposition: String) -> Self {
        self.extra = exposition;
        self
    }

    /// Index of the snapshot the replay clock has reached.
    fn current_snapshot(&self) -> usize {
        let elapsed = self.started.elapsed().as_secs_f64();
        let per = self.replay_interval.as_secs_f64();
        // `per` is always finite and positive (clamped at bind), so the
        // quotient can only be a normal number.
        let i = (elapsed / per) as usize;
        i.min(self.source.snapshot_count().saturating_sub(1))
    }

    /// The exposition body a scrape arriving now receives.
    pub fn render(&self) -> String {
        let snapshot = self.current_snapshot();
        let mut body = match &self.source {
            Source::Single(report) => prometheus_serving(report, snapshot),
            Source::Fleet(report) => prometheus_fleet(report, snapshot),
        };
        body.push_str(&self.extra);
        body
    }

    /// Serves until `deadline` (None = forever). Returns the number of
    /// requests handled. Uses a short accept timeout so shutdown is
    /// prompt once the deadline passes.
    pub fn serve_until(&self, deadline: Option<Instant>) -> std::io::Result<u64> {
        self.listener.set_nonblocking(true)?;
        let mut handled = 0u64;
        loop {
            if let Some(d) = deadline {
                if Instant::now() >= d {
                    return Ok(handled);
                }
            }
            match self.listener.accept() {
                Ok((stream, _)) => {
                    // Per-connection errors (client hung up mid-request)
                    // must not kill the endpoint.
                    if self.handle(stream).is_ok() {
                        handled += 1;
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(10));
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Serves for `seconds` of wall-clock time (0 = forever).
    pub fn serve_for(&self, seconds: f64) -> std::io::Result<u64> {
        let deadline = if seconds > 0.0 {
            Some(Instant::now() + Duration::from_secs_f64(seconds))
        } else {
            None
        };
        self.serve_until(deadline)
    }

    fn handle(&self, mut stream: TcpStream) -> std::io::Result<()> {
        stream.set_read_timeout(Some(Duration::from_millis(500)))?;
        stream.set_write_timeout(Some(Duration::from_millis(500)))?;
        // Read the request line; drain headers best-effort (the request
        // fits one read for every real scraper).
        let mut buf = [0u8; 4096];
        let n = stream.read(&mut buf)?;
        let request = String::from_utf8_lossy(&buf[..n]);
        let line = request.lines().next().unwrap_or("");
        let mut parts = line.split_whitespace();
        let method = parts.next().unwrap_or("");
        let path = parts.next().unwrap_or("");
        let (status, content_type, body) = if method != "GET" {
            (
                "405 Method Not Allowed",
                "text/plain; charset=utf-8",
                "method not allowed\n".to_string(),
            )
        } else if path == "/metrics" || path.starts_with("/metrics?") {
            (
                "200 OK",
                "text/plain; version=0.0.4; charset=utf-8",
                self.render(),
            )
        } else if path == "/" {
            (
                "200 OK",
                "text/plain; charset=utf-8",
                "mogpu serving metrics — scrape /metrics\n".to_string(),
            )
        } else {
            (
                "404 Not Found",
                "text/plain; charset=utf-8",
                "not found — scrape /metrics\n".to_string(),
            )
        };
        let response = format!(
            "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
            body.len()
        );
        stream.write_all(response.as_bytes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mogpu_sim::config::GpuConfig;
    use mogpu_sim::serving::{serving_report, ServingWindowConfig, SloConfig};
    use mogpu_sim::streams::{StageTimes, StreamInput, StreamScheduler};

    fn report() -> ServingReport {
        let inputs: Vec<StreamInput> = (0..2)
            .map(|_| StreamInput::offline(vec![StageTimes::uniform(1e-3, 2e-3, 1e-3); 5]))
            .collect();
        let sched = StreamScheduler::double_buffered().schedule(&inputs, &GpuConfig::tesla_c2075());
        serving_report(
            &sched,
            &[0.0, 0.0],
            "test-device",
            "level F",
            &SloConfig::default(),
            &ServingWindowConfig::default(),
            None,
        )
    }

    fn get(addr: SocketAddr, path: &str) -> (String, String) {
        let mut s = TcpStream::connect(addr).expect("connect");
        write!(s, "GET {path} HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        let mut out = String::new();
        s.read_to_string(&mut out).expect("read response");
        let (head, body) = out.split_once("\r\n\r\n").expect("header/body split");
        (head.to_string(), body.to_string())
    }

    #[test]
    fn serves_metrics_and_404s_elsewhere() {
        let server = MetricsServer::bind("127.0.0.1:0", report(), 10.0).unwrap();
        let addr = server.local_addr();
        let t = std::thread::spawn(move || {
            let n = server.serve_for(2.0).unwrap();
            assert!(n >= 3, "expected at least 3 handled requests, got {n}");
        });
        let (head, body) = get(addr, "/metrics");
        assert!(head.starts_with("HTTP/1.1 200"), "{head}");
        assert!(head.contains("text/plain"));
        assert!(body.contains("# TYPE mogpu_frame_latency_seconds histogram"));
        assert!(body.contains("device=\"test-device\""));
        assert!(body.contains("stream=\"1\""));
        let (head, _) = get(addr, "/nope");
        assert!(head.starts_with("HTTP/1.1 404"), "{head}");
        let (head, body) = get(addr, "/");
        assert!(head.starts_with("HTTP/1.1 200"), "{head}");
        assert!(body.contains("/metrics"));
        t.join().unwrap();
    }

    #[test]
    fn replay_advances_snapshots_monotonically() {
        // Fast replay: by the time we scrape twice, the snapshot index
        // has advanced, and the frames_completed counter never moves
        // backwards.
        let server = MetricsServer::bind("127.0.0.1:0", report(), 0.05).unwrap();
        let addr = server.local_addr();
        let t = std::thread::spawn(move || server.serve_for(1.5).unwrap());
        let count_of = |body: &str| -> f64 {
            body.lines()
                .filter(|l| l.starts_with("mogpu_frames_completed_total"))
                .map(|l| l.rsplit(' ').next().unwrap().parse::<f64>().unwrap())
                .sum()
        };
        let (_, first) = get(addr, "/metrics");
        std::thread::sleep(Duration::from_millis(600));
        let (_, last) = get(addr, "/metrics");
        assert!(count_of(&last) >= count_of(&first));
        // After the replay finishes, the totals equal the whole run.
        assert_eq!(count_of(&last), 10.0);
        t.join().unwrap();
    }

    #[test]
    fn zero_and_non_finite_replay_intervals_clamp_to_default() {
        // Regression: `--replay-ms 0` used to make current_snapshot
        // divide by zero and pin the replay to the last window.
        for bad in [0.0, -1.0, f64::NAN, f64::INFINITY] {
            let server = MetricsServer::bind("127.0.0.1:0", report(), bad).unwrap();
            assert_eq!(
                server.replay_interval,
                Duration::from_secs_f64(DEFAULT_REPLAY_INTERVAL_S),
                "interval {bad} must clamp"
            );
            // Immediately after bind the replay must be at the FIRST
            // snapshot, not pinned to the last.
            assert_eq!(server.current_snapshot(), 0);
            server.render(); // and render must not panic
        }
    }

    #[test]
    fn fleet_source_serves_device_cardinality() {
        use mogpu_sim::fleet::{fleet_report, FleetOptions, FleetSpec, FleetStream};
        let (spec, _) = FleetSpec::from_preset_keys(&["c2075", "hbm"]).unwrap();
        let streams: Vec<FleetStream> = (0..4)
            .map(|_| {
                FleetStream::uniform(
                    StreamInput::live(vec![StageTimes::uniform(1e-4, 5e-3, 1e-4); 6], 1.0 / 30.0),
                    1 << 20,
                    2,
                )
            })
            .collect();
        let fr = fleet_report(&spec, &streams, &FleetOptions::default()).unwrap();
        let server = MetricsServer::bind_fleet("127.0.0.1:0", fr, 10.0).unwrap();
        let body = server.render();
        assert!(body.contains("device=\"c2075-0\""), "{body}");
        assert!(body.contains("device=\"hbm-0\""));
        assert!(body.contains("# TYPE mogpu_frames_dropped_total counter"));
        assert!(body.contains("mogpu_fleet_devices 2"));
    }

    #[test]
    fn extra_exposition_is_appended() {
        let server = MetricsServer::bind("127.0.0.1:0", report(), 10.0)
            .unwrap()
            .with_extra_exposition(
                "# HELP extra_metric x\n# TYPE extra_metric gauge\nextra_metric 1\n".into(),
            );
        assert!(server.render().contains("extra_metric 1"));
    }
}

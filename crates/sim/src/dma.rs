//! PCIe/DMA transfer model and the host-side frame pipeline scheduler.
//!
//! Reproduces the paper's "overlapping data transfer and kernel execution"
//! optimization (Fig. 5, level C): without overlap a frame costs
//! `t_in + t_kernel + t_out`; with double buffering and the C2075's two
//! copy engines, steady-state cost is `max(t_kernel, t_in, t_out)`.
//!
//! The scheduler is a small exact list-scheduling simulation rather than a
//! closed-form formula, so pipeline fill/drain and single-copy-engine
//! configurations are handled correctly.

use crate::config::GpuConfig;
use serde::{Deserialize, Serialize};

/// Time to DMA `bytes` across PCIe in one direction from pageable host
/// memory (the paper's configuration).
pub fn transfer_time(bytes: usize, cfg: &GpuConfig) -> f64 {
    if bytes == 0 {
        return 0.0;
    }
    cfg.dma_latency_s + bytes as f64 / cfg.pcie_bw
}

/// Time to DMA `bytes` from page-locked (pinned) host memory — the
/// optimization the paper left on the table (see `exp_overlap`).
pub fn transfer_time_pinned(bytes: usize, cfg: &GpuConfig) -> f64 {
    if bytes == 0 {
        return 0.0;
    }
    cfg.dma_latency_s + bytes as f64 / cfg.pcie_bw_pinned
}

/// Whether host<->device transfers overlap kernel execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum OverlapMode {
    /// Serial: upload, kernel, download per frame (paper levels A, B).
    Sequential,
    /// Double-buffered streams: frame i+1 uploads and frame i-1 downloads
    /// while kernel i runs (paper level C onward).
    DoubleBuffered,
}

/// Result of scheduling a frame pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PipelineTiming {
    /// Total makespan for all frames (seconds).
    pub total: f64,
    /// Steady-state seconds per frame (`total / frames`).
    pub per_frame: f64,
    /// Fraction of the makespan during which the compute engine was busy.
    pub kernel_utilization: f64,
}

/// Schedules `frames` identical frames through upload -> kernel ->
/// download.
///
/// * `t_h2d` / `t_kernel` / `t_d2h` — per-frame stage times in seconds.
/// * In [`OverlapMode::Sequential`], every stage of frame `i` completes
///   before frame `i+1` starts (one stream, synchronous transfers).
/// * In [`OverlapMode::DoubleBuffered`], stages of different frames
///   overlap subject to: stage order within a frame; one kernel engine;
///   `cfg.copy_engines` copy engines (2 on the C2075 — dedicated H2D and
///   D2H; 1 engine serializes the two directions).
pub fn pipeline_time(
    frames: usize,
    t_h2d: f64,
    t_kernel: f64,
    t_d2h: f64,
    mode: OverlapMode,
    cfg: &GpuConfig,
) -> PipelineTiming {
    if frames == 0 {
        return PipelineTiming { total: 0.0, per_frame: 0.0, kernel_utilization: 0.0 };
    }
    let total = match mode {
        OverlapMode::Sequential => frames as f64 * (t_h2d + t_kernel + t_d2h),
        OverlapMode::DoubleBuffered => {
            // Engine availability times.
            let two_engines = cfg.copy_engines >= 2;
            let mut h2d_engine = 0.0f64; // engine 0
            let mut d2h_engine = 0.0f64; // engine 1 (aliases engine 0 if single)
            let mut kernel_engine = 0.0f64;
            let mut h2d_done = vec![0.0f64; frames];
            let mut kernel_done = vec![0.0f64; frames];
            let mut makespan: f64 = 0.0;
            for i in 0..frames {
                // Upload frame i.
                let start_h2d = h2d_engine;
                let end_h2d = start_h2d + t_h2d;
                h2d_engine = end_h2d;
                if !two_engines {
                    d2h_engine = d2h_engine.max(h2d_engine);
                }
                h2d_done[i] = end_h2d;

                // Kernel i: after its upload and the previous kernel.
                let start_k = kernel_engine.max(h2d_done[i]);
                let end_k = start_k + t_kernel;
                kernel_engine = end_k;
                kernel_done[i] = end_k;

                // Download i: after kernel i, on the D2H engine.
                let start_d2h = d2h_engine.max(kernel_done[i]);
                let end_d2h = start_d2h + t_d2h;
                d2h_engine = end_d2h;
                if !two_engines {
                    h2d_engine = h2d_engine.max(d2h_engine);
                }
                makespan = makespan.max(end_d2h);
            }
            makespan
        }
    };
    let busy = frames as f64 * t_kernel;
    PipelineTiming {
        total,
        per_frame: total / frames as f64,
        kernel_utilization: if total > 0.0 { busy / total } else { 0.0 },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> GpuConfig {
        GpuConfig::tesla_c2075()
    }

    #[test]
    fn pinned_transfers_are_faster() {
        let c = cfg();
        let n = 2_073_600; // one full-HD frame
        assert!(transfer_time_pinned(n, &c) < transfer_time(n, &c) / 3.0);
        assert_eq!(transfer_time_pinned(0, &c), 0.0);
    }

    #[test]
    fn transfer_time_has_latency_floor() {
        let c = cfg();
        assert_eq!(transfer_time(0, &c), 0.0);
        let t = transfer_time(1, &c);
        assert!(t >= c.dma_latency_s);
        let big = transfer_time(1_000_000_000, &c);
        assert!((big - (c.dma_latency_s + 1.0)).abs() < 1e-9);
    }

    #[test]
    fn sequential_is_sum_of_stages() {
        let t = pipeline_time(10, 1.0, 2.0, 0.5, OverlapMode::Sequential, &cfg());
        assert!((t.total - 35.0).abs() < 1e-12);
        assert!((t.per_frame - 3.5).abs() < 1e-12);
    }

    #[test]
    fn overlap_hides_transfers_when_kernel_dominates() {
        // Kernel 2 s, transfers 1 + 0.5 s: steady state = kernel-bound.
        let n = 100;
        let t = pipeline_time(n, 1.0, 2.0, 0.5, OverlapMode::DoubleBuffered, &cfg());
        // Makespan ~= fill (1.0) + n * 2.0 + drain (0.5).
        assert!((t.total - (1.0 + 200.0 + 0.5)).abs() < 1e-9);
        assert!(t.kernel_utilization > 0.98);
    }

    #[test]
    fn overlap_bound_by_transfers_when_kernel_small() {
        let n = 100;
        let t = pipeline_time(n, 2.0, 0.1, 1.0, OverlapMode::DoubleBuffered, &cfg());
        // H2D engine is the bottleneck: per-frame -> 2.0.
        assert!((t.per_frame - 2.0).abs() < 0.1, "per_frame = {}", t.per_frame);
    }

    #[test]
    fn single_copy_engine_serializes_directions() {
        let mut c = cfg();
        c.copy_engines = 1;
        let n = 200;
        let two = pipeline_time(n, 1.0, 1.0, 1.0, OverlapMode::DoubleBuffered, &cfg());
        let one = pipeline_time(n, 1.0, 1.0, 1.0, OverlapMode::DoubleBuffered, &c);
        // With one engine, H2D+D2H = 2.0 per frame binds; with two, 1.0.
        assert!(one.per_frame > 1.8 * two.per_frame, "one={} two={}", one.per_frame, two.per_frame);
    }

    #[test]
    fn overlap_never_slower_than_sequential() {
        for &(a, k, b) in &[(1.0, 2.0, 0.5), (2.0, 0.1, 1.0), (0.3, 0.3, 0.3)] {
            let s = pipeline_time(50, a, k, b, OverlapMode::Sequential, &cfg());
            let o = pipeline_time(50, a, k, b, OverlapMode::DoubleBuffered, &cfg());
            assert!(o.total <= s.total + 1e-9);
        }
    }

    #[test]
    fn zero_frames() {
        let t = pipeline_time(0, 1.0, 1.0, 1.0, OverlapMode::DoubleBuffered, &cfg());
        assert_eq!(t.total, 0.0);
    }

    #[test]
    fn reproduces_paper_one_third_transfer_observation() {
        // Paper level B: ~12.3 ms/frame of which ~1/3 is transfer. A full
        // HD frame is 2.07 MB each way at ~1 GB/s => ~2.1 ms per
        // direction; kernel ~8.2 ms. Sequential ~12.4 ms; overlapped
        // (level C) ~kernel-bound 8.2 ms.
        let c = cfg();
        let t_dir = transfer_time(2_073_600, &c);
        let seq = pipeline_time(450, t_dir, 8.2e-3, t_dir, OverlapMode::Sequential, &c);
        let ovl = pipeline_time(450, t_dir, 8.2e-3, t_dir, OverlapMode::DoubleBuffered, &c);
        let transfer_fraction = 2.0 * t_dir / seq.per_frame;
        assert!(transfer_fraction > 0.25 && transfer_fraction < 0.45, "{transfer_fraction}");
        assert!((ovl.per_frame - 8.2e-3).abs() / 8.2e-3 < 0.05);
    }
}

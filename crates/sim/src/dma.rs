//! PCIe/DMA transfer model and the host-side frame pipeline scheduler.
//!
//! Reproduces the paper's "overlapping data transfer and kernel execution"
//! optimization (Fig. 5, level C): without overlap a frame costs
//! `t_in + t_kernel + t_out`; with double buffering and the C2075's two
//! copy engines, steady-state cost is `max(t_kernel, t_in, t_out)`.
//!
//! The scheduler is a small exact list-scheduling simulation rather than a
//! closed-form formula, so pipeline fill/drain and single-copy-engine
//! configurations are handled correctly.

use crate::config::GpuConfig;
use crate::streams::{StageTimes, StreamInput, StreamScheduler};
use serde::{Deserialize, Serialize};

/// Time to DMA `bytes` across PCIe in one direction from pageable host
/// memory (the paper's configuration).
pub fn transfer_time(bytes: usize, cfg: &GpuConfig) -> f64 {
    if bytes == 0 {
        return 0.0;
    }
    cfg.dma_latency_s + bytes as f64 / cfg.pcie_bw
}

/// Time to DMA `bytes` from page-locked (pinned) host memory — the
/// optimization the paper left on the table (see `exp_overlap`).
pub fn transfer_time_pinned(bytes: usize, cfg: &GpuConfig) -> f64 {
    if bytes == 0 {
        return 0.0;
    }
    cfg.dma_latency_s + bytes as f64 / cfg.pcie_bw_pinned
}

/// Whether host<->device transfers overlap kernel execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum OverlapMode {
    /// Serial: upload, kernel, download per frame (paper levels A, B).
    Sequential,
    /// Double-buffered streams: frame i+1 uploads and frame i-1 downloads
    /// while kernel i runs (paper level C onward).
    DoubleBuffered,
}

/// Result of scheduling a frame pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PipelineTiming {
    /// Total makespan for all frames (seconds).
    pub total: f64,
    /// Steady-state seconds per frame (`total / frames`).
    pub per_frame: f64,
    /// Fraction of the makespan during which the compute engine was busy.
    pub kernel_utilization: f64,
}

/// One scheduled interval on an engine, in seconds from pipeline start.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Span {
    /// Start time (seconds).
    pub start: f64,
    /// Duration (seconds).
    pub dur: f64,
}

impl Span {
    /// End time of the interval.
    pub fn end(&self) -> f64 {
        self.start + self.dur
    }

    /// True when this interval and `other` share any open time range.
    pub fn overlaps(&self, other: &Span) -> bool {
        self.start < other.end() && other.start < self.end()
    }
}

/// The three scheduled stages of one frame.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FrameSpans {
    /// Host-to-device upload on the copy-in engine.
    pub h2d: Span,
    /// Kernel execution on the compute engine.
    pub kernel: Span,
    /// Device-to-host download on the copy-out engine.
    pub d2h: Span,
}

/// Schedules `frames` identical frames through upload -> kernel ->
/// download.
///
/// * `t_h2d` / `t_kernel` / `t_d2h` — per-frame stage times in seconds.
/// * In [`OverlapMode::Sequential`], every stage of frame `i` completes
///   before frame `i+1` starts (one stream, synchronous transfers).
/// * In [`OverlapMode::DoubleBuffered`], stages of different frames
///   overlap subject to: stage order within a frame; one kernel engine;
///   `cfg.copy_engines` copy engines (2 on the C2075 — dedicated H2D and
///   D2H; 1 engine serializes the two directions); and **two device
///   frame buffers**, so frame `i`'s upload waits for kernel `i-2` to
///   consume its buffer and frame `i`'s kernel waits for download `i-2`
///   to free its mask buffer. (An earlier version of this model let
///   unboundedly many uploads queue ahead of the kernel — infinite
///   device buffering, not double buffering.)
pub fn pipeline_time(
    frames: usize,
    t_h2d: f64,
    t_kernel: f64,
    t_d2h: f64,
    mode: OverlapMode,
    cfg: &GpuConfig,
) -> PipelineTiming {
    timing_of(&pipeline_schedule(
        frames, t_h2d, t_kernel, t_d2h, mode, cfg,
    ))
}

/// Schedules the pipeline and returns the per-frame stage intervals — the
/// timeline behind [`pipeline_time`], suitable for trace export. Frame `i`
/// of the result holds the exact start/duration of its upload, kernel, and
/// download as the list scheduler placed them.
pub fn pipeline_schedule(
    frames: usize,
    t_h2d: f64,
    t_kernel: f64,
    t_d2h: f64,
    mode: OverlapMode,
    cfg: &GpuConfig,
) -> Vec<FrameSpans> {
    match mode {
        OverlapMode::Sequential => {
            // One stream, synchronous transfers: a strict stage chain.
            let mut spans = Vec::with_capacity(frames);
            let mut t = 0.0f64;
            for _ in 0..frames {
                let h2d = Span {
                    start: t,
                    dur: t_h2d,
                };
                let kernel = Span {
                    start: h2d.end(),
                    dur: t_kernel,
                };
                let d2h = Span {
                    start: kernel.end(),
                    dur: t_d2h,
                };
                t = d2h.end();
                spans.push(FrameSpans { h2d, kernel, d2h });
            }
            spans
        }
        OverlapMode::DoubleBuffered => {
            // One stream, two device buffers: the single-stream case of
            // the multi-stream list scheduler (the single source of
            // truth for overlapped placement).
            let input =
                StreamInput::offline(vec![StageTimes::uniform(t_h2d, t_kernel, t_d2h); frames]);
            let mut sched = StreamScheduler::double_buffered().schedule(&[input], cfg);
            sched.streams.swap_remove(0)
        }
    }
}

/// Summarizes a schedule into the makespan/steady-state figures.
pub fn timing_of(schedule: &[FrameSpans]) -> PipelineTiming {
    if schedule.is_empty() {
        return PipelineTiming {
            total: 0.0,
            per_frame: 0.0,
            kernel_utilization: 0.0,
        };
    }
    let total = schedule.iter().map(|f| f.d2h.end()).fold(0.0f64, f64::max);
    let busy: f64 = schedule.iter().map(|f| f.kernel.dur).sum();
    PipelineTiming {
        total,
        per_frame: total / schedule.len() as f64,
        kernel_utilization: if total > 0.0 { busy / total } else { 0.0 },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> GpuConfig {
        GpuConfig::tesla_c2075()
    }

    #[test]
    fn pinned_transfers_are_faster() {
        let c = cfg();
        let n = 2_073_600; // one full-HD frame
        assert!(transfer_time_pinned(n, &c) < transfer_time(n, &c) / 3.0);
        assert_eq!(transfer_time_pinned(0, &c), 0.0);
    }

    #[test]
    fn transfer_time_has_latency_floor() {
        let c = cfg();
        assert_eq!(transfer_time(0, &c), 0.0);
        let t = transfer_time(1, &c);
        assert!(t >= c.dma_latency_s);
        let big = transfer_time(1_000_000_000, &c);
        assert!((big - (c.dma_latency_s + 1.0)).abs() < 1e-9);
    }

    #[test]
    fn sequential_is_sum_of_stages() {
        let t = pipeline_time(10, 1.0, 2.0, 0.5, OverlapMode::Sequential, &cfg());
        assert!((t.total - 35.0).abs() < 1e-12);
        assert!((t.per_frame - 3.5).abs() < 1e-12);
    }

    #[test]
    fn overlap_hides_transfers_when_kernel_dominates() {
        // Kernel 2 s, transfers 1 + 0.5 s: steady state = kernel-bound.
        let n = 100;
        let t = pipeline_time(n, 1.0, 2.0, 0.5, OverlapMode::DoubleBuffered, &cfg());
        // Makespan ~= fill (1.0) + n * 2.0 + drain (0.5).
        assert!((t.total - (1.0 + 200.0 + 0.5)).abs() < 1e-9);
        assert!(t.kernel_utilization > 0.98);
    }

    #[test]
    fn overlap_bound_by_transfers_when_kernel_small() {
        let n = 100;
        let t = pipeline_time(n, 2.0, 0.1, 1.0, OverlapMode::DoubleBuffered, &cfg());
        // H2D engine is the bottleneck: per-frame -> 2.0.
        assert!(
            (t.per_frame - 2.0).abs() < 0.1,
            "per_frame = {}",
            t.per_frame
        );
    }

    #[test]
    fn single_copy_engine_serializes_directions() {
        let mut c = cfg();
        c.copy_engines = 1;
        let n = 200;
        let two = pipeline_time(n, 1.0, 1.0, 1.0, OverlapMode::DoubleBuffered, &cfg());
        let one = pipeline_time(n, 1.0, 1.0, 1.0, OverlapMode::DoubleBuffered, &c);
        // With one engine, H2D+D2H = 2.0 per frame binds; with two, 1.0.
        assert!(
            one.per_frame > 1.8 * two.per_frame,
            "one={} two={}",
            one.per_frame,
            two.per_frame
        );
    }

    #[test]
    fn overlap_never_slower_than_sequential() {
        for &(a, k, b) in &[(1.0, 2.0, 0.5), (2.0, 0.1, 1.0), (0.3, 0.3, 0.3)] {
            let s = pipeline_time(50, a, k, b, OverlapMode::Sequential, &cfg());
            let o = pipeline_time(50, a, k, b, OverlapMode::DoubleBuffered, &cfg());
            assert!(o.total <= s.total + 1e-9);
        }
    }

    #[test]
    fn zero_frames() {
        let t = pipeline_time(0, 1.0, 1.0, 1.0, OverlapMode::DoubleBuffered, &cfg());
        assert_eq!(t.total, 0.0);
        assert!(pipeline_schedule(0, 1.0, 1.0, 1.0, OverlapMode::Sequential, &cfg()).is_empty());
    }

    #[test]
    fn sequential_schedule_has_no_overlap() {
        let sched = pipeline_schedule(4, 1.0, 2.0, 0.5, OverlapMode::Sequential, &cfg());
        for (i, f) in sched.iter().enumerate() {
            // Stages chain within a frame...
            assert!((f.kernel.start - f.h2d.end()).abs() < 1e-12);
            assert!((f.d2h.start - f.kernel.end()).abs() < 1e-12);
            // ...and frames chain end to start.
            if i > 0 {
                assert!((f.h2d.start - sched[i - 1].d2h.end()).abs() < 1e-12);
                assert!(!f.h2d.overlaps(&sched[i - 1].kernel));
                assert!(!f.kernel.overlaps(&sched[i - 1].d2h));
            }
        }
        // The derived timing matches the closed-form sum of stages.
        let t = timing_of(&sched);
        assert!((t.total - 14.0).abs() < 1e-12);
    }

    #[test]
    fn double_buffered_schedule_overlaps_copy_and_compute() {
        let sched = pipeline_schedule(6, 1.0, 2.0, 0.5, OverlapMode::DoubleBuffered, &cfg());
        // Steady state: later uploads and earlier downloads run while some
        // other frame's kernel occupies the compute engine (uploads queue
        // ahead on the idle copy engine, so compare against every frame).
        let mut upload_overlaps = 0;
        let mut download_overlaps = 0;
        for i in 0..sched.len() {
            if (0..sched.len()).any(|j| j != i && sched[i].h2d.overlaps(&sched[j].kernel)) {
                upload_overlaps += 1;
            }
            if (0..sched.len()).any(|j| j != i && sched[i].d2h.overlaps(&sched[j].kernel)) {
                download_overlaps += 1;
            }
        }
        assert!(
            upload_overlaps >= 4,
            "uploads overlapping kernels: {upload_overlaps}"
        );
        assert!(
            download_overlaps >= 4,
            "downloads overlapping kernels: {download_overlaps}"
        );
        // But stage order within one frame is never violated.
        for f in &sched {
            assert!(f.kernel.start >= f.h2d.end() - 1e-12);
            assert!(f.d2h.start >= f.kernel.end() - 1e-12);
        }
    }

    /// Regression: the pre-fix scheduler let the upload engine run
    /// unboundedly far ahead of the kernel (upload `i` started at
    /// `i * t_h2d` regardless of kernel progress — infinite device
    /// buffers). Double buffering must gate upload `i` on kernel `i-2`.
    #[test]
    fn double_buffered_uploads_are_capped_at_two_in_flight() {
        let t_h2d = 0.01;
        let t_kernel = 1.0;
        let sched = pipeline_schedule(
            12,
            t_h2d,
            t_kernel,
            0.01,
            OverlapMode::DoubleBuffered,
            &cfg(),
        );
        for i in 2..sched.len() {
            // The old schedule would have started this upload at
            // i * t_h2d, far before kernel i-2 completed.
            let unbounded_start = i as f64 * t_h2d;
            assert!(
                sched[i].h2d.start >= sched[i - 2].kernel.end() - 1e-12,
                "upload {i} at {} ran ahead of kernel {} ending {}",
                sched[i].h2d.start,
                i - 2,
                sched[i - 2].kernel.end()
            );
            assert!(
                sched[i].h2d.start > unbounded_start + t_kernel / 2.0,
                "upload {i} still queues like the unbounded model"
            );
            // At most 2 frames are in flight (uploaded or uploading but
            // not yet consumed) at any upload start.
            let in_flight = sched
                .iter()
                .enumerate()
                .filter(|(j, f)| {
                    *j != i
                        && f.h2d.start <= sched[i].h2d.start + 1e-12
                        && f.kernel.end() > sched[i].h2d.start + 1e-12
                })
                .count();
            assert!(
                in_flight < 2,
                "frame {i}: {in_flight} other frames in flight"
            );
        }
    }

    #[test]
    fn schedule_and_time_agree() {
        for &mode in &[OverlapMode::Sequential, OverlapMode::DoubleBuffered] {
            let t = pipeline_time(7, 0.8, 1.3, 0.6, mode, &cfg());
            let s = timing_of(&pipeline_schedule(7, 0.8, 1.3, 0.6, mode, &cfg()));
            assert_eq!(t, s);
        }
    }

    #[test]
    fn reproduces_paper_one_third_transfer_observation() {
        // Paper level B: ~12.3 ms/frame of which ~1/3 is transfer. A full
        // HD frame is 2.07 MB each way at ~1 GB/s => ~2.1 ms per
        // direction; kernel ~8.2 ms. Sequential ~12.4 ms; overlapped
        // (level C) ~kernel-bound 8.2 ms.
        let c = cfg();
        let t_dir = transfer_time(2_073_600, &c);
        let seq = pipeline_time(450, t_dir, 8.2e-3, t_dir, OverlapMode::Sequential, &c);
        let ovl = pipeline_time(450, t_dir, 8.2e-3, t_dir, OverlapMode::DoubleBuffered, &c);
        let transfer_fraction = 2.0 * t_dir / seq.per_frame;
        assert!(
            transfer_fraction > 0.25 && transfer_fraction < 0.45,
            "{transfer_fraction}"
        );
        assert!((ovl.per_frame - 8.2e-3).abs() / 8.2e-3 < 0.05);
    }
}

//! CUDA-style SM occupancy calculation for compute capability 2.0.
//!
//! Occupancy — the ratio of resident warps to the SM's maximum — governs
//! the GPU's ability to hide memory latency and is the central quantity of
//! the paper's algorithm-specific optimizations (register-usage reduction,
//! Fig. 6(b)/7(c)). The calculation mirrors Nvidia's occupancy calculator
//! for Fermi: the resident block count is the minimum over four limits
//! (warp slots, register file, shared memory, block slots), with the
//! documented allocation granularities.

use crate::config::GpuConfig;
use crate::kernel::{KernelResources, LaunchConfig};
use serde::{Deserialize, Serialize};

/// The result of an occupancy calculation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Occupancy {
    /// Blocks resident per SM.
    pub resident_blocks: u32,
    /// Warps resident per SM.
    pub resident_warps: u32,
    /// Threads resident per SM.
    pub resident_threads: u32,
    /// `resident_warps / max_warps_per_sm` in [0, 1].
    pub occupancy: f64,
    /// Which resource limited residency.
    pub limiter: Limiter,
}

/// The resource that bounded the resident block count.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Limiter {
    /// Warp slots (or thread count) per SM.
    Warps,
    /// Register file capacity.
    Registers,
    /// Shared memory capacity.
    SharedMemory,
    /// Hardware max blocks per SM.
    Blocks,
}

/// Computes occupancy for a kernel's resource footprint under `cfg`.
///
/// Returns `None` when even a single block cannot be resident (register or
/// shared-memory footprint too large, or block too big) — the launch would
/// fail on real hardware.
pub fn occupancy(cfg: &GpuConfig, lc: &LaunchConfig, res: &KernelResources) -> Option<Occupancy> {
    if lc.threads_per_block == 0 || lc.threads_per_block > cfg.max_threads_per_block {
        return None;
    }
    let warps_per_block = lc.threads_per_block.div_ceil(cfg.warp_size);

    // Limit 1: warp slots.
    let limit_warps = cfg.max_warps_per_sm / warps_per_block;

    // Limit 2: registers. CC 2.x allocates registers per warp in units of
    // `register_alloc_unit` (64).
    let regs_per_warp = (res.regs_per_thread * cfg.warp_size).div_ceil(cfg.register_alloc_unit)
        * cfg.register_alloc_unit;
    let regs_per_block = regs_per_warp * warps_per_block;
    let limit_regs = cfg
        .registers_per_sm
        .checked_div(regs_per_block)
        .unwrap_or(u32::MAX);

    // Limit 3: shared memory, allocated in `shared_alloc_unit` granules.
    let shared_per_block =
        (res.shared_bytes_per_block as u32).div_ceil(cfg.shared_alloc_unit) * cfg.shared_alloc_unit;
    let limit_shared = cfg
        .shared_mem_per_sm
        .checked_div(shared_per_block)
        .unwrap_or(u32::MAX);

    // Limit 4: hardware block slots; also the max-threads ceiling.
    let limit_threads = cfg.max_threads_per_sm / lc.threads_per_block;
    let limit_blocks = cfg.max_blocks_per_sm;

    // When two limits tie, the reported limiter is the *first* minimum in
    // a fixed priority order: Warps > Registers > SharedMemory > Blocks.
    // The order ranks how actionable each resource is for a kernel author
    // (block shape, then register pressure, then shared footprint, with
    // the fixed hardware block-slot cap last). Note `min_by_key` would
    // return the *last* minimum on ties — an implementation accident this
    // code deliberately avoids (e.g. the paper's level F ties Registers
    // and Blocks at 8 blocks and must report Registers).
    let (resident_blocks, limiter) = [
        (limit_warps.min(limit_threads), Limiter::Warps),
        (limit_regs, Limiter::Registers),
        (limit_shared, Limiter::SharedMemory),
        (limit_blocks, Limiter::Blocks),
    ]
    .into_iter()
    .reduce(|best, cand| if cand.0 < best.0 { cand } else { best })
    .expect("non-empty");

    if resident_blocks == 0 {
        return None;
    }
    let resident_warps = resident_blocks * warps_per_block;
    Some(Occupancy {
        resident_blocks,
        resident_warps,
        resident_threads: resident_blocks * lc.threads_per_block,
        occupancy: resident_warps as f64 / cfg.max_warps_per_sm as f64,
        limiter,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn occ(regs: u32, shared: usize, tpb: u32) -> Option<Occupancy> {
        let cfg = GpuConfig::tesla_c2075();
        let lc = LaunchConfig {
            blocks: 1000,
            threads_per_block: tpb,
        };
        let res = KernelResources {
            regs_per_thread: regs,
            shared_bytes_per_block: shared,
            local_f64_slots: 0,
        };
        occupancy(&cfg, &lc, &res)
    }

    #[test]
    fn low_register_kernel_is_block_limited() {
        // 128-thread blocks, 20 regs: 8-block HW limit binds => 32 warps
        // of 48 => 66.7%.
        let o = occ(20, 0, 128).unwrap();
        assert_eq!(o.resident_blocks, 8);
        assert_eq!(o.limiter, Limiter::Blocks);
        assert!((o.occupancy - 32.0 / 48.0).abs() < 1e-12);
    }

    #[test]
    fn paper_level_c_36_registers() {
        // Paper level C: 36 regs/thread, 128-thread blocks. 36*32=1152
        // regs/warp (already a multiple of 64), 4608/block =>
        // floor(32768/4608) = 7 blocks => 28 warps => 58.3% (paper's
        // profiler reports 52% achieved).
        let o = occ(36, 0, 128).unwrap();
        assert_eq!(o.resident_blocks, 7);
        assert_eq!(o.limiter, Limiter::Registers);
        assert!((o.occupancy - 28.0 / 48.0).abs() < 1e-12);
    }

    #[test]
    fn paper_level_e_33_registers() {
        // 33*32=1056 -> rounds to 1088/warp; 4352/block =>
        // floor(32768/4352)=7 blocks => 58.3%.
        let o = occ(33, 0, 128).unwrap();
        assert_eq!(o.resident_blocks, 7);
    }

    #[test]
    fn paper_level_f_31_registers() {
        // 31*32=992 -> 1024/warp; 4096/block => 8 blocks, but HW limit 8
        // also: 32 warps => 66.7% (paper: 65%).
        let o = occ(31, 0, 128).unwrap();
        assert_eq!(o.resident_blocks, 8);
        assert!((o.occupancy - 32.0 / 48.0).abs() < 1e-12);
        // Registers and Blocks tie at 8 resident blocks; the documented
        // priority order pins the report to Registers (the actionable
        // one — the hardware slot cap cannot be tuned away).
        assert_eq!(o.limiter, Limiter::Registers);
    }

    #[test]
    fn shared_memory_limits_tiled_kernel() {
        // Windowed MoG: 128 px/block x 72 B of Gaussian parameters =
        // 9216 B shared => floor(49152/9216) = 5 blocks => 20 warps =>
        // 41.7% (paper Fig. 10: ~40%).
        let o = occ(31, 9216, 128).unwrap();
        assert_eq!(o.resident_blocks, 5);
        assert_eq!(o.limiter, Limiter::SharedMemory);
        assert!((o.occupancy - 20.0 / 48.0).abs() < 1e-12);
    }

    #[test]
    fn oversized_block_fails() {
        assert!(occ(20, 0, 2048).is_none());
        assert!(occ(20, 0, 0).is_none());
    }

    #[test]
    fn oversized_shared_fails() {
        assert!(occ(20, 64 * 1024, 128).is_none());
    }

    #[test]
    fn huge_register_footprint_fails() {
        // 300 regs x 1024 threads far exceeds the register file.
        assert!(occ(300, 0, 1024).is_none());
    }

    #[test]
    fn warp_limit_binds_for_large_blocks() {
        // 1024-thread blocks = 32 warps; 48/32 = 1 block; threads limit
        // 1536/1024 = 1. Occupancy 32/48.
        let o = occ(20, 0, 1024).unwrap();
        assert_eq!(o.resident_blocks, 1);
        assert!((o.occupancy - 32.0 / 48.0).abs() < 1e-12);
    }

    #[test]
    fn register_rounding_matters() {
        // 31 and 32 regs both round to 1024 regs/warp => identical
        // occupancy (documented model deviation: the paper's profiler
        // distinguishes 61% vs 65% achieved).
        let a = occ(31, 0, 128).unwrap();
        let b = occ(32, 0, 128).unwrap();
        assert_eq!(a.resident_warps, b.resident_warps);
    }
}

//! Analytic kernel timing model.
//!
//! Kernel execution time is the maximum of three bounds — a roofline over
//! issue throughput, DRAM bandwidth, and latency tolerance:
//!
//! * **Issue bound** — total weighted warp-instruction issue cycles spread
//!   over the SMs: `T_issue = issue_cycles / (SMs * issue_rate) / f`.
//!   Divergent branches inflate `issue_cycles` because serialized paths
//!   occupy distinct slots; double precision is weighted at half rate;
//!   shared-memory bank-conflict replays add issue cycles.
//! * **Bandwidth bound** — every DRAM transaction moves a 128 B segment:
//!   `T_bw = transactions * 128 / (peak_bw * dram_efficiency)`. Poorly
//!   coalesced kernels (level A of the paper) multiply their transaction
//!   count and are crushed by this bound.
//! * **Latency bound** — by Little's law, the bytes a GPU can keep *in
//!   flight* are `resident_warps * mlp * segment` per SM; with round-trip
//!   latency `L`, `T_lat = transactions * L / (SMs * resident_warps * mlp)
//!   / f`. This is where **occupancy** enters: the register-usage
//!   reductions of the paper raise resident warps and directly shrink this
//!   bound, reproducing the C -> F speedup progression.
//!
//! The model deliberately has no queueing simulation; the three-way max is
//! the standard first-order GPU performance model and captures every
//! effect the paper's evaluation discusses.

use crate::config::GpuConfig;
use crate::occupancy::Occupancy;
use crate::stats::KernelStats;
use serde::{Deserialize, Serialize};

/// Decomposed kernel time estimate (seconds).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct KernelTiming {
    /// Issue-throughput bound.
    pub t_issue: f64,
    /// DRAM bandwidth bound.
    pub t_mem_bw: f64,
    /// Memory latency-tolerance bound.
    pub t_mem_lat: f64,
    /// `max` of the three bounds.
    pub total: f64,
    /// Which bound dominated.
    pub bound: Bound,
}

/// The dominating term of a [`KernelTiming`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Bound {
    /// Instruction issue throughput.
    Issue,
    /// DRAM bandwidth.
    Bandwidth,
    /// Memory latency / occupancy.
    Latency,
}

/// Estimates kernel execution time from launch statistics and occupancy.
pub fn kernel_time(stats: &KernelStats, occ: &Occupancy, cfg: &GpuConfig) -> KernelTiming {
    let sms = cfg.num_sms as f64;

    let t_issue = stats.issue_cycles / (sms * cfg.issue_per_sm_per_cycle) / cfg.clock_hz;

    let bytes = stats.bytes_transacted(cfg) as f64;
    let t_mem_bw = bytes / (cfg.dram_peak_bw * cfg.dram_efficiency);

    // Warps actually available to hide latency: bounded by both occupancy
    // and the launch size (a 1-block launch cannot fill the machine).
    let launched_warps_per_sm = (stats.warps as f64 / sms).max(1.0);
    let warps = (occ.resident_warps as f64).min(launched_warps_per_sm);
    let t_mem_lat = stats.total_tx() as f64 * cfg.mem_latency_cycles
        / (sms * warps * cfg.mlp_per_warp)
        / cfg.clock_hz;

    let (total, bound) = [
        (t_issue, Bound::Issue),
        (t_mem_bw, Bound::Bandwidth),
        (t_mem_lat, Bound::Latency),
    ]
    .into_iter()
    .fold(
        (0.0, Bound::Issue),
        |acc, x| if x.0 > acc.0 { x } else { acc },
    );

    KernelTiming {
        t_issue,
        t_mem_bw,
        t_mem_lat,
        total,
        bound,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::occupancy::Limiter;

    fn occ(warps: u32) -> Occupancy {
        Occupancy {
            resident_blocks: warps / 4,
            resident_warps: warps,
            resident_threads: warps * 32,
            occupancy: warps as f64 / 48.0,
            limiter: Limiter::Blocks,
        }
    }

    fn big_launch_stats() -> KernelStats {
        KernelStats {
            warps: 1_000_000,
            ..Default::default()
        }
    }

    #[test]
    fn pure_compute_is_issue_bound() {
        let mut s = big_launch_stats();
        s.issue_cycles = 1e9;
        let t = kernel_time(&s, &occ(32), &GpuConfig::default());
        assert_eq!(t.bound, Bound::Issue);
        // 1e9 cycles / 14 SMs / 1.15 GHz.
        let expect = 1e9 / 14.0 / 1.15e9;
        assert!((t.total - expect).abs() / expect < 1e-12);
    }

    #[test]
    fn heavy_traffic_is_bandwidth_bound_when_latency_is_hidden() {
        // With the calibrated C2075 latency (1100 cycles, mlp 1) the
        // latency bound slightly exceeds the bandwidth bound even at full
        // occupancy — Fermi with ECC never reaches peak DRAM bandwidth —
        // so exercise the bandwidth path with a shorter-latency part.
        let mut s = big_launch_stats();
        s.global_load_tx = 100_000_000; // 12.8 GB of segments
        let cfg = GpuConfig {
            mem_latency_cycles: 400.0,
            ..GpuConfig::default()
        };
        let t = kernel_time(&s, &occ(48), &cfg);
        assert_eq!(t.bound, Bound::Bandwidth);
        let expect = 100_000_000.0 * 128.0 / (144e9 * 0.80);
        assert!((t.t_mem_bw - expect).abs() / expect < 1e-12);
        // And the C2075 default is latency-bound at the same occupancy,
        // by a modest margin.
        let d = kernel_time(&s, &occ(48), &GpuConfig::default());
        assert_eq!(d.bound, Bound::Latency);
        assert!(d.t_mem_lat / d.t_mem_bw < 1.5);
    }

    #[test]
    fn low_occupancy_becomes_latency_bound() {
        let mut s = big_launch_stats();
        s.global_load_tx = 10_000_000;
        let cfg = GpuConfig::default();
        let low = kernel_time(&s, &occ(4), &cfg);
        let high = kernel_time(&s, &occ(48), &cfg);
        assert_eq!(low.bound, Bound::Latency);
        // Raising occupancy 12x cuts the latency bound 12x.
        assert!((low.t_mem_lat / high.t_mem_lat - 12.0).abs() < 1e-9);
        assert!(low.total > high.total);
    }

    #[test]
    fn small_launch_cannot_hide_latency_with_phantom_warps() {
        // 14 warps on 14 SMs: only 1 warp/SM regardless of occupancy.
        let mut s = KernelStats {
            warps: 14,
            ..Default::default()
        };
        s.global_load_tx = 14_000;
        let cfg = GpuConfig::default();
        let t = kernel_time(&s, &occ(48), &cfg);
        let expect = 14_000.0 * cfg.mem_latency_cycles / (14.0 * 1.0 * 1.0) / cfg.clock_hz;
        assert!((t.t_mem_lat - expect).abs() / expect < 1e-12);
    }

    #[test]
    fn zero_stats_take_zero_time() {
        let s = KernelStats::default();
        let t = kernel_time(&s, &occ(32), &GpuConfig::default());
        assert_eq!(t.total, 0.0);
    }
}

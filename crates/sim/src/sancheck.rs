//! `sancheck` — compute-sanitizer-style dynamic checks for simulated
//! kernel launches.
//!
//! Enabled per launch via [`crate::kernel::LaunchOptions::sanitize`]
//! (off by default, like `profile_sites`), the sanitizer runs four checks
//! modelled on `compute-sanitizer`'s tools, each attributing its findings
//! to kernel source `file:line` through the same `#[track_caller]` site
//! registry the profiler uses ([`crate::trace`]):
//!
//! * **memcheck** — every global/local/shared access is validated against
//!   its [`crate::memory::Buffer`] (or the block's shared/local
//!   allocation). Out-of-bounds accesses are reported with the kernel
//!   site, the buffer identity, and the offending offset, and are
//!   *absorbed* (loads return 0, stores are dropped) so the rest of the
//!   launch can be checked. On the plain (unsanitized) path the same
//!   checks panic instead — an OOB access can never silently touch a
//!   neighboring allocation either way.
//! * **racecheck** — per-block shadow state over shared memory records,
//!   per byte, the last writing and last reading thread together with its
//!   *sync epoch* (how many `ctx.sync()` barriers that thread had
//!   executed). Conflicting accesses from different threads in the same
//!   epoch have no ordering barrier between them and are reported as
//!   races. Accesses whose shadow shows a conflicting access from a
//!   *later* epoch are reported too: they are barrier-ordered in CUDA
//!   semantics, but the simulator's sequential-lane execution visited
//!   them in the wrong order, so the functional result is stale (this is
//!   exactly the "cross-lane data flow" the crate docs previously
//!   declared unsupported — now detected instead).
//! * **synccheck** — barrier divergence: at each barrier index, the
//!   threads that arrive must do so from the same `sync()` source site.
//!   A mismatch (the classic divergent-branch double-barrier bug) is
//!   attributed to the minority site. Threads that exit before a barrier
//!   are not counted, matching CUDA's semantics for early-returning
//!   threads.
//! * **initcheck** — reads of shared or global bytes that were never
//!   written: shared memory is undefined at block start; global bytes are
//!   defined only by host typed writes, H2D uploads, or published kernel
//!   stores (see `InitMask` in [`crate::memory`]).
//!
//! Findings are deduplicated by `(check, space, site)` with an occurrence
//! count, and blocks are merged in block order, so a sanitized launch's
//! report is deterministic.

use crate::memory::Buffer;
use crate::trace::{register_site, site_source, Site, Space};
use serde::Serialize;
use std::panic::Location;

/// One class of sanitizer check.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CheckKind {
    /// Out-of-bounds access.
    Memcheck,
    /// Shared-memory hazard between threads of a block.
    Racecheck,
    /// Barrier divergence.
    Synccheck,
    /// Read of undefined memory.
    Initcheck,
}

impl CheckKind {
    /// Stable lowercase name (used in tables and JSON).
    pub fn name(self) -> &'static str {
        match self {
            CheckKind::Memcheck => "memcheck",
            CheckKind::Racecheck => "racecheck",
            CheckKind::Synccheck => "synccheck",
            CheckKind::Initcheck => "initcheck",
        }
    }
}

impl std::fmt::Display for CheckKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// One deduplicated sanitizer finding.
#[derive(Debug, Clone, PartialEq)]
pub struct Finding {
    /// Which check fired.
    pub kind: CheckKind,
    /// Memory space of the offending access; `None` for synccheck (a
    /// barrier is not a memory access).
    pub space: Option<Space>,
    /// Site key of the offending kernel call.
    pub site: Site,
    /// Resolved `file:line` of the site.
    pub source: Option<String>,
    /// Block of the first occurrence.
    pub block: u32,
    /// Thread (within the block) of the first occurrence.
    pub thread: u32,
    /// Offending address of the first occurrence: a device byte address
    /// for global accesses, a byte offset for shared, a slot for local,
    /// the barrier index for synccheck.
    pub addr: u64,
    /// Access width in bytes (0 for synccheck).
    pub width: u8,
    /// Human-readable description of the first occurrence.
    pub message: String,
    /// How many dynamic occurrences were folded into this finding.
    pub occurrences: u64,
}

fn space_name(space: Option<Space>) -> &'static str {
    match space {
        Some(Space::Global) => "global",
        Some(Space::Local) => "local",
        Some(Space::Shared) => "shared",
        None => "-",
    }
}

impl Serialize for Finding {
    fn to_json_value(&self) -> serde::Value {
        use serde::Value;
        Value::Object(vec![
            ("check".into(), Value::String(self.kind.name().into())),
            ("space".into(), Value::String(space_name(self.space).into())),
            (
                "source".into(),
                self.source.clone().map_or(Value::Null, Value::String),
            ),
            ("block".into(), Value::U64(self.block as u64)),
            ("thread".into(), Value::U64(self.thread as u64)),
            ("addr".into(), Value::U64(self.addr)),
            ("width".into(), Value::U64(self.width as u64)),
            ("occurrences".into(), Value::U64(self.occurrences)),
            ("message".into(), Value::String(self.message.clone())),
        ])
    }
}

/// Deduplicated findings of a sanitized launch (or of several launches
/// merged by a pipeline).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SanReport {
    findings: Vec<Finding>,
}

impl SanReport {
    /// An empty report.
    pub fn new() -> Self {
        Self::default()
    }

    /// True when no check fired.
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// Number of distinct findings.
    pub fn len(&self) -> usize {
        self.findings.len()
    }

    /// True when there are no findings.
    pub fn is_empty(&self) -> bool {
        self.findings.is_empty()
    }

    /// The findings, in first-occurrence order (block order within a
    /// launch, launch order across a run).
    pub fn findings(&self) -> &[Finding] {
        &self.findings
    }

    /// Folds a finding in, merging with an existing one of the same
    /// `(check, space, site)`.
    pub(crate) fn absorb(&mut self, f: Finding) {
        match self
            .findings
            .iter_mut()
            .find(|e| e.kind == f.kind && e.space == f.space && e.site == f.site)
        {
            Some(e) => e.occurrences += f.occurrences,
            None => self.findings.push(f),
        }
    }

    /// Counts one more occurrence of an existing `(check, space, site)`
    /// finding without constructing a new one. Returns `false` when no
    /// such finding exists yet — the caller then builds the full
    /// [`Finding`] (message and source formatting happen only on that
    /// first occurrence, keeping repeated findings allocation-free).
    pub(crate) fn bump(&mut self, kind: CheckKind, space: Option<Space>, site: Site) -> bool {
        match self
            .findings
            .iter_mut()
            .find(|e| e.kind == kind && e.space == space && e.site == site)
        {
            Some(e) => {
                e.occurrences += 1;
                true
            }
            None => false,
        }
    }

    /// Merges another report into this one (same dedup rule).
    pub fn merge(&mut self, other: &SanReport) {
        for f in &other.findings {
            self.absorb(f.clone());
        }
    }

    /// Renders the findings as an aligned text table (empty string when
    /// clean).
    pub fn table(&self) -> String {
        let mut out = String::new();
        if self.is_clean() {
            return out;
        }
        out.push_str(&format!(
            "{:<10} {:<7} {:<44} {:>6}  {}\n",
            "check", "space", "source", "count", "detail"
        ));
        for f in &self.findings {
            let source = f.source.as_deref().unwrap_or("<unresolved>");
            let shown = if source.len() > 44 {
                &source[source.len() - 44..]
            } else {
                source
            };
            out.push_str(&format!(
                "{:<10} {:<7} {:<44} {:>6}  {}\n",
                f.kind.name(),
                space_name(f.space),
                shown,
                f.occurrences,
                f.message,
            ));
        }
        out
    }
}

impl Serialize for SanReport {
    fn to_json_value(&self) -> serde::Value {
        use serde::Value;
        Value::Object(vec![
            ("clean".into(), Value::Bool(self.is_clean())),
            ("findings".into(), self.findings.to_json_value()),
        ])
    }
}

/// Formats a location as `file:line` for use inside finding messages
/// (same shape as [`site_source`]'s display, but without touching the
/// global site registry).
fn source_of(loc: &'static Location<'static>) -> String {
    format!("{}:{}", loc.file(), loc.line())
}

/// One shadow access record: who touched the byte, in which sync epoch,
/// from which site. The raw location is kept instead of a registered
/// [`Site`] so the hot shadow updates never touch the global site
/// registry's lock; registration happens only when a finding is emitted.
#[derive(Debug, Clone, Copy)]
struct Access {
    thread: u32,
    epoch: u32,
    loc: &'static Location<'static>,
}

/// Per-byte shadow state over a block's shared memory.
#[derive(Debug, Clone, Copy, Default)]
struct ShadowCell {
    written: bool,
    last_write: Option<Access>,
    last_read: Option<Access>,
}

/// Per-block sanitizer state, driven by [`crate::kernel::ThreadCtx`]
/// while the block's lanes execute sequentially, then folded into a
/// [`SanReport`] by [`BlockSan::into_report`].
#[derive(Debug)]
pub(crate) struct BlockSan {
    block: u32,
    thread: u32,
    epoch: u32,
    shared: Vec<ShadowCell>,
    /// Per-thread ordered sequence of `sync()` sites (synccheck input).
    sync_seqs: Vec<Vec<&'static Location<'static>>>,
    report: SanReport,
}

impl BlockSan {
    pub(crate) fn new(block: u32, threads_per_block: u32, shared_bytes: usize) -> Self {
        BlockSan {
            block,
            thread: 0,
            epoch: 0,
            shared: vec![ShadowCell::default(); shared_bytes],
            sync_seqs: vec![Vec::new(); threads_per_block as usize],
            report: SanReport::new(),
        }
    }

    /// Called when the launch loop starts executing thread `thread`.
    pub(crate) fn begin_thread(&mut self, thread: u32) {
        self.thread = thread;
        self.epoch = 0;
    }

    /// Records one occurrence of a `(check, space, site)` finding. The
    /// fast path — the finding already exists — is a counter bump; the
    /// site registration and the `source`/`message` strings are built
    /// only on a finding's first occurrence.
    fn emit(
        &mut self,
        kind: CheckKind,
        space: Option<Space>,
        loc: &'static Location<'static>,
        addr: u64,
        width: usize,
        message: impl FnOnce() -> String,
    ) {
        let site = loc as *const Location<'static> as usize;
        if self.report.bump(kind, space, site) {
            return;
        }
        register_site(site, loc);
        self.report.absorb(Finding {
            kind,
            space,
            site,
            source: site_source(site).map(|s| s.to_string()),
            block: self.block,
            thread: self.thread,
            addr,
            width: width as u8,
            message: message(),
            occurrences: 1,
        });
    }

    /// memcheck: records an out-of-bounds access the context absorbed.
    pub(crate) fn oob(
        &mut self,
        loc: &'static Location<'static>,
        space: Space,
        addr: u64,
        width: usize,
        message: String,
    ) {
        self.emit(CheckKind::Memcheck, Some(space), loc, addr, width, || {
            message
        });
    }

    /// initcheck: a global load touched bytes never defined by the host
    /// or a kernel store.
    pub(crate) fn uninit_global(
        &mut self,
        loc: &'static Location<'static>,
        buf: Buffer,
        addr: u64,
        width: usize,
    ) {
        self.emit(
            CheckKind::Initcheck,
            Some(Space::Global),
            loc,
            addr,
            width,
            || {
                format!(
                    "global load of {width} B at 0x{addr:x} (buffer @0x{:x}, +{} B) reads bytes \
                     never written by the host or a kernel",
                    buf.addr(),
                    buf.len()
                )
            },
        );
    }

    /// Records a barrier arrival and advances the thread's sync epoch.
    pub(crate) fn on_sync(&mut self, loc: &'static Location<'static>) {
        self.sync_seqs[self.thread as usize].push(loc);
        self.epoch += 1;
    }

    /// racecheck + shadow update for a shared-memory store.
    pub(crate) fn shared_write(
        &mut self,
        loc: &'static Location<'static>,
        off: usize,
        width: usize,
    ) {
        let (t, e) = (self.thread, self.epoch);
        let mut conflict: Option<(Access, bool)> = None; // (prior access, prior was a read)
        for cell in &mut self.shared[off..off + width] {
            if conflict.is_none() {
                if let Some(w) = cell.last_write {
                    if w.thread != t && w.epoch >= e {
                        conflict = Some((w, false));
                    }
                }
            }
            if conflict.is_none() {
                if let Some(r) = cell.last_read {
                    if r.thread != t && r.epoch >= e {
                        conflict = Some((r, true));
                    }
                }
            }
            cell.written = true;
            cell.last_write = Some(Access {
                thread: t,
                epoch: e,
                loc,
            });
        }
        if let Some((prior, prior_read)) = conflict {
            self.emit(
                CheckKind::Racecheck,
                Some(Space::Shared),
                loc,
                off as u64,
                width,
                || {
                    let what = if prior_read { "read" } else { "write" };
                    let other = source_of(prior.loc);
                    if prior.epoch == e {
                        format!(
                            "shared-memory race: write of {width} B at offset {off} conflicts \
                             with a {what} by thread {} at {other} in the same barrier interval \
                             (no ctx.sync() between)",
                            prior.thread
                        )
                    } else {
                        format!(
                            "cross-lane shared-memory dataflow the sequential-lane model cannot \
                             reproduce: write of {width} B at offset {off} in sync epoch {e} is \
                             barrier-ordered before a {what} thread {} already performed in \
                             epoch {} at {other}; the simulated value was stale",
                            prior.thread, prior.epoch
                        )
                    }
                },
            );
        }
    }

    /// racecheck + initcheck + shadow update for a shared-memory load.
    pub(crate) fn shared_read(
        &mut self,
        loc: &'static Location<'static>,
        off: usize,
        width: usize,
    ) {
        let (t, e) = (self.thread, self.epoch);
        let mut uninit = false;
        let mut conflict: Option<Access> = None;
        for cell in &mut self.shared[off..off + width] {
            uninit |= !cell.written;
            if conflict.is_none() {
                if let Some(w) = cell.last_write {
                    if w.thread != t && w.epoch >= e {
                        conflict = Some(w);
                    }
                }
            }
            cell.last_read = Some(Access {
                thread: t,
                epoch: e,
                loc,
            });
        }
        if uninit {
            self.emit(
                CheckKind::Initcheck,
                Some(Space::Shared),
                loc,
                off as u64,
                width,
                || {
                    format!(
                        "shared load of {width} B at offset {off} reads bytes no thread has \
                         written (shared memory is undefined at block start)"
                    )
                },
            );
        }
        if let Some(w) = conflict {
            self.emit(
                CheckKind::Racecheck,
                Some(Space::Shared),
                loc,
                off as u64,
                width,
                || {
                    let other = source_of(w.loc);
                    if w.epoch == e {
                        format!(
                            "shared-memory race: read of {width} B at offset {off} conflicts \
                             with a write by thread {} at {other} in the same barrier interval \
                             (no ctx.sync() between)",
                            w.thread
                        )
                    } else {
                        format!(
                            "cross-lane shared-memory dataflow the sequential-lane model cannot \
                             reproduce: read of {width} B at offset {off} in sync epoch {e} is \
                             barrier-ordered before a write thread {} already performed in \
                             epoch {} at {other}; the simulated value was stale",
                            w.thread, w.epoch
                        )
                    }
                },
            );
        }
    }

    /// Runs the synccheck analysis over the recorded barrier arrivals and
    /// returns the block's findings.
    ///
    /// At every barrier index the arriving threads must share one `sync()`
    /// source site; a mismatch is attributed to the *minority* site
    /// (deterministically: fewest arrivals, ties broken by resolved
    /// source position). Threads whose sequence is shorter — they exited
    /// before this barrier — are not counted, matching CUDA's treatment
    /// of early-returning threads. A thread that skips a barrier but
    /// keeps running is indistinguishable from an early exit in this
    /// model (a documented limit); its unordered shared accesses still
    /// surface through racecheck.
    pub(crate) fn into_report(mut self) -> SanReport {
        let rounds = self.sync_seqs.iter().map(|s| s.len()).max().unwrap_or(0);
        for n in 0..rounds {
            // site -> (arrivals, first arriving thread)
            let mut by_site: Vec<(&'static Location<'static>, u32, u32)> = Vec::new();
            for (t, seq) in self.sync_seqs.iter().enumerate() {
                if let Some(&loc) = seq.get(n) {
                    match by_site.iter_mut().find(|e| std::ptr::eq(e.0, loc)) {
                        Some(e) => e.1 += 1,
                        None => by_site.push((loc, 1, t as u32)),
                    }
                }
            }
            if by_site.len() < 2 {
                continue;
            }
            let total: u32 = by_site.iter().map(|e| e.1).sum();
            let sites = by_site.len();
            by_site.sort_by(|a, b| {
                a.1.cmp(&b.1).then_with(|| {
                    let key = |l: &'static Location<'static>| (l.file(), l.line(), l.column());
                    key(a.0).cmp(&key(b.0))
                })
            });
            let (loc, count, thread) = by_site[0];
            let site = loc as *const Location<'static> as usize;
            register_site(site, loc);
            let (block, source) = (self.block, site_source(site).map(|s| s.to_string()));
            self.report.absorb(Finding {
                kind: CheckKind::Synccheck,
                space: None,
                site,
                source,
                block,
                thread,
                addr: n as u64,
                width: 0,
                message: format!(
                    "barrier {n} reached through {sites} distinct sync() sites: only {count} \
                     of {total} arriving threads synced here (divergent __syncthreads)"
                ),
                occurrences: 1,
            });
        }
        self.report
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[track_caller]
    fn here() -> &'static Location<'static> {
        Location::caller()
    }

    #[test]
    fn dedup_folds_same_site_same_kind() {
        let loc = here();
        let mut san = BlockSan::new(0, 2, 8);
        san.begin_thread(0);
        san.oob(loc, Space::Global, 100, 8, "x".into());
        san.begin_thread(1);
        san.oob(loc, Space::Global, 108, 8, "y".into());
        let r = san.into_report();
        assert_eq!(r.len(), 1);
        assert_eq!(r.findings()[0].occurrences, 2);
        assert_eq!(r.findings()[0].thread, 0, "first occurrence wins");
        let src = r.findings()[0].source.as_deref().unwrap();
        assert!(src.contains("sancheck.rs"), "source = {src}");
    }

    #[test]
    fn same_epoch_cross_thread_conflict_is_a_race() {
        let (w, r) = (here(), here());
        let mut san = BlockSan::new(0, 2, 8);
        san.begin_thread(0);
        san.shared_write(w, 0, 8);
        san.begin_thread(1);
        san.shared_read(r, 0, 8);
        let rep = san.into_report();
        assert_eq!(rep.len(), 1);
        assert_eq!(rep.findings()[0].kind, CheckKind::Racecheck);
        assert_eq!(rep.findings()[0].site, r as *const _ as usize);
    }

    #[test]
    fn barrier_separated_forward_flow_is_clean() {
        let (w, s, r) = (here(), here(), here());
        let mut san = BlockSan::new(0, 2, 8);
        san.begin_thread(0);
        san.shared_write(w, 0, 8);
        san.on_sync(s);
        san.begin_thread(1);
        san.on_sync(s);
        san.shared_read(r, 0, 8);
        assert!(san.into_report().is_clean());
    }

    #[test]
    fn backward_barrier_ordered_flow_is_reported_stale() {
        // Thread 0 reads in epoch 1 what thread 1 writes in epoch 0:
        // race-free under CUDA barriers, but sequential-lane execution
        // runs the read first — the write-side check must flag it.
        let (w, s, r) = (here(), here(), here());
        let mut san = BlockSan::new(0, 2, 8);
        san.begin_thread(0);
        san.on_sync(s);
        san.shared_read(r, 0, 8);
        san.begin_thread(1);
        san.shared_write(w, 0, 8);
        san.on_sync(s);
        let rep = san.into_report();
        assert_eq!(rep.len(), 2, "stale-order + uninit-read: {:?}", rep);
        assert!(rep.findings().iter().any(|f| f.kind == CheckKind::Racecheck
            && f.site == w as *const _ as usize
            && f.message.contains("stale")));
        assert!(rep
            .findings()
            .iter()
            .any(|f| f.kind == CheckKind::Initcheck));
    }

    #[test]
    fn own_thread_round_trip_is_clean() {
        let (w, r) = (here(), here());
        let mut san = BlockSan::new(0, 2, 16);
        for t in 0..2 {
            san.begin_thread(t);
            let off = t as usize * 8;
            san.shared_write(w, off, 8);
            san.shared_read(r, off, 8);
        }
        assert!(san.into_report().is_clean());
    }

    #[test]
    fn synccheck_flags_minority_site_once() {
        let (a, b) = (here(), here());
        let mut san = BlockSan::new(0, 4, 0);
        for t in 0..4 {
            san.begin_thread(t);
            san.on_sync(if t == 0 { a } else { b });
        }
        let rep = san.into_report();
        assert_eq!(rep.len(), 1);
        let f = &rep.findings()[0];
        assert_eq!(f.kind, CheckKind::Synccheck);
        assert_eq!(f.site, a as *const _ as usize);
        assert_eq!(f.thread, 0);
        assert_eq!(f.space, None);
    }

    #[test]
    fn early_exit_before_barrier_is_not_divergence() {
        let s = here();
        let mut san = BlockSan::new(0, 4, 0);
        for t in 0..3 {
            san.begin_thread(t);
            san.on_sync(s);
        }
        san.begin_thread(3); // guarded thread: returned before the sync
        assert!(san.into_report().is_clean());
    }

    #[test]
    fn report_merge_and_serialization() {
        let loc = here();
        let mut a = BlockSan::new(0, 1, 0);
        a.begin_thread(0);
        a.oob(loc, Space::Global, 0, 4, "m".into());
        let mut report = a.into_report();
        let mut b = BlockSan::new(1, 1, 0);
        b.begin_thread(0);
        b.oob(loc, Space::Global, 4, 4, "m".into());
        report.merge(&b.into_report());
        assert_eq!(report.len(), 1);
        assert_eq!(report.findings()[0].occurrences, 2);
        let json = report.to_json_value();
        assert_eq!(json.get("clean").and_then(|v| v.as_bool()), Some(false));
        let table = report.table();
        assert!(table.contains("memcheck"), "table:\n{table}");
        let clean = SanReport::new();
        assert!(clean.is_clean());
        assert_eq!(clean.table(), "");
        assert_eq!(
            clean.to_json_value().get("clean").and_then(|v| v.as_bool()),
            Some(true)
        );
    }
}

//! Cross-kernel dataflow tracing: per-launch global-memory access
//! summaries stitched across consecutive launches into a
//! producer→consumer memory-flow graph.
//!
//! The profiler, telemetry, and advisor all reason about one launch at a
//! time; none of them can say *which bytes* stored by launch K are
//! reloaded by launch K+1. That is exactly the evidence kernel fusion
//! needs (ROADMAP item 2): a full global-memory round trip between two
//! adjacent launches is DRAM traffic a fused kernel would keep in
//! registers or shared memory. This module captures byte-interval
//! read/write sets per launch (reusing the word-granular
//! [`WriteOverlay`](crate::kernel) publish path, so the write set is
//! exact and nearly free), records host uploads/downloads on the same
//! program-order clock, and builds a [`DataflowGraph`] whose edges carry
//! the bytes a consumer launch reloaded from each producer.
//!
//! Byte accounting is conservation-checked: every stored byte of every
//! node is classified exactly once as *consumed* (read by a later node
//! before being overwritten), *dead* (overwritten before any consumer
//! read it), or *live at exit* (still owned, never consumed) — so
//! `stored == consumed + dead + live` holds integer-exactly, and every
//! edge's bytes are bounded by its producer's stored bytes.

use crate::occupancy::Occupancy;
use crate::stats::KernelStats;
use serde::Serialize;
use std::collections::BTreeMap;

/// A normalized set of half-open byte intervals `[start, end)` over the
/// device address space: sorted, disjoint, non-adjacent.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct IntervalSet {
    runs: Vec<(u64, u64)>,
}

impl IntervalSet {
    /// The empty set.
    pub fn new() -> Self {
        IntervalSet::default()
    }

    /// A set holding one contiguous span of `len` bytes at `addr`.
    pub fn from_span(addr: u64, len: u64) -> Self {
        let mut s = IntervalSet::new();
        s.insert(addr, addr + len);
        s
    }

    /// Builds a set from arbitrary (possibly overlapping, unsorted) runs.
    pub fn from_runs(mut runs: Vec<(u64, u64)>) -> Self {
        normalize(&mut runs);
        IntervalSet { runs }
    }

    /// Inserts `[start, end)`.
    pub fn insert(&mut self, start: u64, end: u64) {
        if start >= end {
            return;
        }
        self.runs.push((start, end));
        normalize(&mut self.runs);
    }

    /// The normalized runs, sorted and disjoint.
    pub fn runs(&self) -> &[(u64, u64)] {
        &self.runs
    }

    /// True when the set holds no bytes.
    pub fn is_empty(&self) -> bool {
        self.runs.is_empty()
    }

    /// Total bytes covered.
    pub fn total_bytes(&self) -> u64 {
        self.runs.iter().map(|&(s, e)| e - s).sum()
    }

    /// Set intersection.
    pub fn intersect(&self, other: &IntervalSet) -> IntervalSet {
        let mut out = Vec::new();
        let (mut i, mut j) = (0, 0);
        while i < self.runs.len() && j < other.runs.len() {
            let (a0, a1) = self.runs[i];
            let (b0, b1) = other.runs[j];
            let lo = a0.max(b0);
            let hi = a1.min(b1);
            if lo < hi {
                out.push((lo, hi));
            }
            if a1 <= b1 {
                i += 1;
            } else {
                j += 1;
            }
        }
        IntervalSet { runs: out }
    }

    /// Set difference `self − other`.
    pub fn subtract(&self, other: &IntervalSet) -> IntervalSet {
        let mut out = Vec::new();
        let mut j = 0;
        for &(mut s, e) in &self.runs {
            while j < other.runs.len() && other.runs[j].1 <= s {
                j += 1;
            }
            let mut k = j;
            while s < e {
                if k >= other.runs.len() || other.runs[k].0 >= e {
                    out.push((s, e));
                    break;
                }
                let (b0, b1) = other.runs[k];
                if b0 > s {
                    out.push((s, b0));
                }
                s = s.max(b1);
                k += 1;
            }
        }
        IntervalSet { runs: out }
    }

    /// In-place union with `other`.
    pub fn union_in_place(&mut self, other: &IntervalSet) {
        if other.runs.is_empty() {
            return;
        }
        self.runs.extend_from_slice(&other.runs);
        normalize(&mut self.runs);
    }
}

/// Merges a run vector in place: sort by start, coalesce overlapping and
/// adjacent runs.
fn normalize(runs: &mut Vec<(u64, u64)>) {
    if runs.len() < 2 {
        return;
    }
    runs.sort_unstable();
    let mut w = 0;
    for i in 1..runs.len() {
        let (s, e) = runs[i];
        if s <= runs[w].1 {
            runs[w].1 = runs[w].1.max(e);
        } else {
            w += 1;
            runs[w] = (s, e);
        }
    }
    runs.truncate(w + 1);
}

/// Hot-path accumulator for byte runs: appends extend the last run when
/// contiguous (the common case for lane-ordered accesses) and the vector
/// is re-normalized whenever it grows past a bound, so memory stays
/// proportional to the *distinct* intervals touched, not the access
/// count.
#[derive(Debug, Default)]
pub(crate) struct IntervalCollector {
    runs: Vec<(u64, u64)>,
}

/// Re-normalize the collector when the raw run vector grows past this.
const COLLECTOR_NORMALIZE_AT: usize = 8192;

impl IntervalCollector {
    /// Records the half-open byte run `[start, end)`.
    #[inline]
    pub(crate) fn record_run(&mut self, start: u64, end: u64) {
        if start >= end {
            return;
        }
        if let Some(last) = self.runs.last_mut() {
            // Extend (or absorb into) the last run when the new one
            // starts inside or immediately after it.
            if start >= last.0 && start <= last.1 {
                last.1 = last.1.max(end);
                return;
            }
        }
        self.runs.push((start, end));
        if self.runs.len() >= COLLECTOR_NORMALIZE_AT {
            normalize(&mut self.runs);
        }
    }

    /// Records the written bytes of one 8-byte overlay cell at `base`.
    #[inline]
    pub(crate) fn record_cell(&mut self, base: u64, mask: u8) {
        if mask == 0xFF {
            self.record_run(base, base + 8);
            return;
        }
        let mut i = 0u32;
        while i < 8 {
            if mask & (1 << i) != 0 {
                let s = i;
                while i < 8 && mask & (1 << i) != 0 {
                    i += 1;
                }
                self.record_run(base + s as u64, base + i as u64);
            } else {
                i += 1;
            }
        }
    }

    /// Appends every run of a normalized set.
    pub(crate) fn extend_set(&mut self, set: &IntervalSet) {
        for &(s, e) in set.runs() {
            self.record_run(s, e);
        }
    }

    /// Drains the collector into a normalized [`IntervalSet`], keeping
    /// the allocation for the next block.
    pub(crate) fn take_set(&mut self) -> IntervalSet {
        normalize(&mut self.runs);
        IntervalSet {
            runs: std::mem::take(&mut self.runs),
        }
    }

    /// Clears the collector without releasing capacity.
    pub(crate) fn clear(&mut self) {
        self.runs.clear();
    }
}

/// The global-memory access summary of one launch, attached to
/// [`LaunchReport`](crate::kernel::LaunchReport) when
/// [`LaunchOptions::dataflow`](crate::kernel::LaunchOptions) is set.
///
/// `reads` holds only *external* reads — bytes a thread loaded that its
/// own block had not already stored — so it is exactly the launch's RAW
/// demand on earlier producers. `writes` is the published store set,
/// taken from the same overlay cells that update device memory.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LaunchAccess {
    /// Bytes loaded from outside the launch's own stores.
    pub reads: IntervalSet,
    /// Bytes stored (published to device memory).
    pub writes: IntervalSet,
}

/// What kind of program-order event a dataflow node records.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum NodeKind {
    /// Host-to-device copy (or host-side initialization).
    HostUpload,
    /// A kernel launch.
    Kernel,
    /// Device-to-host copy.
    HostDownload,
}

impl NodeKind {
    /// Stable lower-case identifier used in DOT/JSON exports.
    pub fn as_str(self) -> &'static str {
        match self {
            NodeKind::HostUpload => "host-upload",
            NodeKind::Kernel => "kernel",
            NodeKind::HostDownload => "host-download",
        }
    }
}

/// Kernel counters carried on a kernel node so fusion candidates can
/// re-run the timing model per stage.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeStats {
    /// The launch's raw counters.
    pub stats: KernelStats,
    /// The launch's occupancy.
    pub occupancy: Occupancy,
}

/// One recorded event in program order.
#[derive(Debug, Clone)]
struct RecordedNode {
    kind: NodeKind,
    name: String,
    frame: Option<usize>,
    reads: IntervalSet,
    writes: IntervalSet,
    stats: Option<NodeStats>,
}

/// Records uploads, launches, and downloads in program order and builds
/// the [`DataflowGraph`].
#[derive(Debug, Default)]
pub struct DataflowRecorder {
    nodes: Vec<RecordedNode>,
}

impl DataflowRecorder {
    /// An empty recorder.
    pub fn new() -> Self {
        DataflowRecorder::default()
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Records a host-to-device write of `writes` under `name`
    /// (e.g. `host-upload`, or `host-init` for construction-time model
    /// state).
    pub fn record_upload(&mut self, name: &str, frame: Option<usize>, writes: IntervalSet) {
        self.nodes.push(RecordedNode {
            kind: NodeKind::HostUpload,
            name: name.to_string(),
            frame,
            reads: IntervalSet::new(),
            writes,
            stats: None,
        });
    }

    /// Records a device-to-host read of `reads` under `name`.
    pub fn record_download(&mut self, name: &str, frame: Option<usize>, reads: IntervalSet) {
        self.nodes.push(RecordedNode {
            kind: NodeKind::HostDownload,
            name: name.to_string(),
            frame,
            reads,
            writes: IntervalSet::new(),
            stats: None,
        });
    }

    /// Records a kernel launch with its access summary and counters.
    pub fn record_kernel(
        &mut self,
        name: &str,
        frame: Option<usize>,
        access: LaunchAccess,
        stats: KernelStats,
        occupancy: Occupancy,
    ) {
        self.nodes.push(RecordedNode {
            kind: NodeKind::Kernel,
            name: name.to_string(),
            frame,
            reads: access.reads,
            writes: access.writes,
            stats: Some(NodeStats { stats, occupancy }),
        });
    }

    /// Stitches the recorded events into the dataflow graph.
    ///
    /// Ownership semantics: the most recent writer of a byte owns it; a
    /// read attributes its bytes to the current owners (one edge per
    /// producer), a write transfers ownership and classifies the evicted
    /// bytes as dead when no consumer had read them. A kernel reads the
    /// pre-launch snapshot, so within one node reads are processed
    /// before writes.
    pub fn finish(&self) -> DataflowGraph {
        let n = self.nodes.len();
        let mut owned: Vec<IntervalSet> = vec![IntervalSet::new(); n];
        let mut consumed: Vec<IntervalSet> = vec![IntervalSet::new(); n];
        let mut dead: Vec<IntervalSet> = vec![IntervalSet::new(); n];
        let mut unattributed: Vec<u64> = vec![0; n];
        let mut reread: Vec<u64> = vec![0; n];
        let mut downloaded = IntervalSet::new();
        let mut edges: BTreeMap<(usize, usize), u64> = BTreeMap::new();

        for j in 0..n {
            let node = &self.nodes[j];
            // Reads first: attribute each byte to its current owner.
            if !node.reads.is_empty() {
                let mut attributed = IntervalSet::new();
                for o in 0..j {
                    if owned[o].is_empty() {
                        continue;
                    }
                    let hit = owned[o].intersect(&node.reads);
                    if hit.is_empty() {
                        continue;
                    }
                    *edges.entry((o, j)).or_insert(0) += hit.total_bytes();
                    consumed[o].union_in_place(&hit);
                    attributed.union_in_place(&hit);
                }
                unattributed[j] = node.reads.subtract(&attributed).total_bytes();
                if node.kind == NodeKind::HostDownload {
                    downloaded.union_in_place(&node.reads);
                }
            }
            // Writes second: evict previous owners, classify dead bytes.
            if !node.writes.is_empty() {
                if node.kind == NodeKind::HostUpload {
                    reread[j] = node.writes.intersect(&downloaded).total_bytes();
                }
                for o in 0..j {
                    if owned[o].is_empty() {
                        continue;
                    }
                    let evicted = owned[o].intersect(&node.writes);
                    if evicted.is_empty() {
                        continue;
                    }
                    let died = evicted.subtract(&consumed[o]);
                    dead[o].union_in_place(&died);
                    owned[o] = owned[o].subtract(&evicted);
                }
                owned[j] = node.writes.clone();
            }
        }

        let nodes = self
            .nodes
            .iter()
            .enumerate()
            .map(|(i, node)| {
                let stored = node.writes.total_bytes();
                let dead_bytes = dead[i].total_bytes();
                // Bytes consumed and still owned stay classified as
                // consumed; live-at-exit is what remains untouched.
                let live = owned[i].subtract(&consumed[i]).total_bytes();
                DataflowNode {
                    kind: node.kind,
                    name: node.name.clone(),
                    frame: node.frame,
                    read_bytes: node.reads.total_bytes(),
                    stored_bytes: stored,
                    consumed_bytes: stored - dead_bytes - live,
                    dead_store_bytes: dead_bytes,
                    live_at_exit_bytes: live,
                    unattributed_read_bytes: unattributed[i],
                    reread_from_host_bytes: reread[i],
                    stats: node.stats.clone(),
                }
            })
            .collect();
        let edges = edges
            .into_iter()
            .map(|((producer, consumer), bytes)| DataflowEdge {
                producer,
                consumer,
                bytes,
            })
            .collect();
        DataflowGraph {
            nodes,
            edges,
            reread_from_host_bytes: reread.iter().sum(),
        }
    }
}

/// One node of the dataflow graph, with its byte-conservation
/// partition: `stored_bytes == consumed_bytes + dead_store_bytes +
/// live_at_exit_bytes`, integer-exactly.
#[derive(Debug, Clone)]
pub struct DataflowNode {
    /// Event kind.
    pub kind: NodeKind,
    /// Kernel or transfer name (e.g. `mog-update`, `host-upload`).
    pub name: String,
    /// Frame index the event belongs to, when per-frame.
    pub frame: Option<usize>,
    /// Bytes this node read from device memory.
    pub read_bytes: u64,
    /// Bytes this node stored.
    pub stored_bytes: u64,
    /// Stored bytes read by a later node before being overwritten.
    pub consumed_bytes: u64,
    /// Stored bytes overwritten before any consumer read them.
    pub dead_store_bytes: u64,
    /// Stored bytes still owned and unconsumed when recording ended.
    pub live_at_exit_bytes: u64,
    /// Read bytes with no recorded producer (host state from before
    /// recording began).
    pub unattributed_read_bytes: u64,
    /// Upload bytes that had previously been downloaded — a round trip
    /// through the host that device-resident handoff would avoid.
    pub reread_from_host_bytes: u64,
    /// Launch counters, present on kernel nodes.
    pub stats: Option<NodeStats>,
}

/// One producer→consumer edge: bytes stored by `producer` and read by
/// `consumer` while still owned by the producer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct DataflowEdge {
    /// Producing node index.
    pub producer: usize,
    /// Consuming node index.
    pub consumer: usize,
    /// Bytes flowing along the edge.
    pub bytes: u64,
}

/// The stitched producer→consumer memory-flow graph of a recorded run.
#[derive(Debug, Clone)]
pub struct DataflowGraph {
    /// Program-ordered nodes.
    pub nodes: Vec<DataflowNode>,
    /// Byte-carrying edges, ordered by (producer, consumer).
    pub edges: Vec<DataflowEdge>,
    /// Total bytes uploaded that had previously been downloaded.
    pub reread_from_host_bytes: u64,
}

/// An adjacent-launch fusion opportunity: every `producer`-named launch
/// immediately followed by a `consumer`-named launch, aggregated over
/// the run, with the bytes that round-trip through DRAM between them.
#[derive(Debug, Clone)]
pub struct FusionCandidate {
    /// Producing kernel name.
    pub producer: String,
    /// Consuming kernel name.
    pub consumer: String,
    /// Adjacent launch pairs aggregated.
    pub pairs: usize,
    /// Bytes stored by the producer and reloaded by the adjacent
    /// consumer (summed over pairs).
    pub edge_bytes: u64,
    /// Unique bytes the producer launches stored.
    pub producer_stored_bytes: u64,
    /// Unique bytes the consumer launches read.
    pub consumer_read_bytes: u64,
    /// Producer counters summed over the aggregated launches.
    pub producer_stats: KernelStats,
    /// Producer occupancy (identical across launches of one kernel).
    pub producer_occupancy: Occupancy,
    /// Consumer counters summed over the aggregated launches.
    pub consumer_stats: KernelStats,
    /// Consumer occupancy.
    pub consumer_occupancy: Occupancy,
}

impl DataflowGraph {
    /// Aggregates adjacent kernel-launch pairs into fusion candidates.
    ///
    /// Only *consecutive* kernel launches qualify (a fused kernel
    /// replaces two back-to-back launches); pairs of the same kernel
    /// name are skipped (fusing a kernel with itself is a tiling
    /// question, not a fusion one), as are pairs with no byte flow.
    /// Candidates are returned ordered by edge bytes descending, then
    /// by name for determinism.
    pub fn fusion_candidates(&self) -> Vec<FusionCandidate> {
        let kernel_ix: Vec<usize> = (0..self.nodes.len())
            .filter(|&i| self.nodes[i].kind == NodeKind::Kernel)
            .collect();
        let edge_bytes: BTreeMap<(usize, usize), u64> = self
            .edges
            .iter()
            .map(|e| ((e.producer, e.consumer), e.bytes))
            .collect();
        let mut agg: BTreeMap<(String, String), FusionCandidate> = BTreeMap::new();
        for w in kernel_ix.windows(2) {
            let (p, c) = (w[0], w[1]);
            let (pn, cn) = (&self.nodes[p], &self.nodes[c]);
            if pn.name == cn.name {
                continue;
            }
            let bytes = edge_bytes.get(&(p, c)).copied().unwrap_or(0);
            if bytes == 0 {
                continue;
            }
            let (Some(ps), Some(cs)) = (&pn.stats, &cn.stats) else {
                continue;
            };
            let key = (pn.name.clone(), cn.name.clone());
            let cand = agg.entry(key).or_insert_with(|| FusionCandidate {
                producer: pn.name.clone(),
                consumer: cn.name.clone(),
                pairs: 0,
                edge_bytes: 0,
                producer_stored_bytes: 0,
                consumer_read_bytes: 0,
                producer_stats: KernelStats::default(),
                producer_occupancy: ps.occupancy,
                consumer_stats: KernelStats::default(),
                consumer_occupancy: cs.occupancy,
            });
            cand.pairs += 1;
            cand.edge_bytes += bytes;
            cand.producer_stored_bytes += pn.stored_bytes;
            cand.consumer_read_bytes += cn.read_bytes;
            cand.producer_stats.merge(&ps.stats);
            cand.consumer_stats.merge(&cs.stats);
        }
        let mut out: Vec<FusionCandidate> = agg.into_values().collect();
        out.sort_by(|a, b| {
            b.edge_bytes
                .cmp(&a.edge_bytes)
                .then_with(|| a.producer.cmp(&b.producer))
                .then_with(|| a.consumer.cmp(&b.consumer))
        });
        out
    }

    /// Renders the graph in Graphviz DOT, kernels as ellipses and host
    /// transfers as boxes, edge labels carrying the flowing bytes.
    pub fn to_dot(&self) -> String {
        let mut out = String::from("digraph dataflow {\n  rankdir=LR;\n");
        for (i, node) in self.nodes.iter().enumerate() {
            let shape = match node.kind {
                NodeKind::Kernel => "ellipse",
                _ => "box",
            };
            let frame = node.frame.map(|f| format!(" f{f}")).unwrap_or_default();
            let mut detail = format!("{} B stored", node.stored_bytes);
            if node.dead_store_bytes > 0 {
                detail.push_str(&format!(", {} B dead", node.dead_store_bytes));
            }
            out.push_str(&format!(
                "  n{i} [label=\"{}{frame}\\n{detail}\" shape={shape}];\n",
                node.name
            ));
        }
        for e in &self.edges {
            out.push_str(&format!(
                "  n{} -> n{} [label=\"{} B\"];\n",
                e.producer, e.consumer, e.bytes
            ));
        }
        out.push_str("}\n");
        out
    }

    /// The graph as a JSON value (serialize with
    /// `to_string_canonical_pretty` for byte-stable output). Kernel
    /// counters are omitted — they are launch-report detail, not graph
    /// structure.
    pub fn to_json(&self) -> serde_json::Value {
        let nodes: Vec<serde_json::Value> = self
            .nodes
            .iter()
            .enumerate()
            .map(|(i, n)| {
                serde_json::json!({
                    "id": i,
                    "kind": n.kind.as_str(),
                    "name": n.name,
                    "frame": n.frame,
                    "read_bytes": n.read_bytes,
                    "stored_bytes": n.stored_bytes,
                    "consumed_bytes": n.consumed_bytes,
                    "dead_store_bytes": n.dead_store_bytes,
                    "live_at_exit_bytes": n.live_at_exit_bytes,
                    "unattributed_read_bytes": n.unattributed_read_bytes,
                    "reread_from_host_bytes": n.reread_from_host_bytes,
                })
            })
            .collect();
        let edges: Vec<serde_json::Value> = self
            .edges
            .iter()
            .map(|e| {
                serde_json::json!({
                    "producer": e.producer,
                    "consumer": e.consumer,
                    "bytes": e.bytes,
                })
            })
            .collect();
        serde_json::json!({
            "nodes": nodes,
            "edges": edges,
            "reread_from_host_bytes": self.reread_from_host_bytes,
        })
    }

    /// Prometheus text exposition of the graph: edge bytes aggregated by
    /// producer/consumer kernel name, dead-store and re-read-from-host
    /// bytes by node name.
    pub fn prometheus(&self) -> String {
        let mut out = String::new();
        let mut edge_by_name: BTreeMap<(String, String), u64> = BTreeMap::new();
        for e in &self.edges {
            let key = (
                self.nodes[e.producer].name.clone(),
                self.nodes[e.consumer].name.clone(),
            );
            *edge_by_name.entry(key).or_insert(0) += e.bytes;
        }
        out.push_str(
            "# HELP mogpu_dataflow_edge_bytes Bytes stored by the producer and \
             reloaded by the consumer.\n# TYPE mogpu_dataflow_edge_bytes counter\n",
        );
        for ((p, c), bytes) in &edge_by_name {
            out.push_str(&format!(
                "mogpu_dataflow_edge_bytes{{producer=\"{p}\",consumer=\"{c}\"}} {bytes}\n"
            ));
        }
        let mut dead_by_name: BTreeMap<String, u64> = BTreeMap::new();
        for n in &self.nodes {
            *dead_by_name.entry(n.name.clone()).or_insert(0) += n.dead_store_bytes;
        }
        out.push_str(
            "# HELP mogpu_dataflow_dead_store_bytes Bytes stored but overwritten \
             before any consumer read them.\n\
             # TYPE mogpu_dataflow_dead_store_bytes counter\n",
        );
        for (name, bytes) in &dead_by_name {
            out.push_str(&format!(
                "mogpu_dataflow_dead_store_bytes{{node=\"{name}\"}} {bytes}\n"
            ));
        }
        out.push_str(
            "# HELP mogpu_dataflow_reread_from_host_bytes Uploaded bytes that had \
             previously been downloaded (host round trip).\n\
             # TYPE mogpu_dataflow_reread_from_host_bytes counter\n",
        );
        out.push_str(&format!(
            "mogpu_dataflow_reread_from_host_bytes {}\n",
            self.reread_from_host_bytes
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::occupancy::Limiter;

    fn occ() -> Occupancy {
        Occupancy {
            resident_blocks: 8,
            resident_warps: 48,
            resident_threads: 48 * 32,
            occupancy: 1.0,
            limiter: Limiter::Warps,
        }
    }

    fn access(reads: &[(u64, u64)], writes: &[(u64, u64)]) -> LaunchAccess {
        LaunchAccess {
            reads: IntervalSet::from_runs(reads.to_vec()),
            writes: IntervalSet::from_runs(writes.to_vec()),
        }
    }

    #[test]
    fn interval_set_normalizes_overlaps_and_adjacency() {
        let s = IntervalSet::from_runs(vec![(10, 20), (15, 25), (25, 30), (40, 50)]);
        assert_eq!(s.runs(), &[(10, 30), (40, 50)]);
        assert_eq!(s.total_bytes(), 30);
    }

    #[test]
    fn interval_set_ops_are_exact() {
        let a = IntervalSet::from_runs(vec![(0, 100)]);
        let b = IntervalSet::from_runs(vec![(10, 20), (50, 120)]);
        assert_eq!(a.intersect(&b).runs(), &[(10, 20), (50, 100)]);
        assert_eq!(a.subtract(&b).runs(), &[(0, 10), (20, 50)]);
        let mut u = a.clone();
        u.union_in_place(&b);
        assert_eq!(u.runs(), &[(0, 120)]);
        // Conservation of the partition: |a| = |a∩b| + |a−b|.
        assert_eq!(
            a.total_bytes(),
            a.intersect(&b).total_bytes() + a.subtract(&b).total_bytes()
        );
    }

    #[test]
    fn collector_coalesces_contiguous_runs_and_cells() {
        let mut c = IntervalCollector::default();
        c.record_run(0, 8);
        c.record_run(8, 16);
        c.record_run(4, 12); // overlapping, inside the last run
        assert_eq!(c.take_set().runs(), &[(0, 16)]);
        c.record_cell(64, 0b0110_0101);
        let s = c.take_set();
        assert_eq!(s.runs(), &[(64, 65), (66, 67), (69, 71)]);
    }

    #[test]
    fn graph_edges_attribute_bytes_to_the_owning_producer() {
        let mut r = DataflowRecorder::new();
        r.record_upload("host-upload", Some(0), IntervalSet::from_span(0, 100));
        r.record_kernel(
            "producer",
            Some(0),
            access(&[(0, 100)], &[(200, 300)]),
            KernelStats::default(),
            occ(),
        );
        r.record_kernel(
            "consumer",
            Some(0),
            access(&[(200, 260)], &[(400, 410)]),
            KernelStats::default(),
            occ(),
        );
        r.record_download("host-download", Some(0), IntervalSet::from_span(400, 10));
        let g = r.finish();
        assert_eq!(g.nodes.len(), 4);
        // upload→producer (100 B), producer→consumer (60 B),
        // consumer→download (10 B).
        assert_eq!(
            g.edges,
            vec![
                DataflowEdge {
                    producer: 0,
                    consumer: 1,
                    bytes: 100
                },
                DataflowEdge {
                    producer: 1,
                    consumer: 2,
                    bytes: 60
                },
                DataflowEdge {
                    producer: 2,
                    consumer: 3,
                    bytes: 10
                },
            ]
        );
        assert_eq!(g.nodes[1].consumed_bytes, 60);
        assert_eq!(g.nodes[1].live_at_exit_bytes, 40);
        assert_eq!(g.nodes[1].dead_store_bytes, 0);
    }

    #[test]
    fn dead_stores_are_bytes_overwritten_before_consumption() {
        let mut r = DataflowRecorder::new();
        r.record_kernel(
            "a",
            Some(0),
            access(&[], &[(0, 100)]),
            KernelStats::default(),
            occ(),
        );
        // b consumes half of a's bytes, then c overwrites all of them.
        r.record_kernel(
            "b",
            Some(0),
            access(&[(0, 50)], &[]),
            KernelStats::default(),
            occ(),
        );
        r.record_kernel(
            "c",
            Some(0),
            access(&[], &[(0, 100)]),
            KernelStats::default(),
            occ(),
        );
        let g = r.finish();
        let a = &g.nodes[0];
        assert_eq!(a.stored_bytes, 100);
        assert_eq!(a.consumed_bytes, 50);
        assert_eq!(a.dead_store_bytes, 50);
        assert_eq!(a.live_at_exit_bytes, 0);
        // c's stores are never read: all live at exit.
        assert_eq!(g.nodes[2].live_at_exit_bytes, 100);
    }

    /// The acceptance-criterion invariant: every node's stored bytes
    /// partition exactly into consumed + dead + live-at-exit, and every
    /// edge is bounded by its producer's stored bytes.
    #[test]
    fn byte_conservation_holds_on_a_multi_frame_pipeline() {
        let mut r = DataflowRecorder::new();
        r.record_upload("host-init", None, IntervalSet::from_span(1000, 640));
        for f in 0..4 {
            r.record_upload("host-upload", Some(f), IntervalSet::from_span(0, 64));
            r.record_kernel(
                "mog-update",
                Some(f),
                access(&[(0, 64), (1000, 1640)], &[(1000, 1640), (2000, 2064)]),
                KernelStats::default(),
                occ(),
            );
            r.record_kernel(
                "morphology",
                Some(f),
                access(&[(2000, 2064)], &[(3000, 3064)]),
                KernelStats::default(),
                occ(),
            );
            r.record_download("host-download", Some(f), IntervalSet::from_span(3000, 64));
        }
        let g = r.finish();
        for (i, n) in g.nodes.iter().enumerate() {
            assert_eq!(
                n.stored_bytes,
                n.consumed_bytes + n.dead_store_bytes + n.live_at_exit_bytes,
                "node {i} ({}) violates the stored-byte partition",
                n.name
            );
        }
        for e in &g.edges {
            assert!(
                e.bytes <= g.nodes[e.producer].stored_bytes,
                "edge {}→{} carries more bytes than its producer stored",
                e.producer,
                e.consumer
            );
        }
        // The mask round trip: each mog-update launch's 64 mask bytes are
        // consumed by the adjacent morphology launch.
        let cands = g.fusion_candidates();
        assert_eq!(cands.len(), 1);
        assert_eq!(cands[0].producer, "mog-update");
        assert_eq!(cands[0].consumer, "morphology");
        assert_eq!(cands[0].pairs, 4);
        assert_eq!(cands[0].edge_bytes, 4 * 64);
    }

    #[test]
    fn reread_from_host_counts_download_then_upload_round_trips() {
        let mut r = DataflowRecorder::new();
        r.record_kernel(
            "k",
            Some(0),
            access(&[], &[(0, 100)]),
            KernelStats::default(),
            occ(),
        );
        r.record_download("host-download", Some(0), IntervalSet::from_span(0, 100));
        r.record_upload("host-upload", Some(1), IntervalSet::from_span(50, 100));
        let g = r.finish();
        assert_eq!(g.reread_from_host_bytes, 50);
        assert_eq!(g.nodes[2].reread_from_host_bytes, 50);
    }

    #[test]
    fn self_pairs_and_zero_byte_pairs_are_not_candidates() {
        let mut r = DataflowRecorder::new();
        // erode→dilate of the same logical stage share a name: skipped.
        r.record_kernel(
            "morphology",
            Some(0),
            access(&[], &[(0, 64)]),
            KernelStats::default(),
            occ(),
        );
        r.record_kernel(
            "morphology",
            Some(0),
            access(&[(0, 64)], &[(100, 164)]),
            KernelStats::default(),
            occ(),
        );
        // A following kernel with no byte flow from the previous one.
        r.record_kernel(
            "other",
            Some(0),
            access(&[(5000, 5064)], &[(6000, 6064)]),
            KernelStats::default(),
            occ(),
        );
        assert!(r.finish().fusion_candidates().is_empty());
    }

    #[test]
    fn exports_render_nodes_and_edges() {
        let mut r = DataflowRecorder::new();
        r.record_kernel(
            "mog-update",
            Some(0),
            access(&[], &[(0, 64)]),
            KernelStats::default(),
            occ(),
        );
        r.record_kernel(
            "morphology",
            Some(0),
            access(&[(0, 64)], &[(100, 164)]),
            KernelStats::default(),
            occ(),
        );
        let g = r.finish();
        let dot = g.to_dot();
        assert!(dot.starts_with("digraph dataflow {"));
        assert!(dot.contains("n0 -> n1 [label=\"64 B\"]"));
        let json = g.to_json();
        let edges = json.get("edges").and_then(|v| v.as_array()).unwrap();
        assert_eq!(edges[0].get("bytes").and_then(|v| v.as_u64()), Some(64));
        let nodes = json.get("nodes").and_then(|v| v.as_array()).unwrap();
        assert_eq!(
            nodes[0].get("name").and_then(|v| v.as_str()),
            Some("mog-update")
        );
        let prom = g.prometheus();
        assert!(prom.contains(
            "mogpu_dataflow_edge_bytes{producer=\"mog-update\",consumer=\"morphology\"} 64"
        ));
        assert!(prom.contains("# TYPE mogpu_dataflow_dead_store_bytes counter"));
    }
}

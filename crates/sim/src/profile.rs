//! Source-attributed hotspot profiles: per-[`Site`] counter aggregation
//! and the ranked nvprof-style table.
//!
//! The warp accumulator already keys every slot by its `#[track_caller]`
//! site (see [`crate::trace`]); profiling simply keeps those keys instead
//! of discarding them after slot alignment. Aggregation is opt-in via
//! [`crate::kernel::LaunchOptions::profile_sites`] — the default launch
//! path allocates nothing and touches no site map.

use crate::trace::{site_source, BuildPtrHasher, Site, SiteSource};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Counters attributed to one source site, summed over every warp slot
/// the site produced during a launch.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct SiteStats {
    /// Weighted issue cycles spent on this site's slots.
    pub issue_cycles: f64,
    /// Warp-level slots this site produced.
    pub warp_slots: u64,
    /// Branch slots.
    pub branch_slots: u64,
    /// Branch slots whose lanes disagreed.
    pub divergent_branch_slots: u64,
    /// DRAM transactions (global + local, loads + stores).
    pub transactions: u64,
    /// Bytes the lanes requested at this site.
    pub bytes_requested: u64,
    /// Shared-memory replays (bank conflicts).
    pub shared_replays: u64,
    /// Scalar operations (arithmetic, summed over lanes).
    pub scalar_ops: u64,
    /// Barrier slots.
    pub sync_slots: u64,
}

impl SiteStats {
    /// Merges another site's worth of counters into this one.
    pub fn merge(&mut self, o: &SiteStats) {
        self.issue_cycles += o.issue_cycles;
        self.warp_slots += o.warp_slots;
        self.branch_slots += o.branch_slots;
        self.divergent_branch_slots += o.divergent_branch_slots;
        self.transactions += o.transactions;
        self.bytes_requested += o.bytes_requested;
        self.shared_replays += o.shared_replays;
        self.scalar_ops += o.scalar_ops;
        self.sync_slots += o.sync_slots;
    }

    /// Share of this site's branch slots that diverged (0 when the site
    /// has no branches).
    pub fn divergent_share(&self) -> f64 {
        if self.branch_slots == 0 {
            0.0
        } else {
            self.divergent_branch_slots as f64 / self.branch_slots as f64
        }
    }
}

/// Per-site counter map for one kernel launch (or several merged ones).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SiteProfile {
    map: HashMap<Site, SiteStats, BuildPtrHasher>,
}

/// One row of the ranked hotspot table: a site resolved to its source
/// position plus its aggregated counters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct HotspotRow {
    /// `file:line` when the site was captured during a profiled launch.
    pub source: Option<String>,
    /// Aggregated counters.
    pub stats: SiteStats,
}

impl SiteProfile {
    /// Creates an empty profile.
    pub fn new() -> Self {
        Self::default()
    }

    /// Folds one site's slot contribution in.
    /// Returns `true` when this is the first contribution for `site`.
    pub(crate) fn add(&mut self, site: Site, delta: &SiteStats) -> bool {
        match self.map.entry(site) {
            std::collections::hash_map::Entry::Occupied(mut e) => {
                e.get_mut().merge(delta);
                false
            }
            std::collections::hash_map::Entry::Vacant(e) => {
                e.insert(*delta);
                true
            }
        }
    }

    /// Merges another profile (e.g. another block's) into this one.
    pub fn merge(&mut self, o: &SiteProfile) {
        for (site, stats) in &o.map {
            self.map.entry(*site).or_default().merge(stats);
        }
    }

    /// Number of distinct sites recorded.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when no sites were recorded.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Looks up one site's counters.
    pub fn get(&self, site: Site) -> Option<&SiteStats> {
        self.map.get(&site)
    }

    /// Iterates `(site, stats)` in arbitrary order.
    pub fn iter(&self) -> impl Iterator<Item = (Site, &SiteStats)> {
        self.map.iter().map(|(s, v)| (*s, v))
    }

    /// Resolved rows ranked by issue cycles, descending — the hotspot
    /// table order. Ties break on the source string so output is stable.
    /// `total_cmp` keeps the order total even if a counter is NaN (a
    /// poisoned row sorts first rather than scrambling the table).
    pub fn ranked_rows(&self) -> Vec<HotspotRow> {
        let mut rows: Vec<HotspotRow> = self
            .map
            .iter()
            .map(|(site, stats)| HotspotRow {
                source: site_source(*site).map(|s: SiteSource| s.to_string()),
                stats: *stats,
            })
            .collect();
        rows.sort_by(|a, b| {
            b.stats
                .issue_cycles
                .total_cmp(&a.stats.issue_cycles)
                .then_with(|| a.source.cmp(&b.source))
        });
        rows
    }

    /// Renders the top-`n` hotspot rows as an aligned text table.
    pub fn hotspot_table(&self, n: usize) -> String {
        render_rows(&self.ranked_rows(), n)
    }
}

/// Renders already-ranked hotspot rows as an aligned text table — the
/// same format as [`SiteProfile::hotspot_table`], for callers that hold
/// rows (e.g. merged across launches) rather than a live profile.
pub fn render_rows(rows: &[HotspotRow], n: usize) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<52} {:>12} {:>8} {:>7} {:>10} {:>8}\n",
        "source", "issue_cyc", "tx", "div%", "bytes_req", "replays"
    ));
    for row in rows.iter().take(n) {
        let source = row.source.as_deref().unwrap_or("<unresolved>");
        // Keep the tail of long paths — the file name is the signal.
        let shown = if source.len() > 52 {
            &source[source.len() - 52..]
        } else {
            source
        };
        out.push_str(&format!(
            "{:<52} {:>12.1} {:>8} {:>6.1}% {:>10} {:>8}\n",
            shown,
            row.stats.issue_cycles,
            row.stats.transactions,
            row.stats.divergent_share() * 100.0,
            row.stats.bytes_requested,
            row.stats.shared_replays,
        ));
    }
    out
}

impl Serialize for SiteProfile {
    fn to_json_value(&self) -> serde::Value {
        // Serialize as the ranked row list: sites are process-local
        // pointers, meaningless outside this run.
        self.ranked_rows().to_json_value()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_accumulates_per_site() {
        let mut p = SiteProfile::new();
        p.add(
            0x1000,
            &SiteStats {
                issue_cycles: 2.0,
                warp_slots: 1,
                ..Default::default()
            },
        );
        p.add(
            0x2000,
            &SiteStats {
                issue_cycles: 8.0,
                warp_slots: 1,
                ..Default::default()
            },
        );
        let mut q = SiteProfile::new();
        q.add(
            0x1000,
            &SiteStats {
                issue_cycles: 3.0,
                warp_slots: 2,
                ..Default::default()
            },
        );
        p.merge(&q);
        assert_eq!(p.len(), 2);
        assert!((p.get(0x1000).unwrap().issue_cycles - 5.0).abs() < 1e-12);
        assert_eq!(p.get(0x1000).unwrap().warp_slots, 3);
    }

    #[test]
    fn ranked_rows_sort_by_issue_cycles() {
        let mut p = SiteProfile::new();
        p.add(
            0x1000,
            &SiteStats {
                issue_cycles: 2.0,
                ..Default::default()
            },
        );
        p.add(
            0x2000,
            &SiteStats {
                issue_cycles: 8.0,
                ..Default::default()
            },
        );
        p.add(
            0x3000,
            &SiteStats {
                issue_cycles: 5.0,
                ..Default::default()
            },
        );
        let rows = p.ranked_rows();
        let cycles: Vec<f64> = rows.iter().map(|r| r.stats.issue_cycles).collect();
        assert_eq!(cycles, vec![8.0, 5.0, 2.0]);
        // Synthetic sites are unresolved but render without panicking.
        assert!(p.hotspot_table(10).contains("<unresolved>"));
    }

    /// Regression: ranking used `partial_cmp().unwrap_or(Equal)`, so a
    /// NaN counter compared equal to everything and the sort order
    /// depended on the hash map's iteration order. `total_cmp` must keep
    /// the order total and deterministic: NaN ranks above every finite
    /// cycle count (descending order puts it first).
    #[test]
    fn ranked_rows_order_is_total_with_nan_cycles() {
        let mut p = SiteProfile::new();
        for (site, cycles) in [(0x1000, 2.0), (0x2000, f64::NAN), (0x3000, 8.0)] {
            p.add(
                site,
                &SiteStats {
                    issue_cycles: cycles,
                    ..Default::default()
                },
            );
        }
        let rows = p.ranked_rows();
        assert!(rows[0].stats.issue_cycles.is_nan());
        assert_eq!(rows[1].stats.issue_cycles, 8.0);
        assert_eq!(rows[2].stats.issue_cycles, 2.0);
        // And the table renders the poisoned row without panicking.
        assert!(p.hotspot_table(10).contains("NaN"));
    }

    #[test]
    fn divergent_share_handles_no_branches() {
        let s = SiteStats::default();
        assert_eq!(s.divergent_share(), 0.0);
        let d = SiteStats {
            branch_slots: 4,
            divergent_branch_slots: 1,
            ..Default::default()
        };
        assert!((d.divergent_share() - 0.25).abs() < 1e-12);
    }
}

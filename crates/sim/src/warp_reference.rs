//! Frozen copy of the original hash-map warp accumulator, kept as the
//! bit-identity oracle for the SoA rewrite in [`crate::warp`].
//!
//! `tests/soa_equivalence.rs` drives this and the production
//! [`crate::warp::WarpAccumulator`] with identical event streams (including
//! proptest-generated random ones) and asserts the folded [`KernelStats`]
//! are equal. Do not "fix" or optimize this module: its value is that it
//! preserves the pre-rewrite semantics exactly. The only permitted edits
//! are those required to keep it compiling.

use crate::config::GpuConfig;
use crate::stats::KernelStats;
use crate::trace::{BuildPtrHasher, OpClass, Site, SiteCounters, Space};
use std::collections::HashMap;
use std::panic::Location;

#[derive(Debug)]
enum SlotAccum {
    Op {
        class: OpClass,
        max_count: u32,
        lanes: u32,
    },
    Mem {
        space: Space,
        write: bool,
        bytes_requested: u64,
        accesses: Vec<(u64, u8)>,
    },
    Branch {
        taken: u32,
        not_taken: u32,
    },
    Sync {
        #[allow(dead_code)]
        lanes: u32,
    },
}

/// The pre-SoA accumulator, API-compatible with the production
/// [`crate::warp::WarpAccumulator`] minus site profiling.
#[derive(Debug, Default)]
pub struct ReferenceAccumulator {
    occ: SiteCounters,
    slots: HashMap<(Site, u32), SlotAccum, BuildPtrHasher>,
    lanes_seen: u32,
}

impl ReferenceAccumulator {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Starts recording a new lane of the current warp.
    pub fn begin_lane(&mut self) {
        self.occ.clear();
        self.lanes_seen += 1;
    }

    fn key(&mut self, site: Site) -> (Site, u32) {
        (site, self.occ.next(site))
    }

    /// Records `count` arithmetic operations of `class`.
    pub fn record_op(&mut self, loc: &'static Location<'static>, class: OpClass, count: u32) {
        let key = self.key(loc as *const _ as usize);
        match self.slots.entry(key).or_insert(SlotAccum::Op {
            class,
            max_count: 0,
            lanes: 0,
        }) {
            SlotAccum::Op {
                max_count, lanes, ..
            } => {
                *max_count = (*max_count).max(count);
                *lanes += 1;
            }
            other => debug_assert!(false, "slot kind mismatch at op slot: {other:?}"),
        }
    }

    /// Records a memory access of `width` bytes at `addr` in `space`.
    pub fn record_mem(
        &mut self,
        loc: &'static Location<'static>,
        space: Space,
        write: bool,
        addr: u64,
        width: u8,
    ) {
        let key = self.key(loc as *const _ as usize);
        match self.slots.entry(key).or_insert_with(|| SlotAccum::Mem {
            space,
            write,
            bytes_requested: 0,
            accesses: Vec::with_capacity(32),
        }) {
            SlotAccum::Mem {
                bytes_requested,
                accesses,
                ..
            } => {
                *bytes_requested += width as u64;
                accesses.push((addr, width));
            }
            other => debug_assert!(false, "slot kind mismatch at mem slot: {other:?}"),
        }
    }

    /// Records a data-dependent branch outcome.
    pub fn record_branch(&mut self, loc: &'static Location<'static>, taken: bool) {
        let key = self.key(loc as *const _ as usize);
        match self.slots.entry(key).or_insert(SlotAccum::Branch {
            taken: 0,
            not_taken: 0,
        }) {
            SlotAccum::Branch {
                taken: t,
                not_taken: n,
            } => {
                if taken {
                    *t += 1;
                } else {
                    *n += 1;
                }
            }
            other => debug_assert!(false, "slot kind mismatch at branch slot: {other:?}"),
        }
    }

    /// Records a `__syncthreads()`-style barrier.
    pub fn record_sync(&mut self, loc: &'static Location<'static>) {
        let key = self.key(loc as *const _ as usize);
        match self
            .slots
            .entry(key)
            .or_insert(SlotAccum::Sync { lanes: 0 })
        {
            SlotAccum::Sync { lanes } => *lanes += 1,
            other => debug_assert!(false, "slot kind mismatch at sync slot: {other:?}"),
        }
    }

    /// Analyses the accumulated warp and folds its statistics into
    /// `stats`, then resets for the next warp.
    pub fn end_warp(&mut self, cfg: &GpuConfig, stats: &mut KernelStats) {
        self.end_warp_cached(cfg, stats, None);
    }

    /// [`ReferenceAccumulator::end_warp`] with an optional L2 slice.
    pub fn end_warp_cached(
        &mut self,
        cfg: &GpuConfig,
        stats: &mut KernelStats,
        mut cache: Option<&mut crate::cache::CacheModel>,
    ) {
        let seg = cfg.segment_bytes;
        let mut segments: Vec<u64> = Vec::with_capacity(64);
        for ((_site, _occ), slot) in &self.slots {
            match slot {
                SlotAccum::Op {
                    class,
                    max_count,
                    lanes,
                } => {
                    let cost = match class {
                        OpClass::F64 => cfg.f64_issue_cost,
                        _ => 1.0,
                    };
                    stats.issue_cycles += *max_count as f64 * cost;
                    let scalar = *max_count as u64 * *lanes as u64;
                    match class {
                        OpClass::Int => stats.int_ops += scalar,
                        OpClass::F32 => stats.flops_f32 += scalar,
                        OpClass::F64 => stats.flops_f64 += scalar,
                    }
                }
                SlotAccum::Mem {
                    space,
                    write,
                    bytes_requested,
                    accesses,
                } => {
                    stats.issue_cycles += 1.0;
                    match space {
                        Space::Shared => {
                            let mut per_bank: HashMap<u32, Vec<u64>, BuildPtrHasher> =
                                HashMap::default();
                            for &(addr, width) in accesses {
                                let mut w = addr / 4;
                                let end = (addr + width as u64).div_ceil(4);
                                while w < end.max(w + 1) {
                                    let bank = (w % cfg.shared_banks as u64) as u32;
                                    let words = per_bank.entry(bank).or_default();
                                    if !words.contains(&w) {
                                        words.push(w);
                                    }
                                    w += 1;
                                    if w >= end {
                                        break;
                                    }
                                }
                            }
                            let degree =
                                per_bank.values().map(|v| v.len()).max().unwrap_or(1) as u64;
                            stats.shared_accesses += accesses.len() as u64;
                            stats.shared_replays += degree.saturating_sub(1);
                            stats.issue_cycles += degree.saturating_sub(1) as f64;
                        }
                        Space::Global | Space::Local => {
                            segments.clear();
                            for &(addr, width) in accesses {
                                let first = addr / seg;
                                let last = (addr + width as u64 - 1) / seg;
                                for s in first..=last {
                                    if !segments.contains(&s) {
                                        segments.push(s);
                                    }
                                }
                            }
                            let tx = match cache.as_deref_mut() {
                                Some(c) => {
                                    let mut misses = 0u64;
                                    for &s in segments.iter() {
                                        if c.access_segment(s) {
                                            stats.l2_hits += 1;
                                        } else {
                                            stats.l2_misses += 1;
                                            misses += 1;
                                        }
                                    }
                                    misses
                                }
                                None => segments.len() as u64,
                            };
                            stats.mem_slots += 1;
                            stats.lane_mem_accesses += accesses.len() as u64;
                            match (space, write) {
                                (Space::Global, false) => {
                                    stats.global_load_tx += tx;
                                    stats.global_load_bytes_requested += bytes_requested;
                                }
                                (Space::Global, true) => {
                                    stats.global_store_tx += tx;
                                    stats.global_store_bytes_requested += bytes_requested;
                                }
                                (Space::Local, false) => {
                                    stats.local_load_tx += tx;
                                    stats.local_load_bytes_requested += bytes_requested;
                                }
                                (Space::Local, true) => {
                                    stats.local_store_tx += tx;
                                    stats.local_store_bytes_requested += bytes_requested;
                                }
                                (Space::Shared, _) => unreachable!(),
                            }
                        }
                    }
                }
                SlotAccum::Branch { taken, not_taken } => {
                    stats.issue_cycles += 1.0;
                    stats.branch_slots += 1;
                    stats.lane_branches += (*taken + *not_taken) as u64;
                    if *taken > 0 && *not_taken > 0 {
                        stats.divergent_branch_slots += 1;
                    }
                }
                SlotAccum::Sync { .. } => {
                    stats.issue_cycles += 1.0;
                    stats.sync_slots += 1;
                }
            }
        }
        stats.warp_slots += self.slots.len() as u64;
        stats.warps += 1;
        stats.lanes += self.lanes_seen as u64;
        self.slots.clear();
        self.lanes_seen = 0;
    }
}

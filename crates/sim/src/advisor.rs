//! Guided-analysis advisor: a roofline placement plus a deterministic
//! rules engine that turns the profiler's evidence — [`KernelStats`],
//! [`DerivedMetrics`], the stall-reason decomposition of
//! [`crate::stallreasons`], and the pipeline schedule — into ranked,
//! actionable [`Advisory`] records, the way Nsight Compute's guided
//! analysis maps metrics to recommended transforms.
//!
//! Every rule is a pure function of its evidence: given the same report
//! it fires (or not) with the same estimated benefit, and advisories are
//! ranked by that benefit with the rule id as a stable tie-break. The
//! benefit of each transform is *estimated from the analytic timing
//! model itself* — the rule builds the counterfactual counter set its
//! transform would produce and re-evaluates
//! [`crate::timing::kernel_time`], so the advisor's ranking reproduces
//! the paper's optimization ladder because the model that ranks the
//! advice is the model that generated the measurements.
//!
//! Rule ordering mirrors the paper's diagnosis sequence (Section IV):
//! coalescing before overlap before divergence work before occupancy
//! before tiling. Two orderings are encoded as gates rather than
//! benefit magnitudes, both with an engineering rationale the paper
//! shares: *predication* is only recommended once the rank-sort's
//! data-dependent control flow is gone (the sort dominates divergence
//! until then, and predicating it is not meaningful), and *shared-memory
//! tiling* is only recommended once register pressure no longer caps
//! occupancy (tiling spends shared memory, which lowers occupancy
//! further — raise the ceiling first).

use crate::config::GpuConfig;
use crate::dataflow::FusionCandidate;
use crate::dma::OverlapMode;
use crate::occupancy::{Limiter, Occupancy};
use crate::profile::HotspotRow;
use crate::stallreasons::StallBreakdown;
use crate::stats::{DerivedMetrics, KernelStats};
use crate::timing::{kernel_time, Bound, KernelTiming};
use serde::Serialize;

/// Where a kernel sits against the machine's compute and memory ceilings.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct Roofline {
    /// Scalar floating-point operations executed (f32 + f64).
    pub flops: f64,
    /// Bytes moved across the DRAM interface.
    pub dram_bytes: f64,
    /// FLOPs per DRAM byte.
    pub arithmetic_intensity: f64,
    /// FLOPs per second the kernel achieved under the modelled time.
    pub achieved_flops: f64,
    /// Compute ceiling, derated by the kernel's f64 issue mix.
    pub peak_compute_flops: f64,
    /// Memory ceiling: effective DRAM bandwidth (bytes/s).
    pub peak_memory_bw: f64,
    /// Intensity where the two ceilings meet (FLOPs/byte).
    pub ridge_intensity: f64,
    /// The ceiling above this kernel's intensity (FLOPs/s).
    pub ceiling_flops: f64,
    /// True when the kernel sits under the compute ceiling (right of the
    /// ridge), false when the memory slope bounds it.
    pub compute_bound: bool,
}

/// Places a kernel on the roofline derived from [`GpuConfig`] peaks.
pub fn roofline(stats: &KernelStats, timing: &KernelTiming, cfg: &GpuConfig) -> Roofline {
    let f32s = stats.flops_f32 as f64;
    let f64s = stats.flops_f64 as f64;
    let flops = f32s + f64s;
    // Derate the f32 peak by the kernel's average issue cost per FLOP:
    // a pure-f64 kernel sees 1/f64_issue_cost of the single-precision
    // rate, matching the issue weighting of the timing model.
    let mix = if flops > 0.0 {
        (f32s + f64s * cfg.f64_issue_cost) / flops
    } else {
        1.0
    };
    let peak_compute_flops = cfg.peak_f32_flops() / mix;
    let peak_memory_bw = cfg.dram_peak_bw * cfg.dram_efficiency;
    let dram_bytes = stats.bytes_transacted(cfg) as f64;
    let arithmetic_intensity = flops / dram_bytes.max(1.0);
    let achieved_flops = if timing.total > 0.0 {
        flops / timing.total
    } else {
        0.0
    };
    let ridge_intensity = peak_compute_flops / peak_memory_bw;
    let memory_ceiling = arithmetic_intensity * peak_memory_bw;
    let compute_bound = peak_compute_flops <= memory_ceiling;
    Roofline {
        flops,
        dram_bytes,
        arithmetic_intensity,
        achieved_flops,
        peak_compute_flops,
        peak_memory_bw,
        ridge_intensity,
        ceiling_flops: peak_compute_flops.min(memory_ceiling),
        compute_bound,
    }
}

/// The source-level transform an advisory recommends — the paper's
/// optimization vocabulary.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum Transform {
    /// Restructure AoS layouts to SoA so warps touch full segments
    /// (paper level A -> B).
    CoalesceMemory,
    /// Double-buffer DMA against kernel execution (B -> C).
    OverlapTransfers,
    /// Replace the data-dependent rank sort with an unconditional scan
    /// (C -> D).
    RemoveRankSort,
    /// Predicate the divergent update paths (D -> E).
    PredicateBranches,
    /// Trade registers for recomputation to raise occupancy (E -> F).
    ReduceRegisters,
    /// Stage frame groups through shared memory (F -> W).
    TileSharedMemory,
    /// Fuse an adjacent producer/consumer launch pair so the bytes the
    /// consumer reloads from DRAM stay on chip (ROADMAP level G).
    FuseKernels,
    /// Pad or re-stride shared records to avoid bank conflicts.
    PadSharedMemory,
    /// Shrink the launch footprint (block size, registers, shared bytes)
    /// until the kernel becomes resident at all.
    ShrinkLaunchFootprint,
}

/// One named evidence metric backing an advisory.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct Evidence {
    /// Metric name, e.g. `mem_access_efficiency`.
    pub metric: String,
    /// Observed value.
    pub value: f64,
}

impl Evidence {
    fn new(metric: &str, value: f64) -> Self {
        Evidence {
            metric: metric.to_string(),
            value,
        }
    }
}

/// One ranked recommendation from the rules engine.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct Advisory {
    /// Stable rule identifier, e.g. `coalesce-global-memory`.
    pub rule: String,
    /// Recommended source transform.
    pub transform: Transform,
    /// Human-readable diagnosis.
    pub finding: String,
    /// The metrics that fired the rule.
    pub evidence: Vec<Evidence>,
    /// `file:line` sites implicated by the evidence (may be empty for
    /// whole-pipeline findings such as transfer overlap).
    pub sites: Vec<String>,
    /// Modelled seconds the transform saves over the profiled run.
    pub estimated_benefit_s: f64,
    /// Modelled speedup of the affected stage (kernel, or pipeline for
    /// transfer rules).
    pub estimated_speedup: f64,
}

/// Everything the rules engine reads. All references borrow from the
/// profile report being analyzed.
#[derive(Debug, Clone, Copy)]
pub struct AdvisorInput<'a> {
    /// Summed launch counters.
    pub stats: &'a KernelStats,
    /// Derived profiler metrics of those counters.
    pub metrics: &'a DerivedMetrics,
    /// Kernel occupancy.
    pub occupancy: &'a Occupancy,
    /// Roofline timing decomposition.
    pub timing: &'a KernelTiming,
    /// Stall-reason decomposition of the modelled time.
    pub stalls: &'a StallBreakdown,
    /// Roofline placement.
    pub roofline: &'a Roofline,
    /// Ranked source hotspots.
    pub hotspots: &'a [HotspotRow],
    /// Adjacent-launch fusion candidates from the dataflow graph
    /// ([`crate::dataflow::DataflowGraph::fusion_candidates`]), sorted by
    /// edge bytes descending. Empty when the run did not record dataflow.
    pub dataflow: &'a [FusionCandidate],
    /// Transfer scheduling mode of the run.
    pub overlap: OverlapMode,
    /// Modelled host-to-device seconds per frame.
    pub h2d_per_frame: f64,
    /// Modelled device-to-host seconds per frame.
    pub d2h_per_frame: f64,
    /// Compute-engine idle seconds over the run (DMA starvation).
    pub dma_starvation: f64,
    /// Frames in the run.
    pub frames: usize,
    /// Device model.
    pub cfg: &'a GpuConfig,
}

/// Assumed traffic-reduction factor of shared-memory frame tiling: the
/// paper's windowed kernel reuses model parameters across a group of
/// this many frames.
const TILE_GROUP: f64 = 8.0;

/// Fraction of a divergent region's serialized issue that source-level
/// predication removes (both paths still execute; the branch overhead
/// and half the duplicated control flow fold away).
const PREDICATION_RECOVERY: f64 = 0.5;

/// Minimum fraction of the consumer's external read bytes that must
/// arrive over one adjacent-launch edge before fusion is recommended:
/// below this the fused kernel would still reload most of its input
/// from DRAM and the transform is not worth its complexity.
const FUSION_MIN_EDGE_SHARE: f64 = 0.25;

fn speedup(old: f64, new: f64) -> f64 {
    if new > 0.0 {
        old / new
    } else {
        1.0
    }
}

fn retime(stats: &KernelStats, occ: &Occupancy, cfg: &GpuConfig) -> f64 {
    kernel_time(stats, occ, cfg).total
}

/// Top sites by a ranking key, rendered as `file:line` strings.
fn top_sites<F: Fn(&HotspotRow) -> u64>(hotspots: &[HotspotRow], key: F, n: usize) -> Vec<String> {
    let mut ranked: Vec<&HotspotRow> = hotspots.iter().filter(|r| key(r) > 0).collect();
    ranked.sort_by(|a, b| key(b).cmp(&key(a)).then_with(|| a.source.cmp(&b.source)));
    ranked
        .into_iter()
        .take(n)
        .filter_map(|r| r.source.clone())
        .collect()
}

/// Ideal fully-coalesced transaction count for a byte demand.
fn ideal_tx(bytes_requested: u64, segment: u64) -> u64 {
    bytes_requested.div_ceil(segment.max(1))
}

/// Runs every rule and returns the advisories ranked by estimated
/// benefit (descending; rule id breaks ties), deterministically.
pub fn advise(input: &AdvisorInput) -> Vec<Advisory> {
    let mut out = Vec::new();
    let stats = input.stats;
    let cfg = input.cfg;
    let timing = input.timing;
    let occ = input.occupancy;
    let seg = cfg.segment_bytes;

    // --- coalesce-global-memory: uncoalesced access patterns multiply
    // the transaction count; model the SoA layout as every class moving
    // its ideal segment count.
    if input.metrics.mem_access_efficiency < 0.5 {
        let mut c = stats.clone();
        c.global_load_tx = ideal_tx(c.global_load_bytes_requested, seg);
        c.global_store_tx = ideal_tx(c.global_store_bytes_requested, seg);
        c.local_load_tx = ideal_tx(c.local_load_bytes_requested, seg);
        c.local_store_tx = ideal_tx(c.local_store_bytes_requested, seg);
        let new_total = retime(&c, occ, cfg);
        let benefit = (timing.total - new_total).max(0.0);
        if benefit > 0.0 {
            out.push(Advisory {
                rule: "coalesce-global-memory".into(),
                transform: Transform::CoalesceMemory,
                finding: format!(
                    "only {:.0}% of transacted DRAM bytes were requested by lanes; \
                     restructure the layout (AoS -> SoA) so each warp touches whole \
                     {seg} B segments",
                    input.metrics.mem_access_efficiency * 100.0,
                ),
                evidence: vec![
                    Evidence::new("mem_access_efficiency", input.metrics.mem_access_efficiency),
                    Evidence::new("gld_efficiency", input.metrics.gld_efficiency),
                    Evidence::new("gst_efficiency", input.metrics.gst_efficiency),
                    Evidence::new("total_transactions", stats.total_tx() as f64),
                ],
                sites: top_sites(
                    input.hotspots,
                    |r| {
                        // Weight by wasted transactions: tx beyond the
                        // site's own ideal count.
                        r.stats
                            .transactions
                            .saturating_sub(ideal_tx(r.stats.bytes_requested, seg))
                    },
                    3,
                ),
                estimated_benefit_s: benefit,
                estimated_speedup: speedup(timing.total, new_total),
            });
        }
    }

    // --- overlap-transfers: a sequential pipeline pays both DMA
    // directions on the critical path; double buffering hides all but
    // the slower direction behind the kernel.
    if input.overlap == OverlapMode::Sequential && input.frames > 0 {
        let kernel_pf = timing.total / input.frames as f64;
        let seq_pf = input.h2d_per_frame + kernel_pf + input.d2h_per_frame;
        let dbuf_pf = kernel_pf.max(input.h2d_per_frame).max(input.d2h_per_frame);
        let benefit = (seq_pf - dbuf_pf).max(0.0) * input.frames as f64;
        if benefit > 0.0 {
            out.push(Advisory {
                rule: "overlap-transfers".into(),
                transform: Transform::OverlapTransfers,
                finding: format!(
                    "the compute engine starves {:.3} ms waiting on sequential PCIe \
                     transfers; double-buffer uploads and downloads against kernel \
                     execution",
                    input.dma_starvation * 1e3,
                ),
                evidence: vec![
                    Evidence::new("dma_starvation_s", input.dma_starvation),
                    Evidence::new("h2d_per_frame_s", input.h2d_per_frame),
                    Evidence::new("d2h_per_frame_s", input.d2h_per_frame),
                    Evidence::new("kernel_per_frame_s", kernel_pf),
                ],
                sites: Vec::new(),
                estimated_benefit_s: benefit,
                estimated_speedup: speedup(seq_pf, dbuf_pf),
            });
        }
    }

    // --- remove-rank-sort: local-memory traffic is register spill from
    // the per-pixel rank sort; an unconditional scan needs neither the
    // spill arrays nor the data-dependent sort loop.
    let local_tx = stats.local_load_tx + stats.local_store_tx;
    if local_tx > 0 {
        let mut c = stats.clone();
        c.local_load_tx = 0;
        c.local_store_tx = 0;
        c.local_load_bytes_requested = 0;
        c.local_store_bytes_requested = 0;
        // Each spill slot issued ~1 cycle and moved ~2 segments (f64
        // array, 32 lanes); fold that issue away with the traffic.
        c.issue_cycles = (c.issue_cycles - local_tx as f64 / 2.0).max(0.0);
        let new_total = retime(&c, occ, cfg);
        let benefit = (timing.total - new_total).max(0.0);
        if benefit > 0.0 {
            out.push(Advisory {
                rule: "remove-rank-sort".into(),
                transform: Transform::RemoveRankSort,
                finding: format!(
                    "{local_tx} local-memory (spill) transactions come from the \
                     per-pixel rank sort; replace it with an unconditional \
                     rank-order scan",
                ),
                evidence: vec![
                    Evidence::new("local_transactions", local_tx as f64),
                    Evidence::new(
                        "local_tx_share",
                        local_tx as f64 / stats.total_tx().max(1) as f64,
                    ),
                    Evidence::new("branch_efficiency", input.metrics.branch_efficiency),
                ],
                sites: top_sites(input.hotspots, |r| r.stats.divergent_branch_slots, 3),
                estimated_benefit_s: benefit,
                estimated_speedup: speedup(timing.total, new_total),
            });
        }
    }

    // --- predicate-branches: gated on the sort being gone (until then
    // the sort owns the divergence and predicating the update path is
    // premature — the paper's D -> E ordering).
    if local_tx == 0 && stats.divergent_branch_slots > 0 && input.metrics.branch_efficiency < 1.0 {
        let divergence = 1.0 - input.metrics.branch_efficiency;
        // Divergent update paths serialize into two partial-warp slots,
        // each re-touching its parameter segments: predication folds the
        // duplicated issue *and* the duplicated DRAM transactions away.
        let keep = 1.0 - PREDICATION_RECOVERY * divergence;
        let saved = stats.divergent_branch_slots as f64
            + PREDICATION_RECOVERY * divergence * stats.issue_cycles;
        let shrink = |v: u64| (v as f64 * keep).round() as u64;
        let mut c = stats.clone();
        c.issue_cycles = (c.issue_cycles - saved).max(0.0);
        c.global_load_tx = shrink(c.global_load_tx);
        c.global_store_tx = shrink(c.global_store_tx);
        let new_total = retime(&c, occ, cfg);
        let benefit = (timing.total - new_total).max(0.0);
        if benefit > 0.0 {
            out.push(Advisory {
                rule: "predicate-branches".into(),
                transform: Transform::PredicateBranches,
                finding: format!(
                    "branch efficiency is {:.1}%: divergent update paths serialize; \
                     predicate the per-distribution updates so every lane executes \
                     one path",
                    input.metrics.branch_efficiency * 100.0,
                ),
                evidence: vec![
                    Evidence::new("branch_efficiency", input.metrics.branch_efficiency),
                    Evidence::new(
                        "divergent_branch_slots",
                        stats.divergent_branch_slots as f64,
                    ),
                    Evidence::new("stall_branch_divergence_s", input.stalls.branch_divergence),
                ],
                sites: top_sites(input.hotspots, |r| r.stats.divergent_branch_slots, 3),
                estimated_benefit_s: benefit,
                estimated_speedup: speedup(timing.total, new_total),
            });
        }
    }

    // --- reduce-register-pressure: when registers cap residency below
    // the hardware block limit, freeing registers admits another block
    // per SM and shrinks the latency bound.
    let register_rule_applies =
        occ.limiter == Limiter::Registers && occ.resident_blocks < cfg.max_blocks_per_sm;
    let mut register_rule_fired = false;
    if register_rule_applies && occ.resident_blocks > 0 {
        let warps_per_block = occ.resident_warps / occ.resident_blocks;
        let blocks = occ.resident_blocks + 1;
        let warps = (warps_per_block * blocks).min(cfg.max_warps_per_sm);
        let better = Occupancy {
            resident_blocks: blocks,
            resident_warps: warps,
            resident_threads: warps * cfg.warp_size,
            occupancy: warps as f64 / cfg.max_warps_per_sm as f64,
            limiter: occ.limiter,
        };
        let new_total = retime(stats, &better, cfg);
        let benefit = (timing.total - new_total).max(0.0);
        if benefit > 0.0 {
            register_rule_fired = true;
            out.push(Advisory {
                rule: "reduce-register-pressure".into(),
                transform: Transform::ReduceRegisters,
                finding: format!(
                    "registers cap occupancy at {:.0}% ({} blocks/SM); recompute \
                     cheap intermediates instead of keeping them live to fit \
                     another block",
                    occ.occupancy * 100.0,
                    occ.resident_blocks,
                ),
                evidence: vec![
                    Evidence::new("occupancy", occ.occupancy),
                    Evidence::new("resident_blocks", occ.resident_blocks as f64),
                    Evidence::new("stall_latency_exposure_s", input.stalls.latency_exposure),
                ],
                sites: Vec::new(),
                estimated_benefit_s: benefit,
                estimated_speedup: speedup(timing.total, new_total),
            });
        }
    }

    // --- fuse-kernels: the dataflow graph found an adjacent launch pair
    // whose intermediate round-trips through DRAM. Gated like the tile
    // rule on the per-kernel ladder being exhausted (coalesced access,
    // predicated branches, spill-free, register ceiling raised) and on a
    // double-buffered schedule — fusion reshapes the launch structure,
    // which is premature while cheaper per-kernel transforms remain; the
    // paper's ladder ends at F and ROADMAP item 2 names fusion as the
    // next rung. The benefit re-times both kernels with the edge bytes
    // removed from the producer's stores and the consumer's loads: the
    // fused kernel keeps the intermediate in registers/shared memory.
    let mut fusion_fired = false;
    if input.overlap == OverlapMode::DoubleBuffered
        && local_tx == 0
        && !register_rule_fired
        && input.metrics.mem_access_efficiency >= 0.5
        && input.metrics.branch_efficiency >= 0.95
    {
        let mut best: Option<(f64, f64, f64, &FusionCandidate)> = None;
        for cand in input.dataflow {
            if cand.consumer_read_bytes == 0 || cand.producer_stored_bytes == 0 {
                continue;
            }
            let edge_share = cand.edge_bytes as f64 / cand.consumer_read_bytes as f64;
            if edge_share < FUSION_MIN_EDGE_SHARE {
                continue;
            }
            let old = retime(&cand.producer_stats, &cand.producer_occupancy, cfg)
                + retime(&cand.consumer_stats, &cand.consumer_occupancy, cfg);
            let keep_store = 1.0 - cand.edge_bytes as f64 / cand.producer_stored_bytes as f64;
            let keep_load = 1.0 - edge_share;
            let shrink = |v: u64, keep: f64| (v as f64 * keep).round() as u64;
            let mut p = cand.producer_stats.clone();
            p.global_store_tx = shrink(p.global_store_tx, keep_store);
            p.global_store_bytes_requested = shrink(p.global_store_bytes_requested, keep_store);
            let mut c = cand.consumer_stats.clone();
            c.global_load_tx = shrink(c.global_load_tx, keep_load);
            c.global_load_bytes_requested = shrink(c.global_load_bytes_requested, keep_load);
            let new = retime(&p, &cand.producer_occupancy, cfg)
                + retime(&c, &cand.consumer_occupancy, cfg);
            let benefit = (old - new).max(0.0);
            if benefit > 0.0 && best.as_ref().is_none_or(|(b, ..)| benefit > *b) {
                best = Some((benefit, old, new, cand));
            }
        }
        if let Some((benefit, old, new, cand)) = best {
            fusion_fired = true;
            out.push(Advisory {
                rule: "fuse-kernels".into(),
                transform: Transform::FuseKernels,
                finding: format!(
                    "{} adjacent {} -> {} launch pair(s) round-trip {} B through \
                     DRAM ({:.0}% of the consumer's loads); fuse the kernels so the \
                     intermediate stays in registers or shared memory",
                    cand.pairs,
                    cand.producer,
                    cand.consumer,
                    cand.edge_bytes,
                    100.0 * cand.edge_bytes as f64 / cand.consumer_read_bytes as f64,
                ),
                evidence: vec![
                    Evidence::new("edge_bytes", cand.edge_bytes as f64),
                    Evidence::new(
                        "edge_share_of_consumer_reads",
                        cand.edge_bytes as f64 / cand.consumer_read_bytes as f64,
                    ),
                    Evidence::new("producer_stored_bytes", cand.producer_stored_bytes as f64),
                    Evidence::new("launch_pairs", cand.pairs as f64),
                ],
                sites: Vec::new(),
                estimated_benefit_s: benefit,
                estimated_speedup: speedup(old, new),
            });
        }
    }

    // --- tile-shared-memory: gated on register pressure being resolved
    // (tiling spends shared memory, which costs occupancy — raise that
    // ceiling first), on the divergence work being done (the tiled
    // kernel builds on the predicated scan), and on no fusion advisory
    // this run (fusion restructures the launches tiling would target —
    // resolve the inter-kernel round trip before intra-kernel staging).
    if stats.shared_accesses == 0
        && !register_rule_fired
        && !fusion_fired
        && timing.bound != Bound::Issue
        && input.metrics.mem_access_efficiency >= 0.5
        && input.metrics.branch_efficiency >= 0.95
    {
        // Model-parameter traffic (everything except the 1 B/px frame in
        // and mask out) amortizes over a group of TILE_GROUP frames
        // staged in shared memory.
        let frame_bytes = 2 * stats.lanes;
        let param_share = if stats.bytes_requested() > 0 {
            1.0 - (frame_bytes as f64 / stats.bytes_requested() as f64).min(1.0)
        } else {
            0.0
        };
        let factor = 1.0 - param_share * (1.0 - 1.0 / TILE_GROUP);
        let shrink = |v: u64| (v as f64 * factor).round() as u64;
        let mut c = stats.clone();
        c.global_load_tx = shrink(c.global_load_tx);
        c.global_store_tx = shrink(c.global_store_tx);
        c.global_load_bytes_requested = shrink(c.global_load_bytes_requested);
        c.global_store_bytes_requested = shrink(c.global_store_bytes_requested);
        let new_total = retime(&c, occ, cfg);
        let benefit = (timing.total - new_total).max(0.0);
        if benefit > 0.0 {
            out.push(Advisory {
                rule: "tile-shared-memory".into(),
                transform: Transform::TileSharedMemory,
                finding: format!(
                    "the kernel is {}-limited with coalesced access: {:.0}% of DRAM \
                     traffic is model parameters; stage a group of frames through \
                     shared memory to reuse them",
                    match timing.bound {
                        Bound::Bandwidth => "bandwidth",
                        _ => "latency",
                    },
                    param_share * 100.0,
                ),
                evidence: vec![
                    Evidence::new("param_traffic_share", param_share),
                    Evidence::new("mem_access_efficiency", input.metrics.mem_access_efficiency),
                    Evidence::new(
                        "stall_memory_s",
                        input.stalls.memory_dependency + input.stalls.latency_exposure,
                    ),
                ],
                sites: top_sites(input.hotspots, |r| r.stats.transactions, 3),
                estimated_benefit_s: benefit,
                estimated_speedup: speedup(timing.total, new_total),
            });
        }
    }

    // --- pad-shared-records: bank conflicts replay shared accesses.
    if stats.shared_replays > 0 {
        let mut c = stats.clone();
        c.issue_cycles = (c.issue_cycles - c.shared_replays as f64).max(0.0);
        c.shared_replays = 0;
        let new_total = retime(&c, occ, cfg);
        let benefit = (timing.total - new_total).max(0.0);
        if benefit > 0.0 {
            out.push(Advisory {
                rule: "pad-shared-records".into(),
                transform: Transform::PadSharedMemory,
                finding: format!(
                    "{} shared-memory replays from bank conflicts; pad or re-stride \
                     the shared layout",
                    stats.shared_replays,
                ),
                evidence: vec![
                    Evidence::new("shared_replays", stats.shared_replays as f64),
                    Evidence::new("stall_shared_replay_s", input.stalls.shared_replay),
                ],
                sites: top_sites(input.hotspots, |r| r.stats.shared_replays, 3),
                estimated_benefit_s: benefit,
                estimated_speedup: speedup(timing.total, new_total),
            });
        }
    }

    rank(&mut out);
    out
}

/// Sorts advisories by estimated benefit descending; ties break on the
/// rule id so the order is total and deterministic. `total_cmp` keeps
/// that true even for a NaN benefit estimate (it ranks above every
/// finite benefit instead of comparing equal to everything).
fn rank(out: &mut [Advisory]) {
    out.sort_by(|a, b| {
        b.estimated_benefit_s
            .total_cmp(&a.estimated_benefit_s)
            .then_with(|| a.rule.cmp(&b.rule))
    });
}

/// The structured diagnostic for a kernel whose launch footprint exceeds
/// the device — [`crate::occupancy::occupancy`] returned `None`, so
/// there is nothing to time and the only advice is to shrink the launch.
pub fn unlaunchable_advisory(detail: &str) -> Advisory {
    Advisory {
        rule: "unlaunchable-kernel".into(),
        transform: Transform::ShrinkLaunchFootprint,
        finding: format!(
            "the kernel cannot become resident on any SM: {detail}; reduce the \
             block size, register footprint, or shared-memory allocation until \
             at least one block fits",
        ),
        evidence: Vec::new(),
        sites: Vec::new(),
        estimated_benefit_s: 0.0,
        estimated_speedup: 1.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stallreasons::kernel_stalls;

    fn occ(limiter: Limiter, blocks: u32, warps: u32) -> Occupancy {
        Occupancy {
            resident_blocks: blocks,
            resident_warps: warps,
            resident_threads: warps * 32,
            occupancy: warps as f64 / 48.0,
            limiter,
        }
    }

    fn run(stats: &KernelStats, o: &Occupancy, overlap: OverlapMode) -> Vec<Advisory> {
        let cfg = GpuConfig::default();
        let timing = kernel_time(stats, o, &cfg);
        let stalls = kernel_stalls(stats, &timing, o);
        let roof = roofline(stats, &timing, &cfg);
        let metrics = DerivedMetrics::from_stats(stats, &cfg);
        advise(&AdvisorInput {
            stats,
            metrics: &metrics,
            occupancy: o,
            timing: &timing,
            stalls: &stalls,
            roofline: &roof,
            hotspots: &[],
            dataflow: &[],
            overlap,
            h2d_per_frame: 1e-4,
            d2h_per_frame: 1e-4,
            dma_starvation: 0.0,
            frames: 8,
            cfg: &cfg,
        })
    }

    /// Regression: `rank` used `partial_cmp().unwrap_or(Equal)`, so a
    /// NaN benefit estimate compared equal to every other advisory and
    /// the final order depended on rule emission order. `total_cmp`
    /// must produce one deterministic total order with NaN on top.
    #[test]
    fn rank_is_total_and_deterministic_with_nan_benefit() {
        let mk = |rule: &str, benefit: f64| Advisory {
            rule: rule.into(),
            transform: Transform::CoalesceMemory,
            finding: String::new(),
            evidence: Vec::new(),
            sites: Vec::new(),
            estimated_benefit_s: benefit,
            estimated_speedup: 1.0,
        };
        let mut a = vec![mk("b", 0.5), mk("a", f64::NAN), mk("c", 2.0)];
        let mut b = vec![mk("c", 2.0), mk("a", f64::NAN), mk("b", 0.5)];
        rank(&mut a);
        rank(&mut b);
        let order: Vec<&str> = a.iter().map(|ad| ad.rule.as_str()).collect();
        assert_eq!(order, ["a", "c", "b"], "NaN first, then descending");
        let same: Vec<&str> = b.iter().map(|ad| ad.rule.as_str()).collect();
        assert_eq!(order, same, "order must not depend on input order");
    }

    #[test]
    fn uncoalesced_memory_fires_the_coalescing_rule_first() {
        // 8x more transactions than the byte demand justifies.
        let stats = KernelStats {
            warps: 100_000,
            issue_cycles: 50_000.0,
            global_load_tx: 800_000,
            global_load_bytes_requested: 12_800_000,
            ..Default::default()
        };
        let o = occ(Limiter::Warps, 8, 48);
        let advice = run(&stats, &o, OverlapMode::DoubleBuffered);
        assert!(!advice.is_empty());
        assert_eq!(advice[0].transform, Transform::CoalesceMemory);
        assert!(advice[0].estimated_benefit_s > 0.0);
        assert!(advice[0].estimated_speedup > 1.0);
    }

    #[test]
    fn unlaunchable_diagnostic_is_structured() {
        let a = unlaunchable_advisory("block needs 36864 registers, SM has 32768");
        assert_eq!(a.transform, Transform::ShrinkLaunchFootprint);
        assert!(a.finding.contains("36864"));
        assert_eq!(a.estimated_benefit_s, 0.0);
    }

    #[test]
    fn advisories_are_deterministic_and_benefit_ranked() {
        let stats = KernelStats {
            warps: 100_000,
            issue_cycles: 500_000.0,
            global_load_tx: 800_000,
            global_load_bytes_requested: 12_800_000,
            local_load_tx: 50_000,
            local_store_tx: 50_000,
            local_load_bytes_requested: 6_400_000,
            local_store_bytes_requested: 6_400_000,
            branch_slots: 10_000,
            divergent_branch_slots: 4_000,
            shared_replays: 2_000,
            ..Default::default()
        };
        let o = occ(Limiter::Registers, 4, 24);
        let a = run(&stats, &o, OverlapMode::Sequential);
        let b = run(&stats, &o, OverlapMode::Sequential);
        assert_eq!(a, b);
        assert!(a.len() >= 2, "composite workload should fire several rules");
        for w in a.windows(2) {
            assert!(w[0].estimated_benefit_s >= w[1].estimated_benefit_s);
        }
    }

    /// A post-level-F shaped counter set: coalesced, predicated,
    /// spill-free, warp-limited. Under `run` (no dataflow evidence) the
    /// tile rule fires; with a fat adjacent-launch edge the fusion rule
    /// must fire instead.
    fn post_f_stats() -> KernelStats {
        KernelStats {
            warps: 100_000,
            lanes: 3_200_000,
            issue_cycles: 400_000.0,
            global_load_tx: 600_000,
            global_load_bytes_requested: 76_800_000,
            global_store_tx: 100_000,
            global_store_bytes_requested: 12_800_000,
            branch_slots: 10_000,
            ..Default::default()
        }
    }

    fn run_with_dataflow(
        stats: &KernelStats,
        o: &Occupancy,
        dataflow: &[FusionCandidate],
    ) -> Vec<Advisory> {
        let cfg = GpuConfig::default();
        let timing = kernel_time(stats, o, &cfg);
        let stalls = kernel_stalls(stats, &timing, o);
        let roof = roofline(stats, &timing, &cfg);
        let metrics = DerivedMetrics::from_stats(stats, &cfg);
        advise(&AdvisorInput {
            stats,
            metrics: &metrics,
            occupancy: o,
            timing: &timing,
            stalls: &stalls,
            roofline: &roof,
            hotspots: &[],
            dataflow,
            overlap: OverlapMode::DoubleBuffered,
            h2d_per_frame: 1e-4,
            d2h_per_frame: 1e-4,
            dma_starvation: 0.0,
            frames: 8,
            cfg: &cfg,
        })
    }

    fn candidate(edge_bytes: u64, read_bytes: u64) -> FusionCandidate {
        let o = occ(Limiter::Warps, 8, 48);
        let producer = KernelStats {
            warps: 50_000,
            issue_cycles: 200_000.0,
            global_load_tx: 300_000,
            global_load_bytes_requested: 38_400_000,
            global_store_tx: 100_000,
            global_store_bytes_requested: 12_800_000,
            ..Default::default()
        };
        let consumer = KernelStats {
            warps: 50_000,
            issue_cycles: 100_000.0,
            global_load_tx: read_bytes.div_ceil(128),
            global_load_bytes_requested: read_bytes,
            global_store_tx: 10_000,
            global_store_bytes_requested: 1_280_000,
            ..Default::default()
        };
        FusionCandidate {
            producer: "mog-update".into(),
            consumer: "morphology".into(),
            pairs: 8,
            edge_bytes,
            producer_stored_bytes: 12_800_000,
            consumer_read_bytes: read_bytes,
            producer_stats: producer,
            consumer_stats: consumer,
            producer_occupancy: o,
            consumer_occupancy: o,
        }
    }

    #[test]
    fn fat_dataflow_edge_fires_fusion_first_and_suppresses_tiling() {
        let stats = post_f_stats();
        let o = occ(Limiter::Warps, 8, 48);
        // Without dataflow evidence the post-F config recommends tiling.
        let plain = run_with_dataflow(&stats, &o, &[]);
        assert_eq!(plain[0].transform, Transform::TileSharedMemory);
        // The whole consumer input arrives over the adjacent edge.
        let cand = candidate(12_800_000, 12_800_000);
        let advice = run_with_dataflow(&stats, &o, std::slice::from_ref(&cand));
        assert_eq!(advice[0].transform, Transform::FuseKernels);
        assert_eq!(advice[0].rule, "fuse-kernels");
        assert!(advice[0].estimated_benefit_s > 0.0);
        assert!(advice[0].estimated_speedup > 1.0);
        assert!(advice[0].finding.contains("mog-update -> morphology"));
        assert!(
            !advice
                .iter()
                .any(|a| a.transform == Transform::TileSharedMemory),
            "fusion restructures the launches tiling would target"
        );
    }

    #[test]
    fn thin_dataflow_edge_stays_below_the_fusion_threshold() {
        let stats = post_f_stats();
        let o = occ(Limiter::Warps, 8, 48);
        // Edge carries under FUSION_MIN_EDGE_SHARE of the consumer reads.
        let cand = candidate(1_280_000, 12_800_000);
        let advice = run_with_dataflow(&stats, &o, std::slice::from_ref(&cand));
        assert!(
            !advice.iter().any(|a| a.transform == Transform::FuseKernels),
            "thin edges must not recommend fusion"
        );
        assert_eq!(advice[0].transform, Transform::TileSharedMemory);
    }

    #[test]
    fn fusion_is_gated_on_the_per_kernel_ladder_being_exhausted() {
        let o = occ(Limiter::Warps, 8, 48);
        let cand = candidate(12_800_000, 12_800_000);
        // Residual spill traffic (pre-D shape): rank-sort removal first.
        let mut spilled = post_f_stats();
        spilled.local_load_tx = 50_000;
        spilled.local_load_bytes_requested = 6_400_000;
        let advice = run_with_dataflow(&spilled, &o, std::slice::from_ref(&cand));
        assert!(!advice.iter().any(|a| a.transform == Transform::FuseKernels));
        // Divergent branches (pre-E shape): predication first.
        let mut divergent = post_f_stats();
        divergent.divergent_branch_slots = 2_000;
        let advice = run_with_dataflow(&divergent, &o, std::slice::from_ref(&cand));
        assert!(!advice.iter().any(|a| a.transform == Transform::FuseKernels));
    }

    #[test]
    fn roofline_places_low_intensity_kernels_under_the_memory_slope() {
        let cfg = GpuConfig::default();
        let stats = KernelStats {
            flops_f64: 1_000_000,
            global_load_tx: 1_000_000,
            warps: 100_000,
            ..Default::default()
        };
        let o = occ(Limiter::Warps, 8, 48);
        let t = kernel_time(&stats, &o, &cfg);
        let r = roofline(&stats, &t, &cfg);
        assert!(!r.compute_bound);
        assert!(r.arithmetic_intensity < r.ridge_intensity);
        // f64-only mix halves the compute ceiling.
        assert!((r.peak_compute_flops - cfg.peak_f32_flops() / cfg.f64_issue_cost).abs() < 1.0);
        assert!(r.achieved_flops <= r.ceiling_flops * (1.0 + 1e-9));
    }
}

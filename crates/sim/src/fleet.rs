//! Fleet-scale serving: shards camera streams across M simulated devices
//! of heterogeneous [`GpuConfig`] classes, with per-device memory budgets
//! and load-aware admission control that *sheds* infeasible streams
//! instead of over-committing a device or erroring out.
//!
//! This is the layer the ROADMAP's "millions of users" north star asks
//! for on top of the single-device [`crate::streams::StreamScheduler`]:
//!
//! * **Device classes and instances.** A [`FleetClass`] is a scheduling
//!   view of one `GpuConfig` preset (its copy-engine count and default
//!   memory pool); a [`FleetDevice`] is one instance of a class with its
//!   own memory budget. A fleet of three classes — Fermi `c2075`,
//!   `embedded`, and the big-HBM `hbm` preset — exercises real `device`
//!   label cardinality in the Prometheus exposition.
//! * **Per-class stream demands.** Because the classes differ in compute
//!   and PCIe speed, one camera stream costs different stage times on
//!   each class. A [`FleetStream`] carries the stream's [`StreamInput`]
//!   *per class* plus its device-memory footprint per class, so the
//!   dispatcher can price a stream on any device it considers.
//! * **Load-aware sharding with admission control.** [`plan_fleet`]
//!   places streams greedily: each stream goes to the device where the
//!   resulting compute load is smallest among devices with enough free
//!   memory and enough engine headroom. A stream no device can hold is
//!   **shed**: every one of its frames becomes a `frame_dropped` event
//!   (the event kind [`crate::serving`] reserved for exactly this
//!   dispatcher) attributed to the device that came closest to admitting
//!   it, with a structured reason (`"load"` or `"memory"`).
//! * **Fleet-level report.** [`fleet_report`] schedules each device's
//!   admitted streams with the existing scheduler, builds one
//!   [`ServingReport`] per device (stream ids remapped to fleet-global
//!   ids), and aggregates: merged latency histograms (exact, because
//!   every histogram shares the fixed bucket scheme), fleet
//!   streams-at-SLO, drop totals, and a merged event log.
//!   [`prometheus_fleet`] renders one exposition with real `device`
//!   cardinality and the new `mogpu_frames_dropped_total` family.
//! * **Which device to buy next.** [`advise_fleet`] replays the
//!   dispatcher counterfactually with one extra device of each class and
//!   reports the gain in whole-run streams-served-at-SLO (and the drop
//!   in shed frames), ranked — answering the ROADMAP's capacity-planning
//!   question from the report alone.

use crate::config::GpuConfig;
use crate::serving::{
    header, push_histogram, push_quantiles, push_sample, serving_report, EventKind,
    LatencyHistogram, ServingEvent, ServingReport, ServingWindowConfig, SloConfig,
};
use crate::streams::{
    validate_stream_inputs, ScheduleError, StreamInput, StreamSchedule, StreamScheduler,
};
use serde::{Deserialize, Serialize};

/// Schema version of [`FleetReport`].
pub const FLEET_SCHEMA: u32 = 1;

/// The scheduling view of one device class: everything the dispatcher
/// and the counterfactual advisor need, without carrying the full
/// [`GpuConfig`] through the report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetClass {
    /// Short class key (a [`GpuConfig::preset`] name); device labels are
    /// `{key}-{ordinal}`.
    pub key: String,
    /// The preset's marketing name, for report headers.
    pub name: String,
    /// DMA copy engines (drives transfer overlap in the scheduler).
    pub copy_engines: u32,
    /// Default device memory pool of the class in bytes — the budget a
    /// new instance of this class would bring.
    pub device_mem_bytes: usize,
}

impl FleetClass {
    /// The scheduling view of `cfg`, keyed `key`.
    pub fn of(key: &str, cfg: &GpuConfig) -> Self {
        FleetClass {
            key: key.to_string(),
            name: cfg.name.clone(),
            copy_engines: cfg.copy_engines,
            device_mem_bytes: cfg.device_mem_bytes,
        }
    }

    /// A `GpuConfig` sufficient for [`StreamScheduler`] (which reads only
    /// the copy-engine count).
    fn scheduler_cfg(&self) -> GpuConfig {
        GpuConfig {
            copy_engines: self.copy_engines,
            ..GpuConfig::default()
        }
    }
}

/// One device instance of the fleet.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetDevice {
    /// Fleet-wide device id (index into the spec's device list).
    pub id: usize,
    /// Index into the spec's class list.
    pub class: usize,
    /// The `device` label this instance's metrics carry (`{key}-{n}`).
    pub label: String,
    /// Device memory available to streams, in bytes.
    pub mem_budget: usize,
}

/// The fleet under simulation: its device classes and instances.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetSpec {
    /// Distinct device classes.
    pub classes: Vec<FleetClass>,
    /// Device instances; `devices[i].id == i`.
    pub devices: Vec<FleetDevice>,
}

impl FleetSpec {
    /// Builds a fleet from preset keys (e.g. `["c2075", "embedded",
    /// "hbm", "hbm"]` — duplicates become additional instances of the
    /// class). Unknown keys list the accepted names in the error.
    pub fn from_preset_keys(keys: &[&str]) -> Result<(FleetSpec, Vec<GpuConfig>), String> {
        let mut classes: Vec<FleetClass> = Vec::new();
        let mut cfgs: Vec<GpuConfig> = Vec::new();
        let mut devices: Vec<FleetDevice> = Vec::new();
        for key in keys {
            let cfg = GpuConfig::preset(key).ok_or_else(|| {
                format!(
                    "unknown device class {key:?}; expected one of {}",
                    GpuConfig::preset_names().join(", ")
                )
            })?;
            let class = match classes.iter().position(|c| c.key == *key) {
                Some(c) => c,
                None => {
                    classes.push(FleetClass::of(key, &cfg));
                    cfgs.push(cfg.clone());
                    classes.len() - 1
                }
            };
            let ordinal = devices.iter().filter(|d| d.class == class).count();
            devices.push(FleetDevice {
                id: devices.len(),
                class,
                label: format!("{key}-{ordinal}"),
                mem_budget: cfg.device_mem_bytes,
            });
        }
        Ok((FleetSpec { classes, devices }, cfgs))
    }

    /// Overrides every device's memory budget (bytes) — used to force
    /// deterministic oversubscription in tests and demos.
    pub fn with_budget(mut self, bytes: usize) -> Self {
        for d in &mut self.devices {
            d.mem_budget = bytes;
        }
        self
    }
}

/// One camera stream's demand, priced per device class.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetStream {
    /// `per_class[c]` is the stream's stage times and arrival pacing as
    /// it would run on class `c`.
    pub per_class: Vec<StreamInput>,
    /// `mem_per_class[c]` is the stream's device-memory footprint on
    /// class `c`, in bytes.
    pub mem_per_class: Vec<usize>,
}

impl FleetStream {
    /// A stream whose demand is identical on every class (convenient for
    /// synthetic fleets and tests).
    pub fn uniform(input: StreamInput, mem_bytes: usize, n_classes: usize) -> Self {
        FleetStream {
            per_class: vec![input; n_classes],
            mem_per_class: vec![mem_bytes; n_classes],
        }
    }

    /// Compute-engine utilization this stream demands on class `c`: mean
    /// kernel seconds per frame over the arrival period for live streams;
    /// an offline stream (period 0) wants a whole engine (1.0).
    pub fn utilization(&self, c: usize) -> f64 {
        let input = &self.per_class[c];
        let n = input.stages.len();
        if n == 0 {
            return 0.0;
        }
        let mean_kernel = input.stages.iter().map(|st| st.kernel).sum::<f64>() / n as f64;
        if input.arrival_period > 0.0 {
            mean_kernel / input.arrival_period
        } else {
            1.0
        }
    }
}

/// Where one stream landed.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StreamPlacement {
    /// Fleet-global stream id.
    pub stream: usize,
    /// Admitting device id, or `None` when shed.
    pub device: Option<usize>,
    /// Why the stream was shed (`"load"` or `"memory"`); `None` when
    /// admitted.
    pub shed_reason: Option<String>,
}

/// The dispatcher's placement of every stream.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetPlan {
    /// One placement per stream, in stream order.
    pub placements: Vec<StreamPlacement>,
    /// Final compute load (sum of admitted utilizations) per device.
    pub device_load: Vec<f64>,
    /// Final memory use per device, bytes.
    pub device_mem_used: Vec<usize>,
}

/// Shards `streams` across the fleet. Each stream is admitted to the
/// device where the resulting compute load is smallest among devices
/// with enough free memory and enough engine headroom (`load + demand <=
/// headroom`; 1.0 = never plan past engine saturation). A stream no
/// device can hold is shed, attributed to the device that came closest:
/// the least-loaded memory-feasible device, or — when memory was the
/// blocker everywhere — the device with the most free memory.
pub fn plan_fleet(spec: &FleetSpec, streams: &[FleetStream], headroom: f64) -> FleetPlan {
    let n_dev = spec.devices.len();
    let mut load = vec![0.0f64; n_dev];
    let mut mem_used = vec![0usize; n_dev];
    let mut placements = Vec::with_capacity(streams.len());
    for (s, stream) in streams.iter().enumerate() {
        let demand = |d: &FleetDevice| (stream.utilization(d.class), stream.mem_per_class[d.class]);
        let mut best: Option<(f64, usize)> = None; // (resulting load, device)
        for d in &spec.devices {
            let (util, mem) = demand(d);
            if mem_used[d.id] + mem > d.mem_budget {
                continue;
            }
            if load[d.id] + util > headroom + 1e-9 {
                continue;
            }
            let resulting = load[d.id] + util;
            if best.is_none_or(|(b, _)| resulting < b - 1e-12) {
                best = Some((resulting, d.id));
            }
        }
        match best {
            Some((resulting, id)) => {
                let (_, mem) = demand(&spec.devices[id]);
                load[id] = resulting;
                mem_used[id] += mem;
                placements.push(StreamPlacement {
                    stream: s,
                    device: Some(id),
                    shed_reason: None,
                });
            }
            None => {
                // Attribute the shed to the nearest-miss device.
                let mem_feasible: Vec<&FleetDevice> = spec
                    .devices
                    .iter()
                    .filter(|d| mem_used[d.id] + demand(d).1 <= d.mem_budget)
                    .collect();
                let (attributed, reason) = if let Some(d) = mem_feasible
                    .iter()
                    .min_by(|a, b| load[a.id].total_cmp(&load[b.id]))
                {
                    (d.id, "load")
                } else {
                    let d = spec
                        .devices
                        .iter()
                        .max_by_key(|d| d.mem_budget.saturating_sub(mem_used[d.id]))
                        .expect("fleet has at least one device");
                    (d.id, "memory")
                };
                let _ = attributed;
                placements.push(StreamPlacement {
                    stream: s,
                    device: None,
                    shed_reason: Some(reason.to_string()),
                });
            }
        }
    }
    FleetPlan {
        placements,
        device_load: load,
        device_mem_used: mem_used,
    }
}

/// One shed stream, as recorded in the [`FleetReport`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ShedStream {
    /// Fleet-global stream id.
    pub stream: usize,
    /// Device the drop events are attributed to (the nearest miss).
    pub device: usize,
    /// `"load"` or `"memory"`.
    pub reason: String,
    /// Frames dropped (the stream's whole frame sequence).
    pub frames: usize,
}

/// Per-device slice of the fleet report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetDeviceReport {
    /// Fleet-wide device id.
    pub id: usize,
    /// Index into [`FleetReport::classes`].
    pub class: usize,
    /// The `device` label this instance's metrics carry.
    pub label: String,
    /// Memory budget in bytes.
    pub mem_budget: usize,
    /// Memory admitted streams occupy, bytes.
    pub mem_used: usize,
    /// Final compute load (sum of admitted utilizations).
    pub load: f64,
    /// Fleet-global ids of admitted streams, in local stream order.
    pub admitted: Vec<usize>,
    /// The device's serving report; stream ids are fleet-global.
    pub serving: ServingReport,
}

/// Knobs of [`fleet_report`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetOptions {
    /// The SLO every stream is judged against.
    pub slo: SloConfig,
    /// Snapshot windowing of each device's serving report.
    pub window: ServingWindowConfig,
    /// In-flight buffers per stream on every device.
    pub buffers: usize,
    /// Attribution site label carried by all events.
    pub site: String,
    /// Dispatcher engine headroom (1.0 = plan up to saturation).
    pub headroom: f64,
}

impl Default for FleetOptions {
    fn default() -> Self {
        FleetOptions {
            slo: SloConfig::default(),
            window: ServingWindowConfig::default(),
            buffers: crate::streams::DOUBLE_BUFFER,
            site: "fleet".to_string(),
            headroom: 1.0,
        }
    }
}

/// The fleet-level serving report: per-device [`ServingReport`]s plus
/// the dispatcher's placements, shed records and drop events, and the
/// fleet-merged latency histograms.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetReport {
    /// Report schema version ([`FLEET_SCHEMA`]).
    pub schema: u32,
    /// Attribution site label.
    pub site: String,
    /// The SLO judged against.
    pub slo: SloConfig,
    /// Dispatcher engine headroom used.
    pub headroom: f64,
    /// In-flight buffers per stream.
    pub buffers: usize,
    /// Device classes of the fleet.
    pub classes: Vec<FleetClass>,
    /// Per-device reports, in device-id order.
    pub devices: Vec<FleetDeviceReport>,
    /// Streams no device could admit.
    pub shed: Vec<ShedStream>,
    /// One `frame_dropped` event per frame of every shed stream,
    /// time-ordered, attributed to the nearest-miss device.
    pub drop_events: Vec<ServingEvent>,
    /// The stream demands the dispatcher placed — retained so
    /// [`advise_fleet`] can replay counterfactual fleets from the report
    /// alone.
    pub demands: Vec<FleetStream>,
    /// Largest device makespan, extended to cover the latest drop event.
    pub makespan_s: f64,
    /// All devices' frame-latency histograms merged.
    pub frame_latency: LatencyHistogram,
    /// All devices' end-to-end histograms merged.
    pub e2e_latency: LatencyHistogram,
}

impl FleetReport {
    /// Total frames dropped by admission control (equals
    /// `drop_events.len()`).
    pub fn frames_dropped(&self) -> u64 {
        self.shed.iter().map(|s| s.frames as u64).sum()
    }

    /// Whole-run streams served at SLO, summed across devices.
    pub fn streams_at_slo(&self) -> u64 {
        self.devices
            .iter()
            .map(|d| d.serving.streams_at_slo())
            .sum()
    }

    /// Admitted stream count.
    pub fn streams_admitted(&self) -> usize {
        self.devices.iter().map(|d| d.admitted.len()).sum()
    }

    /// Total stream count (admitted + shed).
    pub fn streams_total(&self) -> usize {
        self.demands.len()
    }

    /// Every event of the run — each device's serving events plus the
    /// dispatcher's drop events — in one time-ordered log.
    pub fn all_events(&self) -> Vec<ServingEvent> {
        let mut events: Vec<ServingEvent> = self
            .devices
            .iter()
            .flat_map(|d| d.serving.events.iter().cloned())
            .chain(self.drop_events.iter().cloned())
            .collect();
        events.sort_by(|a, b| {
            a.t_s
                .total_cmp(&b.t_s)
                .then(a.stream.cmp(&b.stream))
                .then(a.frame.cmp(&b.frame))
        });
        events
    }
}

/// Plans the fleet, schedules every device, and assembles the
/// [`FleetReport`]. Stream demands are validated at admission
/// ([`StreamScheduler::try_schedule`] semantics): a non-finite or
/// negative stage time or arrival period on *any* class is a
/// [`ScheduleError`] naming the stream, not a panic later.
pub fn fleet_report(
    spec: &FleetSpec,
    streams: &[FleetStream],
    opts: &FleetOptions,
) -> Result<FleetReport, ScheduleError> {
    assert!(!spec.devices.is_empty(), "fleet needs at least one device");
    // Validate every class's view of every stream up front.
    let scheduler = StreamScheduler::new(opts.buffers);
    for c in 0..spec.classes.len() {
        let inputs: Vec<StreamInput> = streams.iter().map(|s| s.per_class[c].clone()).collect();
        validate_stream_inputs(&inputs)?;
    }

    let plan = plan_fleet(spec, streams, opts.headroom);

    let mut devices = Vec::with_capacity(spec.devices.len());
    for dev in &spec.devices {
        let admitted: Vec<usize> = plan
            .placements
            .iter()
            .filter(|p| p.device == Some(dev.id))
            .map(|p| p.stream)
            .collect();
        let inputs: Vec<StreamInput> = admitted
            .iter()
            .map(|&s| streams[s].per_class[dev.class].clone())
            .collect();
        let periods: Vec<f64> = inputs.iter().map(|i| i.arrival_period).collect();
        let class = &spec.classes[dev.class];
        let sched = scheduler.try_schedule(&inputs, &class.scheduler_cfg())?;
        let mut serving = serving_report(
            &sched,
            &periods,
            &dev.label,
            &opts.site,
            &opts.slo,
            &opts.window,
            None,
        );
        remap_stream_ids(&mut serving, &admitted);
        devices.push(FleetDeviceReport {
            id: dev.id,
            class: dev.class,
            label: dev.label.clone(),
            mem_budget: dev.mem_budget,
            mem_used: plan.device_mem_used[dev.id],
            load: plan.device_load[dev.id],
            admitted,
            serving,
        });
    }

    // Shed records and their drop events (frame i of a shed stream is
    // dropped the moment it would have arrived).
    let mut shed = Vec::new();
    let mut drop_events = Vec::new();
    for p in &plan.placements {
        let Some(reason) = &p.shed_reason else {
            continue;
        };
        let attributed = nearest_miss_device(spec, &plan, streams, p.stream);
        let class = spec.devices[attributed].class;
        let input = &streams[p.stream].per_class[class];
        shed.push(ShedStream {
            stream: p.stream,
            device: attributed,
            reason: reason.clone(),
            frames: input.stages.len(),
        });
        for i in 0..input.stages.len() {
            drop_events.push(ServingEvent {
                t_s: i as f64 * input.arrival_period,
                event: EventKind::FrameDropped,
                device: spec.devices[attributed].label.clone(),
                stream: p.stream,
                frame: i,
                site: opts.site.clone(),
                latency_s: None,
                e2e_s: None,
                deadline_s: None,
            });
        }
    }
    drop_events.sort_by(|a, b| {
        a.t_s
            .total_cmp(&b.t_s)
            .then(a.stream.cmp(&b.stream))
            .then(a.frame.cmp(&b.frame))
    });

    let mut frame_latency = LatencyHistogram::new();
    let mut e2e_latency = LatencyHistogram::new();
    let mut makespan = 0.0f64;
    for d in &devices {
        frame_latency.merge(&d.serving.pipeline_frame_latency);
        e2e_latency.merge(&d.serving.pipeline_e2e_latency);
        makespan = makespan.max(d.serving.makespan_s);
    }
    if let Some(last) = drop_events.last() {
        makespan = makespan.max(last.t_s);
    }

    Ok(FleetReport {
        schema: FLEET_SCHEMA,
        site: opts.site.clone(),
        slo: opts.slo,
        headroom: opts.headroom,
        buffers: opts.buffers,
        classes: spec.classes.clone(),
        devices,
        shed,
        drop_events,
        demands: streams.to_vec(),
        makespan_s: makespan,
        frame_latency,
        e2e_latency,
    })
}

/// The device a shed stream's drops are attributed to: least-loaded
/// memory-feasible device, else the device with the most free memory.
fn nearest_miss_device(
    spec: &FleetSpec,
    plan: &FleetPlan,
    streams: &[FleetStream],
    stream: usize,
) -> usize {
    let s = &streams[stream];
    spec.devices
        .iter()
        .filter(|d| plan.device_mem_used[d.id] + s.mem_per_class[d.class] <= d.mem_budget)
        .min_by(|a, b| plan.device_load[a.id].total_cmp(&plan.device_load[b.id]))
        .map(|d| d.id)
        .unwrap_or_else(|| {
            spec.devices
                .iter()
                .max_by_key(|d| d.mem_budget.saturating_sub(plan.device_mem_used[d.id]))
                .expect("fleet has at least one device")
                .id
        })
}

/// Rewrites a device-local serving report to fleet-global stream ids.
fn remap_stream_ids(report: &mut ServingReport, admitted: &[usize]) {
    let map = |local: usize| admitted.get(local).copied().unwrap_or(local);
    for s in &mut report.streams {
        s.stream = map(s.stream);
    }
    for snap in &mut report.snapshots {
        for s in &mut snap.streams {
            s.stream = map(s.stream);
        }
        for w in &mut snap.windows {
            w.stream = map(w.stream);
        }
    }
    for e in &mut report.events {
        e.stream = map(e.stream);
    }
}

// ---- Prometheus exposition with real device cardinality ----

/// Renders the fleet metrics of one replay snapshot in the Prometheus
/// text exposition format: the per-device serving families of
/// [`crate::serving::prometheus_serving`] under **one header per
/// family** (the format forbids repeating HELP/TYPE), plus the fleet
/// families — `mogpu_frames_dropped_total{device,stream}` and the
/// fleet-size gauges. `snapshot` indexes each device's snapshot list
/// (clamped per device); drop counters are cumulative through the fleet
/// replay clock so scrapes stay monotone.
pub fn prometheus_fleet(report: &FleetReport, snapshot: usize) -> String {
    let snaps: Vec<_> = report
        .devices
        .iter()
        .map(|d| {
            let n = d.serving.snapshots.len();
            d.serving.snapshots.get(snapshot.min(n.saturating_sub(1)))
        })
        .collect();
    let max_windows = report
        .devices
        .iter()
        .map(|d| d.serving.snapshots.len())
        .max()
        .unwrap_or(0);
    // The fleet replay clock: the furthest device clock, or the whole
    // makespan once every device has reached its final snapshot (so the
    // last drop event is always counted even when it lands after every
    // device finished).
    let clock = if max_windows == 0 || snapshot.saturating_add(1) >= max_windows {
        report.makespan_s
    } else {
        snaps.iter().flatten().map(|s| s.t_s).fold(0.0f64, f64::max)
    };

    let mut out = String::new();
    header(
        &mut out,
        "mogpu_frame_latency_seconds",
        "histogram",
        "Per-frame device sojourn latency (upload start to download end).",
    );
    for (d, snap) in report.devices.iter().zip(&snaps) {
        let Some(snap) = snap else { continue };
        for s in &snap.streams {
            let labels = vec![
                ("device", d.label.clone()),
                ("stream", s.stream.to_string()),
            ];
            push_histogram(
                &mut out,
                "mogpu_frame_latency_seconds",
                &labels,
                &s.frame_latency,
            );
        }
    }
    header(
        &mut out,
        "mogpu_e2e_latency_seconds",
        "histogram",
        "End-to-end frame latency (camera arrival to download end) the SLO judges.",
    );
    for (d, snap) in report.devices.iter().zip(&snaps) {
        let Some(snap) = snap else { continue };
        for s in &snap.streams {
            let labels = vec![
                ("device", d.label.clone()),
                ("stream", s.stream.to_string()),
            ];
            push_histogram(
                &mut out,
                "mogpu_e2e_latency_seconds",
                &labels,
                &s.e2e_latency,
            );
        }
    }
    header(
        &mut out,
        "mogpu_pipeline_e2e_latency_seconds",
        "histogram",
        "End-to-end latency across all streams of each device (merged histogram).",
    );
    for (d, snap) in report.devices.iter().zip(&snaps) {
        let Some(snap) = snap else { continue };
        let mut merged = LatencyHistogram::new();
        for s in &snap.streams {
            merged.merge(&s.e2e_latency);
        }
        push_histogram(
            &mut out,
            "mogpu_pipeline_e2e_latency_seconds",
            &[("device", d.label.clone())],
            &merged,
        );
    }
    header(
        &mut out,
        "mogpu_pipeline_e2e_latency_quantile_seconds",
        "gauge",
        "Per-device end-to-end latency quantiles from the merged buckets (absent until a frame completes).",
    );
    for (d, snap) in report.devices.iter().zip(&snaps) {
        let Some(snap) = snap else { continue };
        let mut merged = LatencyHistogram::new();
        for s in &snap.streams {
            merged.merge(&s.e2e_latency);
        }
        push_quantiles(
            &mut out,
            "mogpu_pipeline_e2e_latency_quantile_seconds",
            &[("device", d.label.clone())],
            &merged,
        );
    }
    header(
        &mut out,
        "mogpu_fleet_e2e_latency_seconds",
        "histogram",
        "End-to-end latency across the whole fleet (all devices merged).",
    );
    let mut fleet_merged = LatencyHistogram::new();
    for snap in snaps.iter().flatten() {
        for s in &snap.streams {
            fleet_merged.merge(&s.e2e_latency);
        }
    }
    push_histogram(
        &mut out,
        "mogpu_fleet_e2e_latency_seconds",
        &[],
        &fleet_merged,
    );
    header(
        &mut out,
        "mogpu_fleet_e2e_latency_quantile_seconds",
        "gauge",
        "Fleet-wide end-to-end latency quantiles from the merged buckets (absent until a frame completes).",
    );
    push_quantiles(
        &mut out,
        "mogpu_fleet_e2e_latency_quantile_seconds",
        &[],
        &fleet_merged,
    );

    header(
        &mut out,
        "mogpu_frames_completed_total",
        "counter",
        "Frames completed (downloaded) per device and stream, cumulative.",
    );
    for (d, snap) in report.devices.iter().zip(&snaps) {
        let Some(snap) = snap else { continue };
        for s in &snap.streams {
            push_sample(
                &mut out,
                "mogpu_frames_completed_total",
                &[
                    ("device", d.label.clone()),
                    ("stream", s.stream.to_string()),
                ],
                s.frames_completed as f64,
            );
        }
    }
    header(
        &mut out,
        "mogpu_slo_violations_total",
        "counter",
        "Frames whose end-to-end latency exceeded the deadline, cumulative.",
    );
    for (d, snap) in report.devices.iter().zip(&snaps) {
        let Some(snap) = snap else { continue };
        for s in &snap.streams {
            push_sample(
                &mut out,
                "mogpu_slo_violations_total",
                &[
                    ("device", d.label.clone()),
                    ("stream", s.stream.to_string()),
                ],
                s.slo_violations as f64,
            );
        }
    }
    header(
        &mut out,
        "mogpu_frames_dropped_total",
        "counter",
        "Frames shed by the fleet admission controller, per attributed device and stream.",
    );
    {
        // Cumulative through the replay clock, grouped (device, stream).
        let mut keys: Vec<(String, usize)> = Vec::new();
        let mut counts: Vec<u64> = Vec::new();
        for e in &report.drop_events {
            if e.t_s > clock + 1e-12 {
                continue;
            }
            let key = (e.device.clone(), e.stream);
            match keys.iter().position(|k| *k == key) {
                Some(i) => counts[i] += 1,
                None => {
                    keys.push(key);
                    counts.push(1);
                }
            }
        }
        for ((device, stream), n) in keys.into_iter().zip(counts) {
            push_sample(
                &mut out,
                "mogpu_frames_dropped_total",
                &[("device", device), ("stream", stream.to_string())],
                n as f64,
            );
        }
    }

    header(
        &mut out,
        "mogpu_slo_burn_rate",
        "gauge",
        "Windowed error-budget burn rate per device and stream (>1 = out of SLO).",
    );
    for (d, snap) in report.devices.iter().zip(&snaps) {
        let Some(snap) = snap else { continue };
        for w in &snap.windows {
            push_sample(
                &mut out,
                "mogpu_slo_burn_rate",
                &[
                    ("device", d.label.clone()),
                    ("stream", w.stream.to_string()),
                ],
                w.burn_rate,
            );
        }
    }
    header(
        &mut out,
        "mogpu_streams_at_slo",
        "gauge",
        "Streams served at SLO in the current window, per device.",
    );
    for (d, snap) in report.devices.iter().zip(&snaps) {
        let Some(snap) = snap else { continue };
        push_sample(
            &mut out,
            "mogpu_streams_at_slo",
            &[("device", d.label.clone())],
            snap.streams_at_slo as f64,
        );
    }
    header(
        &mut out,
        "mogpu_streams_serving",
        "gauge",
        "Streams admitted to each device.",
    );
    for (d, snap) in report.devices.iter().zip(&snaps) {
        let Some(snap) = snap else { continue };
        push_sample(
            &mut out,
            "mogpu_streams_serving",
            &[("device", d.label.clone())],
            snap.streams.len() as f64,
        );
    }
    header(
        &mut out,
        "mogpu_device_mem_used_bytes",
        "gauge",
        "Device memory occupied by admitted streams.",
    );
    for d in &report.devices {
        push_sample(
            &mut out,
            "mogpu_device_mem_used_bytes",
            &[("device", d.label.clone())],
            d.mem_used as f64,
        );
    }
    header(
        &mut out,
        "mogpu_device_mem_budget_bytes",
        "gauge",
        "Device memory budget available to streams.",
    );
    for d in &report.devices {
        push_sample(
            &mut out,
            "mogpu_device_mem_budget_bytes",
            &[("device", d.label.clone())],
            d.mem_budget as f64,
        );
    }
    header(
        &mut out,
        "mogpu_device_load",
        "gauge",
        "Planned compute load per device (sum of admitted utilizations).",
    );
    for d in &report.devices {
        push_sample(
            &mut out,
            "mogpu_device_load",
            &[("device", d.label.clone())],
            d.load,
        );
    }

    header(
        &mut out,
        "mogpu_fleet_devices",
        "gauge",
        "Devices in the fleet.",
    );
    push_sample(
        &mut out,
        "mogpu_fleet_devices",
        &[],
        report.devices.len() as f64,
    );
    header(
        &mut out,
        "mogpu_fleet_streams_total",
        "gauge",
        "Streams offered to the fleet (admitted + shed).",
    );
    push_sample(
        &mut out,
        "mogpu_fleet_streams_total",
        &[],
        report.streams_total() as f64,
    );
    header(
        &mut out,
        "mogpu_fleet_streams_admitted",
        "gauge",
        "Streams admitted across all devices.",
    );
    push_sample(
        &mut out,
        "mogpu_fleet_streams_admitted",
        &[],
        report.streams_admitted() as f64,
    );
    header(
        &mut out,
        "mogpu_fleet_streams_shed",
        "gauge",
        "Streams shed by admission control.",
    );
    push_sample(
        &mut out,
        "mogpu_fleet_streams_shed",
        &[],
        report.shed.len() as f64,
    );
    header(
        &mut out,
        "mogpu_fleet_streams_at_slo",
        "gauge",
        "Streams served at SLO in the current window, fleet-wide.",
    );
    push_sample(
        &mut out,
        "mogpu_fleet_streams_at_slo",
        &[],
        snaps
            .iter()
            .flatten()
            .map(|s| s.streams_at_slo)
            .sum::<u64>() as f64,
    );
    header(
        &mut out,
        "mogpu_serving_clock_seconds",
        "gauge",
        "Schedule-clock time of the served snapshot (fleet replay clock).",
    );
    push_sample(&mut out, "mogpu_serving_clock_seconds", &[], clock);
    out
}

// ---- the "which device to buy" advisor ----

/// One counterfactual: what adding one device of `class` buys.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetAdvisory {
    /// Class key of the hypothetical new device.
    pub class: String,
    /// Whole-run streams-at-SLO with the device added.
    pub streams_at_slo_after: u64,
    /// Gain over the current fleet (can be 0).
    pub streams_at_slo_gain: i64,
    /// Frames dropped with the device added.
    pub frames_dropped_after: u64,
    /// Drop reduction over the current fleet (positive = fewer drops).
    pub frames_dropped_cut: i64,
    /// Human-readable finding.
    pub finding: String,
}

/// Replays the dispatcher with one extra device of each class and ranks
/// the classes by the whole-run streams-at-SLO they would add (ties:
/// larger drop reduction, then class order). The first advisory is the
/// device to buy next. Works from the report alone — the demands are
/// retained in it for exactly this purpose.
pub fn advise_fleet(report: &FleetReport) -> Vec<FleetAdvisory> {
    let spec = FleetSpec {
        classes: report.classes.clone(),
        devices: report
            .devices
            .iter()
            .map(|d| FleetDevice {
                id: d.id,
                class: d.class,
                label: d.label.clone(),
                mem_budget: d.mem_budget,
            })
            .collect(),
    };
    let base = fleet_summary(&spec, &report.demands, report);
    let mut advisories: Vec<FleetAdvisory> = report
        .classes
        .iter()
        .enumerate()
        .map(|(c, class)| {
            let mut grown = spec.clone();
            let ordinal = grown.devices.iter().filter(|d| d.class == c).count();
            grown.devices.push(FleetDevice {
                id: grown.devices.len(),
                class: c,
                label: format!("{}-{}", class.key, ordinal),
                mem_budget: class.device_mem_bytes,
            });
            let with = fleet_summary(&grown, &report.demands, report);
            let gain = with.0 as i64 - base.0 as i64;
            let cut = base.1 as i64 - with.1 as i64;
            FleetAdvisory {
                class: class.key.clone(),
                streams_at_slo_after: with.0,
                streams_at_slo_gain: gain,
                frames_dropped_after: with.1,
                frames_dropped_cut: cut,
                finding: format!(
                    "adding one {} ({}) device moves fleet streams-at-SLO {} -> {} and dropped frames {} -> {}",
                    class.key, class.name, base.0, with.0, base.1, with.1
                ),
            }
        })
        .collect();
    advisories.sort_by(|a, b| {
        b.streams_at_slo_gain
            .cmp(&a.streams_at_slo_gain)
            .then(b.frames_dropped_cut.cmp(&a.frames_dropped_cut))
            .then(a.class.cmp(&b.class))
    });
    advisories
}

/// (whole-run streams-at-SLO, frames dropped) of a hypothetical fleet,
/// computed without building full serving reports.
fn fleet_summary(spec: &FleetSpec, streams: &[FleetStream], report: &FleetReport) -> (u64, u64) {
    let plan = plan_fleet(spec, streams, report.headroom);
    let scheduler = StreamScheduler::new(report.buffers);
    let mut at_slo = 0u64;
    let mut dropped = 0u64;
    for dev in &spec.devices {
        let admitted: Vec<&FleetStream> = plan
            .placements
            .iter()
            .filter(|p| p.device == Some(dev.id))
            .map(|p| &streams[p.stream])
            .collect();
        if admitted.is_empty() {
            continue;
        }
        let inputs: Vec<StreamInput> = admitted
            .iter()
            .map(|s| s.per_class[dev.class].clone())
            .collect();
        let class = &spec.classes[dev.class];
        let Ok(sched) = scheduler.try_schedule(&inputs, &class.scheduler_cfg()) else {
            continue;
        };
        at_slo += count_streams_at_slo(&sched, &inputs, &report.slo);
    }
    for p in &plan.placements {
        if p.shed_reason.is_some() {
            // Frame count is class-independent in well-formed demands;
            // use class 0's view.
            dropped += streams[p.stream].per_class[0].stages.len() as u64;
        }
    }
    (at_slo, dropped)
}

/// Streams whose whole-run end-to-end violation fraction stays within
/// the error budget.
fn count_streams_at_slo(sched: &StreamSchedule, inputs: &[StreamInput], slo: &SloConfig) -> u64 {
    sched
        .streams
        .iter()
        .zip(inputs)
        .filter(|(frames, input)| {
            if frames.is_empty() {
                return true;
            }
            let violations = frames
                .iter()
                .enumerate()
                .filter(|(i, f)| {
                    let e2e = if input.arrival_period > 0.0 {
                        f.d2h.end() - *i as f64 * input.arrival_period
                    } else {
                        f.d2h.end() - f.h2d.start
                    };
                    e2e > slo.deadline_s
                })
                .count();
            violations as f64 / frames.len() as f64 <= slo.error_budget
        })
        .count() as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::streams::StageTimes;

    fn three_class_spec() -> (FleetSpec, Vec<GpuConfig>) {
        FleetSpec::from_preset_keys(&["c2075", "embedded", "hbm"]).unwrap()
    }

    fn live(kernel: f64, period: f64, frames: usize, mem: usize, n_classes: usize) -> FleetStream {
        FleetStream::uniform(
            StreamInput::live(
                vec![StageTimes::uniform(1e-4, kernel, 1e-4); frames],
                period,
            ),
            mem,
            n_classes,
        )
    }

    #[test]
    fn spec_from_keys_builds_instances_and_rejects_unknown() {
        let (spec, cfgs) = FleetSpec::from_preset_keys(&["c2075", "hbm", "hbm"]).unwrap();
        assert_eq!(spec.classes.len(), 2);
        assert_eq!(spec.devices.len(), 3);
        assert_eq!(spec.devices[1].label, "hbm-0");
        assert_eq!(spec.devices[2].label, "hbm-1");
        assert_eq!(cfgs.len(), 2);
        let err = FleetSpec::from_preset_keys(&["warp9"]).unwrap_err();
        assert!(err.contains("warp9") && err.contains("c2075"), "{err}");
    }

    #[test]
    fn dispatcher_balances_load_across_devices() {
        let (spec, _) = three_class_spec();
        // Six light streams: all admitted, spread so no device exceeds
        // the headroom and loads stay balanced.
        let streams: Vec<FleetStream> = (0..6)
            .map(|_| live(5e-3, 1.0 / 30.0, 10, 1 << 20, 3))
            .collect();
        let plan = plan_fleet(&spec, &streams, 1.0);
        assert!(plan.placements.iter().all(|p| p.device.is_some()));
        for load in &plan.device_load {
            assert!(*load <= 1.0 + 1e-9);
        }
        let used: usize = plan.placements.iter().filter_map(|p| p.device).count();
        assert_eq!(used, 6);
        // More than one device gets work.
        let distinct: std::collections::BTreeSet<usize> =
            plan.placements.iter().filter_map(|p| p.device).collect();
        assert!(distinct.len() >= 2, "load-aware sharding uses the fleet");
    }

    #[test]
    fn oversubscription_sheds_instead_of_overcommitting() {
        let (spec, _) = three_class_spec();
        // Each stream demands 60% of an engine: two fit per device at
        // headroom 1.0 is false (0.6+0.6 > 1), so 3 devices hold 3
        // streams and the rest shed.
        let streams: Vec<FleetStream> = (0..5)
            .map(|_| live(0.02, 1.0 / 30.0, 8, 1 << 20, 3))
            .collect();
        let plan = plan_fleet(&spec, &streams, 1.0);
        let admitted = plan
            .placements
            .iter()
            .filter(|p| p.device.is_some())
            .count();
        let shed = plan
            .placements
            .iter()
            .filter(|p| p.shed_reason.as_deref() == Some("load"))
            .count();
        assert_eq!(admitted, 3);
        assert_eq!(shed, 2);
    }

    #[test]
    fn memory_budget_gates_admission() {
        let (spec, _) = three_class_spec();
        let spec = spec.with_budget(10 << 20); // 10 MiB per device
        let streams: Vec<FleetStream> = (0..4)
            .map(|_| live(1e-3, 1.0 / 30.0, 4, 8 << 20, 3))
            .collect();
        let plan = plan_fleet(&spec, &streams, 1.0);
        let shed: Vec<&StreamPlacement> = plan
            .placements
            .iter()
            .filter(|p| p.shed_reason.is_some())
            .collect();
        assert_eq!(shed.len(), 1, "3 devices x 1 stream each, 1 shed");
        assert_eq!(shed[0].shed_reason.as_deref(), Some("memory"));
    }

    #[test]
    fn fleet_report_emits_attributed_drop_events_with_consistent_counts() {
        let (spec, _) = three_class_spec();
        let streams: Vec<FleetStream> = (0..5)
            .map(|_| live(0.02, 1.0 / 30.0, 8, 1 << 20, 3))
            .collect();
        let report = fleet_report(&spec, &streams, &FleetOptions::default()).unwrap();
        assert_eq!(report.shed.len(), 2);
        assert_eq!(report.frames_dropped(), 16);
        assert_eq!(report.drop_events.len(), 16);
        for e in &report.drop_events {
            assert_eq!(e.event, EventKind::FrameDropped);
            assert!(
                report.devices.iter().any(|d| d.label == e.device),
                "attributed to a real device: {}",
                e.device
            );
            assert_eq!(e.site, "fleet");
        }
        // The merged event log contains them, time-ordered.
        let all = report.all_events();
        let drops = all
            .iter()
            .filter(|e| e.event == EventKind::FrameDropped)
            .count();
        assert_eq!(drops as u64, report.frames_dropped());
        for w in all.windows(2) {
            assert!(w[0].t_s <= w[1].t_s);
        }
        // Prometheus final snapshot agrees.
        let text = prometheus_fleet(&report, usize::MAX);
        let total: f64 = text
            .lines()
            .filter(|l| l.starts_with("mogpu_frames_dropped_total{"))
            .map(|l| l.rsplit(' ').next().unwrap().parse::<f64>().unwrap())
            .sum();
        assert_eq!(total, 16.0);
    }

    #[test]
    fn fleet_merged_histogram_equals_pooled_samples() {
        let (spec, _) = three_class_spec();
        let streams: Vec<FleetStream> = (0..4)
            .map(|_| live(3e-3, 1.0 / 25.0, 10, 1 << 20, 3))
            .collect();
        let report = fleet_report(&spec, &streams, &FleetOptions::default()).unwrap();
        let mut pooled = LatencyHistogram::new();
        for d in &report.devices {
            for s in &d.serving.streams {
                pooled.merge(&s.e2e_latency);
            }
        }
        assert_eq!(report.e2e_latency, pooled);
        assert_eq!(
            report.e2e_latency.count,
            report
                .devices
                .iter()
                .map(|d| d
                    .serving
                    .streams
                    .iter()
                    .map(|s| s.frames_completed)
                    .sum::<u64>())
                .sum::<u64>()
        );
    }

    /// Satellite: a fleet that sheds *every* stream serves no frames, so
    /// every latency histogram is empty and every quantile-derived gauge
    /// must be skipped — the exposition must contain no `NaN` sentinel
    /// and every sample line must parse.
    #[test]
    fn all_shed_fleet_exposition_parses_without_nan_quantiles() {
        let (spec, _) = three_class_spec();
        let spec = spec.with_budget(1 << 20); // 1 MiB: below every demand
        let streams: Vec<FleetStream> = (0..4)
            .map(|_| live(1e-3, 1.0 / 30.0, 4, 8 << 20, 3))
            .collect();
        let report = fleet_report(&spec, &streams, &FleetOptions::default()).unwrap();
        assert_eq!(report.shed.len(), 4, "every stream sheds");
        assert_eq!(report.e2e_latency.count, 0);
        let text = prometheus_fleet(&report, usize::MAX);
        assert!(
            !text.contains("NaN"),
            "empty histograms must skip quantiles"
        );
        assert!(
            text.contains("# TYPE mogpu_fleet_e2e_latency_quantile_seconds gauge"),
            "family header survives the skip"
        );
        assert!(!text
            .lines()
            .any(|l| !l.starts_with('#') && l.contains("_quantile_seconds")));
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            let value = line.rsplit(' ').next().unwrap();
            assert!(
                value.parse::<f64>().is_ok() || value == "+Inf",
                "unscrapeable sample line: {line}"
            );
        }
    }

    #[test]
    fn fleet_exposition_has_device_cardinality_and_one_header_per_family() {
        let (spec, _) = three_class_spec();
        let streams: Vec<FleetStream> = (0..6)
            .map(|_| live(5e-3, 1.0 / 30.0, 6, 1 << 20, 3))
            .collect();
        let report = fleet_report(&spec, &streams, &FleetOptions::default()).unwrap();
        let text = prometheus_fleet(&report, usize::MAX);
        let devices: std::collections::BTreeSet<&str> = text
            .lines()
            .filter(|l| !l.starts_with('#'))
            .filter_map(|l| l.split("device=\"").nth(1))
            .filter_map(|rest| rest.split('"').next())
            .collect();
        assert!(
            devices.len() >= 2,
            "need device cardinality, got {devices:?}"
        );
        // One header per family.
        let mut seen = std::collections::BTreeMap::new();
        for l in text.lines().filter(|l| l.starts_with("# TYPE ")) {
            *seen.entry(l.to_string()).or_insert(0u32) += 1;
        }
        for (l, n) in seen {
            assert_eq!(n, 1, "repeated header: {l}");
        }
        assert!(text.contains("# TYPE mogpu_frames_dropped_total counter"));
        assert!(text.contains("mogpu_fleet_devices 3"));
    }

    #[test]
    fn stream_ids_in_device_reports_are_fleet_global() {
        let (spec, _) = three_class_spec();
        let streams: Vec<FleetStream> = (0..5)
            .map(|_| live(5e-3, 1.0 / 30.0, 4, 1 << 20, 3))
            .collect();
        let report = fleet_report(&spec, &streams, &FleetOptions::default()).unwrap();
        let mut seen: Vec<usize> = Vec::new();
        for d in &report.devices {
            for s in &d.serving.streams {
                assert!(d.admitted.contains(&s.stream));
                seen.push(s.stream);
            }
            for e in &d.serving.events {
                assert!(d.admitted.contains(&e.stream));
            }
        }
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen.len(), report.streams_admitted());
    }

    #[test]
    fn advisor_names_the_class_that_recovers_shed_streams() {
        // One small embedded device, overloaded by streams that an HBM
        // device could absorb: the advisor must put a capacity class
        // first with a positive streams-at-SLO gain.
        let (spec, _) = FleetSpec::from_preset_keys(&["embedded"]).unwrap();
        let mut spec = spec;
        // Make the hypothetical alternatives visible to the advisor.
        let (all, _) = FleetSpec::from_preset_keys(&["embedded", "hbm"]).unwrap();
        spec.classes = all.classes.clone();
        let streams: Vec<FleetStream> = (0..4)
            .map(|_| {
                FleetStream {
                    // Heavy on embedded (60% util), light on hbm (6%).
                    per_class: vec![
                        StreamInput::live(
                            vec![StageTimes::uniform(1e-4, 0.02, 1e-4); 8],
                            1.0 / 30.0,
                        ),
                        StreamInput::live(
                            vec![StageTimes::uniform(1e-4, 0.002, 1e-4); 8],
                            1.0 / 30.0,
                        ),
                    ],
                    mem_per_class: vec![1 << 20, 1 << 20],
                }
            })
            .collect();
        let report = fleet_report(&spec, &streams, &FleetOptions::default()).unwrap();
        assert!(!report.shed.is_empty(), "setup must oversubscribe");
        let advisories = advise_fleet(&report);
        assert_eq!(advisories.len(), 2);
        let best = &advisories[0];
        assert_eq!(best.class, "hbm", "capacity class wins: {advisories:?}");
        assert!(best.streams_at_slo_gain > 0);
        assert!(best.frames_dropped_cut > 0);
        assert!(best.finding.contains("hbm"));
    }

    #[test]
    fn fleet_report_rejects_poisoned_demands_with_structured_error() {
        let (spec, _) = three_class_spec();
        let mut s = live(5e-3, 1.0 / 30.0, 4, 1 << 20, 3);
        s.per_class[1].stages[2].kernel = f64::NAN;
        let err = fleet_report(&spec, &[s], &FleetOptions::default()).unwrap_err();
        assert_eq!(err.field, "kernel");
        assert_eq!(err.frame, Some(2));
    }
}

//! Time-resolved telemetry: per-SM counter sampling over the pipeline
//! clock, and Prometheus text-exposition export.
//!
//! The simulator is *functional + analytic*: counters
//! ([`KernelStats`](crate::stats::KernelStats)) are launch-lifetime
//! aggregates and kernel time is the closed-form three-bound roofline of
//! [`timing`](crate::timing). There is no cycle-level execution to sample,
//! so time-resolved series are **synthesized** from the analytic model:
//!
//! * The **clock** is the pipeline schedule — the same `Span`s (seconds
//!   from pipeline start) that [`chrome_trace`](crate::chrome_trace)
//!   plots, so counter series and timeline line up in one view.
//! * Each kernel launch contributes its counters at a **constant rate**
//!   over its scheduled span (the analytic model resolves no intra-launch
//!   phases), attributed **per SM** by the launch's block count
//!   distributed round-robin — SM *i* of *S* receives
//!   `blocks/S + (i < blocks mod S)` blocks and the matching share of
//!   issue cycles, so launches that do not tile the machine evenly show
//!   genuinely uneven per-SM load.
//! * Time is bucketed into a **uniform quantum** `makespan / samples`
//!   (64 samples by default). A uniform quantum makes the integral
//!   identities exact: summing a rate series times the quantum recovers
//!   the aggregate counter to floating-point accuracy, which is what the
//!   consistency tests (and the CI regression gate) assert.
//!
//! Derived series semantics under this model:
//!
//! * `occupancy` — resident-warp occupancy of the SM *while it is busy*
//!   (0 when idle); its busy-time-weighted mean equals the aggregate
//!   occupancy exactly.
//! * `ipc` — weighted warp-instruction issue slots retired per clock on
//!   that SM (1.0 means the issue port is saturated).
//! * `eligible_warps` / `stalled_warps` — a modelled decomposition of the
//!   time-averaged resident warps: warps issuing per cycle (= ipc, capped
//!   at residency) are *eligible*, the remainder are *stalled* on memory.
//! * `dram_bandwidth` — device-wide bytes/s across the DRAM interface.
//! * `l2_hit_rate` — L2 hits over accesses in the quantum (0 when the
//!   cache model is off or the quantum has no traffic).
//! * `copy_engine_utilization` — busy copy-engine time over
//!   `quantum x copy_engines`.

use crate::config::GpuConfig;
use crate::dma::{FrameSpans, Span};
use crate::occupancy::Occupancy;
use crate::stats::{DerivedMetrics, KernelStats};
use crate::streams::StreamSchedule;
use serde::{Deserialize, Serialize};

/// How a pipeline is sampled.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TelemetryConfig {
    /// Number of uniform time quanta covering the pipeline makespan.
    pub samples: usize,
}

impl Default for TelemetryConfig {
    fn default() -> Self {
        // 64 quanta resolve pipeline fill/drain and per-frame cadence at
        // typical run lengths while keeping exposition output compact
        // (14 SMs x 64 quanta x 4 series ~ 3.6k samples).
        TelemetryConfig { samples: 64 }
    }
}

/// One kernel launch (or an even share of one) placed on the pipeline
/// clock: the scheduled span plus the counter totals attributed to it.
#[derive(Debug, Clone)]
pub struct KernelSlice {
    /// Scheduled execution interval on the compute engine.
    pub span: Span,
    /// Per-SM share of this slice's counters (round-robin block
    /// distribution, sums to 1; 0 for SMs the launch never reached).
    pub sm_weights: Vec<f64>,
    /// Weighted warp-instruction issue cycles of the slice.
    pub issue_cycles: f64,
    /// Bytes moved across the DRAM interface by the slice.
    pub dram_bytes: f64,
    /// L2 line hits of the slice.
    pub l2_hits: f64,
    /// L2 line misses of the slice.
    pub l2_misses: f64,
    /// Resident warps per busy SM.
    pub resident_warps: f64,
    /// Resident-warp occupancy of busy SMs, in [0, 1].
    pub occupancy: f64,
}

impl KernelSlice {
    /// Builds a slice from launch counters: `share` of `stats` (1.0 for a
    /// whole launch, `1/group` for one frame of a grouped launch) placed
    /// at `span`. The per-SM weights always reflect the *whole* launch's
    /// round-robin block distribution.
    pub fn from_stats(
        span: Span,
        stats: &KernelStats,
        occ: &Occupancy,
        cfg: &GpuConfig,
        share: f64,
    ) -> Self {
        let sms = cfg.num_sms.max(1) as usize;
        let blocks = stats.blocks;
        let sm_weights = if blocks == 0 {
            vec![1.0 / sms as f64; sms]
        } else {
            (0..sms as u64)
                .map(|i| {
                    let b = blocks / sms as u64 + u64::from(i < blocks % sms as u64);
                    b as f64 / blocks as f64
                })
                .collect()
        };
        KernelSlice {
            span,
            sm_weights,
            issue_cycles: stats.issue_cycles * share,
            dram_bytes: stats.bytes_transacted(cfg) as f64 * share,
            l2_hits: stats.l2_hits as f64 * share,
            l2_misses: stats.l2_misses as f64 * share,
            resident_warps: occ.resident_warps as f64,
            occupancy: occ.occupancy,
        }
    }
}

/// Time series of one SM, one value per quantum.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SmSeries {
    /// SM index.
    pub sm: u32,
    /// Fraction of the quantum this SM executed a kernel, in [0, 1].
    pub active: Vec<f64>,
    /// Resident-warp occupancy while busy (0 when idle).
    pub occupancy: Vec<f64>,
    /// Weighted issue slots retired per clock.
    pub ipc: Vec<f64>,
    /// Modelled warps issuing per cycle (eligible), time-averaged.
    pub eligible_warps: Vec<f64>,
    /// Modelled resident-but-stalled warps, time-averaged.
    pub stalled_warps: Vec<f64>,
}

/// Per-SM and device-wide time series over one pipeline's makespan.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PipelineTelemetry {
    /// Quantum length (seconds); `quantum * dram_bandwidth.len()` spans
    /// the makespan.
    pub quantum: f64,
    /// End of the last scheduled span (seconds).
    pub makespan: f64,
    /// SMs sampled.
    pub num_sms: u32,
    /// Per-SM series, indexed by SM.
    pub sm: Vec<SmSeries>,
    /// Device-wide DRAM bandwidth (bytes/s) per quantum.
    pub dram_bandwidth: Vec<f64>,
    /// Cumulative DRAM bytes through the end of each quantum (monotone).
    pub dram_bytes_cumulative: Vec<f64>,
    /// L2 hit fraction per quantum (0 without traffic or cache model).
    pub l2_hit_rate: Vec<f64>,
    /// Copy-engine busy fraction per quantum, over all engines.
    pub copy_engine_utilization: Vec<f64>,
}

impl PipelineTelemetry {
    /// Number of quanta.
    pub fn samples(&self) -> usize {
        self.dram_bandwidth.len()
    }

    /// Start time (seconds) of quantum `q`.
    pub fn quantum_start(&self, q: usize) -> f64 {
        q as f64 * self.quantum
    }

    /// Integral of the bandwidth series: total DRAM bytes. Matches the
    /// aggregate `bytes_transacted` of the sampled launches to
    /// floating-point accuracy.
    pub fn total_dram_bytes(&self) -> f64 {
        self.dram_bandwidth.iter().sum::<f64>() * self.quantum
    }

    /// Busy-time-weighted mean of the per-SM occupancy series. Matches
    /// the aggregate occupancy exactly when all sampled launches share
    /// one occupancy (the common case of a single-kernel pipeline).
    pub fn mean_busy_occupancy(&self) -> f64 {
        let mut weighted = 0.0;
        let mut busy = 0.0;
        for s in &self.sm {
            for (o, a) in s.occupancy.iter().zip(&s.active) {
                weighted += o * a;
                busy += a;
            }
        }
        if busy > 0.0 {
            weighted / busy
        } else {
            0.0
        }
    }
}

/// Samples a pipeline: kernel slices plus copy-engine spans, bucketed
/// into uniform quanta per [`TelemetryConfig`].
pub fn sample_pipeline(
    kernels: &[KernelSlice],
    copies: &[Span],
    cfg: &GpuConfig,
    tc: &TelemetryConfig,
) -> PipelineTelemetry {
    let makespan = kernels
        .iter()
        .map(|k| k.span.end())
        .chain(copies.iter().map(Span::end))
        .fold(0.0f64, f64::max);
    let sms = cfg.num_sms.max(1) as usize;
    let n = if makespan > 0.0 { tc.samples.max(1) } else { 0 };
    let quantum = if n > 0 { makespan / n as f64 } else { 0.0 };

    let mut busy_time = vec![vec![0.0f64; n]; sms];
    let mut occ_time = vec![vec![0.0f64; n]; sms];
    let mut warp_time = vec![vec![0.0f64; n]; sms];
    let mut issue = vec![vec![0.0f64; n]; sms];
    let mut dram_bytes = vec![0.0f64; n];
    let mut l2h = vec![0.0f64; n];
    let mut l2m = vec![0.0f64; n];
    let mut copy_busy = vec![0.0f64; n];

    // Distributes `span` over the quanta it overlaps, calling
    // `f(q, overlap_seconds)` for each.
    let spread = |span: &Span, f: &mut dyn FnMut(usize, f64)| {
        if span.dur <= 0.0 || n == 0 {
            return;
        }
        let first = ((span.start / quantum).floor() as usize).min(n - 1);
        let last = ((span.end() / quantum).ceil() as usize).clamp(first + 1, n);
        for q in first..last {
            let lo = q as f64 * quantum;
            let hi = if q + 1 == n { makespan } else { lo + quantum };
            let ov = span.end().min(hi) - span.start.max(lo);
            if ov > 0.0 {
                f(q, ov);
            }
        }
    };

    for k in kernels {
        spread(&k.span, &mut |q, ov| {
            let frac = ov / k.span.dur;
            dram_bytes[q] += k.dram_bytes * frac;
            l2h[q] += k.l2_hits * frac;
            l2m[q] += k.l2_misses * frac;
            for (i, &w) in k.sm_weights.iter().enumerate() {
                if w <= 0.0 {
                    continue;
                }
                busy_time[i][q] += ov;
                occ_time[i][q] += ov * k.occupancy;
                warp_time[i][q] += ov * k.resident_warps;
                issue[i][q] += k.issue_cycles * w * frac;
            }
        });
    }
    for c in copies {
        spread(c, &mut |q, ov| copy_busy[q] += ov);
    }

    let engines = cfg.copy_engines.max(1) as f64;
    let sm = (0..sms)
        .map(|i| {
            let mut s = SmSeries {
                sm: i as u32,
                active: Vec::with_capacity(n),
                occupancy: Vec::with_capacity(n),
                ipc: Vec::with_capacity(n),
                eligible_warps: Vec::with_capacity(n),
                stalled_warps: Vec::with_capacity(n),
            };
            for q in 0..n {
                let b = busy_time[i][q];
                s.active.push((b / quantum).min(1.0));
                s.occupancy
                    .push(if b > 0.0 { occ_time[i][q] / b } else { 0.0 });
                let ipc = issue[i][q] / (quantum * cfg.clock_hz);
                let resident = warp_time[i][q] / quantum;
                let eligible = ipc.min(resident);
                s.ipc.push(ipc);
                s.eligible_warps.push(eligible);
                s.stalled_warps.push((resident - eligible).max(0.0));
            }
            s
        })
        .collect();

    let mut cumulative = Vec::with_capacity(n);
    let mut acc = 0.0;
    for &b in &dram_bytes {
        acc += b;
        cumulative.push(acc);
    }
    PipelineTelemetry {
        quantum,
        makespan,
        num_sms: sms as u32,
        sm,
        dram_bandwidth: dram_bytes
            .iter()
            .map(|b| b / quantum.max(f64::MIN_POSITIVE))
            .collect(),
        dram_bytes_cumulative: cumulative,
        l2_hit_rate: (0..n)
            .map(|q| {
                let total = l2h[q] + l2m[q];
                if total > 0.0 {
                    l2h[q] / total
                } else {
                    0.0
                }
            })
            .collect(),
        // Clamped like `active`: a fully saturated quantum can land one
        // ulp above 1.0 after the overlap accumulation.
        copy_engine_utilization: copy_busy
            .iter()
            .map(|b| (b / (quantum * engines)).min(1.0))
            .collect(),
    }
}

/// Samples a single-pipeline schedule whose launches all share one
/// counter aggregate: frame `j`'s kernel span receives the share of
/// `stats` proportional to its kernel duration.
pub fn sample_schedule(
    schedule: &[FrameSpans],
    stats: &KernelStats,
    occ: &Occupancy,
    cfg: &GpuConfig,
    tc: &TelemetryConfig,
) -> PipelineTelemetry {
    let kernel_total: f64 = schedule.iter().map(|f| f.kernel.dur).sum();
    let kernels: Vec<KernelSlice> = schedule
        .iter()
        .map(|f| {
            let share = if kernel_total > 0.0 {
                f.kernel.dur / kernel_total
            } else {
                0.0
            };
            KernelSlice::from_stats(f.kernel, stats, occ, cfg, share)
        })
        .collect();
    let copies: Vec<Span> = schedule.iter().flat_map(|f| [f.h2d, f.d2h]).collect();
    sample_pipeline(&kernels, &copies, cfg, tc)
}

/// Samples a multi-stream schedule; `per_stream` pairs each stream's
/// aggregate counters and occupancy, split over that stream's kernel
/// spans by duration.
pub fn sample_streams(
    schedule: &StreamSchedule,
    per_stream: &[(&KernelStats, &Occupancy)],
    cfg: &GpuConfig,
    tc: &TelemetryConfig,
) -> PipelineTelemetry {
    let mut kernels = Vec::new();
    let mut copies = Vec::new();
    for (frames, (stats, occ)) in schedule.streams.iter().zip(per_stream) {
        let kernel_total: f64 = frames.iter().map(|f| f.kernel.dur).sum();
        for f in frames {
            let share = if kernel_total > 0.0 {
                f.kernel.dur / kernel_total
            } else {
                0.0
            };
            kernels.push(KernelSlice::from_stats(f.kernel, stats, occ, cfg, share));
            copies.push(f.h2d);
            copies.push(f.d2h);
        }
    }
    sample_pipeline(&kernels, &copies, cfg, tc)
}

// ---- Prometheus text exposition ----

/// Escapes a label value per the Prometheus text exposition format.
pub fn escape_label(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

struct Metric {
    name: &'static str,
    kind: &'static str,
    help: &'static str,
}

const METRICS: &[Metric] = &[
    Metric {
        name: "mogpu_quantum_seconds",
        kind: "gauge",
        help: "Telemetry sampling quantum of the pipeline (seconds).",
    },
    Metric {
        name: "mogpu_makespan_seconds",
        kind: "gauge",
        help: "Pipeline makespan covered by the telemetry series (seconds).",
    },
    Metric {
        name: "mogpu_sm_occupancy",
        kind: "gauge",
        help: "Resident-warp occupancy of one SM while busy during quantum q (0 when idle).",
    },
    Metric {
        name: "mogpu_sm_ipc",
        kind: "gauge",
        help: "Weighted warp-instruction issue slots retired per clock on one SM during quantum q.",
    },
    Metric {
        name: "mogpu_sm_eligible_warps",
        kind: "gauge",
        help: "Modelled warps issuing per cycle on one SM during quantum q (time-averaged).",
    },
    Metric {
        name: "mogpu_sm_stalled_warps",
        kind: "gauge",
        help: "Modelled resident-but-stalled warps on one SM during quantum q (time-averaged).",
    },
    Metric {
        name: "mogpu_dram_bandwidth_bytes_per_second",
        kind: "gauge",
        help: "Device-wide DRAM bandwidth during quantum q.",
    },
    Metric {
        name: "mogpu_l2_hit_rate",
        kind: "gauge",
        help: "L2 hits over L2 accesses during quantum q (0 without traffic or cache model).",
    },
    Metric {
        name: "mogpu_copy_engine_utilization",
        kind: "gauge",
        help: "Copy-engine busy fraction during quantum q, over all copy engines.",
    },
    Metric {
        name: "mogpu_dram_bytes_total",
        kind: "counter",
        help: "Cumulative DRAM bytes through the end of quantum q (monotone in q).",
    },
    Metric {
        name: "mogpu_kernel_branch_efficiency",
        kind: "gauge",
        help: "Non-divergent branch slots over branch slots for the pipeline's kernel.",
    },
    Metric {
        name: "mogpu_kernel_gld_efficiency",
        kind: "gauge",
        help: "Requested over transacted global-load bytes for the pipeline's kernel.",
    },
    Metric {
        name: "mogpu_kernel_gst_efficiency",
        kind: "gauge",
        help: "Requested over transacted global-store bytes for the pipeline's kernel.",
    },
    Metric {
        name: "mogpu_kernel_mem_access_efficiency",
        kind: "gauge",
        help: "Requested over transacted DRAM bytes (all spaces) for the pipeline's kernel.",
    },
    Metric {
        name: "mogpu_kernel_store_transactions",
        kind: "gauge",
        help: "DRAM store transactions of the pipeline's kernel over the run.",
    },
    Metric {
        name: "mogpu_kernel_total_transactions",
        kind: "gauge",
        help: "DRAM transactions of the pipeline's kernel over the run.",
    },
    Metric {
        name: "mogpu_kernel_occupancy",
        kind: "gauge",
        help: "Resident-warp occupancy of the pipeline's kernel; the limiter label names what caps it.",
    },
];

/// Per-kernel scalar gauges exported beside a pipeline's time series:
/// the derived profiler metrics plus the occupancy value and its
/// limiter label.
#[derive(Debug, Clone)]
pub struct KernelGauges {
    /// Derived profiler metrics of the kernel's summed counters.
    pub metrics: DerivedMetrics,
    /// Occupancy in [0, 1].
    pub occupancy: f64,
    /// What caps the resident warps, e.g. `Registers`.
    pub limiter: String,
}

impl KernelGauges {
    /// Bundles a kernel's derived metrics and occupancy for exposition.
    pub fn new(metrics: &DerivedMetrics, occ: &Occupancy) -> Self {
        KernelGauges {
            metrics: *metrics,
            occupancy: occ.occupancy,
            limiter: format!("{:?}", occ.limiter),
        }
    }
}

fn sample_line(out: &mut String, name: &str, labels: &[(&str, String)], value: f64) {
    out.push_str(name);
    out.push('{');
    for (i, (k, v)) in labels.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(k);
        out.push_str("=\"");
        out.push_str(&escape_label(v));
        out.push('"');
    }
    out.push_str("} ");
    if value.is_finite() {
        out.push_str(&format!("{value:?}"));
    } else {
        out.push_str("NaN");
    }
    out.push('\n');
}

/// Renders one or more labelled pipelines in the Prometheus text
/// exposition format (`# HELP`/`# TYPE` once per metric, samples grouped
/// by metric, then pipeline, then SM, then quantum — deterministic).
/// The optional [`KernelGauges`] adds the per-kernel derived metrics and
/// occupancy; pipelines without one (e.g. stream aggregates) skip those
/// samples while keeping the metric declarations.
pub fn prometheus(pipelines: &[(String, &PipelineTelemetry, Option<KernelGauges>)]) -> String {
    let mut out = String::new();
    for m in METRICS {
        out.push_str(&format!("# HELP {} {}\n", m.name, m.help));
        out.push_str(&format!("# TYPE {} {}\n", m.name, m.kind));
        for (label, t, gauges) in pipelines {
            let pl = |extra: Vec<(&'static str, String)>| -> Vec<(&'static str, String)> {
                let mut l = vec![("pipeline", label.clone())];
                l.extend(extra);
                l
            };
            match m.name {
                "mogpu_quantum_seconds" => sample_line(&mut out, m.name, &pl(vec![]), t.quantum),
                "mogpu_makespan_seconds" => sample_line(&mut out, m.name, &pl(vec![]), t.makespan),
                "mogpu_kernel_branch_efficiency"
                | "mogpu_kernel_gld_efficiency"
                | "mogpu_kernel_gst_efficiency"
                | "mogpu_kernel_mem_access_efficiency"
                | "mogpu_kernel_store_transactions"
                | "mogpu_kernel_total_transactions"
                | "mogpu_kernel_occupancy" => {
                    if let Some(g) = gauges {
                        let (labels, value) = match m.name {
                            "mogpu_kernel_branch_efficiency" => {
                                (pl(vec![]), g.metrics.branch_efficiency)
                            }
                            "mogpu_kernel_gld_efficiency" => (pl(vec![]), g.metrics.gld_efficiency),
                            "mogpu_kernel_gst_efficiency" => (pl(vec![]), g.metrics.gst_efficiency),
                            "mogpu_kernel_mem_access_efficiency" => {
                                (pl(vec![]), g.metrics.mem_access_efficiency)
                            }
                            "mogpu_kernel_store_transactions" => {
                                (pl(vec![]), g.metrics.store_transactions as f64)
                            }
                            "mogpu_kernel_total_transactions" => {
                                (pl(vec![]), g.metrics.total_transactions as f64)
                            }
                            _ => (pl(vec![("limiter", g.limiter.clone())]), g.occupancy),
                        };
                        sample_line(&mut out, m.name, &labels, value);
                    }
                }
                "mogpu_sm_occupancy"
                | "mogpu_sm_ipc"
                | "mogpu_sm_eligible_warps"
                | "mogpu_sm_stalled_warps" => {
                    for s in &t.sm {
                        let series = match m.name {
                            "mogpu_sm_occupancy" => &s.occupancy,
                            "mogpu_sm_ipc" => &s.ipc,
                            "mogpu_sm_eligible_warps" => &s.eligible_warps,
                            _ => &s.stalled_warps,
                        };
                        for (q, &v) in series.iter().enumerate() {
                            sample_line(
                                &mut out,
                                m.name,
                                &pl(vec![("sm", s.sm.to_string()), ("q", q.to_string())]),
                                v,
                            );
                        }
                    }
                }
                _ => {
                    let series = match m.name {
                        "mogpu_dram_bandwidth_bytes_per_second" => &t.dram_bandwidth,
                        "mogpu_l2_hit_rate" => &t.l2_hit_rate,
                        "mogpu_copy_engine_utilization" => &t.copy_engine_utilization,
                        _ => &t.dram_bytes_cumulative,
                    };
                    for (q, &v) in series.iter().enumerate() {
                        sample_line(&mut out, m.name, &pl(vec![("q", q.to_string())]), v);
                    }
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dma::{pipeline_schedule, OverlapMode};

    fn stats(blocks: u64) -> KernelStats {
        KernelStats {
            blocks,
            warps: blocks * 4,
            issue_cycles: 1e6,
            global_load_tx: 10_000,
            global_store_tx: 2_000,
            l2_hits: 500,
            l2_misses: 1_500,
            ..Default::default()
        }
    }

    fn occ() -> Occupancy {
        Occupancy {
            resident_blocks: 8,
            resident_warps: 32,
            resident_threads: 1024,
            occupancy: 32.0 / 48.0,
            limiter: crate::occupancy::Limiter::Blocks,
        }
    }

    #[test]
    fn integral_identities_hold() {
        let cfg = GpuConfig::tesla_c2075();
        let sched = pipeline_schedule(5, 1e-3, 2e-3, 1e-3, OverlapMode::DoubleBuffered, &cfg);
        let s = stats(150);
        let t = sample_schedule(&sched, &s, &occ(), &cfg, &TelemetryConfig::default());
        let total = s.bytes_transacted(&cfg) as f64;
        assert!(
            (t.total_dram_bytes() - total).abs() / total < 1e-9,
            "integral {} vs aggregate {}",
            t.total_dram_bytes(),
            total
        );
        assert!((t.mean_busy_occupancy() - occ().occupancy).abs() < 1e-9);
        // Cumulative counter is monotone and ends at the total.
        for w in t.dram_bytes_cumulative.windows(2) {
            assert!(w[1] >= w[0]);
        }
        let last = *t.dram_bytes_cumulative.last().unwrap();
        assert!((last - total).abs() / total < 1e-9);
    }

    #[test]
    fn uneven_block_count_loads_sms_unevenly() {
        let cfg = GpuConfig::tesla_c2075(); // 14 SMs
        let span = Span {
            start: 0.0,
            dur: 1e-3,
        };
        // 15 blocks over 14 SMs: SM 0 gets 2, the rest 1.
        let k = KernelSlice::from_stats(span, &stats(15), &occ(), &cfg, 1.0);
        assert!((k.sm_weights.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!(k.sm_weights[0] > k.sm_weights[1]);
        let t = sample_pipeline(&[k], &[], &cfg, &TelemetryConfig { samples: 4 });
        // SM 0 shows higher IPC than SM 13 in every busy quantum.
        for q in 0..t.samples() {
            if t.sm[0].active[q] > 0.0 {
                assert!(t.sm[0].ipc[q] > t.sm[13].ipc[q]);
            }
        }
    }

    #[test]
    fn idle_quanta_read_zero() {
        let cfg = GpuConfig::tesla_c2075();
        // One kernel in the first half; second half idle.
        let k = KernelSlice::from_stats(
            Span {
                start: 0.0,
                dur: 1.0,
            },
            &stats(28),
            &occ(),
            &cfg,
            1.0,
        );
        let copies = [Span {
            start: 1.0,
            dur: 1.0,
        }];
        let t = sample_pipeline(&[k], &copies, &cfg, &TelemetryConfig { samples: 4 });
        assert_eq!(t.samples(), 4);
        // Quanta 2-3 cover the copy tail: SMs idle, copy engine busy.
        for q in 2..4 {
            assert_eq!(t.sm[0].occupancy[q], 0.0);
            assert_eq!(t.sm[0].active[q], 0.0);
            assert_eq!(t.dram_bandwidth[q], 0.0);
            assert!(t.copy_engine_utilization[q] > 0.0);
        }
        // Quanta 0-1 are the inverse.
        for q in 0..2 {
            assert!(t.sm[0].active[q] > 0.99);
            assert!((t.sm[0].occupancy[q] - occ().occupancy).abs() < 1e-12);
        }
    }

    #[test]
    fn eligible_plus_stalled_is_residency() {
        let cfg = GpuConfig::tesla_c2075();
        let k = KernelSlice::from_stats(
            Span {
                start: 0.0,
                dur: 1e-3,
            },
            &stats(140),
            &occ(),
            &cfg,
            1.0,
        );
        let t = sample_pipeline(&[k], &[], &cfg, &TelemetryConfig { samples: 8 });
        for s in &t.sm {
            for q in 0..t.samples() {
                let resident = s.eligible_warps[q] + s.stalled_warps[q];
                // Time-averaged residency: active fraction x resident warps.
                let expect = s.active[q] * occ().resident_warps as f64;
                assert!(
                    (resident - expect).abs() < 1e-9,
                    "sm {} q {q}: {resident} vs {expect}",
                    s.sm
                );
            }
        }
    }

    #[test]
    fn empty_pipeline_yields_empty_series() {
        let cfg = GpuConfig::tesla_c2075();
        let t = sample_pipeline(&[], &[], &cfg, &TelemetryConfig::default());
        assert_eq!(t.samples(), 0);
        assert_eq!(t.total_dram_bytes(), 0.0);
        assert_eq!(t.mean_busy_occupancy(), 0.0);
    }

    #[test]
    fn prometheus_escapes_label_values() {
        assert_eq!(escape_label("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        let cfg = GpuConfig::tesla_c2075();
        let k = KernelSlice::from_stats(
            Span {
                start: 0.0,
                dur: 1e-3,
            },
            &stats(14),
            &occ(),
            &cfg,
            1.0,
        );
        let t = sample_pipeline(&[k], &[], &cfg, &TelemetryConfig { samples: 2 });
        let text = prometheus(&[("level \"W\"\n".to_string(), &t, None)]);
        assert!(text.contains("pipeline=\"level \\\"W\\\"\\n\""));
        // No raw newline inside any sample line (only as terminator).
        for line in text.lines() {
            assert!(!line.is_empty());
        }
    }

    #[test]
    fn prometheus_has_help_and_type_per_metric() {
        let cfg = GpuConfig::tesla_c2075();
        let sched = pipeline_schedule(3, 1e-3, 2e-3, 1e-3, OverlapMode::Sequential, &cfg);
        let t = sample_schedule(
            &sched,
            &stats(150),
            &occ(),
            &cfg,
            &TelemetryConfig::default(),
        );
        let gauges = KernelGauges::new(&DerivedMetrics::from_stats(&stats(150), &cfg), &occ());
        let text = prometheus(&[("level A".to_string(), &t, Some(gauges.clone()))]);
        for m in METRICS {
            assert!(text.contains(&format!("# HELP {} ", m.name)), "{}", m.name);
            assert!(
                text.contains(&format!("# TYPE {} {}", m.name, m.kind)),
                "{}",
                m.name
            );
        }
        // Per-kernel gauges carry the limiter label.
        assert!(text.contains("mogpu_kernel_occupancy{pipeline=\"level A\",limiter=\"Blocks\"}"));
        assert!(text.contains("mogpu_kernel_branch_efficiency{pipeline=\"level A\"}"));
        // Deterministic output.
        let again = prometheus(&[("level A".to_string(), &t, Some(gauges))]);
        assert_eq!(text, again);
    }
}

//! # mogpu-sim
//!
//! A from-scratch, Fermi-class **SIMT GPU simulator** used as the hardware
//! substrate for reproducing *"A GPU-based Algorithm-specific Optimization
//! for High-performance Background Subtraction"* (ICPP 2014).
//!
//! The paper runs on an Nvidia Tesla C2075; this session has no GPU, so the
//! evaluation hardware is simulated. The simulator is **functional +
//! analytic**:
//!
//! * **Functional**: kernels are ordinary Rust code written against the
//!   [`kernel::ThreadCtx`] API. Every lane of every warp executes for real —
//!   loads return real data, stores mutate simulated device memory — so
//!   algorithm output (the foreground masks whose quality Table IV of the
//!   paper measures) is exact, not approximated.
//! * **Analytic**: while lanes execute, the context records a trace of
//!   *events* (arithmetic, memory accesses with addresses, branches). Traces
//!   of the 32 lanes of a warp are merged into warp-level *slots* keyed by
//!   source location and per-lane occurrence index. From the slots the
//!   simulator derives exactly the counters the paper reports from the
//!   Nvidia Visual Profiler:
//!   - **memory access efficiency** and **transaction counts** from the set
//!     of 128-byte segments touched by each memory slot (coalescing),
//!   - **branch efficiency** from slots whose lanes disagree on a branch
//!     condition (divergence; divergent paths occupy distinct slots, so
//!     serialization falls out of the slot count automatically),
//!   - **SM occupancy** from a CUDA-style occupancy calculator over the
//!     kernel's declared register/shared-memory footprint,
//!
//!   and feeds them into an analytic timing model
//!   (compute-issue / bandwidth / latency roofline, see [`timing`]).
//!
//! The CPU reference of the paper (Intel Xeon E5-2620) is modelled by
//! [`cpu::CpuModel`] from the same event counts, calibrated against the
//! paper's measured serial runtime.
//!
//! ## Execution semantics and limits
//!
//! Blocks execute in parallel (rayon); lanes within a block execute
//! sequentially to completion. Global stores issued during a launch are
//! visible to *the issuing block only* (read-your-writes via a
//! byte-granular write overlay, so a store read back at any width sees
//! the stored bytes), and are published to device memory in block order
//! when the launch completes — mirroring CUDA's lack of cross-block
//! coherence guarantees. Cross-*block* communication within one launch
//! therefore still does not work; cross-*lane* communication through
//! shared memory works when it is barrier-ordered *forward* (a lane reads
//! what a lower-indexed epoch wrote), and the opt-in sanitizer
//! ([`sancheck`], enabled via [`kernel::LaunchOptions::sanitize`]) detects
//! the patterns the sequential-lane model cannot reproduce — same-epoch
//! races and backward barrier-ordered dataflow — instead of silently
//! returning stale values. All kernel-facing accessors are bounds-checked
//! against their [`memory::Buffer`] or the block's shared/local
//! allocation: out-of-range accesses panic with the kernel's `file:line`,
//! or are absorbed and reported as findings under the sanitizer.

pub mod advisor;
pub mod cache;
pub mod chrome_trace;
pub mod config;
pub mod cpu;
pub mod dataflow;
pub mod diff;
pub mod dma;
pub mod fleet;
pub mod kernel;
pub mod memory;
pub mod occupancy;
pub mod profile;
pub mod sancheck;
pub mod serving;
pub mod stallreasons;
pub mod stats;
pub mod streams;
pub mod telemetry;
pub mod timing;
pub mod trace;
pub mod warp;
#[doc(hidden)]
pub mod warp_reference;

pub use advisor::{advise, roofline, AdvisorInput, Advisory, Evidence, Roofline, Transform};
pub use config::{CpuConfig, GpuConfig};
pub use dataflow::{
    DataflowEdge, DataflowGraph, DataflowNode, DataflowRecorder, FusionCandidate, IntervalSet,
    LaunchAccess, NodeKind, NodeStats,
};
pub use diff::{
    dataflow_diff, detect_kind, diff_values, histogram_diff, BucketDelta, CounterDiff,
    DataflowDiff, DiffReport, FleetDiff, HistogramDiff, KernelDiff, MetricDelta, ReasonDelta,
    ServingDiff, SiteDiff, StreamDiff, TelemetryDiff, DIFF_SCHEMA,
};
pub use fleet::{
    advise_fleet, fleet_report, plan_fleet, prometheus_fleet, FleetAdvisory, FleetClass,
    FleetDevice, FleetDeviceReport, FleetOptions, FleetPlan, FleetReport, FleetSpec, FleetStream,
    ShedStream, StreamPlacement, FLEET_SCHEMA,
};
pub use kernel::{
    launch, launch_with, BatchLauncher, Kernel, KernelResources, LaunchConfig, LaunchError,
    LaunchOptions, LaunchReport, ThreadCtx,
};
pub use memory::{Buffer, DeviceMemory, MemoryError};
pub use occupancy::{occupancy, Occupancy};
pub use profile::{HotspotRow, SiteProfile, SiteStats};
pub use sancheck::{CheckKind, Finding, SanReport};
pub use serving::{
    events_jsonl, prometheus_serving, serving_report, EventKind, LatencyHistogram,
    LatencyPercentiles, ServingEvent, ServingReport, ServingSnapshot, ServingWindowConfig,
    SloConfig, StreamServing, StreamWindow,
};
pub use stallreasons::{dma_starvation, kernel_stalls, site_stalls, SiteStallRow, StallBreakdown};
pub use stats::{DerivedMetrics, KernelStats};
pub use streams::{
    validate_stream_inputs, LatencyStats, ScheduleError, StageTimes, StreamInput, StreamSchedule,
    StreamScheduler, DOUBLE_BUFFER,
};
pub use telemetry::{KernelGauges, KernelSlice, PipelineTelemetry, SmSeries, TelemetryConfig};
pub use timing::{kernel_time, KernelTiming};
pub use trace::{site_source, SiteSource, Space};

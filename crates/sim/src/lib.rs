//! # mogpu-sim
//!
//! A from-scratch, Fermi-class **SIMT GPU simulator** used as the hardware
//! substrate for reproducing *"A GPU-based Algorithm-specific Optimization
//! for High-performance Background Subtraction"* (ICPP 2014).
//!
//! The paper runs on an Nvidia Tesla C2075; this session has no GPU, so the
//! evaluation hardware is simulated. The simulator is **functional +
//! analytic**:
//!
//! * **Functional**: kernels are ordinary Rust code written against the
//!   [`kernel::ThreadCtx`] API. Every lane of every warp executes for real —
//!   loads return real data, stores mutate simulated device memory — so
//!   algorithm output (the foreground masks whose quality Table IV of the
//!   paper measures) is exact, not approximated.
//! * **Analytic**: while lanes execute, the context records a trace of
//!   *events* (arithmetic, memory accesses with addresses, branches). Traces
//!   of the 32 lanes of a warp are merged into warp-level *slots* keyed by
//!   source location and per-lane occurrence index. From the slots the
//!   simulator derives exactly the counters the paper reports from the
//!   Nvidia Visual Profiler:
//!   - **memory access efficiency** and **transaction counts** from the set
//!     of 128-byte segments touched by each memory slot (coalescing),
//!   - **branch efficiency** from slots whose lanes disagree on a branch
//!     condition (divergence; divergent paths occupy distinct slots, so
//!     serialization falls out of the slot count automatically),
//!   - **SM occupancy** from a CUDA-style occupancy calculator over the
//!     kernel's declared register/shared-memory footprint,
//!
//!   and feeds them into an analytic timing model
//!   (compute-issue / bandwidth / latency roofline, see [`timing`]).
//!
//! The CPU reference of the paper (Intel Xeon E5-2620) is modelled by
//! [`cpu::CpuModel`] from the same event counts, calibrated against the
//! paper's measured serial runtime.
//!
//! ## Execution semantics and limits
//!
//! Blocks execute in parallel (rayon); lanes within a block execute
//! sequentially to completion. Global stores issued during a launch are
//! visible to *the issuing block only* (read-your-writes via a write
//! buffer keyed by exact `(address, width)`), and are published to device
//! memory when the launch completes — mirroring CUDA's lack of cross-block
//! coherence guarantees. Kernels that communicate *between lanes* through
//! shared or global memory inside one launch are not supported (MoG never
//! does; each thread owns its pixel).

pub mod cache;
pub mod chrome_trace;
pub mod config;
pub mod cpu;
pub mod dma;
pub mod kernel;
pub mod memory;
pub mod occupancy;
pub mod profile;
pub mod stats;
pub mod streams;
pub mod timing;
pub mod trace;
pub mod warp;

pub use config::{CpuConfig, GpuConfig};
pub use kernel::{
    launch, launch_with, Kernel, KernelResources, LaunchConfig, LaunchError, LaunchOptions,
    LaunchReport, ThreadCtx,
};
pub use memory::{Buffer, DeviceMemory, MemoryError};
pub use occupancy::{occupancy, Occupancy};
pub use profile::{HotspotRow, SiteProfile, SiteStats};
pub use stats::{DerivedMetrics, KernelStats};
pub use streams::{
    LatencyStats, StageTimes, StreamInput, StreamSchedule, StreamScheduler, DOUBLE_BUFFER,
};
pub use timing::{kernel_time, KernelTiming};
pub use trace::{site_source, SiteSource};

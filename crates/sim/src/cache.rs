//! Optional L2 cache model.
//!
//! Fermi places a 768 KB L2 between the SMs and DRAM. The base timing
//! model ignores it (every transaction is charged as DRAM traffic), which
//! is accurate for MoG's streaming access pattern — each Gaussian
//! parameter is touched once per frame and the working set (hundreds of
//! MB at full HD) dwarfs the cache. The model here exists to *verify*
//! that assumption and to capture the one case where L2 matters: the
//! AoS layout of level A, whose interleaved parameter records make
//! consecutive warp slots touch the same 128-byte lines.
//!
//! Enabled via [`crate::config::GpuConfig::l2_bytes`] > 0. Because blocks
//! execute in parallel on host threads, each block simulates a *private
//! slice* of L2 sized `l2_bytes / (SMs x resident blocks)` — a standard
//! approximation justified by the temporal locality of interest being
//! intra-block. The `exp_ablation` bench quantifies the effect.

/// A set-associative cache with LRU replacement, tracking line-granular
/// hits and misses.
#[derive(Debug, Clone)]
pub struct CacheModel {
    /// Per-set LRU stacks of line tags (front = most recent).
    sets: Vec<Vec<u64>>,
    assoc: usize,
    /// Line (and transaction segment) size in bytes.
    line_bytes: u64,
    /// Lines that hit.
    pub hits: u64,
    /// Lines that missed (and would go to DRAM).
    pub misses: u64,
}

impl CacheModel {
    /// Builds a cache of `capacity` bytes with `assoc`-way sets of
    /// `line_bytes` lines. Capacity is rounded down to a whole number of
    /// sets; a capacity smaller than one set still provides one set.
    pub fn new(capacity: usize, assoc: usize, line_bytes: u64) -> Self {
        let assoc = assoc.max(1);
        let lines = (capacity as u64 / line_bytes).max(1) as usize;
        let set_count = (lines / assoc).max(1);
        CacheModel {
            sets: vec![Vec::with_capacity(assoc); set_count],
            assoc,
            line_bytes,
            hits: 0,
            misses: 0,
        }
    }

    /// Cache capacity in bytes.
    pub fn capacity(&self) -> usize {
        self.sets.len() * self.assoc * self.line_bytes as usize
    }

    /// Accesses the line containing segment id `segment` (an address
    /// divided by the segment size). Returns `true` on hit. Misses fill
    /// the line (allocate-on-miss for both reads and writes, like L2).
    pub fn access_segment(&mut self, segment: u64) -> bool {
        let set_idx = (segment % self.sets.len() as u64) as usize;
        let set = &mut self.sets[set_idx];
        if let Some(pos) = set.iter().position(|&t| t == segment) {
            // LRU bump.
            let tag = set.remove(pos);
            set.insert(0, tag);
            self.hits += 1;
            true
        } else {
            if set.len() == self.assoc {
                set.pop();
            }
            set.insert(0, segment);
            self.misses += 1;
            false
        }
    }

    /// Hit rate over all accesses so far (1.0 when untouched).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            1.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_touch_misses_second_hits() {
        let mut c = CacheModel::new(16 * 1024, 8, 128);
        assert!(!c.access_segment(42));
        assert!(c.access_segment(42));
        assert_eq!(c.hits, 1);
        assert_eq!(c.misses, 1);
    }

    #[test]
    fn lru_evicts_oldest() {
        // 1 set x 2 ways.
        let mut c = CacheModel::new(256, 2, 128);
        assert_eq!(c.sets.len(), 1);
        c.access_segment(1);
        c.access_segment(2);
        c.access_segment(1); // bump 1 to MRU
        c.access_segment(3); // evicts 2
        assert!(c.access_segment(1), "1 was MRU and must survive");
        assert!(!c.access_segment(2), "2 was LRU and must be gone");
    }

    #[test]
    fn distinct_sets_do_not_interfere() {
        // 2 sets x 1 way.
        let mut c = CacheModel::new(256, 1, 128);
        assert_eq!(c.sets.len(), 2);
        c.access_segment(0); // set 0
        c.access_segment(1); // set 1
        assert!(c.access_segment(0));
        assert!(c.access_segment(1));
    }

    #[test]
    fn streaming_working_set_thrashes() {
        // A working set 10x the capacity revisited in order: ~0% hits.
        let mut c = CacheModel::new(4 * 1024, 8, 128); // 32 lines
        for pass in 0..3 {
            for seg in 0..320u64 {
                c.access_segment(seg);
            }
            let _ = pass;
        }
        assert!(c.hit_rate() < 0.01, "hit rate {}", c.hit_rate());
    }

    #[test]
    fn resident_working_set_hits_after_warmup() {
        let mut c = CacheModel::new(4 * 1024, 8, 128); // 32 lines
        for _ in 0..4 {
            for seg in 0..16u64 {
                c.access_segment(seg);
            }
        }
        // 16 misses (cold) + 48 hits.
        assert_eq!(c.misses, 16);
        assert_eq!(c.hits, 48);
    }

    #[test]
    fn tiny_capacity_still_works() {
        let mut c = CacheModel::new(0, 4, 128);
        assert!(c.capacity() >= 128);
        c.access_segment(7);
        assert!(c.access_segment(7));
    }
}

//! Chrome trace-event export of pipeline schedules.
//!
//! Produces the JSON object format (`{"traceEvents": [...]}`) that
//! `chrome://tracing` and [Perfetto](https://ui.perfetto.dev) load
//! directly: one *process* per pipeline, one *thread track* per engine
//! (copy-in, compute, copy-out), so the overlap the double-buffered
//! scheduler achieves — or the serial pipeline's lack of it — is visible
//! at a glance.
//!
//! Event vocabulary used (see the trace-event format spec):
//! * `ph: "X"` — complete/duration event with `ts` (start) and `dur`,
//!   both in **microseconds**;
//! * `ph: "M"` — metadata naming processes (`process_name`) and thread
//!   tracks (`thread_name`).

use crate::dataflow::{DataflowGraph, NodeKind};
use crate::dma::FrameSpans;
use crate::stallreasons::StallBreakdown;
use crate::streams::StreamSchedule;
use crate::telemetry::PipelineTelemetry;
use serde::Value;

/// Thread-track ids within one pipeline's process.
const TID_COPY_IN: u64 = 0;
const TID_COMPUTE: u64 = 1;
const TID_COPY_OUT: u64 = 2;

/// Incrementally builds one trace file from any number of pipelines
/// (e.g. one per optimization level of the ladder).
#[derive(Debug, Default)]
pub struct TraceBuilder {
    events: Vec<Value>,
    next_pid: u64,
    next_flow_id: u64,
}

fn obj(fields: Vec<(&str, Value)>) -> Value {
    Value::Object(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

fn metadata(name: &str, pid: u64, tid: u64, value: &str) -> Value {
    obj(vec![
        ("name", Value::String(name.to_string())),
        ("ph", Value::String("M".to_string())),
        ("pid", Value::U64(pid)),
        ("tid", Value::U64(tid)),
        (
            "args",
            obj(vec![("name", Value::String(value.to_string()))]),
        ),
    ])
}

fn duration_event(name: String, cat: &str, pid: u64, tid: u64, start_s: f64, dur_s: f64) -> Value {
    obj(vec![
        ("name", Value::String(name)),
        ("cat", Value::String(cat.to_string())),
        ("ph", Value::String("X".to_string())),
        ("pid", Value::U64(pid)),
        ("tid", Value::U64(tid)),
        ("ts", Value::F64(start_s * 1e6)),
        ("dur", Value::F64(dur_s * 1e6)),
    ])
}

fn flow_event(name: &str, ph: &str, pid: u64, tid: u64, ts_s: f64, id: u64) -> Value {
    let mut fields = vec![
        ("name", Value::String(name.to_string())),
        ("cat", Value::String("dataflow".to_string())),
        ("ph", Value::String(ph.to_string())),
        ("id", Value::U64(id)),
        ("pid", Value::U64(pid)),
        ("tid", Value::U64(tid)),
        ("ts", Value::F64(ts_s * 1e6)),
    ];
    if ph == "f" {
        // Bind the arrow head to the *enclosing* slice (the consumer
        // kernel), not the next slice to start after ts.
        fields.push(("bp", Value::String("e".to_string())));
    }
    obj(fields)
}

impl TraceBuilder {
    /// Creates an empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends one pipeline as a process named `name` with the three
    /// engine tracks, one `ph:"X"` event per stage per frame. Returns the
    /// pipeline's process id for [`TraceBuilder::add_counters`].
    pub fn add_pipeline(&mut self, name: &str, schedule: &[FrameSpans]) -> u64 {
        let pid = self.next_pid;
        self.next_pid += 1;
        self.events.push(metadata("process_name", pid, 0, name));
        self.events
            .push(metadata("thread_name", pid, TID_COPY_IN, "copy-in (H2D)"));
        self.events
            .push(metadata("thread_name", pid, TID_COMPUTE, "compute"));
        self.events
            .push(metadata("thread_name", pid, TID_COPY_OUT, "copy-out (D2H)"));
        for (i, f) in schedule.iter().enumerate() {
            self.events.push(duration_event(
                format!("upload frame {i}"),
                "dma",
                pid,
                TID_COPY_IN,
                f.h2d.start,
                f.h2d.dur,
            ));
            self.events.push(duration_event(
                format!("kernel frame {i}"),
                "kernel",
                pid,
                TID_COMPUTE,
                f.kernel.start,
                f.kernel.dur,
            ));
            self.events.push(duration_event(
                format!("download frame {i}"),
                "dma",
                pid,
                TID_COPY_OUT,
                f.d2h.start,
                f.d2h.dur,
            ));
        }
        pid
    }

    /// Appends a multi-stream schedule as one process named `name` with
    /// three engine tracks *per stream* (`s<i> copy-in/compute/copy-out`,
    /// tids `3i..3i+2`), so cross-stream interleaving on the shared
    /// engines is visible in Perfetto. Returns the process id for
    /// [`TraceBuilder::add_counters`].
    pub fn add_multi_stream(&mut self, name: &str, schedule: &StreamSchedule) -> u64 {
        let pid = self.next_pid;
        self.next_pid += 1;
        self.events.push(metadata("process_name", pid, 0, name));
        for (s, frames) in schedule.streams.iter().enumerate() {
            let base = 3 * s as u64;
            self.events.push(metadata(
                "thread_name",
                pid,
                base + TID_COPY_IN,
                &format!("s{s} copy-in (H2D)"),
            ));
            self.events.push(metadata(
                "thread_name",
                pid,
                base + TID_COMPUTE,
                &format!("s{s} compute"),
            ));
            self.events.push(metadata(
                "thread_name",
                pid,
                base + TID_COPY_OUT,
                &format!("s{s} copy-out (D2H)"),
            ));
            for (i, f) in frames.iter().enumerate() {
                self.events.push(duration_event(
                    format!("s{s} upload frame {i}"),
                    "dma",
                    pid,
                    base + TID_COPY_IN,
                    f.h2d.start,
                    f.h2d.dur,
                ));
                self.events.push(duration_event(
                    format!("s{s} kernel frame {i}"),
                    "kernel",
                    pid,
                    base + TID_COMPUTE,
                    f.kernel.start,
                    f.kernel.dur,
                ));
                self.events.push(duration_event(
                    format!("s{s} download frame {i}"),
                    "dma",
                    pid,
                    base + TID_COPY_OUT,
                    f.d2h.start,
                    f.d2h.dur,
                ));
            }
        }
        pid
    }

    /// Overlays producer→consumer dataflow arrows (`ph:"s"`/`"f"` flow
    /// pairs, cat `dataflow`) on the kernel slices of the process `pid`
    /// returned by [`TraceBuilder::add_pipeline`]. Kernel→kernel edges of
    /// `graph` between *different* frames are aggregated per frame pair
    /// and drawn from the end of the producer frame's kernel slice to the
    /// start of the consumer frame's slice, labelled with the kernel
    /// names and bytes carried. Like counters, flows are opt-in: traces
    /// without a recorded graph keep their exact event shape.
    pub fn add_dataflow_flows(&mut self, pid: u64, schedule: &[FrameSpans], graph: &DataflowGraph) {
        let mut by_frames: std::collections::BTreeMap<(usize, usize), (u64, String)> =
            std::collections::BTreeMap::new();
        for e in &graph.edges {
            let p = &graph.nodes[e.producer];
            let c = &graph.nodes[e.consumer];
            if p.kind != NodeKind::Kernel || c.kind != NodeKind::Kernel {
                continue;
            }
            let (Some(fp), Some(fc)) = (p.frame, c.frame) else {
                continue;
            };
            // Intra-frame edges share one kernel slice on the schedule
            // clock — there is nothing to draw an arrow between.
            if fc <= fp || fc >= schedule.len() {
                continue;
            }
            let entry = by_frames
                .entry((fp, fc))
                .or_insert_with(|| (0, format!("{} -> {}", p.name, c.name)));
            entry.0 += e.bytes;
        }
        for ((fp, fc), (bytes, label)) in by_frames {
            let id = self.next_flow_id;
            self.next_flow_id += 1;
            let name = format!("{label} ({bytes} B)");
            let prod = &schedule[fp].kernel;
            let cons = &schedule[fc].kernel;
            self.events
                .push(flow_event(&name, "s", pid, TID_COMPUTE, prod.end(), id));
            self.events
                .push(flow_event(&name, "f", pid, TID_COMPUTE, cons.start, id));
        }
    }

    /// Merges telemetry counter tracks (`ph:"C"`) into the process `pid`
    /// returned by [`TraceBuilder::add_pipeline`] /
    /// [`TraceBuilder::add_multi_stream`], one sample per quantum plus a
    /// closing sample at the makespan, so counters and timeline share one
    /// clock in Perfetto. Counters are opt-in: traces without telemetry
    /// keep their exact event shape.
    pub fn add_counters(&mut self, pid: u64, telemetry: &PipelineTelemetry) {
        let n = telemetry.samples();
        if n == 0 {
            return;
        }
        let mut counter = |name: &str, args: Vec<(&str, f64)>, ts_s: f64| {
            self.events.push(obj(vec![
                ("name", Value::String(name.to_string())),
                ("ph", Value::String("C".to_string())),
                ("pid", Value::U64(pid)),
                ("ts", Value::F64(ts_s * 1e6)),
                (
                    "args",
                    obj(args.into_iter().map(|(k, v)| (k, Value::F64(v))).collect()),
                ),
            ]));
        };
        // One sample per quantum at the quantum's start, plus a final
        // sample at the makespan repeating the last value so the series
        // extends to the end of the timeline.
        for q in 0..=n {
            let (idx, ts) = if q == n {
                (n - 1, telemetry.makespan)
            } else {
                (q, telemetry.quantum_start(q))
            };
            let sms = telemetry.num_sms.max(1) as f64;
            let occupancy = telemetry.sm.iter().map(|s| s.occupancy[idx]).sum::<f64>() / sms;
            let active = telemetry.sm.iter().map(|s| s.active[idx]).sum::<f64>() / sms;
            counter("SM occupancy (mean)", vec![("occupancy", occupancy)], ts);
            counter("SMs active (fraction)", vec![("active", active)], ts);
            counter(
                "DRAM bandwidth (GB/s)",
                vec![("gbps", telemetry.dram_bandwidth[idx] / 1e9)],
                ts,
            );
            counter(
                "L2 hit rate",
                vec![("rate", telemetry.l2_hit_rate[idx])],
                ts,
            );
            counter(
                "copy engines (utilization)",
                vec![("utilization", telemetry.copy_engine_utilization[idx])],
                ts,
            );
        }
    }

    /// Adds one stacked `ph:"C"` counter track decomposing the kernel's
    /// busy time into stall reasons, on the same quantum clock as
    /// [`add_counters`](Self::add_counters): at each quantum the mean
    /// SM-active fraction is split across the reasons in the proportions
    /// of the run-aggregate [`StallBreakdown`] (the analytic model has
    /// no intra-launch phases, so the composition is stationary while
    /// the kernel runs and zero while it does not).
    pub fn add_stall_counters(
        &mut self,
        pid: u64,
        telemetry: &PipelineTelemetry,
        stalls: &StallBreakdown,
    ) {
        let n = telemetry.samples();
        let total = stalls.sum();
        if n == 0 || total <= 0.0 {
            return;
        }
        for q in 0..=n {
            let (idx, ts) = if q == n {
                (n - 1, telemetry.makespan)
            } else {
                (q, telemetry.quantum_start(q))
            };
            let sms = telemetry.num_sms.max(1) as f64;
            let active = telemetry.sm.iter().map(|s| s.active[idx]).sum::<f64>() / sms;
            let args: Vec<(&str, Value)> = stalls
                .entries()
                .into_iter()
                .map(|(name, secs)| (name, Value::F64(active * secs / total)))
                .collect();
            self.events.push(obj(vec![
                ("name", Value::String("kernel stall reasons".to_string())),
                ("ph", Value::String("C".to_string())),
                ("pid", Value::U64(pid)),
                ("ts", Value::F64(ts * 1e6)),
                ("args", obj(args)),
            ]));
        }
    }

    /// Finishes the trace as the JSON object Perfetto loads.
    pub fn finish(self) -> Value {
        Value::Object(vec![
            ("traceEvents".to_string(), Value::Array(self.events)),
            (
                "displayTimeUnit".to_string(),
                Value::String("ms".to_string()),
            ),
        ])
    }
}

/// One-pipeline convenience wrapper around [`TraceBuilder`].
pub fn chrome_trace(name: &str, schedule: &[FrameSpans]) -> Value {
    let mut b = TraceBuilder::new();
    b.add_pipeline(name, schedule);
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::GpuConfig;
    use crate::dma::{pipeline_schedule, OverlapMode};

    fn events(trace: &Value) -> &[Value] {
        match trace {
            Value::Object(fields) => match &fields.iter().find(|(k, _)| k == "traceEvents") {
                Some((_, Value::Array(events))) => events,
                _ => panic!("traceEvents missing"),
            },
            _ => panic!("trace must be an object"),
        }
    }

    fn field<'a>(event: &'a Value, key: &str) -> &'a Value {
        match event {
            Value::Object(fields) => {
                &fields
                    .iter()
                    .find(|(k, _)| k == key)
                    .expect("field present")
                    .1
            }
            _ => panic!("event must be an object"),
        }
    }

    #[test]
    fn trace_has_metadata_and_duration_events() {
        let sched = pipeline_schedule(
            3,
            1.0,
            2.0,
            0.5,
            OverlapMode::Sequential,
            &GpuConfig::default(),
        );
        let trace = chrome_trace("level A", &sched);
        let evs = events(&trace);
        // 4 metadata + 3 frames x 3 stages.
        assert_eq!(evs.len(), 4 + 9);
        let durations: Vec<&Value> = evs
            .iter()
            .filter(|e| field(e, "ph") == &Value::String("X".into()))
            .collect();
        assert_eq!(durations.len(), 9);
        for d in &durations {
            let ts = match field(d, "ts") {
                Value::F64(v) => *v,
                other => panic!("ts must be f64, got {other:?}"),
            };
            let dur = match field(d, "dur") {
                Value::F64(v) => *v,
                other => panic!("dur must be f64, got {other:?}"),
            };
            assert!(ts >= 0.0 && dur > 0.0);
        }
        // Seconds became microseconds: first kernel starts at 1 s = 1e6 µs.
        let first_kernel = durations
            .iter()
            .find(|d| field(d, "name") == &Value::String("kernel frame 0".into()))
            .unwrap();
        assert_eq!(field(first_kernel, "ts"), &Value::F64(1e6));
        assert_eq!(field(first_kernel, "dur"), &Value::F64(2e6));
    }

    #[test]
    fn multi_stream_trace_has_one_track_triple_per_stream() {
        use crate::streams::{StageTimes, StreamInput, StreamScheduler};
        let c = GpuConfig::default();
        let s = StreamInput::offline(vec![StageTimes::uniform(0.5, 1.0, 0.5); 3]);
        let sched = StreamScheduler::double_buffered().schedule(&[s.clone(), s], &c);
        let mut b = TraceBuilder::new();
        b.add_multi_stream("streams", &sched);
        let trace = b.finish();
        let evs = events(&trace);
        // 1 process + 2 streams x (3 thread metadata + 3 frames x 3 stages).
        assert_eq!(evs.len(), 1 + 2 * (3 + 9));
        let tids: std::collections::HashSet<u64> = evs
            .iter()
            .filter(|e| field(e, "ph") == &Value::String("X".into()))
            .map(|e| match field(e, "tid") {
                Value::U64(t) => *t,
                other => panic!("tid must be u64, got {other:?}"),
            })
            .collect();
        assert_eq!(tids, (0..6).collect());
    }

    #[test]
    fn counters_share_the_pipeline_clock() {
        use crate::occupancy::{Limiter, Occupancy};
        use crate::stats::KernelStats;
        use crate::telemetry::{sample_schedule, TelemetryConfig};
        let cfg = GpuConfig::default();
        let sched = pipeline_schedule(3, 1.0, 2.0, 0.5, OverlapMode::Sequential, &cfg);
        let stats = KernelStats {
            blocks: 150,
            global_load_tx: 1000,
            issue_cycles: 1e6,
            ..Default::default()
        };
        let occ = Occupancy {
            resident_blocks: 8,
            resident_warps: 32,
            resident_threads: 1024,
            occupancy: 32.0 / 48.0,
            limiter: Limiter::Blocks,
        };
        let telemetry =
            sample_schedule(&sched, &stats, &occ, &cfg, &TelemetryConfig { samples: 8 });
        let mut b = TraceBuilder::new();
        let pid = b.add_pipeline("level A", &sched);
        b.add_counters(pid, &telemetry);
        let trace = b.finish();
        let evs = events(&trace);
        let counters: Vec<&Value> = evs
            .iter()
            .filter(|e| field(e, "ph") == &Value::String("C".into()))
            .collect();
        // 5 counter tracks x (8 quanta + closing sample).
        assert_eq!(counters.len(), 5 * 9);
        let makespan_us = telemetry.makespan * 1e6;
        for c in &counters {
            assert_eq!(field(c, "pid"), &Value::U64(pid));
            let ts = match field(c, "ts") {
                Value::F64(v) => *v,
                other => panic!("ts must be f64, got {other:?}"),
            };
            assert!((0.0..=makespan_us + 1e-6).contains(&ts));
        }
        // Timeline events and counters agree on the clock: the last
        // counter sample sits at the end of the last span.
        let last_d2h_end = (sched.last().unwrap().d2h.end()) * 1e6;
        assert!((makespan_us - last_d2h_end).abs() < 1e-6);
    }

    #[test]
    fn stall_counters_share_the_pipeline_clock_and_partition_activity() {
        use crate::occupancy::{Limiter, Occupancy};
        use crate::stallreasons::kernel_stalls;
        use crate::stats::KernelStats;
        use crate::telemetry::{sample_schedule, TelemetryConfig};
        use crate::timing::kernel_time;
        let cfg = GpuConfig::default();
        let sched = pipeline_schedule(3, 1.0, 2.0, 0.5, OverlapMode::Sequential, &cfg);
        let stats = KernelStats {
            blocks: 150,
            warps: 600,
            global_load_tx: 1000,
            issue_cycles: 1e6,
            divergent_branch_slots: 1000,
            sync_slots: 500,
            ..Default::default()
        };
        let occ = Occupancy {
            resident_blocks: 8,
            resident_warps: 32,
            resident_threads: 1024,
            occupancy: 32.0 / 48.0,
            limiter: Limiter::Blocks,
        };
        let telemetry =
            sample_schedule(&sched, &stats, &occ, &cfg, &TelemetryConfig { samples: 8 });
        let timing = kernel_time(&stats, &occ, &cfg);
        let stalls = kernel_stalls(&stats, &timing, &occ);
        let mut b = TraceBuilder::new();
        let pid = b.add_pipeline("level A", &sched);
        b.add_stall_counters(pid, &telemetry, &stalls);
        let trace = b.finish();
        let evs = events(&trace);
        let counters: Vec<&Value> = evs
            .iter()
            .filter(|e| field(e, "name") == &Value::String("kernel stall reasons".into()))
            .collect();
        // One track x (8 quanta + closing sample), same clock bounds.
        assert_eq!(counters.len(), 9);
        let makespan_us = telemetry.makespan * 1e6;
        for c in &counters {
            assert_eq!(field(c, "pid"), &Value::U64(pid));
            let ts = match field(c, "ts") {
                Value::F64(v) => *v,
                other => panic!("ts must be f64, got {other:?}"),
            };
            assert!((0.0..=makespan_us + 1e-6).contains(&ts));
            // The stacked reasons sum to the mean SM-active fraction.
            let args = match field(c, "args") {
                Value::Object(kv) => kv,
                other => panic!("args must be object, got {other:?}"),
            };
            let sum: f64 = args
                .iter()
                .map(|(_, v)| match v {
                    Value::F64(x) => *x,
                    other => panic!("counter value must be f64, got {other:?}"),
                })
                .sum();
            assert!((0.0..=1.0 + 1e-9).contains(&sum), "stacked sum {sum}");
        }
    }

    /// Satellite: flow pairs survive a JSON round trip with matching
    /// id/cat, and their (pid, tid, ts) bind to the producer and
    /// consumer kernel slices of the pipeline timeline.
    #[test]
    fn dataflow_flow_pairs_round_trip_and_bind_to_kernel_slices() {
        use crate::dataflow::{DataflowRecorder, IntervalSet, LaunchAccess};
        use crate::occupancy::{Limiter, Occupancy};
        use crate::stats::KernelStats;
        let cfg = GpuConfig::default();
        let sched = pipeline_schedule(2, 1.0, 2.0, 0.5, OverlapMode::DoubleBuffered, &cfg);
        let occ = Occupancy {
            resident_blocks: 8,
            resident_warps: 32,
            resident_threads: 1024,
            occupancy: 32.0 / 48.0,
            limiter: Limiter::Warps,
        };
        // Frame 1's kernel reloads the 1024 model bytes frame 0 stored.
        let span = IntervalSet::from_span(0, 1024);
        let mut rec = DataflowRecorder::new();
        rec.record_kernel(
            "mog-update",
            Some(0),
            LaunchAccess {
                reads: IntervalSet::new(),
                writes: span.clone(),
            },
            KernelStats::default(),
            occ,
        );
        rec.record_kernel(
            "mog-update",
            Some(1),
            LaunchAccess {
                reads: span.clone(),
                writes: span,
            },
            KernelStats::default(),
            occ,
        );
        let graph = rec.finish();
        let mut b = TraceBuilder::new();
        let pid = b.add_pipeline("level C", &sched);
        b.add_dataflow_flows(pid, &sched, &graph);
        let text = serde_json::to_string_canonical(&b.finish()).unwrap();
        let trace: Value = serde_json::from_str(&text).unwrap();
        let evs = events(&trace);
        let starts: Vec<&Value> = evs
            .iter()
            .filter(|e| field(e, "ph") == &Value::String("s".into()))
            .collect();
        let finishes: Vec<&Value> = evs
            .iter()
            .filter(|e| field(e, "ph") == &Value::String("f".into()))
            .collect();
        assert_eq!(starts.len(), 1, "one cross-frame edge, one arrow");
        assert_eq!(finishes.len(), 1);
        let (s, f) = (starts[0], finishes[0]);
        // The pair shares id, cat, and name, and names the kernels+bytes.
        assert_eq!(field(s, "id"), field(f, "id"));
        assert_eq!(field(s, "cat"), &Value::String("dataflow".into()));
        assert_eq!(field(f, "cat"), &Value::String("dataflow".into()));
        assert_eq!(field(s, "name"), field(f, "name"));
        assert_eq!(
            field(s, "name"),
            &Value::String("mog-update -> mog-update (1024 B)".into())
        );
        // The head binds to its enclosing slice, not the next to start.
        assert_eq!(field(f, "bp"), &Value::String("e".into()));
        // Both ends bind to the compute track of this pipeline's process,
        // inside the producer/consumer kernel slices respectively.
        let ts = |e: &Value| match field(e, "ts") {
            Value::F64(v) => *v,
            other => panic!("ts must be f64, got {other:?}"),
        };
        for e in [s, f] {
            assert_eq!(field(e, "pid"), &Value::U64(pid));
            assert_eq!(field(e, "tid"), &Value::U64(TID_COMPUTE));
        }
        let k0 = &sched[0].kernel;
        let k1 = &sched[1].kernel;
        assert!((ts(s) - k0.end() * 1e6).abs() < 1e-9);
        assert!((k0.start * 1e6..=k0.end() * 1e6).contains(&ts(s)));
        assert!((ts(f) - k1.start * 1e6).abs() < 1e-9);
        assert!((k1.start * 1e6..=k1.end() * 1e6).contains(&ts(f)));
    }

    #[test]
    fn multiple_pipelines_get_distinct_pids() {
        let c = GpuConfig::default();
        let a = pipeline_schedule(2, 1.0, 2.0, 0.5, OverlapMode::Sequential, &c);
        let b = pipeline_schedule(2, 1.0, 2.0, 0.5, OverlapMode::DoubleBuffered, &c);
        let mut builder = TraceBuilder::new();
        builder.add_pipeline("level A", &a);
        builder.add_pipeline("level C", &b);
        let trace = builder.finish();
        let pids: std::collections::HashSet<u64> = events(&trace)
            .iter()
            .map(|e| match field(e, "pid") {
                Value::U64(p) => *p,
                other => panic!("pid must be u64, got {other:?}"),
            })
            .collect();
        assert_eq!(pids.len(), 2);
    }
}

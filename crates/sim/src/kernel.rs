//! Kernel trait, per-lane execution context, and the launch machinery.
//!
//! Kernels are Rust types implementing [`Kernel`]; their `run` method is
//! the CUDA `__global__` body, executed once per thread with a
//! [`ThreadCtx`] standing in for the hardware: it performs *functional*
//! loads/stores against simulated device memory while recording the events
//! that drive the architectural analysis (see [`crate::warp`]).
//!
//! Like a CUDA kernel, `run` is invoked for every thread of every block of
//! the launch grid; threads past the problem size must guard themselves
//! (`if ctx.global_thread_id() >= n { return; }`).

use crate::config::GpuConfig;
use crate::dataflow::{IntervalCollector, IntervalSet, LaunchAccess};
use crate::memory::{Buffer, DeviceMemory, InitMask};
use crate::occupancy::{occupancy, Occupancy};
use crate::profile::SiteProfile;
use crate::sancheck::{BlockSan, SanReport};
use crate::stats::KernelStats;
use crate::timing::{kernel_time, KernelTiming};
use crate::trace::{OpClass, Space};
use crate::warp::WarpAccumulator;
use rayon::prelude::*;
use std::panic::Location;

/// Static resource footprint of a kernel, as `nvcc --ptxas-options=-v`
/// would report it.
///
/// Register counts cannot be derived from Rust source (there is no CUDA
/// compiler in the loop), so kernels *declare* them; the MoG kernels use
/// the per-variant values the paper reports from the CUDA 4.2 toolchain.
/// Occupancy is then derived from the declaration exactly as the CUDA
/// occupancy calculator does.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KernelResources {
    /// 32-bit registers per thread.
    pub regs_per_thread: u32,
    /// Static shared memory per block, in bytes.
    pub shared_bytes_per_block: usize,
    /// Per-thread local-memory (spill) slots of 8 bytes each.
    pub local_f64_slots: usize,
}

/// Grid geometry of a launch (1-D, which is all MoG needs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LaunchConfig {
    /// Number of thread blocks.
    pub blocks: u32,
    /// Threads per block.
    pub threads_per_block: u32,
}

impl LaunchConfig {
    /// Grid covering `threads` total threads with the given block size
    /// (rounding the block count up, CUDA-style).
    ///
    /// # Panics
    /// When the required block count exceeds `u32::MAX` (the 1-D grid
    /// limit of the `blocks` field). The old cast silently truncated
    /// here, launching a grid that covered almost none of the requested
    /// threads.
    pub fn cover(threads: usize, threads_per_block: u32) -> Self {
        let blocks = (threads as u64).div_ceil(threads_per_block.max(1) as u64);
        LaunchConfig {
            blocks: u32::try_from(blocks).unwrap_or_else(|_| {
                panic!("grid of {blocks} blocks ({threads} threads / {threads_per_block} per block) exceeds the u32 grid limit")
            }),
            threads_per_block,
        }
    }
}

/// A GPU kernel.
pub trait Kernel: Sync {
    /// Declared resource footprint (registers / shared memory / spill).
    fn resources(&self) -> KernelResources;
    /// Per-thread body.
    fn run(&self, ctx: &mut ThreadCtx<'_>);
}

/// Errors rejecting a launch, mirroring CUDA launch failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LaunchError {
    /// Block or grid dimension is zero or exceeds hardware limits.
    InvalidConfig(String),
    /// The kernel's register or shared-memory footprint leaves no room for
    /// even one resident block.
    ResourcesExceeded(String),
}

impl std::fmt::Display for LaunchError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LaunchError::InvalidConfig(m) => write!(f, "invalid launch configuration: {m}"),
            LaunchError::ResourcesExceeded(m) => write!(f, "kernel resources exceeded: {m}"),
        }
    }
}

impl std::error::Error for LaunchError {}

/// Optional launch behaviours; [`Default`] is the plain fast path.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LaunchOptions {
    /// Aggregate counters per source site and resolve `file:line` for the
    /// hotspot table. Off by default: the plain path allocates no site map
    /// and records events exactly as if profiling did not exist.
    pub profile_sites: bool,
    /// Run the compute-sanitizer-style checks (memcheck / racecheck /
    /// synccheck / initcheck, see [`crate::sancheck`]) and attach a
    /// [`SanReport`] to the launch report. Off by default; when on,
    /// out-of-bounds accesses are recorded and absorbed instead of
    /// panicking.
    pub sanitize: bool,
    /// Capture the launch's global-memory byte-interval read/write sets
    /// and attach a [`LaunchAccess`] to the report (see
    /// [`crate::dataflow`]). Off by default; purely observational — the
    /// functional results and counters are bit-identical either way.
    pub dataflow: bool,
}

/// Everything a launch produces: the profiler counters, the occupancy, and
/// the modelled execution time.
#[derive(Debug, Clone, PartialEq)]
pub struct LaunchReport {
    /// Raw counters.
    pub stats: KernelStats,
    /// Occupancy of the kernel under this configuration.
    pub occupancy: Occupancy,
    /// Analytic execution-time estimate.
    pub timing: KernelTiming,
    /// Per-site counters, present when
    /// [`LaunchOptions::profile_sites`] was set.
    pub sites: Option<SiteProfile>,
    /// Sanitizer findings, present when [`LaunchOptions::sanitize`] was
    /// set (empty report = clean launch).
    pub sanitizer: Option<SanReport>,
    /// Global-memory access summary, present when
    /// [`LaunchOptions::dataflow`] was set.
    pub access: Option<LaunchAccess>,
}

/// Byte-granular read-your-writes overlay for one block's global stores.
///
/// Keyed by 8-byte-aligned cell address; each cell holds a validity mask
/// and the written bytes, so stores and loads of *different* widths over
/// the same address compose correctly. (Regression: the overlay used to
/// be keyed by exact `(address, width)`, so an 8-byte store read back
/// through a 4-byte load silently fell through to the stale pre-launch
/// snapshot. Byte granularity also makes publishing order-independent
/// within a block — cells are disjoint, so applying them in any order
/// produces the same memory.)
///
/// The map is a purpose-built open-addressing table (multiply-shift hash,
/// linear probing) over an insertion-ordered cell vector: the per-access
/// lookup on the interpreter's hot path is one multiply and usually one
/// probe, and [`WriteOverlay::clear`] recycles the allocation across
/// blocks and launches.
#[derive(Debug)]
pub(crate) struct WriteOverlay {
    /// Bucket → cell base address, or [`EMPTY_KEY`].
    keys: Vec<u64>,
    /// Bucket → index into `cells` (valid where `keys` is occupied).
    slots: Vec<u32>,
    /// `(base, cell)` in first-store order.
    cells: Vec<(u64, OverlayCell)>,
    /// `64 - log2(capacity)`.
    shift: u32,
}

/// Sentinel for an empty overlay bucket. Cell bases are 8-byte-aligned
/// device addresses, so the all-ones pattern can never collide.
const EMPTY_KEY: u64 = u64::MAX;

#[derive(Debug, Clone, Copy, Default)]
struct OverlayCell {
    mask: u8,
    bytes: [u8; 8],
}

impl Default for WriteOverlay {
    fn default() -> Self {
        let cap = 1024usize;
        WriteOverlay {
            keys: vec![EMPTY_KEY; cap],
            slots: vec![0; cap],
            cells: Vec::new(),
            shift: 64 - cap.trailing_zeros(),
        }
    }
}

impl WriteOverlay {
    #[inline]
    fn bucket(&self, base: u64) -> usize {
        (base.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> self.shift) as usize
    }

    /// Index of `base`'s cell, or `None` if the block has not stored into
    /// that cell.
    #[inline]
    fn find(&self, base: u64) -> Option<usize> {
        let mask = self.keys.len() - 1;
        let mut b = self.bucket(base);
        loop {
            let k = self.keys[b];
            if k == base {
                return Some(self.slots[b] as usize);
            }
            if k == EMPTY_KEY {
                return None;
            }
            b = (b + 1) & mask;
        }
    }

    /// Index of `base`'s cell, appending a fresh one on first store.
    #[inline]
    fn find_or_insert(&mut self, base: u64) -> usize {
        let mask = self.keys.len() - 1;
        let mut b = self.bucket(base);
        loop {
            let k = self.keys[b];
            if k == base {
                return self.slots[b] as usize;
            }
            if k == EMPTY_KEY {
                let ix = self.cells.len();
                self.keys[b] = base;
                self.slots[b] = ix as u32;
                self.cells.push((base, OverlayCell::default()));
                if self.cells.len() * 2 > self.keys.len() {
                    self.grow();
                }
                return ix;
            }
            b = (b + 1) & mask;
        }
    }

    #[cold]
    fn grow(&mut self) {
        let cap = self.keys.len() * 2;
        self.keys = vec![EMPTY_KEY; cap];
        self.slots = vec![0; cap];
        self.shift = 64 - cap.trailing_zeros();
        let mask = cap - 1;
        for (ix, &(base, _)) in self.cells.iter().enumerate() {
            let mut b = (base.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> self.shift) as usize;
            while self.keys[b] != EMPTY_KEY {
                b = (b + 1) & mask;
            }
            self.keys[b] = base;
            self.slots[b] = ix as u32;
        }
    }

    /// Records a store of `val` (little-endian access bytes) at `addr`.
    /// An access of width <= 8 touches at most two cells.
    fn store(&mut self, addr: u64, val: &[u8]) {
        let mut i = 0;
        while i < val.len() {
            let a = addr + i as u64;
            let base = a & !7;
            let off = (a - base) as usize;
            let n = (8 - off).min(val.len() - i);
            let ix = self.find_or_insert(base);
            let cell = &mut self.cells[ix].1;
            cell.mask |= (((1u16 << n) - 1) as u8) << off;
            cell.bytes[off..off + n].copy_from_slice(&val[i..i + n]);
            i += n;
        }
    }

    /// Loads `width` bytes at `addr`: the pre-launch snapshot patched
    /// with any bytes this block has stored.
    fn load(&self, snapshot: &[u8], addr: u64, width: usize) -> u64 {
        let a = addr as usize;
        let mut out = [0u8; 8];
        out[..width].copy_from_slice(&snapshot[a..a + width]);
        let mut i = 0;
        while i < width {
            let a = addr + i as u64;
            let base = a & !7;
            let off = (a - base) as usize;
            let n = (8 - off).min(width - i);
            if let Some(ix) = self.find(base) {
                let cell = &self.cells[ix].1;
                if cell.mask == 0xFF {
                    out[i..i + n].copy_from_slice(&cell.bytes[off..off + n]);
                } else {
                    for j in 0..n {
                        if cell.mask & (1 << (off + j)) != 0 {
                            out[i + j] = cell.bytes[off + j];
                        }
                    }
                }
            }
            i += n;
        }
        u64::from_le_bytes(out)
    }

    /// Whether this block has stored the byte at `addr` (initcheck
    /// treats block-local stores as defining).
    pub(crate) fn is_written(&self, addr: u64) -> bool {
        let base = addr & !7;
        self.find(base)
            .is_some_and(|ix| self.cells[ix].1.mask & (1 << (addr - base)) != 0)
    }

    /// Takes the block's cells for publication (in first-store order,
    /// which is deterministic; cells are disjoint so application order
    /// within a block cannot matter anyway) and resets the table so the
    /// overlay is ready for the next block. The replacement vector comes
    /// from the publish-side recycling pool, so in the common
    /// one-worker case the cell storage never re-grows from zero.
    fn take_cells(&mut self) -> Vec<(u64, OverlayCell)> {
        self.keys.fill(EMPTY_KEY);
        let fresh = CELL_POOL.with(|p| p.borrow_mut().pop()).unwrap_or_default();
        std::mem::replace(&mut self.cells, fresh)
    }
}

thread_local! {
    /// Emptied overlay cell vectors, recycled from the publish loop back
    /// to `take_cells`. Both run on the launching thread when the block
    /// fan-out is sequential (the common case on small machines), so the
    /// per-block cell storage round-trips instead of reallocating.
    static CELL_POOL: std::cell::RefCell<Vec<Vec<(u64, OverlayCell)>>> =
        const { std::cell::RefCell::new(Vec::new()) };
}

/// Per-block interpreter scratch, pooled per rayon worker so the overlay
/// table, the shared/local arenas, and — most importantly — the warp
/// accumulator's interner and slot tables keep their capacity across
/// blocks *and* launches instead of being re-allocated per block.
#[derive(Default)]
struct BlockScratch {
    writes: WriteOverlay,
    shared: Vec<u8>,
    local: Vec<f64>,
    acc: WarpAccumulator,
    reads: IntervalCollector,
}

thread_local! {
    static SCRATCH_POOL: std::cell::RefCell<Vec<BlockScratch>> =
        const { std::cell::RefCell::new(Vec::new()) };
}

/// RAII handle returning its scratch to the worker-local pool when the
/// rayon split that borrowed it ends.
struct PooledScratch(BlockScratch);

impl PooledScratch {
    fn take() -> Self {
        PooledScratch(
            SCRATCH_POOL
                .with(|p| p.borrow_mut().pop())
                .unwrap_or_default(),
        )
    }
}

impl Drop for PooledScratch {
    fn drop(&mut self) {
        let scratch = std::mem::take(&mut self.0);
        SCRATCH_POOL.with(|p| {
            let mut pool = p.borrow_mut();
            if pool.len() < 8 {
                pool.push(scratch);
            }
        });
    }
}

/// Virtual base address of the per-thread local (spill) space; far above
/// any global allocation so segment sets never collide.
const LOCAL_BASE: u64 = 1 << 40;

/// Per-thread execution context: thread identity, memory access, and event
/// recording.
///
/// Lane-private interpreter state is stored structure-of-arrays per warp:
/// `local` is the whole warp's spill arena (slot-major, lane-minor, so one
/// slot's 32 lane copies are contiguous — the same interleaving Fermi uses
/// for local memory), zeroed once per warp instead of once per lane.
pub struct ThreadCtx<'a> {
    block_idx: u32,
    thread_idx: u32,
    threads_per_block: u32,
    blocks: u32,
    lane: u32,
    warp_lanes: u32,
    local_slots: u32,
    global_warp_id: u64,
    snapshot: &'a [u8],
    init: &'a InitMask,
    writes: &'a mut WriteOverlay,
    shared: &'a mut [u8],
    local: &'a mut [f64],
    acc: &'a mut WarpAccumulator,
    san: Option<&'a mut BlockSan>,
    reads: Option<&'a mut IntervalCollector>,
}

impl ThreadCtx<'_> {
    /// Index of this thread's block in the grid.
    pub fn block_idx(&self) -> usize {
        self.block_idx as usize
    }

    /// Thread index within the block (`threadIdx.x`).
    pub fn thread_idx(&self) -> usize {
        self.thread_idx as usize
    }

    /// Block size (`blockDim.x`).
    pub fn block_dim(&self) -> usize {
        self.threads_per_block as usize
    }

    /// Grid size in blocks (`gridDim.x`).
    pub fn grid_dim(&self) -> usize {
        self.blocks as usize
    }

    /// Global linear thread id (`blockIdx.x * blockDim.x + threadIdx.x`).
    pub fn global_thread_id(&self) -> usize {
        self.block_idx as usize * self.threads_per_block as usize + self.thread_idx as usize
    }

    /// Lane index within the warp.
    pub fn lane(&self) -> usize {
        self.lane as usize
    }

    // ---- arithmetic ----

    /// Charges `n` double-precision floating-point operations.
    #[track_caller]
    #[inline]
    pub fn flop64(&mut self, n: u32) {
        self.acc.record_op(Location::caller(), OpClass::F64, n);
    }

    /// Charges `n` single-precision floating-point operations.
    #[track_caller]
    #[inline]
    pub fn flop32(&mut self, n: u32) {
        self.acc.record_op(Location::caller(), OpClass::F32, n);
    }

    /// Charges `n` integer/address operations.
    #[track_caller]
    #[inline]
    pub fn int_op(&mut self, n: u32) {
        self.acc.record_op(Location::caller(), OpClass::Int, n);
    }

    /// Records a data-dependent branch and returns the condition, so
    /// kernels write `if ctx.branch(cond) { ... }`.
    #[track_caller]
    #[inline]
    pub fn branch(&mut self, cond: bool) -> bool {
        self.acc.record_branch(Location::caller(), cond);
        cond
    }

    /// Records a block barrier (`__syncthreads()`).
    ///
    /// Lanes execute sequentially to completion, so functionally the
    /// barrier is a no-op — but it is *semantically* load-bearing: it
    /// separates the sync epochs the sanitizer's racecheck orders
    /// shared-memory accesses by, and it is the event synccheck audits
    /// for barrier divergence. Kernels with cross-lane data flow through
    /// shared memory should be validated once under
    /// [`LaunchOptions::sanitize`], which reports both genuine races and
    /// barrier-ordered flows the sequential-lane model cannot reproduce
    /// (see [`crate::sancheck`]).
    #[track_caller]
    #[inline]
    pub fn sync(&mut self) {
        let loc = Location::caller();
        self.acc.record_sync(loc);
        if let Some(san) = self.san.as_deref_mut() {
            san.on_sync(loc);
        }
    }

    // ---- global memory ----

    /// Bounds-checks a global access of `width` bytes at element `idx`
    /// of `buf` and resolves its device byte address.
    ///
    /// Out of bounds: panics at the kernel call site with the buffer
    /// identity on the plain path; under [`LaunchOptions::sanitize`]
    /// records a memcheck finding and returns `None` so the caller
    /// absorbs the access. Either way an overrun can never silently
    /// reach a neighboring allocation (the kernel-side mirror of the
    /// `DeviceMemory` typed-accessor checks).
    #[track_caller]
    #[inline]
    fn check_global(&mut self, buf: Buffer, idx: usize, width: usize, store: bool) -> Option<u64> {
        let end = idx
            .checked_mul(width)
            .and_then(|o| o.checked_add(width))
            .unwrap_or(usize::MAX);
        if end <= buf.len() {
            return Some(buf.addr() + (idx * width) as u64);
        }
        let dir = if store { "store" } else { "load" };
        let loc = Location::caller();
        let detail = format!(
            "global {dir} of {width} B at element {idx} is out of bounds for buffer @0x{:x} \
             (+{} B, {} elements)",
            buf.addr(),
            buf.len(),
            buf.len() / width.max(1)
        );
        match self.san.as_deref_mut() {
            Some(san) => {
                let addr = buf
                    .addr()
                    .saturating_add((idx as u64).saturating_mul(width as u64));
                san.oob(loc, Space::Global, addr, width, detail);
                None
            }
            None => panic!("kernel {}:{}: {detail}", loc.file(), loc.line()),
        }
    }

    /// initcheck hook for a bounds-valid global load: every byte must be
    /// initialized by the host, an upload, or a store of this block.
    #[inline]
    fn check_global_init(
        &mut self,
        loc: &'static Location<'static>,
        buf: Buffer,
        addr: u64,
        width: usize,
    ) {
        if self.san.is_none() {
            return;
        }
        for b in addr..addr + width as u64 {
            if !self.init.is_init(b as usize) && !self.writes.is_written(b) {
                if let Some(san) = self.san.as_deref_mut() {
                    san.uninit_global(loc, buf, addr, width);
                }
                return;
            }
        }
    }

    #[inline]
    fn read_bytes(&self, addr: u64, width: usize) -> u64 {
        self.writes.load(self.snapshot, addr, width)
    }

    /// Dataflow hook for a bounds-valid global load: records the byte
    /// runs this block reads from *outside* its own stores — exactly
    /// the launch's RAW demand on earlier producers. Bytes the block
    /// already stored are read-your-writes, not cross-launch flow.
    #[inline]
    fn record_external_read(&mut self, addr: u64, width: usize) {
        let Some(reads) = self.reads.as_deref_mut() else {
            return;
        };
        let mut start = None;
        for a in addr..addr + width as u64 {
            if self.writes.is_written(a) {
                if let Some(s) = start.take() {
                    reads.record_run(s, a);
                }
            } else if start.is_none() {
                start = Some(a);
            }
        }
        if let Some(s) = start {
            reads.record_run(s, addr + width as u64);
        }
    }

    /// Loads an `f64` from global memory at element index `idx` of `buf`.
    #[track_caller]
    #[inline]
    pub fn ld_f64(&mut self, buf: Buffer, idx: usize) -> f64 {
        let Some(addr) = self.check_global(buf, idx, 8, false) else {
            return 0.0;
        };
        let loc = Location::caller();
        self.acc.record_mem(loc, Space::Global, false, addr, 8);
        self.check_global_init(loc, buf, addr, 8);
        self.record_external_read(addr, 8);
        f64::from_le_bytes(self.read_bytes(addr, 8).to_le_bytes())
    }

    /// Stores an `f64` to global memory at element index `idx` of `buf`.
    #[track_caller]
    #[inline]
    pub fn st_f64(&mut self, buf: Buffer, idx: usize, v: f64) {
        let Some(addr) = self.check_global(buf, idx, 8, true) else {
            return;
        };
        self.acc
            .record_mem(Location::caller(), Space::Global, true, addr, 8);
        self.writes.store(addr, &v.to_le_bytes());
    }

    /// Loads an `f32` from global memory.
    #[track_caller]
    #[inline]
    pub fn ld_f32(&mut self, buf: Buffer, idx: usize) -> f32 {
        let Some(addr) = self.check_global(buf, idx, 4, false) else {
            return 0.0;
        };
        let loc = Location::caller();
        self.acc.record_mem(loc, Space::Global, false, addr, 4);
        self.check_global_init(loc, buf, addr, 4);
        self.record_external_read(addr, 4);
        f32::from_le_bytes((self.read_bytes(addr, 4) as u32).to_le_bytes())
    }

    /// Stores an `f32` to global memory.
    #[track_caller]
    #[inline]
    pub fn st_f32(&mut self, buf: Buffer, idx: usize, v: f32) {
        let Some(addr) = self.check_global(buf, idx, 4, true) else {
            return;
        };
        self.acc
            .record_mem(Location::caller(), Space::Global, true, addr, 4);
        self.writes.store(addr, &v.to_le_bytes());
    }

    /// Loads a `u8` from global memory.
    #[track_caller]
    #[inline]
    pub fn ld_u8(&mut self, buf: Buffer, idx: usize) -> u8 {
        let Some(addr) = self.check_global(buf, idx, 1, false) else {
            return 0;
        };
        let loc = Location::caller();
        self.acc.record_mem(loc, Space::Global, false, addr, 1);
        self.check_global_init(loc, buf, addr, 1);
        self.record_external_read(addr, 1);
        self.read_bytes(addr, 1) as u8
    }

    /// Stores a `u8` to global memory.
    #[track_caller]
    #[inline]
    pub fn st_u8(&mut self, buf: Buffer, idx: usize, v: u8) {
        let Some(addr) = self.check_global(buf, idx, 1, true) else {
            return;
        };
        self.acc
            .record_mem(Location::caller(), Space::Global, true, addr, 1);
        self.writes.store(addr, &[v]);
    }

    // ---- local (spill) memory ----

    /// Bounds-checks a local (spill) slot access: panic on the plain
    /// path, memcheck finding + absorbed access under sanitize.
    #[track_caller]
    #[inline]
    fn check_local(&mut self, slot: usize, store: bool) -> bool {
        if slot < self.local_slots as usize {
            return true;
        }
        let dir = if store { "store" } else { "load" };
        let loc = Location::caller();
        let detail = format!(
            "local {dir} of slot {slot} is out of bounds for the kernel's {} declared f64 \
             spill slots",
            self.local_slots
        );
        match self.san.as_deref_mut() {
            Some(san) => {
                san.oob(loc, Space::Local, slot as u64, 8, detail);
                false
            }
            None => panic!("kernel {}:{}: {detail}", loc.file(), loc.line()),
        }
    }

    #[inline]
    fn local_addr(&self, slot: usize) -> u64 {
        // Fermi interleaves local memory so that the 32 lanes' copies of
        // one slot are contiguous: uniform slot accesses coalesce. The
        // product stays far below u64::MAX: global_warp_id < 2^37 (u32
        // blocks x <=32 warps/block), slots and lane are small, so the
        // address tops out around 2^50 above LOCAL_BASE.
        let slots = self.local_slots as u64;
        LOCAL_BASE + ((self.global_warp_id * slots + slot as u64) * 32 + self.lane as u64) * 8
    }

    /// The warp-SoA arena index of this lane's copy of `slot`.
    #[inline]
    fn local_ix(&self, slot: usize) -> usize {
        slot * self.warp_lanes as usize + self.lane as usize
    }

    /// Loads a per-thread local (spill) `f64` slot.
    #[track_caller]
    #[inline]
    pub fn ld_local(&mut self, slot: usize) -> f64 {
        if !self.check_local(slot, false) {
            return 0.0;
        }
        let addr = self.local_addr(slot);
        self.acc
            .record_mem(Location::caller(), Space::Local, false, addr, 8);
        self.local[self.local_ix(slot)]
    }

    /// Stores a per-thread local (spill) `f64` slot.
    #[track_caller]
    #[inline]
    pub fn st_local(&mut self, slot: usize, v: f64) {
        if !self.check_local(slot, true) {
            return;
        }
        let addr = self.local_addr(slot);
        self.acc
            .record_mem(Location::caller(), Space::Local, true, addr, 8);
        let ix = self.local_ix(slot);
        self.local[ix] = v;
    }

    // ---- shared memory ----

    /// Bounds-checks a shared-memory access against the block's declared
    /// allocation: panic on the plain path, memcheck finding + absorbed
    /// access under sanitize.
    #[track_caller]
    #[inline]
    fn check_shared(&mut self, off: usize, width: usize, store: bool) -> bool {
        if off
            .checked_add(width)
            .is_some_and(|end| end <= self.shared.len())
        {
            return true;
        }
        let dir = if store { "store" } else { "load" };
        let loc = Location::caller();
        let detail = format!(
            "shared {dir} of {width} B at byte offset {off} exceeds the block's {} B shared \
             allocation",
            self.shared.len()
        );
        match self.san.as_deref_mut() {
            Some(san) => {
                san.oob(loc, Space::Shared, off as u64, width, detail);
                false
            }
            None => panic!("kernel {}:{}: {detail}", loc.file(), loc.line()),
        }
    }

    /// Loads an `f64` from block shared memory at byte offset `off`.
    #[track_caller]
    #[inline]
    pub fn sh_ld_f64(&mut self, off: usize) -> f64 {
        if !self.check_shared(off, 8, false) {
            return 0.0;
        }
        let loc = Location::caller();
        self.acc
            .record_mem(loc, Space::Shared, false, off as u64, 8);
        if let Some(san) = self.san.as_deref_mut() {
            san.shared_read(loc, off, 8);
        }
        f64::from_le_bytes(self.shared[off..off + 8].try_into().expect("8 bytes"))
    }

    /// Stores an `f64` to block shared memory at byte offset `off`.
    #[track_caller]
    #[inline]
    pub fn sh_st_f64(&mut self, off: usize, v: f64) {
        if !self.check_shared(off, 8, true) {
            return;
        }
        let loc = Location::caller();
        self.acc.record_mem(loc, Space::Shared, true, off as u64, 8);
        if let Some(san) = self.san.as_deref_mut() {
            san.shared_write(loc, off, 8);
        }
        self.shared[off..off + 8].copy_from_slice(&v.to_le_bytes());
    }

    /// Loads an `f32` from block shared memory at byte offset `off`.
    #[track_caller]
    #[inline]
    pub fn sh_ld_f32(&mut self, off: usize) -> f32 {
        if !self.check_shared(off, 4, false) {
            return 0.0;
        }
        let loc = Location::caller();
        self.acc
            .record_mem(loc, Space::Shared, false, off as u64, 4);
        if let Some(san) = self.san.as_deref_mut() {
            san.shared_read(loc, off, 4);
        }
        f32::from_le_bytes(self.shared[off..off + 4].try_into().expect("4 bytes"))
    }

    /// Stores an `f32` to block shared memory at byte offset `off`.
    #[track_caller]
    #[inline]
    pub fn sh_st_f32(&mut self, off: usize, v: f32) {
        if !self.check_shared(off, 4, true) {
            return;
        }
        let loc = Location::caller();
        self.acc.record_mem(loc, Space::Shared, true, off as u64, 4);
        if let Some(san) = self.san.as_deref_mut() {
            san.shared_write(loc, off, 4);
        }
        self.shared[off..off + 4].copy_from_slice(&v.to_le_bytes());
    }

    /// Loads a `u8` from block shared memory.
    #[track_caller]
    #[inline]
    pub fn sh_ld_u8(&mut self, off: usize) -> u8 {
        if !self.check_shared(off, 1, false) {
            return 0;
        }
        let loc = Location::caller();
        self.acc
            .record_mem(loc, Space::Shared, false, off as u64, 1);
        if let Some(san) = self.san.as_deref_mut() {
            san.shared_read(loc, off, 1);
        }
        self.shared[off]
    }

    /// Stores a `u8` to block shared memory.
    #[track_caller]
    #[inline]
    pub fn sh_st_u8(&mut self, off: usize, v: u8) {
        if !self.check_shared(off, 1, true) {
            return;
        }
        let loc = Location::caller();
        self.acc.record_mem(loc, Space::Shared, true, off as u64, 1);
        if let Some(san) = self.san.as_deref_mut() {
            san.shared_write(loc, off, 1);
        }
        self.shared[off] = v;
    }
}

/// Launches `kernel` over `lc` on the device, returning profiler counters,
/// occupancy, and a modelled execution time.
///
/// Blocks run in parallel on host threads; global stores become visible to
/// other blocks only after the launch (see crate docs).
///
/// # Errors
/// [`LaunchError::InvalidConfig`] for malformed grids,
/// [`LaunchError::ResourcesExceeded`] when no block can be resident.
pub fn launch(
    mem: &mut DeviceMemory,
    cfg: &GpuConfig,
    lc: LaunchConfig,
    kernel: &dyn Kernel,
) -> Result<LaunchReport, LaunchError> {
    launch_with(mem, cfg, lc, kernel, LaunchOptions::default())
}

/// [`launch`] with explicit [`LaunchOptions`] — in particular per-site
/// hotspot profiling.
///
/// # Errors
/// Same as [`launch`].
pub fn launch_with(
    mem: &mut DeviceMemory,
    cfg: &GpuConfig,
    lc: LaunchConfig,
    kernel: &dyn Kernel,
    opts: LaunchOptions,
) -> Result<LaunchReport, LaunchError> {
    Ok(BatchLauncher::new(cfg, lc, kernel.resources())?.launch(mem, cfg, kernel, opts))
}

/// A pre-validated launch plan for a fixed grid and resource declaration.
///
/// [`launch_with`] re-checks the grid and re-derives occupancy on every
/// call. A host loop that launches the same kernel shape once per frame —
/// the paper's pipeline, where every frame is one more launch of an
/// identical kernel over an identical grid — pays that setup per frame
/// for no reason. `BatchLauncher::new` does the validation and occupancy
/// derivation once; [`BatchLauncher::launch`] then runs any number of
/// kernels that declare the same [`KernelResources`], infallibly.
///
/// The plan is only meaningful for the `cfg` it was validated against;
/// launching under a different device configuration is a logic error
/// (caught by `debug_assert` on the resource declaration, not the
/// config).
#[derive(Debug, Clone, Copy)]
pub struct BatchLauncher {
    lc: LaunchConfig,
    res: KernelResources,
    occ: Occupancy,
    local_slots: u32,
}

impl BatchLauncher {
    /// Validates `lc` against `cfg` and derives occupancy for a kernel
    /// declaring `res`, returning a reusable plan.
    ///
    /// # Errors
    /// [`LaunchError::InvalidConfig`] for malformed grids,
    /// [`LaunchError::ResourcesExceeded`] when no block can be resident.
    pub fn new(
        cfg: &GpuConfig,
        lc: LaunchConfig,
        res: KernelResources,
    ) -> Result<Self, LaunchError> {
        if lc.blocks == 0 || lc.threads_per_block == 0 {
            return Err(LaunchError::InvalidConfig(format!(
                "grid {}x{} has a zero dimension",
                lc.blocks, lc.threads_per_block
            )));
        }
        if lc.threads_per_block > cfg.max_threads_per_block {
            return Err(LaunchError::InvalidConfig(format!(
                "{} threads/block exceeds the device limit of {}",
                lc.threads_per_block, cfg.max_threads_per_block
            )));
        }
        let occ = occupancy(cfg, &lc, &res).ok_or_else(|| {
            LaunchError::ResourcesExceeded(format!(
                "{} regs/thread and {} B shared leave no resident block",
                res.regs_per_thread, res.shared_bytes_per_block
            ))
        })?;
        let local_slots = u32::try_from(res.local_f64_slots).map_err(|_| {
            LaunchError::ResourcesExceeded(format!(
                "{} local f64 slots per thread exceed the addressable limit",
                res.local_f64_slots
            ))
        })?;
        Ok(BatchLauncher {
            lc,
            res,
            occ,
            local_slots,
        })
    }

    /// The grid this plan was validated for.
    pub fn launch_config(&self) -> LaunchConfig {
        self.lc
    }

    /// The occupancy every launch of this plan will report.
    pub fn occupancy(&self) -> Occupancy {
        self.occ
    }

    /// Runs one pre-validated launch. `kernel` must declare the same
    /// [`KernelResources`] the plan was built with.
    pub fn launch(
        &self,
        mem: &mut DeviceMemory,
        cfg: &GpuConfig,
        kernel: &dyn Kernel,
        opts: LaunchOptions,
    ) -> LaunchReport {
        debug_assert_eq!(
            kernel.resources(),
            self.res,
            "kernel resources changed since BatchLauncher::new"
        );
        launch_prepared(mem, cfg, self, kernel, opts)
    }
}

/// Shared launch body: executes the grid described by a validated plan.
fn launch_prepared(
    mem: &mut DeviceMemory,
    cfg: &GpuConfig,
    plan: &BatchLauncher,
    kernel: &dyn Kernel,
    opts: LaunchOptions,
) -> LaunchReport {
    let lc = plan.lc;
    let res = plan.res;
    let occ = plan.occ;
    let local_slots = plan.local_slots;

    let tpb = lc.threads_per_block;
    let warps_per_block = tpb.div_ceil(cfg.warp_size) as u64;
    let local_arena = res.local_f64_slots * cfg.warp_size as usize;
    let snapshot: &[u8] = mem.raw();
    let init: &InitMask = mem.init_mask();

    type BlockResult = (
        Vec<(u64, OverlayCell)>,
        KernelStats,
        Option<SiteProfile>,
        Option<SanReport>,
        Option<IntervalSet>,
    );
    let results: Vec<BlockResult> = (0..lc.blocks)
        .into_par_iter()
        .map_init(PooledScratch::take, |scratch, b| {
            let BlockScratch {
                writes,
                shared,
                local,
                acc,
                reads,
            } = &mut scratch.0;
            shared.clear();
            shared.resize(res.shared_bytes_per_block, 0);
            if opts.dataflow {
                reads.clear();
            }
            acc.set_profiling(opts.profile_sites);
            let mut stats = KernelStats::default();
            let mut san = opts
                .sanitize
                .then(|| BlockSan::new(b, tpb, res.shared_bytes_per_block));
            // Optional L2: each block simulates a private slice of the
            // shared cache (see crate::cache for the approximation).
            let mut cache = if cfg.l2_bytes > 0 {
                let resident = (cfg.num_sms * occ.resident_blocks).max(1) as usize;
                Some(crate::cache::CacheModel::new(
                    cfg.l2_bytes / resident,
                    cfg.l2_assoc,
                    cfg.segment_bytes,
                ))
            } else {
                None
            };
            let mut w = 0u32;
            while w * cfg.warp_size < tpb {
                let first = w * cfg.warp_size;
                let last = (first + cfg.warp_size).min(tpb);
                // The warp's whole spill arena is zeroed once here instead
                // of per lane; lanes index it slot-major via `local_ix`.
                local.clear();
                local.resize(local_arena, 0.0);
                for t in first..last {
                    acc.begin_lane();
                    if let Some(s) = san.as_mut() {
                        s.begin_thread(t);
                    }
                    let mut ctx = ThreadCtx {
                        block_idx: b,
                        thread_idx: t,
                        threads_per_block: tpb,
                        blocks: lc.blocks,
                        lane: t - first,
                        warp_lanes: cfg.warp_size,
                        local_slots,
                        global_warp_id: b as u64 * warps_per_block + w as u64,
                        snapshot,
                        init,
                        writes: &mut *writes,
                        shared: shared.as_mut_slice(),
                        local: local.as_mut_slice(),
                        acc: &mut *acc,
                        san: san.as_mut(),
                        reads: if opts.dataflow {
                            Some(&mut *reads)
                        } else {
                            None
                        },
                    };
                    kernel.run(&mut ctx);
                }
                acc.end_warp_cached(cfg, &mut stats, cache.as_mut());
                w += 1;
            }
            stats.blocks = 1;
            let sites = acc.take_site_profile();
            let block_reads = opts.dataflow.then(|| reads.take_set());
            (
                writes.take_cells(),
                stats,
                sites,
                san.map(BlockSan::into_report),
                block_reads,
            )
        })
        .collect();

    let mut stats = KernelStats::default();
    let mut sites = opts.profile_sites.then(SiteProfile::new);
    let mut sanitizer = opts.sanitize.then(SanReport::new);
    for (_, s, block_sites, block_san, _) in &results {
        stats.merge(s);
        if let (Some(total), Some(block)) = (&mut sites, block_sites) {
            total.merge(block);
        }
        if let (Some(total), Some(block)) = (&mut sanitizer, block_san) {
            total.merge(block);
        }
    }
    // Publish in block order: byte-granular cells are disjoint within a
    // block, and cross-block collisions resolve last-block-wins,
    // deterministically. Emptied cell vectors go back to the pool for
    // the next block's `take_cells`. The dataflow write set is read off
    // the same cells, so it is exactly the published bytes.
    let mut access_cols = opts
        .dataflow
        .then(|| (IntervalCollector::default(), IntervalCollector::default()));
    for (mut cells, _, _, _, block_reads) in results {
        if let Some((rcol, wcol)) = access_cols.as_mut() {
            if let Some(r) = &block_reads {
                rcol.extend_set(r);
            }
            for &(base, cell) in &cells {
                wcol.record_cell(base, cell.mask);
            }
        }
        for &(base, cell) in &cells {
            mem.apply_masked(base, cell.mask, cell.bytes);
        }
        cells.clear();
        CELL_POOL.with(|p| {
            let mut pool = p.borrow_mut();
            if pool.len() < 16 {
                pool.push(cells);
            }
        });
    }
    let access = access_cols.map(|(mut rcol, mut wcol)| LaunchAccess {
        reads: rcol.take_set(),
        writes: wcol.take_set(),
    });

    let timing = kernel_time(&stats, &occ, cfg);
    LaunchReport {
        stats,
        occupancy: occ,
        timing,
        sites,
        sanitizer,
        access,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Doubles every f64 element: out[i] = 2 * in[i].
    struct DoubleKernel {
        input: Buffer,
        output: Buffer,
        n: usize,
    }

    impl Kernel for DoubleKernel {
        fn resources(&self) -> KernelResources {
            KernelResources {
                regs_per_thread: 16,
                shared_bytes_per_block: 0,
                local_f64_slots: 0,
            }
        }

        fn run(&self, ctx: &mut ThreadCtx<'_>) {
            let i = ctx.global_thread_id();
            if i >= self.n {
                return;
            }
            let v = ctx.ld_f64(self.input, i);
            ctx.flop64(1);
            ctx.st_f64(self.output, i, 2.0 * v);
        }
    }

    fn setup(n: usize) -> (DeviceMemory, Buffer, Buffer) {
        let mut mem = DeviceMemory::new(1 << 24);
        let input = mem.alloc_array::<f64>(n).unwrap();
        let output = mem.alloc_array::<f64>(n).unwrap();
        for i in 0..n {
            mem.write_f64(input, i, i as f64);
        }
        (mem, input, output)
    }

    #[test]
    fn functional_output_is_correct() {
        let n = 1000;
        let (mut mem, input, output) = setup(n);
        let k = DoubleKernel { input, output, n };
        let cfg = GpuConfig::default();
        let report = launch(&mut mem, &cfg, LaunchConfig::cover(n, 128), &k).unwrap();
        for i in 0..n {
            assert_eq!(mem.read_f64(output, i), 2.0 * i as f64);
        }
        assert_eq!(report.stats.lanes, 1024); // 8 blocks x 128
        assert_eq!(report.stats.flops_f64, 1000); // guarded threads do no work
    }

    #[test]
    fn coalesced_kernel_is_fully_efficient() {
        let n = 4096;
        let (mut mem, input, output) = setup(n);
        let k = DoubleKernel { input, output, n };
        let cfg = GpuConfig::default();
        let report = launch(&mut mem, &cfg, LaunchConfig::cover(n, 128), &k).unwrap();
        assert!((report.stats.gld_efficiency(&cfg) - 1.0).abs() < 1e-9);
        assert!((report.stats.gst_efficiency(&cfg) - 1.0).abs() < 1e-9);
        // 4096 f64 loads = 4096*8/128 = 256 transactions.
        assert_eq!(report.stats.global_load_tx, 256);
    }

    #[test]
    fn read_your_own_writes_within_block() {
        /// st then ld the same location in one thread.
        struct Rw {
            buf: Buffer,
        }
        impl Kernel for Rw {
            fn resources(&self) -> KernelResources {
                KernelResources {
                    regs_per_thread: 8,
                    shared_bytes_per_block: 0,
                    local_f64_slots: 0,
                }
            }
            fn run(&self, ctx: &mut ThreadCtx<'_>) {
                let i = ctx.global_thread_id();
                ctx.st_f64(self.buf, i, 41.0);
                let v = ctx.ld_f64(self.buf, i);
                ctx.st_f64(self.buf, i, v + 1.0);
            }
        }
        let mut mem = DeviceMemory::new(1 << 20);
        let buf = mem.alloc_array::<f64>(64).unwrap();
        let cfg = GpuConfig::default();
        launch(&mut mem, &cfg, LaunchConfig::cover(64, 32), &Rw { buf }).unwrap();
        for i in 0..64 {
            assert_eq!(mem.read_f64(buf, i), 42.0);
        }
    }

    /// Regression for the silent `as u32` truncation in
    /// [`LaunchConfig::cover`]: a thread count needing more than
    /// `u32::MAX` blocks used to wrap around into a tiny grid that
    /// covered almost none of the requested threads. It must panic.
    #[test]
    fn cover_panics_instead_of_truncating_huge_grids() {
        let r = std::panic::catch_unwind(|| LaunchConfig::cover(usize::MAX, 1));
        assert!(r.is_err(), "overflowing grid must panic, not truncate");
        // The largest expressible grid still works at the boundary.
        let lc = LaunchConfig::cover(u32::MAX as usize, 1);
        assert_eq!(lc.blocks, u32::MAX);
    }

    #[test]
    fn zero_grid_rejected() {
        let mut mem = DeviceMemory::new(1 << 20);
        let buf = mem.alloc_array::<f64>(1).unwrap();
        let k = DoubleKernel {
            input: buf,
            output: buf,
            n: 0,
        };
        let cfg = GpuConfig::default();
        let err = launch(
            &mut mem,
            &cfg,
            LaunchConfig {
                blocks: 0,
                threads_per_block: 128,
            },
            &k,
        );
        assert!(matches!(err, Err(LaunchError::InvalidConfig(_))));
    }

    #[test]
    fn oversized_block_rejected() {
        let mut mem = DeviceMemory::new(1 << 20);
        let buf = mem.alloc_array::<f64>(1).unwrap();
        let k = DoubleKernel {
            input: buf,
            output: buf,
            n: 1,
        };
        let cfg = GpuConfig::default();
        let err = launch(
            &mut mem,
            &cfg,
            LaunchConfig {
                blocks: 1,
                threads_per_block: 4096,
            },
            &k,
        );
        assert!(matches!(err, Err(LaunchError::InvalidConfig(_))));
    }

    #[test]
    fn excessive_shared_memory_rejected() {
        struct Fat;
        impl Kernel for Fat {
            fn resources(&self) -> KernelResources {
                KernelResources {
                    regs_per_thread: 8,
                    shared_bytes_per_block: 1 << 20,
                    local_f64_slots: 0,
                }
            }
            fn run(&self, _ctx: &mut ThreadCtx<'_>) {}
        }
        let mut mem = DeviceMemory::new(1 << 20);
        let cfg = GpuConfig::default();
        let err = launch(
            &mut mem,
            &cfg,
            LaunchConfig {
                blocks: 1,
                threads_per_block: 32,
            },
            &Fat,
        );
        assert!(matches!(err, Err(LaunchError::ResourcesExceeded(_))));
    }

    #[test]
    fn divergent_kernel_reports_low_branch_efficiency() {
        /// Every other lane takes a different path.
        struct Diverge {
            out: Buffer,
        }
        impl Kernel for Diverge {
            fn resources(&self) -> KernelResources {
                KernelResources {
                    regs_per_thread: 8,
                    shared_bytes_per_block: 0,
                    local_f64_slots: 0,
                }
            }
            fn run(&self, ctx: &mut ThreadCtx<'_>) {
                let i = ctx.global_thread_id();
                if ctx.branch(i.is_multiple_of(2)) {
                    ctx.flop64(10);
                    ctx.st_f64(self.out, i, 1.0);
                } else {
                    ctx.flop64(10);
                    ctx.st_f64(self.out, i, 2.0);
                }
            }
        }
        let mut mem = DeviceMemory::new(1 << 20);
        let out = mem.alloc_array::<f64>(128).unwrap();
        let cfg = GpuConfig::default();
        let report = launch(
            &mut mem,
            &cfg,
            LaunchConfig::cover(128, 128),
            &Diverge { out },
        )
        .unwrap();
        assert_eq!(report.stats.branch_efficiency(), 0.0);
        // Serialization: both sides' flop slots issued in every warp.
        // 4 warps x 2 paths x 10 f64-flops x cost 2 = 160 cycles of flops
        // + 4 branch slots + mem slots.
        assert!(report.stats.issue_cycles >= 160.0);
        for i in 0..128usize {
            let expect = if i.is_multiple_of(2) { 1.0 } else { 2.0 };
            assert_eq!(mem.read_f64(out, i), expect);
        }
    }

    #[test]
    fn shared_memory_round_trips_within_block() {
        /// Each thread stages its value in shared memory and reads it back.
        struct Stage {
            out: Buffer,
        }
        impl Kernel for Stage {
            fn resources(&self) -> KernelResources {
                KernelResources {
                    regs_per_thread: 8,
                    shared_bytes_per_block: 128 * 8,
                    local_f64_slots: 0,
                }
            }
            fn run(&self, ctx: &mut ThreadCtx<'_>) {
                let t = ctx.thread_idx();
                let g = ctx.global_thread_id();
                ctx.sh_st_f64(t * 8, g as f64 * 3.0);
                ctx.sync();
                let v = ctx.sh_ld_f64(t * 8);
                ctx.st_f64(self.out, g, v);
            }
        }
        let mut mem = DeviceMemory::new(1 << 20);
        let out = mem.alloc_array::<f64>(256).unwrap();
        let cfg = GpuConfig::default();
        let report = launch(
            &mut mem,
            &cfg,
            LaunchConfig::cover(256, 128),
            &Stage { out },
        )
        .unwrap();
        for i in 0..256 {
            assert_eq!(mem.read_f64(out, i), i as f64 * 3.0);
        }
        // Stride-2 f64 word pattern: lane i touches words 2i, 2i+1 — no
        // two lanes share a bank word pair => conflict-free two-word
        // access... the analyzer reports replays for the 8-byte span.
        assert_eq!(report.stats.shared_accesses, 512);
        assert_eq!(report.stats.sync_slots, 8);
    }

    #[test]
    fn local_memory_is_private_per_thread() {
        struct Spill {
            out: Buffer,
        }
        impl Kernel for Spill {
            fn resources(&self) -> KernelResources {
                KernelResources {
                    regs_per_thread: 8,
                    shared_bytes_per_block: 0,
                    local_f64_slots: 4,
                }
            }
            fn run(&self, ctx: &mut ThreadCtx<'_>) {
                let g = ctx.global_thread_id();
                ctx.st_local(2, g as f64);
                let v = ctx.ld_local(2);
                ctx.st_f64(self.out, g, v);
            }
        }
        let mut mem = DeviceMemory::new(1 << 20);
        let out = mem.alloc_array::<f64>(96).unwrap();
        let cfg = GpuConfig::default();
        let report = launch(&mut mem, &cfg, LaunchConfig::cover(96, 32), &Spill { out }).unwrap();
        for i in 0..96 {
            assert_eq!(mem.read_f64(out, i), i as f64);
        }
        // Uniform slot access coalesces: 32 lanes x 8 B = 2 segments per
        // warp; 3 warps; loads and stores each.
        assert_eq!(report.stats.local_store_tx, 6);
        assert_eq!(report.stats.local_load_tx, 6);
        assert_eq!(report.stats.global_store_tx, 6);
    }

    #[test]
    fn default_launch_has_no_site_profile() {
        let n = 256;
        let (mut mem, input, output) = setup(n);
        let k = DoubleKernel { input, output, n };
        let cfg = GpuConfig::default();
        let report = launch(&mut mem, &cfg, LaunchConfig::cover(n, 128), &k).unwrap();
        assert!(report.sites.is_none());
    }

    #[test]
    fn profiled_launch_attributes_sites_to_source_lines() {
        let n = 1024;
        let (mut mem, input, output) = setup(n);
        let k = DoubleKernel { input, output, n };
        let cfg = GpuConfig::default();
        let opts = LaunchOptions {
            profile_sites: true,
            ..Default::default()
        };
        let report = launch_with(&mut mem, &cfg, LaunchConfig::cover(n, 128), &k, opts).unwrap();
        // Functional output must be unaffected by profiling.
        for i in 0..n {
            assert_eq!(mem.read_f64(output, i), 2.0 * i as f64);
        }
        let sites = report.sites.expect("profiled launch returns sites");
        // DoubleKernel::run has three distinct instrumented call sites
        // (ld_f64, flop64, st_f64) plus warp-divergence-free guards.
        assert!(sites.len() >= 3, "expected >=3 sites, got {}", sites.len());
        let rows = sites.ranked_rows();
        let resolved: Vec<&str> = rows.iter().filter_map(|r| r.source.as_deref()).collect();
        assert!(
            resolved.len() >= 3,
            "all real sites must resolve: {resolved:?}"
        );
        for src in &resolved {
            assert!(src.contains("kernel.rs"), "unexpected site file: {src}");
        }
        // Site-level counters must agree with the launch-level totals.
        let site_tx: u64 = rows.iter().map(|r| r.stats.transactions).sum();
        assert_eq!(site_tx, report.stats.total_tx());
        let site_cycles: f64 = rows.iter().map(|r| r.stats.issue_cycles).sum();
        assert!((site_cycles - report.stats.issue_cycles).abs() < 1e-9);
        // And the rendered table shows source positions, not placeholders.
        let table = sites.hotspot_table(10);
        assert!(table.contains("kernel.rs:"), "table:\n{table}");
    }

    /// Regression for the mixed-width aliasing bug: the write overlay was
    /// keyed by `(addr, width)`, so an 8-byte store read back through a
    /// 4-byte or 1-byte load missed the overlay and returned the stale
    /// pre-launch snapshot. The byte-granular overlay must return the
    /// stored bytes at any width.
    #[test]
    fn mixed_width_store_is_visible_to_narrower_loads() {
        struct MixedWidth {
            data: Buffer,
            out32: Buffer,
            out8: Buffer,
        }
        impl Kernel for MixedWidth {
            fn resources(&self) -> KernelResources {
                KernelResources {
                    regs_per_thread: 8,
                    shared_bytes_per_block: 0,
                    local_f64_slots: 0,
                }
            }
            fn run(&self, ctx: &mut ThreadCtx<'_>) {
                let i = ctx.global_thread_id();
                // Store a full f64 whose byte pattern is distinguishable,
                // then immediately read it back at narrower widths.
                let v = f64::from_le_bytes([1, 2, 3, 4, 5, 6, 7, 8]);
                ctx.st_f64(self.data, i, v);
                let lo = ctx.ld_f32(self.data, 2 * i); // low 4 bytes
                let b6 = ctx.ld_u8(self.data, 8 * i + 6); // byte 6
                ctx.st_f32(self.out32, i, lo);
                ctx.st_u8(self.out8, i, b6);
            }
        }
        let mut mem = DeviceMemory::new(1 << 20);
        let data = mem.alloc_array::<f64>(64).unwrap();
        let out32 = mem.alloc_array::<f32>(64).unwrap();
        let out8 = mem.alloc_array::<u8>(64).unwrap();
        for i in 0..64 {
            mem.write_f64(data, i, 0.0); // stale snapshot the bug exposed
        }
        let cfg = GpuConfig::default();
        let k = MixedWidth { data, out32, out8 };
        launch(&mut mem, &cfg, LaunchConfig::cover(64, 32), &k).unwrap();
        for i in 0..64 {
            assert_eq!(
                mem.read_f32(out32, i),
                f32::from_le_bytes([1, 2, 3, 4]),
                "narrow f32 load must see the f64 store"
            );
            assert_eq!(mem.read_u8(out8, i), 7, "u8 load must see byte 6");
        }
    }

    /// Narrow stores followed by a wide load must compose overlay bytes
    /// with snapshot bytes.
    #[test]
    fn narrow_stores_compose_into_wider_load() {
        struct Compose {
            data: Buffer,
            out: Buffer,
        }
        impl Kernel for Compose {
            fn resources(&self) -> KernelResources {
                KernelResources {
                    regs_per_thread: 8,
                    shared_bytes_per_block: 0,
                    local_f64_slots: 0,
                }
            }
            fn run(&self, ctx: &mut ThreadCtx<'_>) {
                let i = ctx.global_thread_id();
                ctx.st_u8(self.data, 8 * i, 0xAA); // patch one byte
                let v = ctx.ld_f64(self.data, i); // rest from snapshot
                ctx.st_f64(self.out, i, v);
            }
        }
        let mut mem = DeviceMemory::new(1 << 20);
        let data = mem.alloc_array::<f64>(32).unwrap();
        let out = mem.alloc_array::<f64>(32).unwrap();
        for i in 0..32 {
            mem.write_f64(data, i, f64::from_le_bytes([0x11; 8]));
        }
        let cfg = GpuConfig::default();
        launch(
            &mut mem,
            &cfg,
            LaunchConfig::cover(32, 32),
            &Compose { data, out },
        )
        .unwrap();
        let expect = f64::from_le_bytes([0xAA, 0x11, 0x11, 0x11, 0x11, 0x11, 0x11, 0x11]);
        for i in 0..32 {
            assert_eq!(mem.read_f64(out, i), expect);
        }
    }

    /// Kernel-side global accesses are bounds-checked against their
    /// buffer on the plain path (mirror of the `DeviceMemory` typed
    /// accessors): an off-by-one panics instead of touching the
    /// neighboring allocation.
    #[test]
    fn out_of_bounds_global_store_panics_without_sanitizer() {
        struct Oob {
            buf: Buffer,
        }
        impl Kernel for Oob {
            fn resources(&self) -> KernelResources {
                KernelResources {
                    regs_per_thread: 8,
                    shared_bytes_per_block: 0,
                    local_f64_slots: 0,
                }
            }
            fn run(&self, ctx: &mut ThreadCtx<'_>) {
                ctx.st_f64(self.buf, ctx.global_thread_id() + 4, 1.0);
            }
        }
        let mut mem = DeviceMemory::new(1 << 20);
        let buf = mem.alloc_array::<f64>(4).unwrap();
        let cfg = GpuConfig::default();
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            launch(
                &mut mem,
                &cfg,
                LaunchConfig {
                    blocks: 1,
                    threads_per_block: 32,
                },
                &Oob { buf },
            )
        }));
        assert!(r.is_err(), "OOB global store must panic on the plain path");
    }

    /// The same out-of-bounds access under `sanitize` is absorbed and
    /// reported as a memcheck finding with a resolved source site.
    #[test]
    fn sanitized_launch_reports_oob_instead_of_panicking() {
        struct Oob {
            buf: Buffer,
            out: Buffer,
        }
        impl Kernel for Oob {
            fn resources(&self) -> KernelResources {
                KernelResources {
                    regs_per_thread: 8,
                    shared_bytes_per_block: 0,
                    local_f64_slots: 0,
                }
            }
            fn run(&self, ctx: &mut ThreadCtx<'_>) {
                let i = ctx.global_thread_id();
                ctx.st_f64(self.buf, i + 4, 1.0); // OOB for every thread
                ctx.st_f64(self.out, i, 2.0); // rest of the kernel still runs
            }
        }
        let mut mem = DeviceMemory::new(1 << 20);
        let buf = mem.alloc_array::<f64>(4).unwrap();
        let out = mem.alloc_array::<f64>(32).unwrap();
        let cfg = GpuConfig::default();
        let report = launch_with(
            &mut mem,
            &cfg,
            LaunchConfig {
                blocks: 1,
                threads_per_block: 32,
            },
            &Oob { buf, out },
            LaunchOptions {
                sanitize: true,
                ..Default::default()
            },
        )
        .unwrap();
        let san = report.sanitizer.expect("sanitized launch returns a report");
        assert_eq!(san.len(), 1, "one deduplicated finding: {san:?}");
        let f = &san.findings()[0];
        assert_eq!(f.occurrences, 32);
        assert!(f.source.as_deref().unwrap().contains("kernel.rs"));
        // The absorbed stores must not have corrupted the neighbor.
        for i in 0..32 {
            assert_eq!(mem.read_f64(out, i), 2.0);
        }
    }

    /// A clean kernel under `sanitize` yields an empty report and
    /// identical functional output and counters.
    #[test]
    fn sanitize_is_transparent_for_clean_kernels() {
        let n = 1000;
        let (mut mem, input, output) = setup(n);
        let k = DoubleKernel { input, output, n };
        let cfg = GpuConfig::default();
        let plain = launch(&mut mem, &cfg, LaunchConfig::cover(n, 128), &k).unwrap();
        let plain_out = mem.download(output);

        let (mut mem2, input2, output2) = setup(n);
        let k2 = DoubleKernel {
            input: input2,
            output: output2,
            n,
        };
        let report = launch_with(
            &mut mem2,
            &cfg,
            LaunchConfig::cover(n, 128),
            &k2,
            LaunchOptions {
                sanitize: true,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(report.sanitizer.as_ref().unwrap().is_clean());
        assert_eq!(report.stats, plain.stats);
        assert_eq!(mem2.download(output2), plain_out);
    }

    /// Dataflow capture is purely observational: counters and functional
    /// output are bit-identical to a plain launch, and the attached
    /// access summary is the exact byte span of the kernel's external
    /// loads and published stores.
    #[test]
    fn dataflow_capture_is_exact_and_transparent() {
        let n = 1000;
        let (mut mem, input, output) = setup(n);
        let k = DoubleKernel { input, output, n };
        let cfg = GpuConfig::default();
        let plain = launch(&mut mem, &cfg, LaunchConfig::cover(n, 128), &k).unwrap();
        let plain_out = mem.download(output);
        assert!(plain.access.is_none(), "plain launches attach no summary");

        let (mut mem2, input2, output2) = setup(n);
        let k2 = DoubleKernel {
            input: input2,
            output: output2,
            n,
        };
        let report = launch_with(
            &mut mem2,
            &cfg,
            LaunchConfig::cover(n, 128),
            &k2,
            LaunchOptions {
                dataflow: true,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(report.stats, plain.stats);
        assert_eq!(mem2.download(output2), plain_out);
        let access = report.access.expect("dataflow was requested");
        let bytes = (8 * n) as u64;
        assert_eq!(
            access.reads.runs(),
            &[(input2.addr(), input2.addr() + bytes)]
        );
        assert_eq!(
            access.writes.runs(),
            &[(output2.addr(), output2.addr() + bytes)]
        );
    }

    #[test]
    fn default_launch_has_no_sanitizer_report() {
        let n = 64;
        let (mut mem, input, output) = setup(n);
        let k = DoubleKernel { input, output, n };
        let cfg = GpuConfig::default();
        let report = launch(&mut mem, &cfg, LaunchConfig::cover(n, 64), &k).unwrap();
        assert!(report.sanitizer.is_none());
    }

    #[test]
    fn report_includes_timing_and_occupancy() {
        let n = 4096;
        let (mut mem, input, output) = setup(n);
        let k = DoubleKernel { input, output, n };
        let cfg = GpuConfig::default();
        let report = launch(&mut mem, &cfg, LaunchConfig::cover(n, 128), &k).unwrap();
        assert!(report.timing.total > 0.0);
        assert!(report.occupancy.occupancy > 0.5);
    }
}

#[cfg(test)]
mod determinism_tests {
    use super::*;

    /// Launches are bit-deterministic: same inputs, same stats, same
    /// memory — across the rayon-parallel block execution.
    #[test]
    fn identical_launches_are_bit_identical() {
        struct Mixed {
            a: Buffer,
            b: Buffer,
            n: usize,
        }
        impl Kernel for Mixed {
            fn resources(&self) -> KernelResources {
                KernelResources {
                    regs_per_thread: 16,
                    shared_bytes_per_block: 64,
                    local_f64_slots: 2,
                }
            }
            fn run(&self, ctx: &mut ThreadCtx<'_>) {
                let i = ctx.global_thread_id();
                if !ctx.branch(i < self.n) {
                    return;
                }
                let v = ctx.ld_f64(self.a, i);
                ctx.st_local(0, v * 2.0);
                ctx.flop64(3);
                let t = ctx.thread_idx() % 8;
                ctx.sh_st_f64(t * 8, v);
                let w = ctx.sh_ld_f64(t * 8);
                if ctx.branch(i.is_multiple_of(3)) {
                    let spilled = ctx.ld_local(0);
                    ctx.st_f64(self.b, i, w + spilled);
                } else {
                    ctx.st_f64(self.b, i, w);
                }
            }
        }
        let run = || {
            let mut mem = DeviceMemory::new(1 << 22);
            let a = mem.alloc_array::<f64>(5000).unwrap();
            let b = mem.alloc_array::<f64>(5000).unwrap();
            for i in 0..5000 {
                mem.write_f64(a, i, (i as f64).sin());
            }
            let k = Mixed { a, b, n: 5000 };
            let cfg = GpuConfig::default();
            let report = launch(&mut mem, &cfg, LaunchConfig::cover(5000, 128), &k).unwrap();
            (report.stats, mem.download(b))
        };
        let (s1, m1) = run();
        let (s2, m2) = run();
        assert_eq!(s1, s2);
        assert_eq!(m1, m2);
    }
}

//! Kernel trait, per-lane execution context, and the launch machinery.
//!
//! Kernels are Rust types implementing [`Kernel`]; their `run` method is
//! the CUDA `__global__` body, executed once per thread with a
//! [`ThreadCtx`] standing in for the hardware: it performs *functional*
//! loads/stores against simulated device memory while recording the events
//! that drive the architectural analysis (see [`crate::warp`]).
//!
//! Like a CUDA kernel, `run` is invoked for every thread of every block of
//! the launch grid; threads past the problem size must guard themselves
//! (`if ctx.global_thread_id() >= n { return; }`).

use crate::config::GpuConfig;
use crate::memory::{Buffer, DeviceMemory};
use crate::occupancy::{occupancy, Occupancy};
use crate::profile::SiteProfile;
use crate::stats::KernelStats;
use crate::timing::{kernel_time, KernelTiming};
use crate::trace::{BuildPtrHasher, OpClass, Space};
use crate::warp::WarpAccumulator;
use rayon::prelude::*;
use std::collections::HashMap;
use std::panic::Location;

/// Static resource footprint of a kernel, as `nvcc --ptxas-options=-v`
/// would report it.
///
/// Register counts cannot be derived from Rust source (there is no CUDA
/// compiler in the loop), so kernels *declare* them; the MoG kernels use
/// the per-variant values the paper reports from the CUDA 4.2 toolchain.
/// Occupancy is then derived from the declaration exactly as the CUDA
/// occupancy calculator does.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KernelResources {
    /// 32-bit registers per thread.
    pub regs_per_thread: u32,
    /// Static shared memory per block, in bytes.
    pub shared_bytes_per_block: usize,
    /// Per-thread local-memory (spill) slots of 8 bytes each.
    pub local_f64_slots: usize,
}

/// Grid geometry of a launch (1-D, which is all MoG needs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LaunchConfig {
    /// Number of thread blocks.
    pub blocks: u32,
    /// Threads per block.
    pub threads_per_block: u32,
}

impl LaunchConfig {
    /// Grid covering `threads` total threads with the given block size
    /// (rounding the block count up, CUDA-style).
    pub fn cover(threads: usize, threads_per_block: u32) -> Self {
        LaunchConfig {
            blocks: (threads as u64).div_ceil(threads_per_block as u64) as u32,
            threads_per_block,
        }
    }
}

/// A GPU kernel.
pub trait Kernel: Sync {
    /// Declared resource footprint (registers / shared memory / spill).
    fn resources(&self) -> KernelResources;
    /// Per-thread body.
    fn run(&self, ctx: &mut ThreadCtx<'_>);
}

/// Errors rejecting a launch, mirroring CUDA launch failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LaunchError {
    /// Block or grid dimension is zero or exceeds hardware limits.
    InvalidConfig(String),
    /// The kernel's register or shared-memory footprint leaves no room for
    /// even one resident block.
    ResourcesExceeded(String),
}

impl std::fmt::Display for LaunchError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LaunchError::InvalidConfig(m) => write!(f, "invalid launch configuration: {m}"),
            LaunchError::ResourcesExceeded(m) => write!(f, "kernel resources exceeded: {m}"),
        }
    }
}

impl std::error::Error for LaunchError {}

/// Optional launch behaviours; [`Default`] is the plain fast path.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LaunchOptions {
    /// Aggregate counters per source site and resolve `file:line` for the
    /// hotspot table. Off by default: the plain path allocates no site map
    /// and records events exactly as if profiling did not exist.
    pub profile_sites: bool,
}

/// Everything a launch produces: the profiler counters, the occupancy, and
/// the modelled execution time.
#[derive(Debug, Clone, PartialEq)]
pub struct LaunchReport {
    /// Raw counters.
    pub stats: KernelStats,
    /// Occupancy of the kernel under this configuration.
    pub occupancy: Occupancy,
    /// Analytic execution-time estimate.
    pub timing: KernelTiming,
    /// Per-site counters, present when
    /// [`LaunchOptions::profile_sites`] was set.
    pub sites: Option<SiteProfile>,
}

type WriteMap = HashMap<(u64, u8), u64, BuildPtrHasher>;

/// Virtual base address of the per-thread local (spill) space; far above
/// any global allocation so segment sets never collide.
const LOCAL_BASE: u64 = 1 << 40;

/// Per-thread execution context: thread identity, memory access, and event
/// recording.
pub struct ThreadCtx<'a> {
    block_idx: u32,
    thread_idx: u32,
    threads_per_block: u32,
    blocks: u32,
    lane: u32,
    global_warp_id: u64,
    snapshot: &'a [u8],
    writes: &'a mut WriteMap,
    shared: &'a mut [u8],
    local: &'a mut [f64],
    acc: &'a mut WarpAccumulator,
}

impl ThreadCtx<'_> {
    /// Index of this thread's block in the grid.
    pub fn block_idx(&self) -> usize {
        self.block_idx as usize
    }

    /// Thread index within the block (`threadIdx.x`).
    pub fn thread_idx(&self) -> usize {
        self.thread_idx as usize
    }

    /// Block size (`blockDim.x`).
    pub fn block_dim(&self) -> usize {
        self.threads_per_block as usize
    }

    /// Grid size in blocks (`gridDim.x`).
    pub fn grid_dim(&self) -> usize {
        self.blocks as usize
    }

    /// Global linear thread id (`blockIdx.x * blockDim.x + threadIdx.x`).
    pub fn global_thread_id(&self) -> usize {
        self.block_idx as usize * self.threads_per_block as usize + self.thread_idx as usize
    }

    /// Lane index within the warp.
    pub fn lane(&self) -> usize {
        self.lane as usize
    }

    // ---- arithmetic ----

    /// Charges `n` double-precision floating-point operations.
    #[track_caller]
    #[inline]
    pub fn flop64(&mut self, n: u32) {
        self.acc.record_op(Location::caller(), OpClass::F64, n);
    }

    /// Charges `n` single-precision floating-point operations.
    #[track_caller]
    #[inline]
    pub fn flop32(&mut self, n: u32) {
        self.acc.record_op(Location::caller(), OpClass::F32, n);
    }

    /// Charges `n` integer/address operations.
    #[track_caller]
    #[inline]
    pub fn int_op(&mut self, n: u32) {
        self.acc.record_op(Location::caller(), OpClass::Int, n);
    }

    /// Records a data-dependent branch and returns the condition, so
    /// kernels write `if ctx.branch(cond) { ... }`.
    #[track_caller]
    #[inline]
    pub fn branch(&mut self, cond: bool) -> bool {
        self.acc.record_branch(Location::caller(), cond);
        cond
    }

    /// Records a block barrier (`__syncthreads()`).
    ///
    /// Lanes execute sequentially to completion, so this is purely a
    /// timing event; kernels with cross-lane data flow through shared
    /// memory are unsupported (see crate docs).
    #[track_caller]
    #[inline]
    pub fn sync(&mut self) {
        self.acc.record_sync(Location::caller());
    }

    // ---- global memory ----

    #[inline]
    fn read_bytes(&self, addr: u64, width: usize) -> u64 {
        if let Some(&v) = self.writes.get(&(addr, width as u8)) {
            return v;
        }
        let a = addr as usize;
        let mut buf = [0u8; 8];
        buf[..width].copy_from_slice(&self.snapshot[a..a + width]);
        u64::from_le_bytes(buf)
    }

    /// Loads an `f64` from global memory at element index `idx` of `buf`.
    #[track_caller]
    #[inline]
    pub fn ld_f64(&mut self, buf: Buffer, idx: usize) -> f64 {
        let addr = buf.addr() + (idx * 8) as u64;
        self.acc
            .record_mem(Location::caller(), Space::Global, false, addr, 8);
        f64::from_le_bytes(self.read_bytes(addr, 8).to_le_bytes())
    }

    /// Stores an `f64` to global memory at element index `idx` of `buf`.
    #[track_caller]
    #[inline]
    pub fn st_f64(&mut self, buf: Buffer, idx: usize, v: f64) {
        let addr = buf.addr() + (idx * 8) as u64;
        self.acc
            .record_mem(Location::caller(), Space::Global, true, addr, 8);
        self.writes
            .insert((addr, 8), u64::from_le_bytes(v.to_le_bytes()));
    }

    /// Loads an `f32` from global memory.
    #[track_caller]
    #[inline]
    pub fn ld_f32(&mut self, buf: Buffer, idx: usize) -> f32 {
        let addr = buf.addr() + (idx * 4) as u64;
        self.acc
            .record_mem(Location::caller(), Space::Global, false, addr, 4);
        f32::from_le_bytes((self.read_bytes(addr, 4) as u32).to_le_bytes())
    }

    /// Stores an `f32` to global memory.
    #[track_caller]
    #[inline]
    pub fn st_f32(&mut self, buf: Buffer, idx: usize, v: f32) {
        let addr = buf.addr() + (idx * 4) as u64;
        self.acc
            .record_mem(Location::caller(), Space::Global, true, addr, 4);
        self.writes
            .insert((addr, 4), u32::from_le_bytes(v.to_le_bytes()) as u64);
    }

    /// Loads a `u8` from global memory.
    #[track_caller]
    #[inline]
    pub fn ld_u8(&mut self, buf: Buffer, idx: usize) -> u8 {
        let addr = buf.addr() + idx as u64;
        self.acc
            .record_mem(Location::caller(), Space::Global, false, addr, 1);
        self.read_bytes(addr, 1) as u8
    }

    /// Stores a `u8` to global memory.
    #[track_caller]
    #[inline]
    pub fn st_u8(&mut self, buf: Buffer, idx: usize, v: u8) {
        let addr = buf.addr() + idx as u64;
        self.acc
            .record_mem(Location::caller(), Space::Global, true, addr, 1);
        self.writes.insert((addr, 1), v as u64);
    }

    // ---- local (spill) memory ----

    #[inline]
    fn local_addr(&self, slot: usize) -> u64 {
        // Fermi interleaves local memory so that the 32 lanes' copies of
        // one slot are contiguous: uniform slot accesses coalesce.
        let slots = self.local.len() as u64;
        LOCAL_BASE + ((self.global_warp_id * slots + slot as u64) * 32 + self.lane as u64) * 8
    }

    /// Loads a per-thread local (spill) `f64` slot.
    #[track_caller]
    #[inline]
    pub fn ld_local(&mut self, slot: usize) -> f64 {
        let addr = self.local_addr(slot);
        self.acc
            .record_mem(Location::caller(), Space::Local, false, addr, 8);
        self.local[slot]
    }

    /// Stores a per-thread local (spill) `f64` slot.
    #[track_caller]
    #[inline]
    pub fn st_local(&mut self, slot: usize, v: f64) {
        let addr = self.local_addr(slot);
        self.acc
            .record_mem(Location::caller(), Space::Local, true, addr, 8);
        self.local[slot] = v;
    }

    // ---- shared memory ----

    /// Loads an `f64` from block shared memory at byte offset `off`.
    #[track_caller]
    #[inline]
    pub fn sh_ld_f64(&mut self, off: usize) -> f64 {
        self.acc
            .record_mem(Location::caller(), Space::Shared, false, off as u64, 8);
        f64::from_le_bytes(self.shared[off..off + 8].try_into().expect("8 bytes"))
    }

    /// Stores an `f64` to block shared memory at byte offset `off`.
    #[track_caller]
    #[inline]
    pub fn sh_st_f64(&mut self, off: usize, v: f64) {
        self.acc
            .record_mem(Location::caller(), Space::Shared, true, off as u64, 8);
        self.shared[off..off + 8].copy_from_slice(&v.to_le_bytes());
    }

    /// Loads an `f32` from block shared memory at byte offset `off`.
    #[track_caller]
    #[inline]
    pub fn sh_ld_f32(&mut self, off: usize) -> f32 {
        self.acc
            .record_mem(Location::caller(), Space::Shared, false, off as u64, 4);
        f32::from_le_bytes(self.shared[off..off + 4].try_into().expect("4 bytes"))
    }

    /// Stores an `f32` to block shared memory at byte offset `off`.
    #[track_caller]
    #[inline]
    pub fn sh_st_f32(&mut self, off: usize, v: f32) {
        self.acc
            .record_mem(Location::caller(), Space::Shared, true, off as u64, 4);
        self.shared[off..off + 4].copy_from_slice(&v.to_le_bytes());
    }

    /// Loads a `u8` from block shared memory.
    #[track_caller]
    #[inline]
    pub fn sh_ld_u8(&mut self, off: usize) -> u8 {
        self.acc
            .record_mem(Location::caller(), Space::Shared, false, off as u64, 1);
        self.shared[off]
    }

    /// Stores a `u8` to block shared memory.
    #[track_caller]
    #[inline]
    pub fn sh_st_u8(&mut self, off: usize, v: u8) {
        self.acc
            .record_mem(Location::caller(), Space::Shared, true, off as u64, 1);
        self.shared[off] = v;
    }
}

/// Launches `kernel` over `lc` on the device, returning profiler counters,
/// occupancy, and a modelled execution time.
///
/// Blocks run in parallel on host threads; global stores become visible to
/// other blocks only after the launch (see crate docs).
///
/// # Errors
/// [`LaunchError::InvalidConfig`] for malformed grids,
/// [`LaunchError::ResourcesExceeded`] when no block can be resident.
pub fn launch(
    mem: &mut DeviceMemory,
    cfg: &GpuConfig,
    lc: LaunchConfig,
    kernel: &dyn Kernel,
) -> Result<LaunchReport, LaunchError> {
    launch_with(mem, cfg, lc, kernel, LaunchOptions::default())
}

/// [`launch`] with explicit [`LaunchOptions`] — in particular per-site
/// hotspot profiling.
///
/// # Errors
/// Same as [`launch`].
pub fn launch_with(
    mem: &mut DeviceMemory,
    cfg: &GpuConfig,
    lc: LaunchConfig,
    kernel: &dyn Kernel,
    opts: LaunchOptions,
) -> Result<LaunchReport, LaunchError> {
    if lc.blocks == 0 || lc.threads_per_block == 0 {
        return Err(LaunchError::InvalidConfig(format!(
            "grid {}x{} has a zero dimension",
            lc.blocks, lc.threads_per_block
        )));
    }
    if lc.threads_per_block > cfg.max_threads_per_block {
        return Err(LaunchError::InvalidConfig(format!(
            "{} threads/block exceeds the device limit of {}",
            lc.threads_per_block, cfg.max_threads_per_block
        )));
    }
    let res = kernel.resources();
    let occ = occupancy(cfg, &lc, &res).ok_or_else(|| {
        LaunchError::ResourcesExceeded(format!(
            "{} regs/thread and {} B shared leave no resident block",
            res.regs_per_thread, res.shared_bytes_per_block
        ))
    })?;

    let tpb = lc.threads_per_block;
    let warps_per_block = tpb.div_ceil(cfg.warp_size) as u64;
    let snapshot: &[u8] = mem.raw();

    let results: Vec<(WriteMap, KernelStats, Option<SiteProfile>)> = (0..lc.blocks)
        .into_par_iter()
        .map(|b| {
            let mut writes = WriteMap::default();
            let mut shared = vec![0u8; res.shared_bytes_per_block];
            let mut local = vec![0.0f64; res.local_f64_slots];
            let mut stats = KernelStats::default();
            let mut acc = if opts.profile_sites {
                WarpAccumulator::with_site_profile()
            } else {
                WarpAccumulator::new()
            };
            // Optional L2: each block simulates a private slice of the
            // shared cache (see crate::cache for the approximation).
            let mut cache = if cfg.l2_bytes > 0 {
                let resident = (cfg.num_sms * occ.resident_blocks).max(1) as usize;
                Some(crate::cache::CacheModel::new(
                    cfg.l2_bytes / resident,
                    cfg.l2_assoc,
                    cfg.segment_bytes,
                ))
            } else {
                None
            };
            let mut w = 0u32;
            while w * cfg.warp_size < tpb {
                let first = w * cfg.warp_size;
                let last = (first + cfg.warp_size).min(tpb);
                for t in first..last {
                    acc.begin_lane();
                    local.fill(0.0);
                    let mut ctx = ThreadCtx {
                        block_idx: b,
                        thread_idx: t,
                        threads_per_block: tpb,
                        blocks: lc.blocks,
                        lane: t - first,
                        global_warp_id: b as u64 * warps_per_block + w as u64,
                        snapshot,
                        writes: &mut writes,
                        shared: &mut shared,
                        local: &mut local,
                        acc: &mut acc,
                    };
                    kernel.run(&mut ctx);
                }
                acc.end_warp_cached(cfg, &mut stats, cache.as_mut());
                w += 1;
            }
            stats.blocks = 1;
            let sites = acc.take_site_profile();
            (writes, stats, sites)
        })
        .collect();

    let mut stats = KernelStats::default();
    let mut sites = opts.profile_sites.then(SiteProfile::new);
    for (writes, s, block_sites) in &results {
        stats.merge(s);
        if let (Some(total), Some(block)) = (&mut sites, block_sites) {
            total.merge(block);
        }
        let _ = writes; // applied below; keep borrow order obvious
    }
    let raw = mem.raw_mut();
    for (writes, _, _) in results {
        for ((addr, width), bytes) in writes {
            let a = addr as usize;
            let w = width as usize;
            raw[a..a + w].copy_from_slice(&bytes.to_le_bytes()[..w]);
        }
    }

    let timing = kernel_time(&stats, &occ, cfg);
    Ok(LaunchReport {
        stats,
        occupancy: occ,
        timing,
        sites,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Doubles every f64 element: out[i] = 2 * in[i].
    struct DoubleKernel {
        input: Buffer,
        output: Buffer,
        n: usize,
    }

    impl Kernel for DoubleKernel {
        fn resources(&self) -> KernelResources {
            KernelResources {
                regs_per_thread: 16,
                shared_bytes_per_block: 0,
                local_f64_slots: 0,
            }
        }

        fn run(&self, ctx: &mut ThreadCtx<'_>) {
            let i = ctx.global_thread_id();
            if i >= self.n {
                return;
            }
            let v = ctx.ld_f64(self.input, i);
            ctx.flop64(1);
            ctx.st_f64(self.output, i, 2.0 * v);
        }
    }

    fn setup(n: usize) -> (DeviceMemory, Buffer, Buffer) {
        let mut mem = DeviceMemory::new(1 << 24);
        let input = mem.alloc_array::<f64>(n).unwrap();
        let output = mem.alloc_array::<f64>(n).unwrap();
        for i in 0..n {
            mem.write_f64(input, i, i as f64);
        }
        (mem, input, output)
    }

    #[test]
    fn functional_output_is_correct() {
        let n = 1000;
        let (mut mem, input, output) = setup(n);
        let k = DoubleKernel { input, output, n };
        let cfg = GpuConfig::default();
        let report = launch(&mut mem, &cfg, LaunchConfig::cover(n, 128), &k).unwrap();
        for i in 0..n {
            assert_eq!(mem.read_f64(output, i), 2.0 * i as f64);
        }
        assert_eq!(report.stats.lanes, 1024); // 8 blocks x 128
        assert_eq!(report.stats.flops_f64, 1000); // guarded threads do no work
    }

    #[test]
    fn coalesced_kernel_is_fully_efficient() {
        let n = 4096;
        let (mut mem, input, output) = setup(n);
        let k = DoubleKernel { input, output, n };
        let cfg = GpuConfig::default();
        let report = launch(&mut mem, &cfg, LaunchConfig::cover(n, 128), &k).unwrap();
        assert!((report.stats.gld_efficiency(&cfg) - 1.0).abs() < 1e-9);
        assert!((report.stats.gst_efficiency(&cfg) - 1.0).abs() < 1e-9);
        // 4096 f64 loads = 4096*8/128 = 256 transactions.
        assert_eq!(report.stats.global_load_tx, 256);
    }

    #[test]
    fn read_your_own_writes_within_block() {
        /// st then ld the same location in one thread.
        struct Rw {
            buf: Buffer,
        }
        impl Kernel for Rw {
            fn resources(&self) -> KernelResources {
                KernelResources {
                    regs_per_thread: 8,
                    shared_bytes_per_block: 0,
                    local_f64_slots: 0,
                }
            }
            fn run(&self, ctx: &mut ThreadCtx<'_>) {
                let i = ctx.global_thread_id();
                ctx.st_f64(self.buf, i, 41.0);
                let v = ctx.ld_f64(self.buf, i);
                ctx.st_f64(self.buf, i, v + 1.0);
            }
        }
        let mut mem = DeviceMemory::new(1 << 20);
        let buf = mem.alloc_array::<f64>(64).unwrap();
        let cfg = GpuConfig::default();
        launch(&mut mem, &cfg, LaunchConfig::cover(64, 32), &Rw { buf }).unwrap();
        for i in 0..64 {
            assert_eq!(mem.read_f64(buf, i), 42.0);
        }
    }

    #[test]
    fn zero_grid_rejected() {
        let mut mem = DeviceMemory::new(1 << 20);
        let buf = mem.alloc_array::<f64>(1).unwrap();
        let k = DoubleKernel {
            input: buf,
            output: buf,
            n: 0,
        };
        let cfg = GpuConfig::default();
        let err = launch(
            &mut mem,
            &cfg,
            LaunchConfig {
                blocks: 0,
                threads_per_block: 128,
            },
            &k,
        );
        assert!(matches!(err, Err(LaunchError::InvalidConfig(_))));
    }

    #[test]
    fn oversized_block_rejected() {
        let mut mem = DeviceMemory::new(1 << 20);
        let buf = mem.alloc_array::<f64>(1).unwrap();
        let k = DoubleKernel {
            input: buf,
            output: buf,
            n: 1,
        };
        let cfg = GpuConfig::default();
        let err = launch(
            &mut mem,
            &cfg,
            LaunchConfig {
                blocks: 1,
                threads_per_block: 4096,
            },
            &k,
        );
        assert!(matches!(err, Err(LaunchError::InvalidConfig(_))));
    }

    #[test]
    fn excessive_shared_memory_rejected() {
        struct Fat;
        impl Kernel for Fat {
            fn resources(&self) -> KernelResources {
                KernelResources {
                    regs_per_thread: 8,
                    shared_bytes_per_block: 1 << 20,
                    local_f64_slots: 0,
                }
            }
            fn run(&self, _ctx: &mut ThreadCtx<'_>) {}
        }
        let mut mem = DeviceMemory::new(1 << 20);
        let cfg = GpuConfig::default();
        let err = launch(
            &mut mem,
            &cfg,
            LaunchConfig {
                blocks: 1,
                threads_per_block: 32,
            },
            &Fat,
        );
        assert!(matches!(err, Err(LaunchError::ResourcesExceeded(_))));
    }

    #[test]
    fn divergent_kernel_reports_low_branch_efficiency() {
        /// Every other lane takes a different path.
        struct Diverge {
            out: Buffer,
        }
        impl Kernel for Diverge {
            fn resources(&self) -> KernelResources {
                KernelResources {
                    regs_per_thread: 8,
                    shared_bytes_per_block: 0,
                    local_f64_slots: 0,
                }
            }
            fn run(&self, ctx: &mut ThreadCtx<'_>) {
                let i = ctx.global_thread_id();
                if ctx.branch(i.is_multiple_of(2)) {
                    ctx.flop64(10);
                    ctx.st_f64(self.out, i, 1.0);
                } else {
                    ctx.flop64(10);
                    ctx.st_f64(self.out, i, 2.0);
                }
            }
        }
        let mut mem = DeviceMemory::new(1 << 20);
        let out = mem.alloc_array::<f64>(128).unwrap();
        let cfg = GpuConfig::default();
        let report = launch(
            &mut mem,
            &cfg,
            LaunchConfig::cover(128, 128),
            &Diverge { out },
        )
        .unwrap();
        assert_eq!(report.stats.branch_efficiency(), 0.0);
        // Serialization: both sides' flop slots issued in every warp.
        // 4 warps x 2 paths x 10 f64-flops x cost 2 = 160 cycles of flops
        // + 4 branch slots + mem slots.
        assert!(report.stats.issue_cycles >= 160.0);
        for i in 0..128usize {
            let expect = if i.is_multiple_of(2) { 1.0 } else { 2.0 };
            assert_eq!(mem.read_f64(out, i), expect);
        }
    }

    #[test]
    fn shared_memory_round_trips_within_block() {
        /// Each thread stages its value in shared memory and reads it back.
        struct Stage {
            out: Buffer,
        }
        impl Kernel for Stage {
            fn resources(&self) -> KernelResources {
                KernelResources {
                    regs_per_thread: 8,
                    shared_bytes_per_block: 128 * 8,
                    local_f64_slots: 0,
                }
            }
            fn run(&self, ctx: &mut ThreadCtx<'_>) {
                let t = ctx.thread_idx();
                let g = ctx.global_thread_id();
                ctx.sh_st_f64(t * 8, g as f64 * 3.0);
                ctx.sync();
                let v = ctx.sh_ld_f64(t * 8);
                ctx.st_f64(self.out, g, v);
            }
        }
        let mut mem = DeviceMemory::new(1 << 20);
        let out = mem.alloc_array::<f64>(256).unwrap();
        let cfg = GpuConfig::default();
        let report = launch(
            &mut mem,
            &cfg,
            LaunchConfig::cover(256, 128),
            &Stage { out },
        )
        .unwrap();
        for i in 0..256 {
            assert_eq!(mem.read_f64(out, i), i as f64 * 3.0);
        }
        // Stride-2 f64 word pattern: lane i touches words 2i, 2i+1 — no
        // two lanes share a bank word pair => conflict-free two-word
        // access... the analyzer reports replays for the 8-byte span.
        assert_eq!(report.stats.shared_accesses, 512);
        assert_eq!(report.stats.sync_slots, 8);
    }

    #[test]
    fn local_memory_is_private_per_thread() {
        struct Spill {
            out: Buffer,
        }
        impl Kernel for Spill {
            fn resources(&self) -> KernelResources {
                KernelResources {
                    regs_per_thread: 8,
                    shared_bytes_per_block: 0,
                    local_f64_slots: 4,
                }
            }
            fn run(&self, ctx: &mut ThreadCtx<'_>) {
                let g = ctx.global_thread_id();
                ctx.st_local(2, g as f64);
                let v = ctx.ld_local(2);
                ctx.st_f64(self.out, g, v);
            }
        }
        let mut mem = DeviceMemory::new(1 << 20);
        let out = mem.alloc_array::<f64>(96).unwrap();
        let cfg = GpuConfig::default();
        let report = launch(&mut mem, &cfg, LaunchConfig::cover(96, 32), &Spill { out }).unwrap();
        for i in 0..96 {
            assert_eq!(mem.read_f64(out, i), i as f64);
        }
        // Uniform slot access coalesces: 32 lanes x 8 B = 2 segments per
        // warp; 3 warps; loads and stores each.
        assert_eq!(report.stats.local_store_tx, 6);
        assert_eq!(report.stats.local_load_tx, 6);
        assert_eq!(report.stats.global_store_tx, 6);
    }

    #[test]
    fn default_launch_has_no_site_profile() {
        let n = 256;
        let (mut mem, input, output) = setup(n);
        let k = DoubleKernel { input, output, n };
        let cfg = GpuConfig::default();
        let report = launch(&mut mem, &cfg, LaunchConfig::cover(n, 128), &k).unwrap();
        assert!(report.sites.is_none());
    }

    #[test]
    fn profiled_launch_attributes_sites_to_source_lines() {
        let n = 1024;
        let (mut mem, input, output) = setup(n);
        let k = DoubleKernel { input, output, n };
        let cfg = GpuConfig::default();
        let opts = LaunchOptions {
            profile_sites: true,
        };
        let report = launch_with(&mut mem, &cfg, LaunchConfig::cover(n, 128), &k, opts).unwrap();
        // Functional output must be unaffected by profiling.
        for i in 0..n {
            assert_eq!(mem.read_f64(output, i), 2.0 * i as f64);
        }
        let sites = report.sites.expect("profiled launch returns sites");
        // DoubleKernel::run has three distinct instrumented call sites
        // (ld_f64, flop64, st_f64) plus warp-divergence-free guards.
        assert!(sites.len() >= 3, "expected >=3 sites, got {}", sites.len());
        let rows = sites.ranked_rows();
        let resolved: Vec<&str> = rows.iter().filter_map(|r| r.source.as_deref()).collect();
        assert!(
            resolved.len() >= 3,
            "all real sites must resolve: {resolved:?}"
        );
        for src in &resolved {
            assert!(src.contains("kernel.rs"), "unexpected site file: {src}");
        }
        // Site-level counters must agree with the launch-level totals.
        let site_tx: u64 = rows.iter().map(|r| r.stats.transactions).sum();
        assert_eq!(site_tx, report.stats.total_tx());
        let site_cycles: f64 = rows.iter().map(|r| r.stats.issue_cycles).sum();
        assert!((site_cycles - report.stats.issue_cycles).abs() < 1e-9);
        // And the rendered table shows source positions, not placeholders.
        let table = sites.hotspot_table(10);
        assert!(table.contains("kernel.rs:"), "table:\n{table}");
    }

    #[test]
    fn report_includes_timing_and_occupancy() {
        let n = 4096;
        let (mut mem, input, output) = setup(n);
        let k = DoubleKernel { input, output, n };
        let cfg = GpuConfig::default();
        let report = launch(&mut mem, &cfg, LaunchConfig::cover(n, 128), &k).unwrap();
        assert!(report.timing.total > 0.0);
        assert!(report.occupancy.occupancy > 0.5);
    }
}

#[cfg(test)]
mod determinism_tests {
    use super::*;

    /// Launches are bit-deterministic: same inputs, same stats, same
    /// memory — across the rayon-parallel block execution.
    #[test]
    fn identical_launches_are_bit_identical() {
        struct Mixed {
            a: Buffer,
            b: Buffer,
            n: usize,
        }
        impl Kernel for Mixed {
            fn resources(&self) -> KernelResources {
                KernelResources {
                    regs_per_thread: 16,
                    shared_bytes_per_block: 64,
                    local_f64_slots: 2,
                }
            }
            fn run(&self, ctx: &mut ThreadCtx<'_>) {
                let i = ctx.global_thread_id();
                if !ctx.branch(i < self.n) {
                    return;
                }
                let v = ctx.ld_f64(self.a, i);
                ctx.st_local(0, v * 2.0);
                ctx.flop64(3);
                let t = ctx.thread_idx() % 8;
                ctx.sh_st_f64(t * 8, v);
                let w = ctx.sh_ld_f64(t * 8);
                if ctx.branch(i.is_multiple_of(3)) {
                    let spilled = ctx.ld_local(0);
                    ctx.st_f64(self.b, i, w + spilled);
                } else {
                    ctx.st_f64(self.b, i, w);
                }
            }
        }
        let run = || {
            let mut mem = DeviceMemory::new(1 << 22);
            let a = mem.alloc_array::<f64>(5000).unwrap();
            let b = mem.alloc_array::<f64>(5000).unwrap();
            for i in 0..5000 {
                mem.write_f64(a, i, (i as f64).sin());
            }
            let k = Mixed { a, b, n: 5000 };
            let cfg = GpuConfig::default();
            let report = launch(&mut mem, &cfg, LaunchConfig::cover(5000, 128), &k).unwrap();
            (report.stats, mem.download(b))
        };
        let (s1, m1) = run();
        let (s2, m2) = run();
        assert_eq!(s1, s2);
        assert_eq!(m1, m2);
    }
}

//! Kernel trait, per-lane execution context, and the launch machinery.
//!
//! Kernels are Rust types implementing [`Kernel`]; their `run` method is
//! the CUDA `__global__` body, executed once per thread with a
//! [`ThreadCtx`] standing in for the hardware: it performs *functional*
//! loads/stores against simulated device memory while recording the events
//! that drive the architectural analysis (see [`crate::warp`]).
//!
//! Like a CUDA kernel, `run` is invoked for every thread of every block of
//! the launch grid; threads past the problem size must guard themselves
//! (`if ctx.global_thread_id() >= n { return; }`).

use crate::config::GpuConfig;
use crate::memory::{Buffer, DeviceMemory, InitMask};
use crate::occupancy::{occupancy, Occupancy};
use crate::profile::SiteProfile;
use crate::sancheck::{BlockSan, SanReport};
use crate::stats::KernelStats;
use crate::timing::{kernel_time, KernelTiming};
use crate::trace::{BuildPtrHasher, OpClass, Space};
use crate::warp::WarpAccumulator;
use rayon::prelude::*;
use std::collections::HashMap;
use std::panic::Location;

/// Static resource footprint of a kernel, as `nvcc --ptxas-options=-v`
/// would report it.
///
/// Register counts cannot be derived from Rust source (there is no CUDA
/// compiler in the loop), so kernels *declare* them; the MoG kernels use
/// the per-variant values the paper reports from the CUDA 4.2 toolchain.
/// Occupancy is then derived from the declaration exactly as the CUDA
/// occupancy calculator does.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KernelResources {
    /// 32-bit registers per thread.
    pub regs_per_thread: u32,
    /// Static shared memory per block, in bytes.
    pub shared_bytes_per_block: usize,
    /// Per-thread local-memory (spill) slots of 8 bytes each.
    pub local_f64_slots: usize,
}

/// Grid geometry of a launch (1-D, which is all MoG needs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LaunchConfig {
    /// Number of thread blocks.
    pub blocks: u32,
    /// Threads per block.
    pub threads_per_block: u32,
}

impl LaunchConfig {
    /// Grid covering `threads` total threads with the given block size
    /// (rounding the block count up, CUDA-style).
    pub fn cover(threads: usize, threads_per_block: u32) -> Self {
        LaunchConfig {
            blocks: (threads as u64).div_ceil(threads_per_block as u64) as u32,
            threads_per_block,
        }
    }
}

/// A GPU kernel.
pub trait Kernel: Sync {
    /// Declared resource footprint (registers / shared memory / spill).
    fn resources(&self) -> KernelResources;
    /// Per-thread body.
    fn run(&self, ctx: &mut ThreadCtx<'_>);
}

/// Errors rejecting a launch, mirroring CUDA launch failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LaunchError {
    /// Block or grid dimension is zero or exceeds hardware limits.
    InvalidConfig(String),
    /// The kernel's register or shared-memory footprint leaves no room for
    /// even one resident block.
    ResourcesExceeded(String),
}

impl std::fmt::Display for LaunchError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LaunchError::InvalidConfig(m) => write!(f, "invalid launch configuration: {m}"),
            LaunchError::ResourcesExceeded(m) => write!(f, "kernel resources exceeded: {m}"),
        }
    }
}

impl std::error::Error for LaunchError {}

/// Optional launch behaviours; [`Default`] is the plain fast path.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LaunchOptions {
    /// Aggregate counters per source site and resolve `file:line` for the
    /// hotspot table. Off by default: the plain path allocates no site map
    /// and records events exactly as if profiling did not exist.
    pub profile_sites: bool,
    /// Run the compute-sanitizer-style checks (memcheck / racecheck /
    /// synccheck / initcheck, see [`crate::sancheck`]) and attach a
    /// [`SanReport`] to the launch report. Off by default; when on,
    /// out-of-bounds accesses are recorded and absorbed instead of
    /// panicking.
    pub sanitize: bool,
}

/// Everything a launch produces: the profiler counters, the occupancy, and
/// the modelled execution time.
#[derive(Debug, Clone, PartialEq)]
pub struct LaunchReport {
    /// Raw counters.
    pub stats: KernelStats,
    /// Occupancy of the kernel under this configuration.
    pub occupancy: Occupancy,
    /// Analytic execution-time estimate.
    pub timing: KernelTiming,
    /// Per-site counters, present when
    /// [`LaunchOptions::profile_sites`] was set.
    pub sites: Option<SiteProfile>,
    /// Sanitizer findings, present when [`LaunchOptions::sanitize`] was
    /// set (empty report = clean launch).
    pub sanitizer: Option<SanReport>,
}

/// Byte-granular read-your-writes overlay for one block's global stores.
///
/// Keyed by 8-byte-aligned cell address; each cell holds a validity mask
/// and the written bytes, so stores and loads of *different* widths over
/// the same address compose correctly. (Regression: the overlay used to
/// be keyed by exact `(address, width)`, so an 8-byte store read back
/// through a 4-byte load silently fell through to the stale pre-launch
/// snapshot. Byte granularity also makes publishing order-independent
/// within a block — the old map could hold overlapping entries of
/// different widths and apply them in arbitrary hash order.)
#[derive(Debug, Default)]
pub(crate) struct WriteOverlay {
    cells: HashMap<u64, OverlayCell, BuildPtrHasher>,
}

#[derive(Debug, Clone, Copy, Default)]
struct OverlayCell {
    mask: u8,
    bytes: [u8; 8],
}

impl WriteOverlay {
    /// Records a store of `val` (little-endian access bytes) at `addr`.
    /// An access of width <= 8 touches at most two cells.
    fn store(&mut self, addr: u64, val: &[u8]) {
        let mut i = 0;
        while i < val.len() {
            let a = addr + i as u64;
            let base = a & !7;
            let off = (a - base) as usize;
            let n = (8 - off).min(val.len() - i);
            let cell = self.cells.entry(base).or_default();
            for j in 0..n {
                cell.mask |= 1 << (off + j);
            }
            cell.bytes[off..off + n].copy_from_slice(&val[i..i + n]);
            i += n;
        }
    }

    /// Loads `width` bytes at `addr`: the pre-launch snapshot patched
    /// with any bytes this block has stored.
    fn load(&self, snapshot: &[u8], addr: u64, width: usize) -> u64 {
        let a = addr as usize;
        let mut out = [0u8; 8];
        out[..width].copy_from_slice(&snapshot[a..a + width]);
        let mut i = 0;
        while i < width {
            let a = addr + i as u64;
            let base = a & !7;
            let off = (a - base) as usize;
            let n = (8 - off).min(width - i);
            if let Some(cell) = self.cells.get(&base) {
                for j in 0..n {
                    if cell.mask & (1 << (off + j)) != 0 {
                        out[i + j] = cell.bytes[off + j];
                    }
                }
            }
            i += n;
        }
        u64::from_le_bytes(out)
    }

    /// Whether this block has stored the byte at `addr` (initcheck
    /// treats block-local stores as defining).
    pub(crate) fn is_written(&self, addr: u64) -> bool {
        let base = addr & !7;
        self.cells
            .get(&base)
            .is_some_and(|c| c.mask & (1 << (addr - base)) != 0)
    }

    /// Applies the overlay to device memory, marking the published bytes
    /// initialized.
    fn publish(self, mem: &mut DeviceMemory) {
        for (base, cell) in self.cells {
            mem.apply_masked(base, cell.mask, cell.bytes);
        }
    }
}

/// Virtual base address of the per-thread local (spill) space; far above
/// any global allocation so segment sets never collide.
const LOCAL_BASE: u64 = 1 << 40;

/// Per-thread execution context: thread identity, memory access, and event
/// recording.
pub struct ThreadCtx<'a> {
    block_idx: u32,
    thread_idx: u32,
    threads_per_block: u32,
    blocks: u32,
    lane: u32,
    global_warp_id: u64,
    snapshot: &'a [u8],
    init: &'a InitMask,
    writes: &'a mut WriteOverlay,
    shared: &'a mut [u8],
    local: &'a mut [f64],
    acc: &'a mut WarpAccumulator,
    san: Option<&'a mut BlockSan>,
}

impl ThreadCtx<'_> {
    /// Index of this thread's block in the grid.
    pub fn block_idx(&self) -> usize {
        self.block_idx as usize
    }

    /// Thread index within the block (`threadIdx.x`).
    pub fn thread_idx(&self) -> usize {
        self.thread_idx as usize
    }

    /// Block size (`blockDim.x`).
    pub fn block_dim(&self) -> usize {
        self.threads_per_block as usize
    }

    /// Grid size in blocks (`gridDim.x`).
    pub fn grid_dim(&self) -> usize {
        self.blocks as usize
    }

    /// Global linear thread id (`blockIdx.x * blockDim.x + threadIdx.x`).
    pub fn global_thread_id(&self) -> usize {
        self.block_idx as usize * self.threads_per_block as usize + self.thread_idx as usize
    }

    /// Lane index within the warp.
    pub fn lane(&self) -> usize {
        self.lane as usize
    }

    // ---- arithmetic ----

    /// Charges `n` double-precision floating-point operations.
    #[track_caller]
    #[inline]
    pub fn flop64(&mut self, n: u32) {
        self.acc.record_op(Location::caller(), OpClass::F64, n);
    }

    /// Charges `n` single-precision floating-point operations.
    #[track_caller]
    #[inline]
    pub fn flop32(&mut self, n: u32) {
        self.acc.record_op(Location::caller(), OpClass::F32, n);
    }

    /// Charges `n` integer/address operations.
    #[track_caller]
    #[inline]
    pub fn int_op(&mut self, n: u32) {
        self.acc.record_op(Location::caller(), OpClass::Int, n);
    }

    /// Records a data-dependent branch and returns the condition, so
    /// kernels write `if ctx.branch(cond) { ... }`.
    #[track_caller]
    #[inline]
    pub fn branch(&mut self, cond: bool) -> bool {
        self.acc.record_branch(Location::caller(), cond);
        cond
    }

    /// Records a block barrier (`__syncthreads()`).
    ///
    /// Lanes execute sequentially to completion, so functionally the
    /// barrier is a no-op — but it is *semantically* load-bearing: it
    /// separates the sync epochs the sanitizer's racecheck orders
    /// shared-memory accesses by, and it is the event synccheck audits
    /// for barrier divergence. Kernels with cross-lane data flow through
    /// shared memory should be validated once under
    /// [`LaunchOptions::sanitize`], which reports both genuine races and
    /// barrier-ordered flows the sequential-lane model cannot reproduce
    /// (see [`crate::sancheck`]).
    #[track_caller]
    #[inline]
    pub fn sync(&mut self) {
        let loc = Location::caller();
        self.acc.record_sync(loc);
        if let Some(san) = self.san.as_deref_mut() {
            san.on_sync(loc);
        }
    }

    // ---- global memory ----

    /// Bounds-checks a global access of `width` bytes at element `idx`
    /// of `buf` and resolves its device byte address.
    ///
    /// Out of bounds: panics at the kernel call site with the buffer
    /// identity on the plain path; under [`LaunchOptions::sanitize`]
    /// records a memcheck finding and returns `None` so the caller
    /// absorbs the access. Either way an overrun can never silently
    /// reach a neighboring allocation (the kernel-side mirror of the
    /// `DeviceMemory` typed-accessor checks).
    #[track_caller]
    #[inline]
    fn check_global(&mut self, buf: Buffer, idx: usize, width: usize, store: bool) -> Option<u64> {
        let end = idx
            .checked_mul(width)
            .and_then(|o| o.checked_add(width))
            .unwrap_or(usize::MAX);
        if end <= buf.len() {
            return Some(buf.addr() + (idx * width) as u64);
        }
        let dir = if store { "store" } else { "load" };
        let loc = Location::caller();
        let detail = format!(
            "global {dir} of {width} B at element {idx} is out of bounds for buffer @0x{:x} \
             (+{} B, {} elements)",
            buf.addr(),
            buf.len(),
            buf.len() / width.max(1)
        );
        match self.san.as_deref_mut() {
            Some(san) => {
                let addr = buf
                    .addr()
                    .saturating_add((idx as u64).saturating_mul(width as u64));
                san.oob(loc, Space::Global, addr, width, detail);
                None
            }
            None => panic!("kernel {}:{}: {detail}", loc.file(), loc.line()),
        }
    }

    /// initcheck hook for a bounds-valid global load: every byte must be
    /// initialized by the host, an upload, or a store of this block.
    #[inline]
    fn check_global_init(
        &mut self,
        loc: &'static Location<'static>,
        buf: Buffer,
        addr: u64,
        width: usize,
    ) {
        if self.san.is_none() {
            return;
        }
        for b in addr..addr + width as u64 {
            if !self.init.is_init(b as usize) && !self.writes.is_written(b) {
                if let Some(san) = self.san.as_deref_mut() {
                    san.uninit_global(loc, buf, addr, width);
                }
                return;
            }
        }
    }

    #[inline]
    fn read_bytes(&self, addr: u64, width: usize) -> u64 {
        self.writes.load(self.snapshot, addr, width)
    }

    /// Loads an `f64` from global memory at element index `idx` of `buf`.
    #[track_caller]
    #[inline]
    pub fn ld_f64(&mut self, buf: Buffer, idx: usize) -> f64 {
        let Some(addr) = self.check_global(buf, idx, 8, false) else {
            return 0.0;
        };
        let loc = Location::caller();
        self.acc.record_mem(loc, Space::Global, false, addr, 8);
        self.check_global_init(loc, buf, addr, 8);
        f64::from_le_bytes(self.read_bytes(addr, 8).to_le_bytes())
    }

    /// Stores an `f64` to global memory at element index `idx` of `buf`.
    #[track_caller]
    #[inline]
    pub fn st_f64(&mut self, buf: Buffer, idx: usize, v: f64) {
        let Some(addr) = self.check_global(buf, idx, 8, true) else {
            return;
        };
        self.acc
            .record_mem(Location::caller(), Space::Global, true, addr, 8);
        self.writes.store(addr, &v.to_le_bytes());
    }

    /// Loads an `f32` from global memory.
    #[track_caller]
    #[inline]
    pub fn ld_f32(&mut self, buf: Buffer, idx: usize) -> f32 {
        let Some(addr) = self.check_global(buf, idx, 4, false) else {
            return 0.0;
        };
        let loc = Location::caller();
        self.acc.record_mem(loc, Space::Global, false, addr, 4);
        self.check_global_init(loc, buf, addr, 4);
        f32::from_le_bytes((self.read_bytes(addr, 4) as u32).to_le_bytes())
    }

    /// Stores an `f32` to global memory.
    #[track_caller]
    #[inline]
    pub fn st_f32(&mut self, buf: Buffer, idx: usize, v: f32) {
        let Some(addr) = self.check_global(buf, idx, 4, true) else {
            return;
        };
        self.acc
            .record_mem(Location::caller(), Space::Global, true, addr, 4);
        self.writes.store(addr, &v.to_le_bytes());
    }

    /// Loads a `u8` from global memory.
    #[track_caller]
    #[inline]
    pub fn ld_u8(&mut self, buf: Buffer, idx: usize) -> u8 {
        let Some(addr) = self.check_global(buf, idx, 1, false) else {
            return 0;
        };
        let loc = Location::caller();
        self.acc.record_mem(loc, Space::Global, false, addr, 1);
        self.check_global_init(loc, buf, addr, 1);
        self.read_bytes(addr, 1) as u8
    }

    /// Stores a `u8` to global memory.
    #[track_caller]
    #[inline]
    pub fn st_u8(&mut self, buf: Buffer, idx: usize, v: u8) {
        let Some(addr) = self.check_global(buf, idx, 1, true) else {
            return;
        };
        self.acc
            .record_mem(Location::caller(), Space::Global, true, addr, 1);
        self.writes.store(addr, &[v]);
    }

    // ---- local (spill) memory ----

    /// Bounds-checks a local (spill) slot access: panic on the plain
    /// path, memcheck finding + absorbed access under sanitize.
    #[track_caller]
    #[inline]
    fn check_local(&mut self, slot: usize, store: bool) -> bool {
        if slot < self.local.len() {
            return true;
        }
        let dir = if store { "store" } else { "load" };
        let loc = Location::caller();
        let detail = format!(
            "local {dir} of slot {slot} is out of bounds for the kernel's {} declared f64 \
             spill slots",
            self.local.len()
        );
        match self.san.as_deref_mut() {
            Some(san) => {
                san.oob(loc, Space::Local, slot as u64, 8, detail);
                false
            }
            None => panic!("kernel {}:{}: {detail}", loc.file(), loc.line()),
        }
    }

    #[inline]
    fn local_addr(&self, slot: usize) -> u64 {
        // Fermi interleaves local memory so that the 32 lanes' copies of
        // one slot are contiguous: uniform slot accesses coalesce.
        let slots = self.local.len() as u64;
        LOCAL_BASE + ((self.global_warp_id * slots + slot as u64) * 32 + self.lane as u64) * 8
    }

    /// Loads a per-thread local (spill) `f64` slot.
    #[track_caller]
    #[inline]
    pub fn ld_local(&mut self, slot: usize) -> f64 {
        if !self.check_local(slot, false) {
            return 0.0;
        }
        let addr = self.local_addr(slot);
        self.acc
            .record_mem(Location::caller(), Space::Local, false, addr, 8);
        self.local[slot]
    }

    /// Stores a per-thread local (spill) `f64` slot.
    #[track_caller]
    #[inline]
    pub fn st_local(&mut self, slot: usize, v: f64) {
        if !self.check_local(slot, true) {
            return;
        }
        let addr = self.local_addr(slot);
        self.acc
            .record_mem(Location::caller(), Space::Local, true, addr, 8);
        self.local[slot] = v;
    }

    // ---- shared memory ----

    /// Bounds-checks a shared-memory access against the block's declared
    /// allocation: panic on the plain path, memcheck finding + absorbed
    /// access under sanitize.
    #[track_caller]
    #[inline]
    fn check_shared(&mut self, off: usize, width: usize, store: bool) -> bool {
        if off
            .checked_add(width)
            .is_some_and(|end| end <= self.shared.len())
        {
            return true;
        }
        let dir = if store { "store" } else { "load" };
        let loc = Location::caller();
        let detail = format!(
            "shared {dir} of {width} B at byte offset {off} exceeds the block's {} B shared \
             allocation",
            self.shared.len()
        );
        match self.san.as_deref_mut() {
            Some(san) => {
                san.oob(loc, Space::Shared, off as u64, width, detail);
                false
            }
            None => panic!("kernel {}:{}: {detail}", loc.file(), loc.line()),
        }
    }

    /// Loads an `f64` from block shared memory at byte offset `off`.
    #[track_caller]
    #[inline]
    pub fn sh_ld_f64(&mut self, off: usize) -> f64 {
        if !self.check_shared(off, 8, false) {
            return 0.0;
        }
        let loc = Location::caller();
        self.acc
            .record_mem(loc, Space::Shared, false, off as u64, 8);
        if let Some(san) = self.san.as_deref_mut() {
            san.shared_read(loc, off, 8);
        }
        f64::from_le_bytes(self.shared[off..off + 8].try_into().expect("8 bytes"))
    }

    /// Stores an `f64` to block shared memory at byte offset `off`.
    #[track_caller]
    #[inline]
    pub fn sh_st_f64(&mut self, off: usize, v: f64) {
        if !self.check_shared(off, 8, true) {
            return;
        }
        let loc = Location::caller();
        self.acc.record_mem(loc, Space::Shared, true, off as u64, 8);
        if let Some(san) = self.san.as_deref_mut() {
            san.shared_write(loc, off, 8);
        }
        self.shared[off..off + 8].copy_from_slice(&v.to_le_bytes());
    }

    /// Loads an `f32` from block shared memory at byte offset `off`.
    #[track_caller]
    #[inline]
    pub fn sh_ld_f32(&mut self, off: usize) -> f32 {
        if !self.check_shared(off, 4, false) {
            return 0.0;
        }
        let loc = Location::caller();
        self.acc
            .record_mem(loc, Space::Shared, false, off as u64, 4);
        if let Some(san) = self.san.as_deref_mut() {
            san.shared_read(loc, off, 4);
        }
        f32::from_le_bytes(self.shared[off..off + 4].try_into().expect("4 bytes"))
    }

    /// Stores an `f32` to block shared memory at byte offset `off`.
    #[track_caller]
    #[inline]
    pub fn sh_st_f32(&mut self, off: usize, v: f32) {
        if !self.check_shared(off, 4, true) {
            return;
        }
        let loc = Location::caller();
        self.acc.record_mem(loc, Space::Shared, true, off as u64, 4);
        if let Some(san) = self.san.as_deref_mut() {
            san.shared_write(loc, off, 4);
        }
        self.shared[off..off + 4].copy_from_slice(&v.to_le_bytes());
    }

    /// Loads a `u8` from block shared memory.
    #[track_caller]
    #[inline]
    pub fn sh_ld_u8(&mut self, off: usize) -> u8 {
        if !self.check_shared(off, 1, false) {
            return 0;
        }
        let loc = Location::caller();
        self.acc
            .record_mem(loc, Space::Shared, false, off as u64, 1);
        if let Some(san) = self.san.as_deref_mut() {
            san.shared_read(loc, off, 1);
        }
        self.shared[off]
    }

    /// Stores a `u8` to block shared memory.
    #[track_caller]
    #[inline]
    pub fn sh_st_u8(&mut self, off: usize, v: u8) {
        if !self.check_shared(off, 1, true) {
            return;
        }
        let loc = Location::caller();
        self.acc.record_mem(loc, Space::Shared, true, off as u64, 1);
        if let Some(san) = self.san.as_deref_mut() {
            san.shared_write(loc, off, 1);
        }
        self.shared[off] = v;
    }
}

/// Launches `kernel` over `lc` on the device, returning profiler counters,
/// occupancy, and a modelled execution time.
///
/// Blocks run in parallel on host threads; global stores become visible to
/// other blocks only after the launch (see crate docs).
///
/// # Errors
/// [`LaunchError::InvalidConfig`] for malformed grids,
/// [`LaunchError::ResourcesExceeded`] when no block can be resident.
pub fn launch(
    mem: &mut DeviceMemory,
    cfg: &GpuConfig,
    lc: LaunchConfig,
    kernel: &dyn Kernel,
) -> Result<LaunchReport, LaunchError> {
    launch_with(mem, cfg, lc, kernel, LaunchOptions::default())
}

/// [`launch`] with explicit [`LaunchOptions`] — in particular per-site
/// hotspot profiling.
///
/// # Errors
/// Same as [`launch`].
pub fn launch_with(
    mem: &mut DeviceMemory,
    cfg: &GpuConfig,
    lc: LaunchConfig,
    kernel: &dyn Kernel,
    opts: LaunchOptions,
) -> Result<LaunchReport, LaunchError> {
    if lc.blocks == 0 || lc.threads_per_block == 0 {
        return Err(LaunchError::InvalidConfig(format!(
            "grid {}x{} has a zero dimension",
            lc.blocks, lc.threads_per_block
        )));
    }
    if lc.threads_per_block > cfg.max_threads_per_block {
        return Err(LaunchError::InvalidConfig(format!(
            "{} threads/block exceeds the device limit of {}",
            lc.threads_per_block, cfg.max_threads_per_block
        )));
    }
    let res = kernel.resources();
    let occ = occupancy(cfg, &lc, &res).ok_or_else(|| {
        LaunchError::ResourcesExceeded(format!(
            "{} regs/thread and {} B shared leave no resident block",
            res.regs_per_thread, res.shared_bytes_per_block
        ))
    })?;

    let tpb = lc.threads_per_block;
    let warps_per_block = tpb.div_ceil(cfg.warp_size) as u64;
    let snapshot: &[u8] = mem.raw();
    let init: &InitMask = mem.init_mask();

    type BlockResult = (
        WriteOverlay,
        KernelStats,
        Option<SiteProfile>,
        Option<SanReport>,
    );
    let results: Vec<BlockResult> = (0..lc.blocks)
        .into_par_iter()
        .map(|b| {
            let mut writes = WriteOverlay::default();
            let mut shared = vec![0u8; res.shared_bytes_per_block];
            let mut local = vec![0.0f64; res.local_f64_slots];
            let mut stats = KernelStats::default();
            let mut san = opts
                .sanitize
                .then(|| BlockSan::new(b, tpb, res.shared_bytes_per_block));
            let mut acc = if opts.profile_sites {
                WarpAccumulator::with_site_profile()
            } else {
                WarpAccumulator::new()
            };
            // Optional L2: each block simulates a private slice of the
            // shared cache (see crate::cache for the approximation).
            let mut cache = if cfg.l2_bytes > 0 {
                let resident = (cfg.num_sms * occ.resident_blocks).max(1) as usize;
                Some(crate::cache::CacheModel::new(
                    cfg.l2_bytes / resident,
                    cfg.l2_assoc,
                    cfg.segment_bytes,
                ))
            } else {
                None
            };
            let mut w = 0u32;
            while w * cfg.warp_size < tpb {
                let first = w * cfg.warp_size;
                let last = (first + cfg.warp_size).min(tpb);
                for t in first..last {
                    acc.begin_lane();
                    if let Some(s) = san.as_mut() {
                        s.begin_thread(t);
                    }
                    local.fill(0.0);
                    let mut ctx = ThreadCtx {
                        block_idx: b,
                        thread_idx: t,
                        threads_per_block: tpb,
                        blocks: lc.blocks,
                        lane: t - first,
                        global_warp_id: b as u64 * warps_per_block + w as u64,
                        snapshot,
                        init,
                        writes: &mut writes,
                        shared: &mut shared,
                        local: &mut local,
                        acc: &mut acc,
                        san: san.as_mut(),
                    };
                    kernel.run(&mut ctx);
                }
                acc.end_warp_cached(cfg, &mut stats, cache.as_mut());
                w += 1;
            }
            stats.blocks = 1;
            let sites = acc.take_site_profile();
            (writes, stats, sites, san.map(BlockSan::into_report))
        })
        .collect();

    let mut stats = KernelStats::default();
    let mut sites = opts.profile_sites.then(SiteProfile::new);
    let mut sanitizer = opts.sanitize.then(SanReport::new);
    for (writes, s, block_sites, block_san) in &results {
        stats.merge(s);
        if let (Some(total), Some(block)) = (&mut sites, block_sites) {
            total.merge(block);
        }
        if let (Some(total), Some(block)) = (&mut sanitizer, block_san) {
            total.merge(block);
        }
        let _ = writes; // applied below; keep borrow order obvious
    }
    // Publish in block order: byte-granular cells are disjoint within a
    // block, and cross-block collisions resolve last-block-wins,
    // deterministically.
    for (writes, _, _, _) in results {
        writes.publish(mem);
    }

    let timing = kernel_time(&stats, &occ, cfg);
    Ok(LaunchReport {
        stats,
        occupancy: occ,
        timing,
        sites,
        sanitizer,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Doubles every f64 element: out[i] = 2 * in[i].
    struct DoubleKernel {
        input: Buffer,
        output: Buffer,
        n: usize,
    }

    impl Kernel for DoubleKernel {
        fn resources(&self) -> KernelResources {
            KernelResources {
                regs_per_thread: 16,
                shared_bytes_per_block: 0,
                local_f64_slots: 0,
            }
        }

        fn run(&self, ctx: &mut ThreadCtx<'_>) {
            let i = ctx.global_thread_id();
            if i >= self.n {
                return;
            }
            let v = ctx.ld_f64(self.input, i);
            ctx.flop64(1);
            ctx.st_f64(self.output, i, 2.0 * v);
        }
    }

    fn setup(n: usize) -> (DeviceMemory, Buffer, Buffer) {
        let mut mem = DeviceMemory::new(1 << 24);
        let input = mem.alloc_array::<f64>(n).unwrap();
        let output = mem.alloc_array::<f64>(n).unwrap();
        for i in 0..n {
            mem.write_f64(input, i, i as f64);
        }
        (mem, input, output)
    }

    #[test]
    fn functional_output_is_correct() {
        let n = 1000;
        let (mut mem, input, output) = setup(n);
        let k = DoubleKernel { input, output, n };
        let cfg = GpuConfig::default();
        let report = launch(&mut mem, &cfg, LaunchConfig::cover(n, 128), &k).unwrap();
        for i in 0..n {
            assert_eq!(mem.read_f64(output, i), 2.0 * i as f64);
        }
        assert_eq!(report.stats.lanes, 1024); // 8 blocks x 128
        assert_eq!(report.stats.flops_f64, 1000); // guarded threads do no work
    }

    #[test]
    fn coalesced_kernel_is_fully_efficient() {
        let n = 4096;
        let (mut mem, input, output) = setup(n);
        let k = DoubleKernel { input, output, n };
        let cfg = GpuConfig::default();
        let report = launch(&mut mem, &cfg, LaunchConfig::cover(n, 128), &k).unwrap();
        assert!((report.stats.gld_efficiency(&cfg) - 1.0).abs() < 1e-9);
        assert!((report.stats.gst_efficiency(&cfg) - 1.0).abs() < 1e-9);
        // 4096 f64 loads = 4096*8/128 = 256 transactions.
        assert_eq!(report.stats.global_load_tx, 256);
    }

    #[test]
    fn read_your_own_writes_within_block() {
        /// st then ld the same location in one thread.
        struct Rw {
            buf: Buffer,
        }
        impl Kernel for Rw {
            fn resources(&self) -> KernelResources {
                KernelResources {
                    regs_per_thread: 8,
                    shared_bytes_per_block: 0,
                    local_f64_slots: 0,
                }
            }
            fn run(&self, ctx: &mut ThreadCtx<'_>) {
                let i = ctx.global_thread_id();
                ctx.st_f64(self.buf, i, 41.0);
                let v = ctx.ld_f64(self.buf, i);
                ctx.st_f64(self.buf, i, v + 1.0);
            }
        }
        let mut mem = DeviceMemory::new(1 << 20);
        let buf = mem.alloc_array::<f64>(64).unwrap();
        let cfg = GpuConfig::default();
        launch(&mut mem, &cfg, LaunchConfig::cover(64, 32), &Rw { buf }).unwrap();
        for i in 0..64 {
            assert_eq!(mem.read_f64(buf, i), 42.0);
        }
    }

    #[test]
    fn zero_grid_rejected() {
        let mut mem = DeviceMemory::new(1 << 20);
        let buf = mem.alloc_array::<f64>(1).unwrap();
        let k = DoubleKernel {
            input: buf,
            output: buf,
            n: 0,
        };
        let cfg = GpuConfig::default();
        let err = launch(
            &mut mem,
            &cfg,
            LaunchConfig {
                blocks: 0,
                threads_per_block: 128,
            },
            &k,
        );
        assert!(matches!(err, Err(LaunchError::InvalidConfig(_))));
    }

    #[test]
    fn oversized_block_rejected() {
        let mut mem = DeviceMemory::new(1 << 20);
        let buf = mem.alloc_array::<f64>(1).unwrap();
        let k = DoubleKernel {
            input: buf,
            output: buf,
            n: 1,
        };
        let cfg = GpuConfig::default();
        let err = launch(
            &mut mem,
            &cfg,
            LaunchConfig {
                blocks: 1,
                threads_per_block: 4096,
            },
            &k,
        );
        assert!(matches!(err, Err(LaunchError::InvalidConfig(_))));
    }

    #[test]
    fn excessive_shared_memory_rejected() {
        struct Fat;
        impl Kernel for Fat {
            fn resources(&self) -> KernelResources {
                KernelResources {
                    regs_per_thread: 8,
                    shared_bytes_per_block: 1 << 20,
                    local_f64_slots: 0,
                }
            }
            fn run(&self, _ctx: &mut ThreadCtx<'_>) {}
        }
        let mut mem = DeviceMemory::new(1 << 20);
        let cfg = GpuConfig::default();
        let err = launch(
            &mut mem,
            &cfg,
            LaunchConfig {
                blocks: 1,
                threads_per_block: 32,
            },
            &Fat,
        );
        assert!(matches!(err, Err(LaunchError::ResourcesExceeded(_))));
    }

    #[test]
    fn divergent_kernel_reports_low_branch_efficiency() {
        /// Every other lane takes a different path.
        struct Diverge {
            out: Buffer,
        }
        impl Kernel for Diverge {
            fn resources(&self) -> KernelResources {
                KernelResources {
                    regs_per_thread: 8,
                    shared_bytes_per_block: 0,
                    local_f64_slots: 0,
                }
            }
            fn run(&self, ctx: &mut ThreadCtx<'_>) {
                let i = ctx.global_thread_id();
                if ctx.branch(i.is_multiple_of(2)) {
                    ctx.flop64(10);
                    ctx.st_f64(self.out, i, 1.0);
                } else {
                    ctx.flop64(10);
                    ctx.st_f64(self.out, i, 2.0);
                }
            }
        }
        let mut mem = DeviceMemory::new(1 << 20);
        let out = mem.alloc_array::<f64>(128).unwrap();
        let cfg = GpuConfig::default();
        let report = launch(
            &mut mem,
            &cfg,
            LaunchConfig::cover(128, 128),
            &Diverge { out },
        )
        .unwrap();
        assert_eq!(report.stats.branch_efficiency(), 0.0);
        // Serialization: both sides' flop slots issued in every warp.
        // 4 warps x 2 paths x 10 f64-flops x cost 2 = 160 cycles of flops
        // + 4 branch slots + mem slots.
        assert!(report.stats.issue_cycles >= 160.0);
        for i in 0..128usize {
            let expect = if i.is_multiple_of(2) { 1.0 } else { 2.0 };
            assert_eq!(mem.read_f64(out, i), expect);
        }
    }

    #[test]
    fn shared_memory_round_trips_within_block() {
        /// Each thread stages its value in shared memory and reads it back.
        struct Stage {
            out: Buffer,
        }
        impl Kernel for Stage {
            fn resources(&self) -> KernelResources {
                KernelResources {
                    regs_per_thread: 8,
                    shared_bytes_per_block: 128 * 8,
                    local_f64_slots: 0,
                }
            }
            fn run(&self, ctx: &mut ThreadCtx<'_>) {
                let t = ctx.thread_idx();
                let g = ctx.global_thread_id();
                ctx.sh_st_f64(t * 8, g as f64 * 3.0);
                ctx.sync();
                let v = ctx.sh_ld_f64(t * 8);
                ctx.st_f64(self.out, g, v);
            }
        }
        let mut mem = DeviceMemory::new(1 << 20);
        let out = mem.alloc_array::<f64>(256).unwrap();
        let cfg = GpuConfig::default();
        let report = launch(
            &mut mem,
            &cfg,
            LaunchConfig::cover(256, 128),
            &Stage { out },
        )
        .unwrap();
        for i in 0..256 {
            assert_eq!(mem.read_f64(out, i), i as f64 * 3.0);
        }
        // Stride-2 f64 word pattern: lane i touches words 2i, 2i+1 — no
        // two lanes share a bank word pair => conflict-free two-word
        // access... the analyzer reports replays for the 8-byte span.
        assert_eq!(report.stats.shared_accesses, 512);
        assert_eq!(report.stats.sync_slots, 8);
    }

    #[test]
    fn local_memory_is_private_per_thread() {
        struct Spill {
            out: Buffer,
        }
        impl Kernel for Spill {
            fn resources(&self) -> KernelResources {
                KernelResources {
                    regs_per_thread: 8,
                    shared_bytes_per_block: 0,
                    local_f64_slots: 4,
                }
            }
            fn run(&self, ctx: &mut ThreadCtx<'_>) {
                let g = ctx.global_thread_id();
                ctx.st_local(2, g as f64);
                let v = ctx.ld_local(2);
                ctx.st_f64(self.out, g, v);
            }
        }
        let mut mem = DeviceMemory::new(1 << 20);
        let out = mem.alloc_array::<f64>(96).unwrap();
        let cfg = GpuConfig::default();
        let report = launch(&mut mem, &cfg, LaunchConfig::cover(96, 32), &Spill { out }).unwrap();
        for i in 0..96 {
            assert_eq!(mem.read_f64(out, i), i as f64);
        }
        // Uniform slot access coalesces: 32 lanes x 8 B = 2 segments per
        // warp; 3 warps; loads and stores each.
        assert_eq!(report.stats.local_store_tx, 6);
        assert_eq!(report.stats.local_load_tx, 6);
        assert_eq!(report.stats.global_store_tx, 6);
    }

    #[test]
    fn default_launch_has_no_site_profile() {
        let n = 256;
        let (mut mem, input, output) = setup(n);
        let k = DoubleKernel { input, output, n };
        let cfg = GpuConfig::default();
        let report = launch(&mut mem, &cfg, LaunchConfig::cover(n, 128), &k).unwrap();
        assert!(report.sites.is_none());
    }

    #[test]
    fn profiled_launch_attributes_sites_to_source_lines() {
        let n = 1024;
        let (mut mem, input, output) = setup(n);
        let k = DoubleKernel { input, output, n };
        let cfg = GpuConfig::default();
        let opts = LaunchOptions {
            profile_sites: true,
            ..Default::default()
        };
        let report = launch_with(&mut mem, &cfg, LaunchConfig::cover(n, 128), &k, opts).unwrap();
        // Functional output must be unaffected by profiling.
        for i in 0..n {
            assert_eq!(mem.read_f64(output, i), 2.0 * i as f64);
        }
        let sites = report.sites.expect("profiled launch returns sites");
        // DoubleKernel::run has three distinct instrumented call sites
        // (ld_f64, flop64, st_f64) plus warp-divergence-free guards.
        assert!(sites.len() >= 3, "expected >=3 sites, got {}", sites.len());
        let rows = sites.ranked_rows();
        let resolved: Vec<&str> = rows.iter().filter_map(|r| r.source.as_deref()).collect();
        assert!(
            resolved.len() >= 3,
            "all real sites must resolve: {resolved:?}"
        );
        for src in &resolved {
            assert!(src.contains("kernel.rs"), "unexpected site file: {src}");
        }
        // Site-level counters must agree with the launch-level totals.
        let site_tx: u64 = rows.iter().map(|r| r.stats.transactions).sum();
        assert_eq!(site_tx, report.stats.total_tx());
        let site_cycles: f64 = rows.iter().map(|r| r.stats.issue_cycles).sum();
        assert!((site_cycles - report.stats.issue_cycles).abs() < 1e-9);
        // And the rendered table shows source positions, not placeholders.
        let table = sites.hotspot_table(10);
        assert!(table.contains("kernel.rs:"), "table:\n{table}");
    }

    /// Regression for the mixed-width aliasing bug: the write overlay was
    /// keyed by `(addr, width)`, so an 8-byte store read back through a
    /// 4-byte or 1-byte load missed the overlay and returned the stale
    /// pre-launch snapshot. The byte-granular overlay must return the
    /// stored bytes at any width.
    #[test]
    fn mixed_width_store_is_visible_to_narrower_loads() {
        struct MixedWidth {
            data: Buffer,
            out32: Buffer,
            out8: Buffer,
        }
        impl Kernel for MixedWidth {
            fn resources(&self) -> KernelResources {
                KernelResources {
                    regs_per_thread: 8,
                    shared_bytes_per_block: 0,
                    local_f64_slots: 0,
                }
            }
            fn run(&self, ctx: &mut ThreadCtx<'_>) {
                let i = ctx.global_thread_id();
                // Store a full f64 whose byte pattern is distinguishable,
                // then immediately read it back at narrower widths.
                let v = f64::from_le_bytes([1, 2, 3, 4, 5, 6, 7, 8]);
                ctx.st_f64(self.data, i, v);
                let lo = ctx.ld_f32(self.data, 2 * i); // low 4 bytes
                let b6 = ctx.ld_u8(self.data, 8 * i + 6); // byte 6
                ctx.st_f32(self.out32, i, lo);
                ctx.st_u8(self.out8, i, b6);
            }
        }
        let mut mem = DeviceMemory::new(1 << 20);
        let data = mem.alloc_array::<f64>(64).unwrap();
        let out32 = mem.alloc_array::<f32>(64).unwrap();
        let out8 = mem.alloc_array::<u8>(64).unwrap();
        for i in 0..64 {
            mem.write_f64(data, i, 0.0); // stale snapshot the bug exposed
        }
        let cfg = GpuConfig::default();
        let k = MixedWidth { data, out32, out8 };
        launch(&mut mem, &cfg, LaunchConfig::cover(64, 32), &k).unwrap();
        for i in 0..64 {
            assert_eq!(
                mem.read_f32(out32, i),
                f32::from_le_bytes([1, 2, 3, 4]),
                "narrow f32 load must see the f64 store"
            );
            assert_eq!(mem.read_u8(out8, i), 7, "u8 load must see byte 6");
        }
    }

    /// Narrow stores followed by a wide load must compose overlay bytes
    /// with snapshot bytes.
    #[test]
    fn narrow_stores_compose_into_wider_load() {
        struct Compose {
            data: Buffer,
            out: Buffer,
        }
        impl Kernel for Compose {
            fn resources(&self) -> KernelResources {
                KernelResources {
                    regs_per_thread: 8,
                    shared_bytes_per_block: 0,
                    local_f64_slots: 0,
                }
            }
            fn run(&self, ctx: &mut ThreadCtx<'_>) {
                let i = ctx.global_thread_id();
                ctx.st_u8(self.data, 8 * i, 0xAA); // patch one byte
                let v = ctx.ld_f64(self.data, i); // rest from snapshot
                ctx.st_f64(self.out, i, v);
            }
        }
        let mut mem = DeviceMemory::new(1 << 20);
        let data = mem.alloc_array::<f64>(32).unwrap();
        let out = mem.alloc_array::<f64>(32).unwrap();
        for i in 0..32 {
            mem.write_f64(data, i, f64::from_le_bytes([0x11; 8]));
        }
        let cfg = GpuConfig::default();
        launch(
            &mut mem,
            &cfg,
            LaunchConfig::cover(32, 32),
            &Compose { data, out },
        )
        .unwrap();
        let expect = f64::from_le_bytes([0xAA, 0x11, 0x11, 0x11, 0x11, 0x11, 0x11, 0x11]);
        for i in 0..32 {
            assert_eq!(mem.read_f64(out, i), expect);
        }
    }

    /// Kernel-side global accesses are bounds-checked against their
    /// buffer on the plain path (mirror of the `DeviceMemory` typed
    /// accessors): an off-by-one panics instead of touching the
    /// neighboring allocation.
    #[test]
    fn out_of_bounds_global_store_panics_without_sanitizer() {
        struct Oob {
            buf: Buffer,
        }
        impl Kernel for Oob {
            fn resources(&self) -> KernelResources {
                KernelResources {
                    regs_per_thread: 8,
                    shared_bytes_per_block: 0,
                    local_f64_slots: 0,
                }
            }
            fn run(&self, ctx: &mut ThreadCtx<'_>) {
                ctx.st_f64(self.buf, ctx.global_thread_id() + 4, 1.0);
            }
        }
        let mut mem = DeviceMemory::new(1 << 20);
        let buf = mem.alloc_array::<f64>(4).unwrap();
        let cfg = GpuConfig::default();
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            launch(
                &mut mem,
                &cfg,
                LaunchConfig {
                    blocks: 1,
                    threads_per_block: 32,
                },
                &Oob { buf },
            )
        }));
        assert!(r.is_err(), "OOB global store must panic on the plain path");
    }

    /// The same out-of-bounds access under `sanitize` is absorbed and
    /// reported as a memcheck finding with a resolved source site.
    #[test]
    fn sanitized_launch_reports_oob_instead_of_panicking() {
        struct Oob {
            buf: Buffer,
            out: Buffer,
        }
        impl Kernel for Oob {
            fn resources(&self) -> KernelResources {
                KernelResources {
                    regs_per_thread: 8,
                    shared_bytes_per_block: 0,
                    local_f64_slots: 0,
                }
            }
            fn run(&self, ctx: &mut ThreadCtx<'_>) {
                let i = ctx.global_thread_id();
                ctx.st_f64(self.buf, i + 4, 1.0); // OOB for every thread
                ctx.st_f64(self.out, i, 2.0); // rest of the kernel still runs
            }
        }
        let mut mem = DeviceMemory::new(1 << 20);
        let buf = mem.alloc_array::<f64>(4).unwrap();
        let out = mem.alloc_array::<f64>(32).unwrap();
        let cfg = GpuConfig::default();
        let report = launch_with(
            &mut mem,
            &cfg,
            LaunchConfig {
                blocks: 1,
                threads_per_block: 32,
            },
            &Oob { buf, out },
            LaunchOptions {
                sanitize: true,
                ..Default::default()
            },
        )
        .unwrap();
        let san = report.sanitizer.expect("sanitized launch returns a report");
        assert_eq!(san.len(), 1, "one deduplicated finding: {san:?}");
        let f = &san.findings()[0];
        assert_eq!(f.occurrences, 32);
        assert!(f.source.as_deref().unwrap().contains("kernel.rs"));
        // The absorbed stores must not have corrupted the neighbor.
        for i in 0..32 {
            assert_eq!(mem.read_f64(out, i), 2.0);
        }
    }

    /// A clean kernel under `sanitize` yields an empty report and
    /// identical functional output and counters.
    #[test]
    fn sanitize_is_transparent_for_clean_kernels() {
        let n = 1000;
        let (mut mem, input, output) = setup(n);
        let k = DoubleKernel { input, output, n };
        let cfg = GpuConfig::default();
        let plain = launch(&mut mem, &cfg, LaunchConfig::cover(n, 128), &k).unwrap();
        let plain_out = mem.download(output);

        let (mut mem2, input2, output2) = setup(n);
        let k2 = DoubleKernel {
            input: input2,
            output: output2,
            n,
        };
        let report = launch_with(
            &mut mem2,
            &cfg,
            LaunchConfig::cover(n, 128),
            &k2,
            LaunchOptions {
                sanitize: true,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(report.sanitizer.as_ref().unwrap().is_clean());
        assert_eq!(report.stats, plain.stats);
        assert_eq!(mem2.download(output2), plain_out);
    }

    #[test]
    fn default_launch_has_no_sanitizer_report() {
        let n = 64;
        let (mut mem, input, output) = setup(n);
        let k = DoubleKernel { input, output, n };
        let cfg = GpuConfig::default();
        let report = launch(&mut mem, &cfg, LaunchConfig::cover(n, 64), &k).unwrap();
        assert!(report.sanitizer.is_none());
    }

    #[test]
    fn report_includes_timing_and_occupancy() {
        let n = 4096;
        let (mut mem, input, output) = setup(n);
        let k = DoubleKernel { input, output, n };
        let cfg = GpuConfig::default();
        let report = launch(&mut mem, &cfg, LaunchConfig::cover(n, 128), &k).unwrap();
        assert!(report.timing.total > 0.0);
        assert!(report.occupancy.occupancy > 0.5);
    }
}

#[cfg(test)]
mod determinism_tests {
    use super::*;

    /// Launches are bit-deterministic: same inputs, same stats, same
    /// memory — across the rayon-parallel block execution.
    #[test]
    fn identical_launches_are_bit_identical() {
        struct Mixed {
            a: Buffer,
            b: Buffer,
            n: usize,
        }
        impl Kernel for Mixed {
            fn resources(&self) -> KernelResources {
                KernelResources {
                    regs_per_thread: 16,
                    shared_bytes_per_block: 64,
                    local_f64_slots: 2,
                }
            }
            fn run(&self, ctx: &mut ThreadCtx<'_>) {
                let i = ctx.global_thread_id();
                if !ctx.branch(i < self.n) {
                    return;
                }
                let v = ctx.ld_f64(self.a, i);
                ctx.st_local(0, v * 2.0);
                ctx.flop64(3);
                let t = ctx.thread_idx() % 8;
                ctx.sh_st_f64(t * 8, v);
                let w = ctx.sh_ld_f64(t * 8);
                if ctx.branch(i.is_multiple_of(3)) {
                    let spilled = ctx.ld_local(0);
                    ctx.st_f64(self.b, i, w + spilled);
                } else {
                    ctx.st_f64(self.b, i, w);
                }
            }
        }
        let run = || {
            let mut mem = DeviceMemory::new(1 << 22);
            let a = mem.alloc_array::<f64>(5000).unwrap();
            let b = mem.alloc_array::<f64>(5000).unwrap();
            for i in 0..5000 {
                mem.write_f64(a, i, (i as f64).sin());
            }
            let k = Mixed { a, b, n: 5000 };
            let cfg = GpuConfig::default();
            let report = launch(&mut mem, &cfg, LaunchConfig::cover(5000, 128), &k).unwrap();
            (report.stats, mem.download(b))
        };
        let (s1, m1) = run();
        let (s2, m2) = run();
        assert_eq!(s1, s2);
        assert_eq!(m1, m2);
    }
}

//! Hardware configurations (Table I of the paper) and model calibration
//! constants.

use serde::{Deserialize, Serialize};

/// GPU hardware description plus analytic-model calibration constants.
///
/// The default ([`GpuConfig::tesla_c2075`]) reproduces the paper's target,
/// an Nvidia Tesla C2075 (Fermi, compute capability 2.0). Architectural
/// values come from the C2075 datasheet and the CUDA C Programming Guide's
/// CC 2.0 tables; the three starred constants below are *calibration*
/// parameters of the timing model, tuned once so the paper's double-
/// precision 3-Gaussian optimization trajectory (13x -> 41x -> 57x -> 85x
/// -> 86x -> 97x) is reproduced in shape (see EXPERIMENTS.md).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GpuConfig {
    /// Marketing name, for report headers.
    pub name: String,
    /// Number of streaming multiprocessors (C2075: 14).
    pub num_sms: u32,
    /// Scalar cores per SM (C2075: 32) — informational; the issue model
    /// works at warp granularity.
    pub cores_per_sm: u32,
    /// Core clock in Hz (C2075: 1.15 GHz).
    pub clock_hz: f64,
    /// Lanes per warp (32 for all CUDA GPUs).
    pub warp_size: u32,
    /// Maximum resident threads per SM (CC 2.0: 1536).
    pub max_threads_per_sm: u32,
    /// Maximum resident warps per SM (CC 2.0: 48).
    pub max_warps_per_sm: u32,
    /// Maximum resident blocks per SM (CC 2.0: 8).
    pub max_blocks_per_sm: u32,
    /// 32-bit registers per SM (CC 2.0: 32768).
    pub registers_per_sm: u32,
    /// Register allocation granularity in registers-per-warp units
    /// (CC 2.0 allocates per warp in units of 64 registers).
    pub register_alloc_unit: u32,
    /// Shared memory per SM in bytes (48 KiB in the 48/16 configuration the
    /// paper uses).
    pub shared_mem_per_sm: u32,
    /// Shared-memory allocation granularity in bytes (CC 2.0: 128).
    pub shared_alloc_unit: u32,
    /// Shared-memory banks (CC 2.0: 32, 4-byte wide).
    pub shared_banks: u32,
    /// Maximum threads per block (CC 2.0: 1024).
    pub max_threads_per_block: u32,
    /// Global-memory transaction segment size in bytes (Fermi L1 line: 128).
    pub segment_bytes: u64,
    /// Peak DRAM bandwidth in bytes/s (C2075 GDDR5: 144 GB/s).
    pub dram_peak_bw: f64,
    /// *Calibrated:* fraction of peak DRAM bandwidth achievable by a
    /// well-coalesced stream (DRAM efficiency; 0.80).
    pub dram_efficiency: f64,
    /// *Calibrated:* effective round-trip global-memory latency in core
    /// cycles, including queueing under load (1100). Datasheet latencies
    /// are 400-800 cycles; the higher effective value folds in memory-
    /// controller queueing, which the paper's profiler data implies.
    pub mem_latency_cycles: f64,
    /// *Calibrated:* memory-level parallelism — mean outstanding
    /// transactions per resident warp (1.0 for Fermi's single outstanding
    /// load per warp in the common case).
    pub mlp_per_warp: f64,
    /// Warp instructions issued per SM per cycle (Fermi: two schedulers
    /// feeding 32 cores amount to ~1 full-warp instruction per cycle).
    pub issue_per_sm_per_cycle: f64,
    /// Issue-cost multiplier for double-precision arithmetic (Fermi Tesla
    /// runs FP64 at half the FP32 rate: 2.0).
    pub f64_issue_cost: f64,
    /// Number of independent DMA copy engines (C2075: 2 — simultaneous
    /// host-to-device and device-to-host).
    pub copy_engines: u32,
    /// Effective PCIe bandwidth per direction in bytes/s for *pageable*
    /// host memory. Calibrated to ~1.0 GB/s from the paper's observation
    /// that transfers take one third of a 12.3 ms frame at level B —
    /// the staging-copy behaviour of non-pinned `cudaMemcpy`.
    pub pcie_bw: f64,
    /// Effective PCIe bandwidth with page-locked (pinned) host buffers
    /// (`cudaMallocHost`): ~6 GB/s on gen2 x16. The paper's code
    /// evidently did not pin; `exp_overlap` quantifies what pinning would
    /// have bought.
    pub pcie_bw_pinned: f64,
    /// Fixed per-transfer DMA setup latency in seconds (~20 us).
    pub dma_latency_s: f64,
    /// Device memory capacity in bytes (C2075: 6 GiB).
    pub device_mem_bytes: usize,
    /// L2 cache capacity in bytes; 0 disables the cache model (the
    /// default — MoG streams its working set, see [`crate::cache`]).
    pub l2_bytes: usize,
    /// L2 associativity when enabled.
    pub l2_assoc: usize,
}

impl GpuConfig {
    /// The paper's GPU: Nvidia Tesla C2075 (Fermi).
    pub fn tesla_c2075() -> Self {
        GpuConfig {
            name: "Nvidia Tesla C2075 (simulated)".to_string(),
            num_sms: 14,
            cores_per_sm: 32,
            clock_hz: 1.15e9,
            warp_size: 32,
            max_threads_per_sm: 1536,
            max_warps_per_sm: 48,
            max_blocks_per_sm: 8,
            registers_per_sm: 32768,
            register_alloc_unit: 64,
            shared_mem_per_sm: 48 * 1024,
            shared_alloc_unit: 128,
            shared_banks: 32,
            max_threads_per_block: 1024,
            segment_bytes: 128,
            dram_peak_bw: 144.0e9,
            dram_efficiency: 0.80,
            mem_latency_cycles: 1100.0,
            mlp_per_warp: 1.0,
            issue_per_sm_per_cycle: 1.0,
            f64_issue_cost: 2.0,
            copy_engines: 2,
            pcie_bw: 1.0e9,
            pcie_bw_pinned: 6.0e9,
            dma_latency_s: 20e-6,
            device_mem_bytes: 6 * 1024 * 1024 * 1024,
            l2_bytes: 0,
            l2_assoc: 16,
        }
    }

    /// With the 768 KB Fermi L2 cache model enabled (see
    /// [`crate::cache`]); used by the cache ablation.
    pub fn tesla_c2075_with_l2() -> Self {
        GpuConfig {
            l2_bytes: 768 * 1024,
            ..Self::tesla_c2075()
        }
    }

    /// Peak single-precision FLOPS implied by the configuration
    /// (2 FLOP/cycle/core fused multiply-add).
    pub fn peak_f32_flops(&self) -> f64 {
        self.num_sms as f64 * self.cores_per_sm as f64 * self.clock_hz * 2.0
    }

    /// A Kepler-generation Tesla K20 (the C2075's successor): double the
    /// register file, 4x the warp slots per SM, quad schedulers, much
    /// higher bandwidth. Used by the `exp_portability` experiment to ask
    /// how much of the paper's optimization ladder survives a hardware
    /// generation — register-pressure tricks stop mattering once the
    /// register file stops being the occupancy limiter, while coalescing
    /// and branch discipline remain.
    pub fn tesla_k20() -> Self {
        GpuConfig {
            name: "Nvidia Tesla K20 (simulated)".to_string(),
            num_sms: 13,
            cores_per_sm: 192,
            clock_hz: 0.706e9,
            warp_size: 32,
            max_threads_per_sm: 2048,
            max_warps_per_sm: 64,
            max_blocks_per_sm: 16,
            registers_per_sm: 65536,
            register_alloc_unit: 256,
            shared_mem_per_sm: 48 * 1024,
            shared_alloc_unit: 256,
            shared_banks: 32,
            max_threads_per_block: 1024,
            segment_bytes: 128,
            dram_peak_bw: 208.0e9,
            dram_efficiency: 0.80,
            mem_latency_cycles: 900.0,
            mlp_per_warp: 2.0, // Kepler sustains more outstanding misses
            issue_per_sm_per_cycle: 4.0,
            f64_issue_cost: 3.0, // K20 FP64 at 1/3 rate
            copy_engines: 2,
            pcie_bw: 2.5e9, // gen2, pageable — faster staging than the C2075 host
            pcie_bw_pinned: 6.0e9,
            dma_latency_s: 15e-6,
            device_mem_bytes: 5 * 1024 * 1024 * 1024,
            l2_bytes: 0,
            l2_assoc: 16,
        }
    }

    /// A big-HBM datacenter part, modelled on a Pascal-P100-class GPU:
    /// many small SMs, HBM2 stacked memory at ~20x the C2075's effective
    /// bandwidth, a 16 GiB device pool, gen3 PCIe, and full-rate-class
    /// FP64 (1/2 of FP32). In the fleet dispatcher this is the "scale-up"
    /// device class: one of these holds several times the streams of a
    /// Fermi card before either the compute engine or the memory budget
    /// saturates.
    pub fn hbm_p100() -> Self {
        GpuConfig {
            name: "Big-HBM datacenter GPU (P100-class, simulated)".to_string(),
            num_sms: 56,
            cores_per_sm: 64,
            clock_hz: 1.33e9,
            warp_size: 32,
            max_threads_per_sm: 2048,
            max_warps_per_sm: 64,
            max_blocks_per_sm: 32,
            registers_per_sm: 65536,
            register_alloc_unit: 256,
            shared_mem_per_sm: 64 * 1024,
            shared_alloc_unit: 256,
            shared_banks: 32,
            max_threads_per_block: 1024,
            segment_bytes: 128,
            dram_peak_bw: 732.0e9, // HBM2, 4 stacks
            dram_efficiency: 0.80,
            mem_latency_cycles: 800.0,
            mlp_per_warp: 4.0, // deep miss queues in front of HBM
            issue_per_sm_per_cycle: 2.0,
            f64_issue_cost: 2.0, // full-rate-class FP64 (1/2 of FP32)
            copy_engines: 2,
            pcie_bw: 3.0e9, // gen3, pageable staging
            pcie_bw_pinned: 12.0e9,
            dma_latency_s: 10e-6,
            device_mem_bytes: 16 * 1024 * 1024 * 1024,
            l2_bytes: 0,
            l2_assoc: 16,
        }
    }

    /// Looks up a device-class preset by its short CLI name. The accepted
    /// names are [`GpuConfig::preset_names`]; unknown names return `None`
    /// so callers can produce a structured error listing the choices.
    pub fn preset(name: &str) -> Option<Self> {
        match name {
            "c2075" | "fermi" => Some(Self::tesla_c2075()),
            "c2075-l2" => Some(Self::tesla_c2075_with_l2()),
            "k20" | "kepler" => Some(Self::tesla_k20()),
            "embedded" | "tegra" => Some(Self::embedded_tegra()),
            "hbm" | "p100" => Some(Self::hbm_p100()),
            _ => None,
        }
    }

    /// Canonical short names accepted by [`GpuConfig::preset`], one per
    /// distinct device class (aliases omitted).
    pub fn preset_names() -> &'static [&'static str] {
        &["c2075", "c2075-l2", "k20", "embedded", "hbm"]
    }

    /// An embedded-class integrated GPU, modelled on a Tegra-K1-era
    /// mobile part: one big SM at a lower clock, LPDDR3 bandwidth shared
    /// with the CPU, and no PCIe (frames reach the GPU through the shared
    /// memory controller, modelled as a very fast single "copy engine").
    ///
    /// This is the paper's *future work* target ("realize MoG on an
    /// embedded GPU... achieving real-time performance will require to
    /// trade off quality for speed"); the `exp_embedded` experiment
    /// quantifies that trade-off.
    pub fn embedded_tegra() -> Self {
        GpuConfig {
            name: "Embedded integrated GPU (Tegra-class, simulated)".to_string(),
            num_sms: 1,
            cores_per_sm: 192,
            clock_hz: 0.85e9,
            warp_size: 32,
            // Resident limits of a single big mobile SM (Kepler-like).
            max_threads_per_sm: 2048,
            max_warps_per_sm: 64,
            max_blocks_per_sm: 16,
            registers_per_sm: 65536,
            register_alloc_unit: 256,
            shared_mem_per_sm: 48 * 1024,
            shared_alloc_unit: 256,
            shared_banks: 32,
            max_threads_per_block: 1024,
            segment_bytes: 128,
            dram_peak_bw: 14.9e9, // LPDDR3-2133, shared with the CPU
            dram_efficiency: 0.70,
            mem_latency_cycles: 900.0,
            mlp_per_warp: 1.0,
            issue_per_sm_per_cycle: 4.0, // 192 cores ~ 4 warp issues/cycle
            f64_issue_cost: 24.0,        // mobile parts run FP64 at 1/24 rate
            copy_engines: 1,
            pcie_bw: 8.0e9, // zero-copy through the shared memory controller
            pcie_bw_pinned: 8.0e9,
            dma_latency_s: 5e-6,
            device_mem_bytes: 2 * 1024 * 1024 * 1024,
            l2_bytes: 0,
            l2_assoc: 16,
        }
    }
}

impl Default for GpuConfig {
    fn default() -> Self {
        GpuConfig::tesla_c2075()
    }
}

/// CPU reference-machine description (Intel Xeon E5-2620) plus cost-model
/// calibration.
///
/// The paper's speedups are ratios against a single-threaded `-O3` run on
/// this CPU (227.3 s for 450 full-HD frames, double precision, 3
/// Gaussians). We model CPU time from the same traced event counts the GPU
/// model uses; `cycles_per_event` is calibrated so the modelled serial
/// reference lands on the paper's measurement (see `exp_baseline`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CpuConfig {
    /// Marketing name, for report headers.
    pub name: String,
    /// Physical cores (E5-2620: 6, 12 hyper-threads).
    pub cores: u32,
    /// Hardware threads used by the paper's OpenMP run (8).
    pub threads: u32,
    /// Clock in Hz (2.0 GHz base / 2.5 GHz turbo; the paper lists 2.5 GHz).
    pub clock_hz: f64,
    /// DRAM bandwidth in bytes/s (12.8 GB/s DDR3-1600 x1 channel as listed
    /// in Table I).
    pub dram_bw: f64,
    /// *Calibrated:* average core cycles per traced scalar event for the
    /// serial `-O3` build (folds in superscalar issue, cache misses and
    /// branch-miss costs).
    pub cycles_per_event: f64,
    /// Extra cycles charged per mispredicted branch. A branch is treated
    /// as mispredicted with probability `mispredict_rate` when its traced
    /// outcomes are mixed.
    pub branch_miss_penalty: f64,
    /// Fraction of data-dependent branches assumed mispredicted.
    pub mispredict_rate: f64,
    /// SIMD width of the vectorized build (AVX on 64-bit doubles: 4; the
    /// paper's "customized for SIMD" build gains only 1.39x, consistent
    /// with divergence-serialized 4-wide execution).
    pub simd_width: u32,
    /// *Calibrated:* effective fraction of ideal SIMD speedup retained
    /// after divergence serialization and gather/scatter overhead (0.35,
    /// matching the paper's 227.3 s -> 163 s "customized for SIMD" gain).
    pub simd_efficiency: f64,
    /// Parallel efficiency of the multi-threaded (OpenMP, 8-thread) build.
    /// Calibrated from the paper: 227.3 s / 99.8 s = 2.28x on 8 threads
    /// => 0.285.
    pub mt_efficiency: f64,
    /// Extra cycles per double-precision FLOP relative to single
    /// (calibrated ~1.0 from the paper's 227.3 s vs 180 s double/float
    /// serial runtimes; physically it folds in the doubled cache traffic).
    pub f64_extra_cycles: f64,
}

impl CpuConfig {
    /// The paper's CPU: Intel Xeon E5-2620.
    pub fn xeon_e5_2620() -> Self {
        CpuConfig {
            name: "Intel Xeon E5-2620 (modelled)".to_string(),
            cores: 6,
            threads: 8,
            clock_hz: 2.5e9,
            dram_bw: 12.8e9,
            cycles_per_event: 2.30,
            branch_miss_penalty: 15.0,
            mispredict_rate: 0.5,
            simd_width: 4,
            simd_efficiency: 0.35,
            mt_efficiency: 0.285,
            f64_extra_cycles: 1.0,
        }
    }
}

impl Default for CpuConfig {
    fn default() -> Self {
        CpuConfig::xeon_e5_2620()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn c2075_matches_table_1() {
        let g = GpuConfig::tesla_c2075();
        // Table I: 448 cores, 1.15 GHz, 144 GB/s, ~1.03 TFLOPS single.
        assert_eq!(g.num_sms * g.cores_per_sm, 448);
        assert!((g.clock_hz - 1.15e9).abs() < 1.0);
        assert!((g.dram_peak_bw - 144e9).abs() < 1.0);
        let tflops = g.peak_f32_flops() / 1e12;
        assert!((tflops - 1.03).abs() < 0.01, "got {tflops} TFLOPS");
    }

    #[test]
    fn xeon_matches_table_1() {
        let c = CpuConfig::xeon_e5_2620();
        assert_eq!(c.cores, 6);
        assert!((c.dram_bw - 12.8e9).abs() < 1.0);
    }

    #[test]
    fn embedded_preset_is_an_order_of_magnitude_weaker() {
        let big = GpuConfig::tesla_c2075();
        let small = GpuConfig::embedded_tegra();
        assert!(small.peak_f32_flops() < big.peak_f32_flops() / 2.0);
        assert!(small.dram_peak_bw < big.dram_peak_bw / 5.0);
        assert_eq!(small.num_sms, 1);
    }

    #[test]
    fn hbm_preset_is_an_order_of_magnitude_stronger() {
        let fermi = GpuConfig::tesla_c2075();
        let hbm = GpuConfig::hbm_p100();
        assert!(hbm.peak_f32_flops() > 4.0 * fermi.peak_f32_flops());
        assert!(hbm.dram_peak_bw > 5.0 * fermi.dram_peak_bw);
        assert!(hbm.device_mem_bytes > 2 * fermi.device_mem_bytes);
    }

    #[test]
    fn preset_lookup_covers_every_canonical_name() {
        for name in GpuConfig::preset_names() {
            assert!(GpuConfig::preset(name).is_some(), "missing preset {name}");
        }
        assert_eq!(GpuConfig::preset("c2075"), Some(GpuConfig::tesla_c2075()));
        assert_eq!(GpuConfig::preset("hbm"), Some(GpuConfig::hbm_p100()));
        assert_eq!(GpuConfig::preset("p100"), Some(GpuConfig::hbm_p100()));
        assert_eq!(
            GpuConfig::preset("embedded"),
            Some(GpuConfig::embedded_tegra())
        );
        assert_eq!(GpuConfig::preset("quantum"), None);
    }

    #[test]
    fn default_is_c2075() {
        assert_eq!(GpuConfig::default(), GpuConfig::tesla_c2075());
        assert_eq!(CpuConfig::default(), CpuConfig::xeon_e5_2620());
    }
}

//! Kernel launch statistics and the derived profiler-style metrics the
//! paper reports (branch efficiency, memory access efficiency, transaction
//! counts).

use crate::config::GpuConfig;
use serde::{Deserialize, Serialize};

/// Raw counters accumulated over every warp of a kernel launch.
///
/// Counter semantics follow the Nvidia Visual Profiler quantities the paper
/// cites:
///
/// * *transactions* are 128-byte-segment accesses to DRAM (global + local
///   space),
/// * *branch slots* are warp-level branch instructions; a slot is
///   *divergent* when its active lanes disagree on the condition,
/// * *issue cycles* are warp-instruction issue slots weighted by class
///   (double-precision costs [`GpuConfig::f64_issue_cost`]).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct KernelStats {
    /// Weighted warp-instruction issue cycles.
    pub issue_cycles: f64,
    /// Warp-level instruction slots (unweighted).
    pub warp_slots: u64,
    /// Warps executed.
    pub warps: u64,
    /// Lanes (threads) executed.
    pub lanes: u64,
    /// Blocks executed.
    pub blocks: u64,

    /// Scalar integer operations (summed over lanes).
    pub int_ops: u64,
    /// Scalar single-precision FLOPs (summed over lanes).
    pub flops_f32: u64,
    /// Scalar double-precision FLOPs (summed over lanes).
    pub flops_f64: u64,

    /// Warp-level global/local memory instruction slots.
    pub mem_slots: u64,
    /// Global-memory load transactions (128 B segments).
    pub global_load_tx: u64,
    /// Global-memory store transactions.
    pub global_store_tx: u64,
    /// Local-memory (spill) load transactions.
    pub local_load_tx: u64,
    /// Local-memory (spill) store transactions.
    pub local_store_tx: u64,
    /// Bytes the lanes actually requested from global loads.
    pub global_load_bytes_requested: u64,
    /// Bytes the lanes actually requested in global stores.
    pub global_store_bytes_requested: u64,
    /// Bytes requested by local loads.
    pub local_load_bytes_requested: u64,
    /// Bytes requested by local stores.
    pub local_store_bytes_requested: u64,

    /// Shared-memory lane accesses.
    pub shared_accesses: u64,
    /// Shared-memory replays due to bank conflicts.
    pub shared_replays: u64,

    /// Warp-level branch slots.
    pub branch_slots: u64,
    /// Branch slots whose lanes disagreed (divergent).
    pub divergent_branch_slots: u64,
    /// Scalar branch executions (summed over lanes) — used by the CPU cost
    /// model.
    pub lane_branches: u64,
    /// Scalar (per-lane) global/local memory accesses — used by the CPU
    /// cost model.
    pub lane_mem_accesses: u64,

    /// Barrier slots.
    pub sync_slots: u64,

    /// L2 line hits (only counted when the cache model is enabled).
    pub l2_hits: u64,
    /// L2 line misses (equals the DRAM transaction count when enabled).
    pub l2_misses: u64,
}

impl KernelStats {
    /// Merges another launch's counters into this one.
    ///
    /// The exhaustive destructuring (no `..` rest pattern) is deliberate:
    /// adding a counter field to [`KernelStats`] without merging it here
    /// becomes a compile error instead of a silently dropped counter.
    pub fn merge(&mut self, o: &KernelStats) {
        let KernelStats {
            issue_cycles,
            warp_slots,
            warps,
            lanes,
            blocks,
            int_ops,
            flops_f32,
            flops_f64,
            mem_slots,
            global_load_tx,
            global_store_tx,
            local_load_tx,
            local_store_tx,
            global_load_bytes_requested,
            global_store_bytes_requested,
            local_load_bytes_requested,
            local_store_bytes_requested,
            shared_accesses,
            shared_replays,
            branch_slots,
            divergent_branch_slots,
            lane_branches,
            lane_mem_accesses,
            sync_slots,
            l2_hits,
            l2_misses,
        } = o;
        self.issue_cycles += issue_cycles;
        self.warp_slots += warp_slots;
        self.warps += warps;
        self.lanes += lanes;
        self.blocks += blocks;
        self.int_ops += int_ops;
        self.flops_f32 += flops_f32;
        self.flops_f64 += flops_f64;
        self.mem_slots += mem_slots;
        self.global_load_tx += global_load_tx;
        self.global_store_tx += global_store_tx;
        self.local_load_tx += local_load_tx;
        self.local_store_tx += local_store_tx;
        self.global_load_bytes_requested += global_load_bytes_requested;
        self.global_store_bytes_requested += global_store_bytes_requested;
        self.local_load_bytes_requested += local_load_bytes_requested;
        self.local_store_bytes_requested += local_store_bytes_requested;
        self.shared_accesses += shared_accesses;
        self.shared_replays += shared_replays;
        self.branch_slots += branch_slots;
        self.divergent_branch_slots += divergent_branch_slots;
        self.lane_branches += lane_branches;
        self.lane_mem_accesses += lane_mem_accesses;
        self.sync_slots += sync_slots;
        self.l2_hits += l2_hits;
        self.l2_misses += l2_misses;
    }

    /// Total DRAM transactions (global + local, loads + stores).
    pub fn total_tx(&self) -> u64 {
        self.global_load_tx + self.global_store_tx + self.local_load_tx + self.local_store_tx
    }

    /// Total DRAM *store* transactions — the metric of Fig. 6(a).
    pub fn store_tx(&self) -> u64 {
        self.global_store_tx + self.local_store_tx
    }

    /// Total bytes moved across the DRAM interface (transactions x
    /// segment size).
    pub fn bytes_transacted(&self, cfg: &GpuConfig) -> u64 {
        self.total_tx() * cfg.segment_bytes
    }

    /// Total bytes the lanes requested.
    pub fn bytes_requested(&self) -> u64 {
        self.global_load_bytes_requested
            + self.global_store_bytes_requested
            + self.local_load_bytes_requested
            + self.local_store_bytes_requested
    }

    /// Branch efficiency: non-divergent branch slots / branch slots
    /// (1.0 when no branches executed).
    pub fn branch_efficiency(&self) -> f64 {
        if self.branch_slots == 0 {
            return 1.0;
        }
        1.0 - self.divergent_branch_slots as f64 / self.branch_slots as f64
    }

    /// Global-load efficiency: requested bytes / transacted bytes.
    pub fn gld_efficiency(&self, cfg: &GpuConfig) -> f64 {
        ratio(
            self.global_load_bytes_requested,
            self.global_load_tx * cfg.segment_bytes,
        )
    }

    /// Global-store efficiency: requested bytes / transacted bytes.
    pub fn gst_efficiency(&self, cfg: &GpuConfig) -> f64 {
        ratio(
            self.global_store_bytes_requested,
            self.global_store_tx * cfg.segment_bytes,
        )
    }

    /// Overall DRAM access efficiency (global + local, loads + stores):
    /// the "memory access efficiency" of Figs. 6-8.
    pub fn mem_access_efficiency(&self, cfg: &GpuConfig) -> f64 {
        ratio(self.bytes_requested(), self.bytes_transacted(cfg))
    }

    /// Total scalar events — the basis of the CPU cost model: arithmetic +
    /// per-lane memory accesses + branches. Shared-memory accesses count
    /// as ordinary (cache-resident) accesses on a CPU.
    pub fn scalar_events(&self) -> u64 {
        self.int_ops
            + self.flops_f32
            + self.flops_f64
            + self.lane_branches
            + self.lane_mem_accesses
            + self.shared_accesses
    }
}

fn ratio(num: u64, den: u64) -> f64 {
    // den == 0 with num > 0 is reachable: with the L2 model enabled a
    // fully cache-resident access pattern performs zero DRAM transactions
    // while still requesting bytes. Saturate to perfect efficiency rather
    // than emitting a non-finite value that would poison JSON reports.
    let r = if den == 0 {
        1.0
    } else {
        num as f64 / den as f64
    };
    debug_assert!(r.is_finite(), "ratio({num}, {den}) must be finite");
    r
}

/// A compact bundle of the derived metrics the paper plots, for report
/// tables.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DerivedMetrics {
    /// Branch efficiency in [0, 1].
    pub branch_efficiency: f64,
    /// Global-load efficiency in [0, 1].
    pub gld_efficiency: f64,
    /// Global-store efficiency in [0, 1].
    pub gst_efficiency: f64,
    /// Memory access efficiency in [0, 1] (can exceed 1 only if broadcast
    /// reads alias, which MoG never does).
    pub mem_access_efficiency: f64,
    /// DRAM store transactions.
    pub store_transactions: u64,
    /// DRAM total transactions.
    pub total_transactions: u64,
    /// Branch slots executed.
    pub branch_slots: u64,
}

impl DerivedMetrics {
    /// Computes the derived metrics from raw counters.
    pub fn from_stats(stats: &KernelStats, cfg: &GpuConfig) -> Self {
        DerivedMetrics {
            branch_efficiency: stats.branch_efficiency(),
            gld_efficiency: stats.gld_efficiency(cfg),
            gst_efficiency: stats.gst_efficiency(cfg),
            mem_access_efficiency: stats.mem_access_efficiency(cfg),
            store_transactions: stats.store_tx(),
            total_transactions: stats.total_tx(),
            branch_slots: stats.branch_slots,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn efficiencies_stay_finite_with_zero_transactions() {
        // All-hits-in-L2 shape: bytes were requested, no DRAM transactions.
        let stats = KernelStats {
            global_load_bytes_requested: 4096,
            global_store_bytes_requested: 4096,
            ..Default::default()
        };
        let cfg = GpuConfig::default();
        assert_eq!(stats.gld_efficiency(&cfg), 1.0);
        assert_eq!(stats.gst_efficiency(&cfg), 1.0);
        assert!(stats.mem_access_efficiency(&cfg).is_finite());
        let derived = DerivedMetrics::from_stats(&stats, &cfg);
        assert!(derived.mem_access_efficiency.is_finite());
    }

    #[test]
    fn merge_adds_counters() {
        let mut a = KernelStats {
            global_load_tx: 3,
            issue_cycles: 1.5,
            ..Default::default()
        };
        let b = KernelStats {
            global_load_tx: 4,
            issue_cycles: 2.5,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.global_load_tx, 7);
        assert!((a.issue_cycles - 4.0).abs() < 1e-12);
    }

    #[test]
    fn merge_with_self_doubles_every_counter() {
        // Walks the serialized field map so the assertion covers every
        // field, present and future, without naming them: merge(self)
        // must double each counter (all seeded distinct and nonzero, so a
        // field merged from the wrong source cannot pass by accident).
        let names: Vec<String> = serde_json::to_value(&KernelStats::default())
            .unwrap()
            .as_object()
            .unwrap()
            .iter()
            .map(|(k, _)| k.clone())
            .collect();
        let v = serde_json::Value::Object(
            names
                .iter()
                .enumerate()
                .map(|(i, name)| (name.clone(), serde_json::Value::U64((i as u64 + 1) * 3)))
                .collect(),
        );
        let seed: KernelStats = serde_json::from_value(v).unwrap();
        let mut merged = seed.clone();
        merged.merge(&seed);
        let before = serde_json::to_value(&seed).unwrap();
        let after = serde_json::to_value(&merged).unwrap();
        for name in &names {
            let b = before.get(name).unwrap().as_f64().unwrap();
            let a = after.get(name).unwrap().as_f64().unwrap();
            assert!(
                (a - 2.0 * b).abs() < 1e-9,
                "field {name}: merged {a} != 2 x {b}"
            );
        }
    }

    #[test]
    fn efficiencies_degenerate_to_one_when_idle() {
        let s = KernelStats::default();
        let cfg = GpuConfig::default();
        assert_eq!(s.branch_efficiency(), 1.0);
        assert_eq!(s.mem_access_efficiency(&cfg), 1.0);
    }

    #[test]
    fn store_tx_includes_local_spills() {
        let s = KernelStats {
            global_store_tx: 10,
            local_store_tx: 5,
            ..Default::default()
        };
        assert_eq!(s.store_tx(), 15);
    }
}

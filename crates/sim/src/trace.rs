//! Trace event vocabulary and the per-lane site/occurrence bookkeeping.
//!
//! Every [`crate::kernel::ThreadCtx`] operation records an *event*
//! identified by its **site** — the `#[track_caller]` source location of
//! the call — and the lane's per-site **occurrence index** (how many times
//! this lane has executed this site). The pair `(site, occurrence)`
//! identifies one *warp slot*: the 32 lanes of a warp executing the same
//! static instruction for the same loop iteration land in the same slot,
//! which is exactly the lockstep-execution alignment a real SIMT front end
//! enforces for structured control flow.
//!
//! Divergence needs no special machinery: lanes that branch differently
//! simply execute *different* sites afterwards, producing distinct slots —
//! each of which costs full issue cycles — so divergent paths are
//! serialized in the timing model just as Fermi serializes them.

use std::hash::{BuildHasherDefault, Hasher};
use std::sync::{OnceLock, RwLock};

/// Identifies a static instruction: the address of the `#[track_caller]`
/// `Location` for the `ThreadCtx` call. `Location` statics have stable
/// addresses for the program's lifetime, so pointer identity is a sound
/// site key.
pub type Site = usize;

/// Resolved source position of a [`Site`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SiteSource {
    /// Source file path as the compiler recorded it.
    pub file: &'static str,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub column: u32,
}

impl std::fmt::Display for SiteSource {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}", self.file, self.line)
    }
}

fn site_registry() -> &'static RwLock<std::collections::HashMap<Site, SiteSource, BuildPtrHasher>> {
    static REGISTRY: OnceLock<RwLock<std::collections::HashMap<Site, SiteSource, BuildPtrHasher>>> =
        OnceLock::new();
    REGISTRY.get_or_init(Default::default)
}

/// Registers a site's source position. Called when a profiling
/// accumulator folds a site's first slot contribution, and when the
/// sanitizer ([`crate::sancheck`]) records a finding at a site; plain
/// unprofiled launches never reach the registry.
#[cold]
pub(crate) fn register_site(site: Site, loc: &'static std::panic::Location<'static>) {
    let registry = site_registry();
    if registry
        .read()
        .expect("site registry poisoned")
        .contains_key(&site)
    {
        return;
    }
    registry.write().expect("site registry poisoned").insert(
        site,
        SiteSource {
            file: loc.file(),
            line: loc.line(),
            column: loc.column(),
        },
    );
}

/// Resolves a site to its source position. Returns `None` for sites never
/// executed under an active profile (including synthetic test sites), so
/// resolution never dereferences the site value.
pub fn site_source(site: Site) -> Option<SiteSource> {
    site_registry()
        .read()
        .expect("site registry poisoned")
        .get(&site)
        .copied()
}

/// Classification of an arithmetic event, used for both issue-cost
/// weighting (Fermi FP64 runs at half rate) and FLOP accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpClass {
    /// Integer / logic / address arithmetic.
    Int,
    /// Single-precision floating point.
    F32,
    /// Double-precision floating point.
    F64,
}

/// Memory space of an access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Space {
    /// Off-chip global memory (device DRAM through L2).
    Global,
    /// Off-chip *local* memory (per-thread spill space; physically DRAM,
    /// laid out interleaved so that uniform per-lane slot accesses
    /// coalesce — faithful to Fermi).
    Local,
    /// On-chip shared memory (banked, no DRAM transactions).
    Shared,
}

/// Fast multiply-shift hasher for site pointers and slot keys. Sites are
/// `&'static Location` addresses — already well distributed — so SipHash's
/// DoS protection is pure overhead on this hot path (the performance-book
/// guidance on alternative hashers).
#[derive(Default)]
pub struct PtrHasher(u64);

impl Hasher for PtrHasher {
    #[inline]
    fn finish(&self) -> u64 {
        // Fold the high (well-mixed) bits of the product into the low bits
        // the hash table indexes with; aligned pointers otherwise collide.
        self.0 ^ (self.0 >> 32)
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        // Fibonacci-style mixing over 8-byte chunks; inputs are small keys.
        for chunk in bytes.chunks(8) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            self.0 = (self.0 ^ u64::from_le_bytes(buf)).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        }
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.0 = (self.0 ^ i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.0 = (self.0 ^ i).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.write_u64(i as u64);
    }
}

/// `BuildHasher` for [`PtrHasher`].
pub type BuildPtrHasher = BuildHasherDefault<PtrHasher>;

/// Interns [`Site`] pointers to dense small indices so the warp
/// accumulator can keep all per-site state in flat arrays instead of hash
/// maps (see [`crate::warp`]).
///
/// A kernel has a few dozen static sites, so the open-addressing table
/// stays tiny and the hot lookup is one multiply, one shift, and — for
/// well-distributed `Location` addresses — almost always a single probe.
#[derive(Debug)]
pub struct SiteInterner {
    /// Open-addressing key table; 0 marks an empty bucket (sites are
    /// `&'static Location` addresses and test constants, never null).
    keys: Vec<Site>,
    /// Dense index for the site in the same bucket of `keys`.
    dense: Vec<u32>,
    /// Dense index → site (insertion order).
    sites: Vec<Site>,
    /// Right-shift applied to the multiplied hash; `64 - log2(capacity)`.
    shift: u32,
}

impl SiteInterner {
    /// Creates an empty interner.
    pub fn new() -> Self {
        let cap = 128usize;
        SiteInterner {
            keys: vec![0; cap],
            dense: vec![0; cap],
            sites: Vec::new(),
            shift: 64 - cap.trailing_zeros(),
        }
    }

    /// Number of distinct sites interned.
    pub fn len(&self) -> usize {
        self.sites.len()
    }

    /// Whether no site has been interned yet.
    pub fn is_empty(&self) -> bool {
        self.sites.is_empty()
    }

    /// The site interned at dense index `d`.
    pub fn site(&self, d: u32) -> Site {
        self.sites[d as usize]
    }

    #[inline]
    fn bucket(&self, site: Site) -> usize {
        ((site as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) >> self.shift) as usize
    }

    /// Returns the dense index of `site`, assigning the next one on first
    /// sight.
    #[inline]
    pub fn intern(&mut self, site: Site) -> u32 {
        debug_assert_ne!(site, 0, "null site");
        let mask = self.keys.len() - 1;
        let mut b = self.bucket(site);
        loop {
            let k = self.keys[b];
            if k == site {
                return self.dense[b];
            }
            if k == 0 {
                let d = self.sites.len() as u32;
                self.sites.push(site);
                self.keys[b] = site;
                self.dense[b] = d;
                // Capacity doubles at 1/2 load so probe chains stay short.
                if self.sites.len() * 2 > self.keys.len() {
                    self.grow();
                }
                return d;
            }
            b = (b + 1) & mask;
        }
    }

    #[cold]
    fn grow(&mut self) {
        let cap = self.keys.len() * 2;
        self.keys = vec![0; cap];
        self.dense = vec![0; cap];
        self.shift = 64 - cap.trailing_zeros();
        let mask = cap - 1;
        for (d, &site) in self.sites.iter().enumerate() {
            let mut b = ((site as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) >> self.shift) as usize;
            while self.keys[b] != 0 {
                b = (b + 1) & mask;
            }
            self.keys[b] = site;
            self.dense[b] = d as u32;
        }
    }
}

impl Default for SiteInterner {
    fn default() -> Self {
        Self::new()
    }
}

/// Per-lane site → occurrence-count map, cleared at the start of each lane.
#[derive(Debug, Default)]
pub struct SiteCounters {
    map: std::collections::HashMap<Site, u32, BuildPtrHasher>,
}

impl SiteCounters {
    /// Creates an empty counter set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the occurrence index for `site` and increments it.
    #[inline]
    pub fn next(&mut self, site: Site) -> u32 {
        let c = self.map.entry(site).or_insert(0);
        let v = *c;
        *c += 1;
        v
    }

    /// Clears all counters (called when a new lane begins).
    pub fn clear(&mut self) {
        self.map.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn occurrences_increment_per_site() {
        let mut c = SiteCounters::new();
        let a = 0x1000;
        let b = 0x2000;
        assert_eq!(c.next(a), 0);
        assert_eq!(c.next(a), 1);
        assert_eq!(c.next(b), 0);
        assert_eq!(c.next(a), 2);
        c.clear();
        assert_eq!(c.next(a), 0);
    }

    #[test]
    fn ptr_hasher_distributes_aligned_pointers() {
        // Aligned pointers differ only in high-ish bits; the hash must
        // still spread them across buckets.
        use std::hash::BuildHasher;
        let bh = BuildPtrHasher::default();
        let mut buckets = [0u32; 16];
        for i in 0..1024usize {
            let p = 0x5555_0000 + i * 64;
            buckets[(bh.hash_one(p) % 16) as usize] += 1;
        }
        let max = *buckets.iter().max().unwrap();
        let min = *buckets.iter().min().unwrap();
        assert!(max < 3 * min.max(1), "poor distribution: {buckets:?}");
    }

    #[test]
    fn interner_assigns_dense_ids_in_first_sight_order() {
        let mut it = SiteInterner::new();
        assert!(it.is_empty());
        assert_eq!(it.intern(0x1000), 0);
        assert_eq!(it.intern(0x2000), 1);
        assert_eq!(it.intern(0x1000), 0);
        assert_eq!(it.intern(0x3000), 2);
        assert_eq!(it.len(), 3);
        assert_eq!(it.site(1), 0x2000);
    }

    #[test]
    fn interner_survives_growth() {
        let mut it = SiteInterner::new();
        // Far past the initial capacity, with aligned-pointer-style keys.
        for i in 0..1000usize {
            assert_eq!(it.intern(0x4000_0000 + i * 64) as usize, i);
        }
        for i in 0..1000usize {
            assert_eq!(it.intern(0x4000_0000 + i * 64) as usize, i, "stable");
            assert_eq!(it.site(i as u32), 0x4000_0000 + i * 64);
        }
        assert_eq!(it.len(), 1000);
    }

    #[test]
    fn unknown_sites_resolve_to_none() {
        // Synthetic site values (as the warp tests use) must not resolve —
        // and in particular must not be dereferenced.
        assert_eq!(site_source(0x1000), None);
        assert_eq!(site_source(0), None);
    }

    #[track_caller]
    fn here() -> (&'static std::panic::Location<'static>, Site) {
        let loc = std::panic::Location::caller();
        (loc, loc as *const _ as usize)
    }

    #[test]
    fn registration_resolves_source_position() {
        let (loc, site) = here();
        // This call site is unique to this test, so it cannot have been
        // registered by anything else.
        assert_eq!(site_source(site), None);
        register_site(site, loc);
        register_site(site, loc); // idempotent
        let src = site_source(site).expect("registered site must resolve");
        assert!(src.file.ends_with("trace.rs"), "file = {}", src.file);
        assert!(src.line > 0);
        assert_eq!(format!("{src}"), format!("{}:{}", src.file, src.line));
    }

    #[test]
    fn location_sites_are_stable() {
        // Repeated executions of one call site share a Location; a
        // different call site differs.
        let mut sites = Vec::new();
        for _ in 0..2 {
            sites.push(here().1);
        }
        let c = here().1;
        assert_eq!(sites[0], sites[1]);
        assert_ne!(sites[0], c);
    }
}

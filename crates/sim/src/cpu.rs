//! CPU reference cost model (Intel Xeon E5-2620).
//!
//! The paper's speedups are ratios against wall-clock times on a machine we
//! do not have. To keep the ratios meaningful, the CPU side is modelled
//! from the *same* scalar event counts the GPU kernels generate: a serial
//! run performs exactly the per-lane work of the traced kernel, so
//!
//! ```text
//! t_serial = (events * cycles_per_event
//!             + branches * mispredict_rate * branch_miss_penalty
//!             + f64_flops * f64_extra_cycles) / clock
//!            + bytes_touched / dram_bw
//! ```
//!
//! `cycles_per_event` is calibrated once so the serial double-precision
//! 3-Gaussian MoG lands on the paper's measured 227.3 s / 450 full-HD
//! frames; all other CPU numbers (SIMD, multi-threaded, single-precision)
//! then follow from the model. Calibration is asserted by
//! `exp_baseline` and the integration tests.

use crate::config::CpuConfig;
use crate::stats::KernelStats;
use serde::{Deserialize, Serialize};

/// CPU time estimates for the three builds the paper measures.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CpuTimes {
    /// Single-threaded `-O3` build — the paper's reference point.
    pub serial: f64,
    /// "Customized for SIMD" build.
    pub simd: f64,
    /// 8-thread OpenMP build.
    pub multi_threaded: f64,
}

/// The CPU cost model.
#[derive(Debug, Clone)]
pub struct CpuModel {
    cfg: CpuConfig,
}

impl CpuModel {
    /// Creates a model over the given CPU description.
    pub fn new(cfg: CpuConfig) -> Self {
        CpuModel { cfg }
    }

    /// The underlying configuration.
    pub fn config(&self) -> &CpuConfig {
        &self.cfg
    }

    /// Serial single-thread time for the workload whose scalar event
    /// counts are `stats`.
    pub fn serial_time(&self, stats: &KernelStats) -> f64 {
        let c = &self.cfg;
        let events = stats.scalar_events() as f64;
        let cycles = events * c.cycles_per_event
            + stats.lane_branches as f64 * c.mispredict_rate * c.branch_miss_penalty
            + stats.flops_f64 as f64 * c.f64_extra_cycles;
        cycles / c.clock_hz + stats.bytes_requested() as f64 / c.dram_bw
    }

    /// SIMD-customized build time.
    pub fn simd_time(&self, stats: &KernelStats) -> f64 {
        self.serial_time(stats) / (self.cfg.simd_width as f64 * self.cfg.simd_efficiency)
    }

    /// Multi-threaded (OpenMP-style) build time.
    pub fn multi_threaded_time(&self, stats: &KernelStats) -> f64 {
        self.serial_time(stats) / (self.cfg.threads as f64 * self.cfg.mt_efficiency)
    }

    /// All three CPU estimates at once.
    pub fn times(&self, stats: &KernelStats) -> CpuTimes {
        CpuTimes {
            serial: self.serial_time(stats),
            simd: self.simd_time(stats),
            multi_threaded: self.multi_threaded_time(stats),
        }
    }
}

impl Default for CpuModel {
    fn default() -> Self {
        CpuModel::new(CpuConfig::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats() -> KernelStats {
        KernelStats {
            int_ops: 50_000_000,
            flops_f64: 100_000_000,
            lane_branches: 20_000_000,
            lane_mem_accesses: 30_000_000,
            global_load_bytes_requested: 150_000_000,
            global_store_bytes_requested: 150_000_000,
            ..Default::default()
        }
    }

    #[test]
    fn serial_scales_linearly_with_work() {
        let m = CpuModel::default();
        let s1 = stats();
        let mut s2 = stats();
        s2.merge(&stats());
        let t1 = m.serial_time(&s1);
        let t2 = m.serial_time(&s2);
        assert!((t2 / t1 - 2.0).abs() < 1e-9);
    }

    #[test]
    fn simd_gain_matches_paper_shape() {
        // Paper: 227.3 s -> 163 s, a 1.39x gain.
        let m = CpuModel::default();
        let s = stats();
        let gain = m.serial_time(&s) / m.simd_time(&s);
        assert!((gain - 1.40).abs() < 0.02, "gain = {gain}");
    }

    #[test]
    fn mt_gain_matches_paper_shape() {
        // Paper: 227.3 s -> 99.8 s, a 2.28x gain on 8 threads.
        let m = CpuModel::default();
        let s = stats();
        let gain = m.serial_time(&s) / m.multi_threaded_time(&s);
        assert!((gain - 2.28).abs() < 0.01, "gain = {gain}");
    }

    #[test]
    fn f64_work_is_slower_than_f32() {
        let m = CpuModel::default();
        let s64 = stats();
        let mut s32 = stats();
        s32.flops_f32 = s32.flops_f64;
        s32.flops_f64 = 0;
        s32.global_load_bytes_requested /= 2;
        s32.global_store_bytes_requested /= 2;
        assert!(m.serial_time(&s64) > m.serial_time(&s32));
    }

    #[test]
    fn empty_workload_is_free() {
        let m = CpuModel::default();
        assert_eq!(m.serial_time(&KernelStats::default()), 0.0);
    }
}

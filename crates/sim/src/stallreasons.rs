//! Warp-state stall-reason decomposition of the analytic timing model.
//!
//! [`crate::timing::kernel_time`] reports *how long* a kernel takes and
//! which roofline term binds; this module explains *where that time
//! goes*, in the taxonomy Nsight Compute's warp-state sampling uses:
//!
//! * **execute issue** — warp-instruction issue slots doing useful work,
//! * **branch divergence** — re-issued branch slots whose lanes disagreed
//!   (the serialized bodies of divergent regions remain attributed to the
//!   sites that execute them, which the hotspot table already exposes),
//! * **shared replay** — shared-memory bank-conflict replays,
//! * **barrier wait** — `__syncthreads()` slots,
//! * **memory dependency** — exposed DRAM stall when the kernel is
//!   bandwidth-bound: wall time beyond what instruction issue explains,
//! * **latency exposure** — exposed DRAM stall when the kernel is
//!   latency-bound, i.e. the resident warps ([`Occupancy::limiter`] says
//!   why there are no more) cannot cover the round-trip latency.
//!
//! The decomposition is *exact by construction* against the timing model:
//! the issue-side buckets partition `t_issue` (each counter class adds
//! exactly 1.0 weighted cycle per slot or replay, so subtracting them
//! from `issue_cycles` leaves the useful-issue remainder), and the
//! exposed-stall bucket is `total - t_issue`, which the three-way max
//! guarantees is non-negative. Per-site rows distribute each bucket by
//! that site's own counters (its issue-cycle composition; its share of
//! DRAM transactions for the exposed stall), so summing the rows
//! reproduces the kernel total to floating-point tolerance — the same
//! conservation identity the telemetry integrals satisfy.
//!
//! DMA/overlap starvation is a *pipeline*-level reason — the compute
//! engine idling between kernels while transfers run — measured from the
//! scheduled frame spans with [`dma_starvation`]. It is reported beside
//! the kernel decomposition, not inside it, because no kernel site is
//! executing while the engine starves.

use crate::dma::FrameSpans;
use crate::occupancy::{Limiter, Occupancy};
use crate::profile::HotspotRow;
use crate::stats::KernelStats;
use crate::timing::{Bound, KernelTiming};
use serde::{Deserialize, Serialize};

/// Seconds of kernel wall time attributed to each stall reason.
///
/// The five kernel-level fields sum to the modelled kernel time
/// ([`KernelTiming::total`]); see the module docs for the identity.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct StallBreakdown {
    /// Useful warp-instruction issue.
    pub execute_issue: f64,
    /// Divergent branch slots (re-issued branch instructions).
    pub branch_divergence: f64,
    /// Shared-memory bank-conflict replays.
    pub shared_replay: f64,
    /// Barrier (`sync`) slots.
    pub barrier_wait: f64,
    /// Exposed DRAM stall while bandwidth-bound.
    pub memory_dependency: f64,
    /// Exposed DRAM stall while latency-bound (occupancy-limited).
    pub latency_exposure: f64,
    /// What capped the resident warps when `latency_exposure > 0`.
    pub latency_limiter: Option<Limiter>,
}

impl StallBreakdown {
    /// Sum of all reason buckets — equals the modelled kernel seconds.
    pub fn sum(&self) -> f64 {
        self.execute_issue
            + self.branch_divergence
            + self.shared_replay
            + self.barrier_wait
            + self.memory_dependency
            + self.latency_exposure
    }

    /// `(name, seconds)` of every bucket, in declaration order.
    pub fn entries(&self) -> [(&'static str, f64); 6] {
        [
            ("execute_issue", self.execute_issue),
            ("branch_divergence", self.branch_divergence),
            ("shared_replay", self.shared_replay),
            ("barrier_wait", self.barrier_wait),
            ("memory_dependency", self.memory_dependency),
            ("latency_exposure", self.latency_exposure),
        ]
    }

    /// The largest bucket (declaration order breaks exact ties).
    pub fn dominant(&self) -> (&'static str, f64) {
        self.entries()
            .into_iter()
            .fold(("execute_issue", f64::MIN), |best, cand| {
                if cand.1 > best.1 {
                    cand
                } else {
                    best
                }
            })
    }
}

/// One source site's stall decomposition.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SiteStallRow {
    /// `file:line`, when resolved during a profiled launch.
    pub source: Option<String>,
    /// Seconds per reason at this site.
    pub stalls: StallBreakdown,
}

/// Splits the issue-cycle composition of one counter set. Returns
/// `(execute, divergence, replay, barrier)` in weighted issue cycles.
fn issue_split(
    issue_cycles: f64,
    divergent: u64,
    replays: u64,
    syncs: u64,
) -> (f64, f64, f64, f64) {
    let mut div = divergent as f64;
    let mut rep = replays as f64;
    let mut syn = syncs as f64;
    // Each class contributed exactly 1.0 weighted cycle per event, so the
    // remainder is the useful issue. Traced kernels satisfy
    // `div + rep + syn <= issue_cycles` by construction; hand-built
    // counter sets may not, so renormalize rather than let the buckets
    // overrun the issue time and break the conservation identity.
    let stall = div + rep + syn;
    if stall > issue_cycles && stall > 0.0 {
        let shrink = issue_cycles.max(0.0) / stall;
        div *= shrink;
        rep *= shrink;
        syn *= shrink;
    }
    let exec = (issue_cycles - div - rep - syn).max(0.0);
    (exec, div, rep, syn)
}

/// Decomposes one kernel's modelled time into stall reasons.
pub fn kernel_stalls(
    stats: &KernelStats,
    timing: &KernelTiming,
    occ: &Occupancy,
) -> StallBreakdown {
    let (exec, div, rep, syn) = issue_split(
        stats.issue_cycles,
        stats.divergent_branch_slots,
        stats.shared_replays,
        stats.sync_slots,
    );
    // Seconds per weighted issue cycle: the issue bound spread back over
    // its own cycles, so the four issue buckets sum to exactly `t_issue`.
    let scale = if stats.issue_cycles > 0.0 {
        timing.t_issue / stats.issue_cycles
    } else {
        0.0
    };
    // The three-way max guarantees total >= t_issue; the excess is DRAM
    // stall the issue stream cannot cover.
    let exposed = (timing.total - timing.t_issue).max(0.0);
    let (memory_dependency, latency_exposure, latency_limiter) = match timing.bound {
        Bound::Bandwidth => (exposed, 0.0, None),
        Bound::Latency => (0.0, exposed, Some(occ.limiter)),
        Bound::Issue => (0.0, 0.0, None),
    };
    StallBreakdown {
        execute_issue: exec * scale,
        branch_divergence: div * scale,
        shared_replay: rep * scale,
        barrier_wait: syn * scale,
        memory_dependency,
        latency_exposure,
        latency_limiter,
    }
}

/// Distributes the kernel decomposition over its source sites: issue-side
/// buckets by each site's own issue-cycle composition, the exposed DRAM
/// stall by each site's share of the transaction count. Summing the rows
/// reproduces [`kernel_stalls`] to fp tolerance because the per-site
/// counters sum to the kernel counters (asserted in the warp tests).
pub fn site_stalls(
    rows: &[HotspotRow],
    stats: &KernelStats,
    timing: &KernelTiming,
    occ: &Occupancy,
) -> Vec<SiteStallRow> {
    let scale = if stats.issue_cycles > 0.0 {
        timing.t_issue / stats.issue_cycles
    } else {
        0.0
    };
    let exposed = (timing.total - timing.t_issue).max(0.0);
    let total_tx = stats.total_tx();
    rows.iter()
        .map(|row| {
            let s = &row.stats;
            let (exec, div, rep, syn) = issue_split(
                s.issue_cycles,
                s.divergent_branch_slots,
                s.shared_replays,
                s.sync_slots,
            );
            let tx_share = if total_tx == 0 {
                0.0
            } else {
                s.transactions as f64 / total_tx as f64
            };
            let site_exposed = exposed * tx_share;
            let (memory_dependency, latency_exposure, latency_limiter) = match timing.bound {
                Bound::Bandwidth => (site_exposed, 0.0, None),
                Bound::Latency => (0.0, site_exposed, Some(occ.limiter)),
                Bound::Issue => (0.0, 0.0, None),
            };
            SiteStallRow {
                source: row.source.clone(),
                stalls: StallBreakdown {
                    execute_issue: exec * scale,
                    branch_divergence: div * scale,
                    shared_replay: rep * scale,
                    barrier_wait: syn * scale,
                    memory_dependency,
                    latency_exposure,
                    latency_limiter,
                },
            }
        })
        .collect()
}

/// Compute-engine idle seconds up to the last kernel's completion: the
/// time the SMs starve while DMA runs (large under [`Sequential`]
/// transfers, near zero once double buffering overlaps them).
///
/// [`Sequential`]: crate::dma::OverlapMode::Sequential
pub fn dma_starvation(schedule: &[FrameSpans]) -> f64 {
    let Some(last) = schedule.last() else {
        return 0.0;
    };
    let busy: f64 = schedule.iter().map(|f| f.kernel.dur).sum();
    (last.kernel.end() - busy).max(0.0)
}

/// Renders per-site stall rows as an aligned text table (milliseconds).
pub fn render_site_stalls(rows: &[SiteStallRow], n: usize) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<52} {:>10} {:>10} {:>10} {:>10} {:>10} {:>10}\n",
        "source", "exec_ms", "diverge", "replay", "barrier", "mem_dep", "latency"
    ));
    for row in rows.iter().take(n) {
        let source = row.source.as_deref().unwrap_or("<unresolved>");
        let shown = if source.len() > 52 {
            &source[source.len() - 52..]
        } else {
            source
        };
        let s = &row.stalls;
        out.push_str(&format!(
            "{:<52} {:>10.4} {:>10.4} {:>10.4} {:>10.4} {:>10.4} {:>10.4}\n",
            shown,
            s.execute_issue * 1e3,
            s.branch_divergence * 1e3,
            s.shared_replay * 1e3,
            s.barrier_wait * 1e3,
            s.memory_dependency * 1e3,
            s.latency_exposure * 1e3,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::GpuConfig;
    use crate::dma::Span;
    use crate::profile::SiteStats;
    use crate::timing::kernel_time;

    fn occ() -> Occupancy {
        Occupancy {
            resident_blocks: 8,
            resident_warps: 32,
            resident_threads: 1024,
            occupancy: 32.0 / 48.0,
            limiter: Limiter::Registers,
        }
    }

    fn stats() -> KernelStats {
        KernelStats {
            issue_cycles: 10_000.0,
            warps: 100_000,
            divergent_branch_slots: 1_200,
            shared_replays: 300,
            sync_slots: 500,
            global_load_tx: 60_000,
            global_store_tx: 20_000,
            ..Default::default()
        }
    }

    #[test]
    fn kernel_buckets_sum_to_modelled_time() {
        let s = stats();
        let o = occ();
        let cfg = GpuConfig::default();
        let t = kernel_time(&s, &o, &cfg);
        let b = kernel_stalls(&s, &t, &o);
        assert!((b.sum() - t.total).abs() / t.total < 1e-12);
        // Memory-side stall carries the limiter label only when latency
        // binds.
        match t.bound {
            Bound::Latency => assert_eq!(b.latency_limiter, Some(Limiter::Registers)),
            _ => assert_eq!(b.latency_limiter, None),
        }
    }

    #[test]
    fn issue_bound_kernel_has_no_exposed_stall() {
        let mut s = stats();
        s.issue_cycles = 1e9;
        let o = occ();
        let cfg = GpuConfig::default();
        let t = kernel_time(&s, &o, &cfg);
        assert_eq!(t.bound, Bound::Issue);
        let b = kernel_stalls(&s, &t, &o);
        assert_eq!(b.memory_dependency, 0.0);
        assert_eq!(b.latency_exposure, 0.0);
        assert!((b.sum() - t.t_issue).abs() / t.t_issue < 1e-12);
    }

    #[test]
    fn site_rows_conserve_the_kernel_breakdown() {
        let s = stats();
        let o = occ();
        let cfg = GpuConfig::default();
        let t = kernel_time(&s, &o, &cfg);
        // Split the kernel counters over three synthetic sites.
        let rows = vec![
            HotspotRow {
                source: Some("a.rs:1".into()),
                stats: SiteStats {
                    issue_cycles: 4_000.0,
                    divergent_branch_slots: 1_200,
                    transactions: 10_000,
                    ..Default::default()
                },
            },
            HotspotRow {
                source: Some("b.rs:2".into()),
                stats: SiteStats {
                    issue_cycles: 5_500.0,
                    shared_replays: 300,
                    transactions: 70_000,
                    ..Default::default()
                },
            },
            HotspotRow {
                source: Some("c.rs:3".into()),
                stats: SiteStats {
                    issue_cycles: 500.0,
                    sync_slots: 500,
                    ..Default::default()
                },
            },
        ];
        let site_rows = site_stalls(&rows, &s, &t, &o);
        let total: f64 = site_rows.iter().map(|r| r.stalls.sum()).sum();
        assert!(
            (total - t.total).abs() / t.total < 1e-9,
            "site stalls {total} != kernel time {}",
            t.total
        );
        // Render path stays total-width stable and never panics.
        assert!(render_site_stalls(&site_rows, 10).contains("a.rs:1"));
    }

    #[test]
    fn zero_stats_decompose_to_zero() {
        let s = KernelStats::default();
        let o = occ();
        let t = kernel_time(&s, &o, &GpuConfig::default());
        let b = kernel_stalls(&s, &t, &o);
        assert_eq!(b.sum(), 0.0);
        assert_eq!(site_stalls(&[], &s, &t, &o).len(), 0);
    }

    #[test]
    fn starvation_measures_compute_engine_gaps() {
        let f = |h0: f64, k0: f64, d0: f64| FrameSpans {
            h2d: Span {
                start: h0,
                dur: 1.0,
            },
            kernel: Span {
                start: k0,
                dur: 2.0,
            },
            d2h: Span {
                start: d0,
                dur: 1.0,
            },
        };
        // Sequential: kernel waits out both transfers every frame.
        let seq = vec![f(0.0, 1.0, 3.0), f(4.0, 5.0, 7.0)];
        assert!((dma_starvation(&seq) - 3.0).abs() < 1e-12);
        // Fully overlapped: back-to-back kernels never starve.
        let ovl = vec![f(0.0, 1.0, 3.0), f(1.0, 3.0, 5.0)];
        assert!((dma_starvation(&ovl) - 1.0).abs() < 1e-12);
        assert_eq!(dma_starvation(&[]), 0.0);
    }
}

//! Serving-path observability: SLO latency histograms, windowed live
//! metrics, and a structured event log over the multi-stream schedule.
//!
//! The telemetry of [`crate::telemetry`] answers *"what did the hardware
//! do"*; this module answers *"what did the streams experience"* — the
//! question a fleet operator asks while a long run is in flight. Three
//! pieces:
//!
//! * **Mergeable log-bucketed latency histograms.** Every histogram uses
//!   one fixed bucket scheme ([`bucket_bound`]: log-spaced, 4 buckets per
//!   decade from 1 µs to 100 s, plus a `+Inf` overflow bucket), so
//!   histograms from different streams / devices / windows merge by plain
//!   elementwise addition — the property the coming multi-device fleet
//!   needs to aggregate per-device scrapes. `_sum` and `_count` are exact;
//!   percentiles reconstructed from the buckets are within one bucket
//!   width of the exact rank statistic ([`LatencyHistogram::quantile`]).
//! * **Per-stream SLO accounting.** A [`SloConfig`] names a frame
//!   deadline and an error budget (allowed violation fraction). Frames
//!   whose end-to-end latency exceeds the deadline count as violations;
//!   a stream whose windowed violation fraction stays within budget is
//!   *served at SLO*, and the windowed **burn rate** (violation fraction
//!   over budget) says how fast the budget is being spent.
//! * **Windowed snapshots on the schedule clock.** The run's makespan is
//!   cut into fixed windows; each [`ServingSnapshot`] carries the
//!   *cumulative* per-stream counters and histograms up to its window end
//!   (monotone across snapshots, so a Prometheus scraper sees proper
//!   counters) plus the *windowed* gauges (burn rate, streams-at-SLO).
//!   The final snapshot equals the whole-run totals.
//!
//! Latency is recorded twice per frame: **frame latency** (device
//! sojourn: upload start to download end — what the bounded-buffer
//! scheduler controls) and **end-to-end latency** (camera arrival to
//! download end — what the SLO judges; for offline streams, whose frames
//! all "arrive" at t=0, arrival is taken as admission so the two agree).
//!
//! Every metric carries `device` and `stream` labels now, so the
//! ROADMAP's heterogeneous fleet only adds label *values*, not plumbing.

use crate::streams::StreamSchedule;
use crate::telemetry::{escape_label, PipelineTelemetry};
use serde::{DeError, Deserialize, Serialize, Value};

/// Schema version of [`ServingReport`] and the JSONL event log.
pub const SERVING_SCHEMA: u32 = 1;

// ---- fixed log bucket scheme ----

/// Log buckets per decade of the fixed latency bucket scheme.
pub const BUCKETS_PER_DECADE: usize = 4;
/// Smallest finite bucket boundary (seconds).
pub const MIN_BUCKET_BOUND: f64 = 1e-6;
/// Decades covered by finite boundaries (1 µs .. 100 s).
pub const BUCKET_DECADES: usize = 8;
/// Number of finite bucket boundaries.
pub const NUM_BOUNDS: usize = BUCKETS_PER_DECADE * BUCKET_DECADES + 1;

/// The `i`-th finite bucket boundary (inclusive upper edge, seconds):
/// `1e-6 * 10^(i/4)` for `i in 0..NUM_BOUNDS`. One more bucket above the
/// last boundary catches overflow (`+Inf`).
pub fn bucket_bound(i: usize) -> f64 {
    debug_assert!(i < NUM_BOUNDS);
    MIN_BUCKET_BOUND * 10f64.powf(i as f64 / BUCKETS_PER_DECADE as f64)
}

/// Width of bucket `i` (distance to the previous boundary; bucket 0
/// spans from 0). For the overflow bucket (`i == NUM_BOUNDS`) the width
/// is unbounded and `f64::INFINITY` is returned.
pub fn bucket_width(i: usize) -> f64 {
    if i >= NUM_BOUNDS {
        f64::INFINITY
    } else if i == 0 {
        bucket_bound(0)
    } else {
        bucket_bound(i) - bucket_bound(i - 1)
    }
}

/// A latency histogram over the fixed log bucket scheme.
///
/// `counts[i]` counts samples `v` with
/// `bucket_bound(i-1) < v <= bucket_bound(i)` (bucket 0 spans from 0);
/// `counts[NUM_BOUNDS]` is the overflow (`+Inf`) bucket. `sum` and
/// `count` are exact over the observed samples, so `_sum`/`_count` in
/// the Prometheus exposition are not approximations.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LatencyHistogram {
    /// Per-bucket sample counts, `NUM_BOUNDS + 1` entries.
    pub counts: Vec<u64>,
    /// Exact sum of observed samples (seconds).
    pub sum: f64,
    /// Exact number of observed samples.
    pub count: u64,
    /// Smallest observed sample (0 when empty).
    pub min: f64,
    /// Largest observed sample (0 when empty).
    pub max: f64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        LatencyHistogram {
            counts: vec![0; NUM_BOUNDS + 1],
            sum: 0.0,
            count: 0,
            min: 0.0,
            max: 0.0,
        }
    }

    /// Index of the bucket a sample falls into.
    fn bucket_of(v: f64) -> usize {
        // A linear scan over 33 boundaries; observation is off the hot
        // path (once per frame of the *schedule*, not per pixel).
        (0..NUM_BOUNDS)
            .find(|&i| v <= bucket_bound(i))
            .unwrap_or(NUM_BOUNDS)
    }

    /// Records one latency sample (negative samples clamp to 0).
    pub fn observe(&mut self, v: f64) {
        let v = v.max(0.0);
        self.counts[Self::bucket_of(v)] += 1;
        self.sum += v;
        if self.count == 0 {
            self.min = v;
            self.max = v;
        } else {
            self.min = self.min.min(v);
            self.max = self.max.max(v);
        }
        self.count += 1;
    }

    /// Builds a histogram from a sample slice.
    pub fn from_samples(samples: &[f64]) -> Self {
        let mut h = Self::new();
        for &s in samples {
            h.observe(s);
        }
        h
    }

    /// Merges `other` into `self`. Exact because every histogram shares
    /// the fixed bucket scheme: merging per-stream histograms equals the
    /// histogram of the concatenated samples.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.sum += other.sum;
        if other.count > 0 {
            if self.count == 0 {
                self.min = other.min;
                self.max = other.max;
            } else {
                self.min = self.min.min(other.min);
                self.max = self.max.max(other.max);
            }
        }
        self.count += other.count;
    }

    /// Mean of the observed samples (exact; 0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count > 0 {
            self.sum / self.count as f64
        } else {
            0.0
        }
    }

    /// Cumulative count through bucket `i` (the Prometheus `le` value of
    /// `bucket_bound(i)`; `i == NUM_BOUNDS` gives the `+Inf` bucket,
    /// which always equals `count`).
    pub fn cumulative(&self, i: usize) -> u64 {
        self.counts[..=i.min(NUM_BOUNDS)].iter().sum()
    }

    /// Bucket index holding the `q`-quantile sample (nearest-rank), or
    /// `None` when empty.
    fn quantile_bucket(&self, q: f64) -> Option<usize> {
        if self.count == 0 {
            return None;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Some(i);
            }
        }
        unreachable!("cumulative count reaches self.count");
    }

    /// The `q`-quantile reconstructed from the buckets: the upper edge of
    /// the bucket holding the nearest-rank sample, so the estimate is
    /// within one [`bucket_width`] above the exact rank statistic. For
    /// the overflow bucket the observed `max` is returned.
    ///
    /// An empty histogram returns `NaN` — a deliberate sentinel, not a
    /// fallthrough: a device whose streams were all shed has no latency
    /// samples, and the old `0.0` read as a perfect p99 in merged fleet
    /// reports. `NaN` is unmistakably "no data" (check with
    /// [`f64::is_nan`]).
    pub fn quantile(&self, q: f64) -> f64 {
        match self.quantile_bucket(q) {
            None => f64::NAN,
            Some(i) if i >= NUM_BOUNDS => self.max,
            Some(i) => bucket_bound(i),
        }
    }

    /// Lower/upper bounds bracketing the exact `q`-quantile: the edges of
    /// the bucket holding the nearest-rank sample. `(NaN, NaN)` when
    /// empty — the same no-data sentinel as [`Self::quantile`].
    pub fn quantile_bounds(&self, q: f64) -> (f64, f64) {
        match self.quantile_bucket(q) {
            None => (f64::NAN, f64::NAN),
            Some(0) => (0.0, bucket_bound(0)),
            Some(i) if i >= NUM_BOUNDS => (bucket_bound(NUM_BOUNDS - 1), self.max),
            Some(i) => (bucket_bound(i - 1), bucket_bound(i)),
        }
    }
}

// ---- SLO configuration ----

/// A per-stream service-level objective: a frame deadline plus the
/// violation fraction the stream is allowed to spend (its error budget).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SloConfig {
    /// End-to-end frame deadline in seconds (default 40 ms — the
    /// paper's 25 fps real-time bar).
    pub deadline_s: f64,
    /// Allowed violation fraction; a stream whose windowed violation
    /// fraction stays at or below this is *served at SLO*.
    pub error_budget: f64,
}

impl Default for SloConfig {
    fn default() -> Self {
        SloConfig {
            deadline_s: 0.040,
            error_budget: 0.01,
        }
    }
}

// ---- structured event log ----

/// What happened to a frame on the serving path. Serializes as a
/// snake_case string (`"frame_admitted"`, …) — the frozen wire names of
/// the event-log schema.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// The frame's upload began (the scheduler admitted it to the device).
    FrameAdmitted,
    /// The frame's kernel launched on the compute engine.
    Launch,
    /// The frame's download finished; `latency_s`/`e2e_s` are set.
    FrameCompleted,
    /// The frame was shed before admission (reserved for the fleet
    /// dispatcher's admission controller; never emitted today).
    FrameDropped,
    /// The completed frame's end-to-end latency exceeded the deadline.
    SloViolation,
}

impl EventKind {
    /// The frozen wire name of this event kind.
    pub fn wire_name(&self) -> &'static str {
        match self {
            EventKind::FrameAdmitted => "frame_admitted",
            EventKind::Launch => "launch",
            EventKind::FrameCompleted => "frame_completed",
            EventKind::FrameDropped => "frame_dropped",
            EventKind::SloViolation => "slo_violation",
        }
    }
}

impl Serialize for EventKind {
    fn to_json_value(&self) -> Value {
        Value::String(self.wire_name().to_string())
    }
}

impl Deserialize for EventKind {
    fn from_json_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::String(s) => match s.as_str() {
                "frame_admitted" => Ok(EventKind::FrameAdmitted),
                "launch" => Ok(EventKind::Launch),
                "frame_completed" => Ok(EventKind::FrameCompleted),
                "frame_dropped" => Ok(EventKind::FrameDropped),
                "slo_violation" => Ok(EventKind::SloViolation),
                other => Err(DeError::new(format!("unknown event kind {other:?}"))),
            },
            other => Err(DeError::new(format!(
                "expected event string, got {other:?}"
            ))),
        }
    }
}

/// One record of the stable-schema JSONL event log. Field order and
/// names are frozen ([`SERVING_SCHEMA`]); optional fields are omitted
/// when absent rather than emitted as null.
#[derive(Debug, Clone, PartialEq)]
pub struct ServingEvent {
    /// Seconds on the schedule clock.
    pub t_s: f64,
    /// Event type.
    pub event: EventKind,
    /// Device label (e.g. the simulated GPU's name).
    pub device: String,
    /// Stream index on the device.
    pub stream: usize,
    /// Frame index within the stream.
    pub frame: usize,
    /// Attribution site — the pipeline/kernel this frame ran through.
    pub site: String,
    /// Device sojourn latency (set on completion/violation events).
    pub latency_s: Option<f64>,
    /// End-to-end latency (set on completion/violation events).
    pub e2e_s: Option<f64>,
    /// The deadline judged against (set on violation events).
    pub deadline_s: Option<f64>,
}

impl Serialize for ServingEvent {
    fn to_json_value(&self) -> Value {
        let mut obj = vec![
            ("t_s".to_string(), Value::F64(self.t_s)),
            ("event".to_string(), self.event.to_json_value()),
            ("device".to_string(), Value::String(self.device.clone())),
            ("stream".to_string(), Value::U64(self.stream as u64)),
            ("frame".to_string(), Value::U64(self.frame as u64)),
            ("site".to_string(), Value::String(self.site.clone())),
        ];
        for (key, v) in [
            ("latency_s", self.latency_s),
            ("e2e_s", self.e2e_s),
            ("deadline_s", self.deadline_s),
        ] {
            if let Some(v) = v {
                obj.push((key.to_string(), Value::F64(v)));
            }
        }
        Value::Object(obj)
    }
}

impl Deserialize for ServingEvent {
    fn from_json_value(v: &Value) -> Result<Self, DeError> {
        let obj = match v {
            Value::Object(m) => m,
            other => Err(DeError::new(format!(
                "expected event object, got {other:?}"
            )))?,
        };
        let field = |key: &str| serde::__get_field(obj, "ServingEvent", key);
        let opt = |key: &str| -> Result<Option<f64>, DeError> {
            obj.iter()
                .find(|(k, _)| k == key)
                .map(|(_, v)| f64::from_json_value(v))
                .transpose()
        };
        Ok(ServingEvent {
            t_s: f64::from_json_value(field("t_s")?)?,
            event: EventKind::from_json_value(field("event")?)?,
            device: String::from_json_value(field("device")?)?,
            stream: usize::from_json_value(field("stream")?)?,
            frame: usize::from_json_value(field("frame")?)?,
            site: String::from_json_value(field("site")?)?,
            latency_s: opt("latency_s")?,
            e2e_s: opt("e2e_s")?,
            deadline_s: opt("deadline_s")?,
        })
    }
}

/// Renders events as JSON Lines: one canonical JSON object per line.
pub fn events_jsonl(events: &[ServingEvent]) -> String {
    let mut out = String::new();
    for e in events {
        out.push_str(&serde_json::to_string_canonical(e).expect("serializable event"));
        out.push('\n');
    }
    out
}

/// Streams [`ServingEvent`]s to a JSONL file through a [`BufWriter`]
/// instead of materializing the whole run's event string in memory for
/// one `std::fs::write` at the end.
///
/// Lines are buffered, so a single `write_event` is one formatted line
/// plus an amortized syscall; the writer flushes on [`Drop`], so a run
/// that terminates early (an error propagated past the writer) still
/// leaves a complete, parseable file containing every event recorded
/// before the termination point.
///
/// [`BufWriter`]: std::io::BufWriter
#[derive(Debug)]
pub struct EventLogWriter {
    out: std::io::BufWriter<std::fs::File>,
}

impl EventLogWriter {
    /// Creates (or truncates) `path` behind a buffered writer.
    pub fn create(path: &std::path::Path) -> std::io::Result<Self> {
        Ok(EventLogWriter {
            out: std::io::BufWriter::new(std::fs::File::create(path)?),
        })
    }

    /// Appends one event as one canonical-JSON line.
    pub fn write_event(&mut self, event: &ServingEvent) -> std::io::Result<()> {
        use std::io::Write;
        let line = serde_json::to_string_canonical(event).expect("serializable event");
        self.out.write_all(line.as_bytes())?;
        self.out.write_all(b"\n")
    }

    /// Appends a batch of events, one line each.
    pub fn write_events(&mut self, events: &[ServingEvent]) -> std::io::Result<()> {
        for e in events {
            self.write_event(e)?;
        }
        Ok(())
    }

    /// Forces buffered lines to the file (also happens on drop).
    pub fn flush(&mut self) -> std::io::Result<()> {
        use std::io::Write;
        self.out.flush()
    }
}

impl Drop for EventLogWriter {
    fn drop(&mut self) {
        // BufWriter flushes on drop too, but only best-effort inside its
        // own Drop; doing it here keeps the guarantee local to this type
        // (and documented) rather than inherited.
        let _ = self.flush();
    }
}

// ---- per-stream accounting, snapshots, and the report ----

/// Exact latency percentiles (nearest-rank over the true samples, not
/// reconstructed from buckets).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LatencyPercentiles {
    /// Median.
    pub p50: f64,
    /// 95th percentile.
    pub p95: f64,
    /// 99th percentile.
    pub p99: f64,
    /// 99.9th percentile.
    pub p999: f64,
}

impl LatencyPercentiles {
    /// Nearest-rank percentiles of a sample slice (zeros when empty).
    pub fn from_samples(samples: &[f64]) -> Self {
        // total_cmp (NaN sorts after +inf) keeps a poisoned sample from
        // panicking the whole report; scheduler admission validation
        // rejects such inputs before they reach here.
        let mut sorted = samples.to_vec();
        sorted.sort_by(f64::total_cmp);
        let at = |q: f64| -> f64 {
            if sorted.is_empty() {
                return 0.0;
            }
            let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
            sorted[rank - 1]
        };
        LatencyPercentiles {
            p50: at(0.50),
            p95: at(0.95),
            p99: at(0.99),
            p999: at(0.999),
        }
    }
}

/// Cumulative serving state of one stream (whole run, or up to a
/// snapshot's window end).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StreamServing {
    /// Stream index.
    pub stream: usize,
    /// Frames completed.
    pub frames_completed: u64,
    /// Frames whose end-to-end latency exceeded the deadline.
    pub slo_violations: u64,
    /// Device-sojourn latency histogram.
    pub frame_latency: LatencyHistogram,
    /// End-to-end (arrival to download) latency histogram.
    pub e2e_latency: LatencyHistogram,
}

impl StreamServing {
    fn new(stream: usize) -> Self {
        StreamServing {
            stream,
            frames_completed: 0,
            slo_violations: 0,
            frame_latency: LatencyHistogram::new(),
            e2e_latency: LatencyHistogram::new(),
        }
    }

    /// Violation fraction of the completed frames (0 when none).
    pub fn violation_fraction(&self) -> f64 {
        if self.frames_completed > 0 {
            self.slo_violations as f64 / self.frames_completed as f64
        } else {
            0.0
        }
    }
}

/// Windowed gauges of one stream within one snapshot's window.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StreamWindow {
    /// Stream index.
    pub stream: usize,
    /// Frames completed inside this window.
    pub window_frames: u64,
    /// Violations inside this window.
    pub window_violations: u64,
    /// Error-budget burn rate of the window: violation fraction over the
    /// budget. 1.0 means the budget is being spent exactly as allowed;
    /// above 1.0 the stream is out of SLO.
    pub burn_rate: f64,
    /// Whether the stream is served at SLO in this window (burn rate at
    /// or below 1; an idle window with no frames counts as served).
    pub at_slo: bool,
}

/// One windowed snapshot on the schedule clock: cumulative counters and
/// histograms through `t_s` (monotone across snapshots), plus the
/// window's gauges.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServingSnapshot {
    /// Window end on the schedule clock (seconds).
    pub t_s: f64,
    /// Cumulative per-stream serving state through `t_s`.
    pub streams: Vec<StreamServing>,
    /// Windowed per-stream gauges for the window ending at `t_s`.
    pub windows: Vec<StreamWindow>,
    /// Streams served at SLO in this window.
    pub streams_at_slo: u64,
    /// Cumulative DRAM bytes through `t_s`, sampled from the pipeline
    /// telemetry's monotone counter (0 without telemetry).
    pub dram_bytes_total: f64,
}

/// The serving observability report: final per-stream state, merged
/// pipeline histograms, windowed snapshots, and the event log.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServingReport {
    /// Report schema version ([`SERVING_SCHEMA`]).
    pub schema: u32,
    /// Device label every metric carries.
    pub device: String,
    /// Attribution site label carried by launch events (the pipeline or
    /// kernel the frames ran through).
    pub site: String,
    /// The SLO judged against.
    pub slo: SloConfig,
    /// Snapshot window length (seconds).
    pub window_s: f64,
    /// Schedule makespan (seconds).
    pub makespan_s: f64,
    /// Final cumulative per-stream state (equals the last snapshot's).
    pub streams: Vec<StreamServing>,
    /// Exact per-stream end-to-end percentiles (nearest-rank).
    pub percentiles: Vec<LatencyPercentiles>,
    /// All streams' frame-latency histograms merged.
    pub pipeline_frame_latency: LatencyHistogram,
    /// All streams' end-to-end histograms merged — the end-to-end
    /// pipeline latency distribution.
    pub pipeline_e2e_latency: LatencyHistogram,
    /// Windowed snapshots in time order; the last ends at the makespan.
    pub snapshots: Vec<ServingSnapshot>,
    /// The structured event log, ordered by time (ties: stream, frame).
    pub events: Vec<ServingEvent>,
}

impl ServingReport {
    /// Total SLO violations across streams.
    pub fn total_violations(&self) -> u64 {
        self.streams.iter().map(|s| s.slo_violations).sum()
    }

    /// Streams served at SLO over the *whole run* (cumulative violation
    /// fraction within budget).
    pub fn streams_at_slo(&self) -> u64 {
        self.streams
            .iter()
            .filter(|s| s.violation_fraction() <= self.slo.error_budget)
            .count() as u64
    }
}

/// How the run is windowed. `window_s == 0` auto-sizes to
/// `makespan / 8` (at least one window).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ServingWindowConfig {
    /// Window length on the schedule clock (seconds; 0 = auto).
    pub window_s: f64,
}

impl Default for ServingWindowConfig {
    fn default() -> Self {
        ServingWindowConfig { window_s: 0.0 }
    }
}

/// Builds the serving report from a multi-stream schedule.
///
/// `arrival_periods[s]` is stream `s`'s seconds-between-frames (0 for
/// offline streams, whose end-to-end latency is then the device
/// sojourn). `telemetry`, when given, supplies the cumulative DRAM byte
/// counter sampled into each snapshot.
///
/// The returned report always carries **at least one snapshot** (an
/// empty schedule still yields one all-zero window), so consumers may
/// index `snapshots.last()` — though [`prometheus_serving`] tolerates
/// externally-produced reports that break this invariant.
pub fn serving_report(
    schedule: &StreamSchedule,
    arrival_periods: &[f64],
    device: &str,
    site: &str,
    slo: &SloConfig,
    window: &ServingWindowConfig,
    telemetry: Option<&PipelineTelemetry>,
) -> ServingReport {
    assert_eq!(
        schedule.streams.len(),
        arrival_periods.len(),
        "one arrival period per stream"
    );
    let makespan = schedule.makespan();
    let window_s = if window.window_s > 0.0 {
        window.window_s
    } else if makespan > 0.0 {
        makespan / 8.0
    } else {
        1.0
    };

    // One completion record per frame: (t_complete, stream, frame,
    // sojourn, e2e).
    struct Done {
        t: f64,
        stream: usize,
        frame: usize,
        sojourn: f64,
        e2e: f64,
    }
    let mut events: Vec<ServingEvent> = Vec::new();
    let mut done: Vec<Done> = Vec::new();
    let mut e2e_samples: Vec<Vec<f64>> = vec![Vec::new(); schedule.streams.len()];
    let ev = |t: f64, kind: EventKind, stream: usize, frame: usize| ServingEvent {
        t_s: t,
        event: kind,
        device: device.to_string(),
        stream,
        frame,
        site: site.to_string(),
        latency_s: None,
        e2e_s: None,
        deadline_s: None,
    };
    for (s, frames) in schedule.streams.iter().enumerate() {
        let period = arrival_periods[s];
        for (i, f) in frames.iter().enumerate() {
            let sojourn = f.d2h.end() - f.h2d.start;
            let e2e = if period > 0.0 {
                f.d2h.end() - i as f64 * period
            } else {
                sojourn
            };
            events.push(ev(f.h2d.start, EventKind::FrameAdmitted, s, i));
            events.push(ev(f.kernel.start, EventKind::Launch, s, i));
            let mut completed = ev(f.d2h.end(), EventKind::FrameCompleted, s, i);
            completed.latency_s = Some(sojourn);
            completed.e2e_s = Some(e2e);
            events.push(completed);
            if e2e > slo.deadline_s {
                let mut v = ev(f.d2h.end(), EventKind::SloViolation, s, i);
                v.latency_s = Some(sojourn);
                v.e2e_s = Some(e2e);
                v.deadline_s = Some(slo.deadline_s);
                events.push(v);
            }
            e2e_samples[s].push(e2e);
            done.push(Done {
                t: f.d2h.end(),
                stream: s,
                frame: i,
                sojourn,
                e2e,
            });
        }
    }
    events.sort_by(|a, b| {
        a.t_s
            .total_cmp(&b.t_s)
            .then(a.stream.cmp(&b.stream))
            .then(a.frame.cmp(&b.frame))
    });
    done.sort_by(|a, b| {
        a.t.total_cmp(&b.t)
            .then(a.stream.cmp(&b.stream))
            .then(a.frame.cmp(&b.frame))
    });

    // Walk completions window by window, accumulating cumulative state
    // and per-window deltas.
    let n_streams = schedule.streams.len();
    let mut cumulative: Vec<StreamServing> = (0..n_streams).map(StreamServing::new).collect();
    let n_windows = if makespan > 0.0 {
        (makespan / window_s).ceil().max(1.0) as usize
    } else {
        1
    };
    let mut snapshots = Vec::with_capacity(n_windows);
    let mut next = 0usize;
    for w in 0..n_windows {
        let t_end = if w + 1 == n_windows {
            makespan
        } else {
            (w + 1) as f64 * window_s
        };
        let mut window_frames = vec![0u64; n_streams];
        let mut window_violations = vec![0u64; n_streams];
        while next < done.len() && done[next].t <= t_end {
            let d = &done[next];
            let st = &mut cumulative[d.stream];
            st.frames_completed += 1;
            st.frame_latency.observe(d.sojourn);
            st.e2e_latency.observe(d.e2e);
            window_frames[d.stream] += 1;
            if d.e2e > slo.deadline_s {
                st.slo_violations += 1;
                window_violations[d.stream] += 1;
            }
            let _ = d.frame;
            next += 1;
        }
        let windows: Vec<StreamWindow> = (0..n_streams)
            .map(|s| {
                let frac = if window_frames[s] > 0 {
                    window_violations[s] as f64 / window_frames[s] as f64
                } else {
                    0.0
                };
                let burn = if slo.error_budget > 0.0 {
                    frac / slo.error_budget
                } else if frac > 0.0 {
                    f64::INFINITY
                } else {
                    0.0
                };
                StreamWindow {
                    stream: s,
                    window_frames: window_frames[s],
                    window_violations: window_violations[s],
                    burn_rate: burn,
                    at_slo: burn <= 1.0,
                }
            })
            .collect();
        let streams_at_slo = windows.iter().filter(|w| w.at_slo).count() as u64;
        let dram = telemetry.map_or(0.0, |t| {
            if t.dram_bytes_cumulative.is_empty() || t.quantum <= 0.0 {
                0.0
            } else {
                let q =
                    ((t_end / t.quantum).ceil() as usize).clamp(1, t.dram_bytes_cumulative.len());
                t.dram_bytes_cumulative[q - 1]
            }
        });
        snapshots.push(ServingSnapshot {
            t_s: t_end,
            streams: cumulative.clone(),
            windows,
            streams_at_slo,
            dram_bytes_total: dram,
        });
    }

    let mut pipeline_frame = LatencyHistogram::new();
    let mut pipeline_e2e = LatencyHistogram::new();
    for s in &cumulative {
        pipeline_frame.merge(&s.frame_latency);
        pipeline_e2e.merge(&s.e2e_latency);
    }
    let percentiles = e2e_samples
        .iter()
        .map(|s| LatencyPercentiles::from_samples(s))
        .collect();

    ServingReport {
        schema: SERVING_SCHEMA,
        device: device.to_string(),
        site: site.to_string(),
        slo: *slo,
        window_s,
        makespan_s: makespan,
        streams: cumulative,
        percentiles,
        pipeline_frame_latency: pipeline_frame,
        pipeline_e2e_latency: pipeline_e2e,
        snapshots,
        events,
    }
}

// ---- Prometheus exposition (histogram families + serving gauges) ----

pub(crate) fn push_sample(out: &mut String, name: &str, labels: &[(&str, String)], value: f64) {
    out.push_str(name);
    if !labels.is_empty() {
        out.push('{');
        for (i, (k, v)) in labels.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(k);
            out.push_str("=\"");
            out.push_str(&escape_label(v));
            out.push('"');
        }
        out.push('}');
    }
    out.push(' ');
    if value.is_finite() {
        out.push_str(&format!("{value:?}"));
    } else if value.is_nan() {
        out.push_str("NaN");
    } else if value > 0.0 {
        out.push_str("+Inf");
    } else {
        out.push_str("-Inf");
    }
    out.push('\n');
}

pub(crate) fn push_histogram(
    out: &mut String,
    name: &str,
    base_labels: &[(&str, String)],
    h: &LatencyHistogram,
) {
    let mut cum = 0u64;
    for i in 0..NUM_BOUNDS {
        cum += h.counts[i];
        let mut labels = base_labels.to_vec();
        labels.push(("le", format!("{:?}", bucket_bound(i))));
        push_sample(out, &format!("{name}_bucket"), &labels, cum as f64);
    }
    let mut labels = base_labels.to_vec();
    labels.push(("le", "+Inf".to_string()));
    push_sample(out, &format!("{name}_bucket"), &labels, h.count as f64);
    push_sample(out, &format!("{name}_sum"), base_labels, h.sum);
    push_sample(out, &format!("{name}_count"), base_labels, h.count as f64);
}

pub(crate) fn header(out: &mut String, name: &str, kind: &str, help: &str) {
    out.push_str(&format!("# HELP {name} {help}\n# TYPE {name} {kind}\n"));
}

/// Emits `quantile`-labelled gauges reconstructed from the histogram
/// buckets — and emits *nothing* when the histogram is empty:
/// [`LatencyHistogram::quantile`] returns its `NaN` sentinel there, and
/// `NaN` is a parse error to most Prometheus scrapers, so an all-shed
/// device must drop the family rather than expose the sentinel.
pub(crate) fn push_quantiles(
    out: &mut String,
    name: &str,
    base_labels: &[(&str, String)],
    h: &LatencyHistogram,
) {
    if h.count == 0 {
        return;
    }
    for q in [0.5, 0.95, 0.99] {
        let mut labels = base_labels.to_vec();
        labels.push(("quantile", format!("{q}")));
        push_sample(out, name, &labels, h.quantile(q));
    }
}

/// Renders the serving metrics of one snapshot (by index into
/// `report.snapshots`; clamped to the last) in the Prometheus text
/// exposition format. Histogram families are proper `histogram` types
/// with cumulative `le` buckets; counters are cumulative through the
/// snapshot, so successive snapshots scrape as monotone counters.
///
/// [`serving_report`] always produces at least one snapshot, but a
/// truncated or hand-edited report JSON may not; an empty `snapshots`
/// renders a valid exposition whose families are present but carry no
/// per-stream samples, instead of panicking the metrics server.
pub fn prometheus_serving(report: &ServingReport, snapshot: usize) -> String {
    let empty = ServingSnapshot {
        t_s: report.makespan_s,
        streams: Vec::new(),
        windows: Vec::new(),
        streams_at_slo: 0,
        dram_bytes_total: 0.0,
    };
    let snap = match report
        .snapshots
        .get(snapshot.min(report.snapshots.len().saturating_sub(1)))
    {
        Some(s) => s,
        None => &empty,
    };
    let dev = || ("device", report.device.clone());
    let mut out = String::new();

    header(
        &mut out,
        "mogpu_frame_latency_seconds",
        "histogram",
        "Per-frame device sojourn latency (upload start to download end).",
    );
    for s in &snap.streams {
        let labels = vec![dev(), ("stream", s.stream.to_string())];
        push_histogram(
            &mut out,
            "mogpu_frame_latency_seconds",
            &labels,
            &s.frame_latency,
        );
    }
    header(
        &mut out,
        "mogpu_e2e_latency_seconds",
        "histogram",
        "End-to-end frame latency (camera arrival to download end) the SLO judges.",
    );
    for s in &snap.streams {
        let labels = vec![dev(), ("stream", s.stream.to_string())];
        push_histogram(
            &mut out,
            "mogpu_e2e_latency_seconds",
            &labels,
            &s.e2e_latency,
        );
    }
    header(
        &mut out,
        "mogpu_pipeline_e2e_latency_seconds",
        "histogram",
        "End-to-end latency across all streams of the device (merged histogram).",
    );
    let mut merged = LatencyHistogram::new();
    for s in &snap.streams {
        merged.merge(&s.e2e_latency);
    }
    push_histogram(
        &mut out,
        "mogpu_pipeline_e2e_latency_seconds",
        &[dev()],
        &merged,
    );
    header(
        &mut out,
        "mogpu_pipeline_e2e_latency_quantile_seconds",
        "gauge",
        "End-to-end latency quantiles reconstructed from the merged buckets (absent until a frame completes).",
    );
    push_quantiles(
        &mut out,
        "mogpu_pipeline_e2e_latency_quantile_seconds",
        &[dev()],
        &merged,
    );

    header(
        &mut out,
        "mogpu_frames_completed_total",
        "counter",
        "Frames completed (downloaded) per stream, cumulative on the schedule clock.",
    );
    for s in &snap.streams {
        push_sample(
            &mut out,
            "mogpu_frames_completed_total",
            &[dev(), ("stream", s.stream.to_string())],
            s.frames_completed as f64,
        );
    }
    header(
        &mut out,
        "mogpu_slo_violations_total",
        "counter",
        "Frames whose end-to-end latency exceeded the deadline, cumulative.",
    );
    for s in &snap.streams {
        push_sample(
            &mut out,
            "mogpu_slo_violations_total",
            &[dev(), ("stream", s.stream.to_string())],
            s.slo_violations as f64,
        );
    }
    header(
        &mut out,
        "mogpu_slo_deadline_seconds",
        "gauge",
        "Configured end-to-end frame deadline.",
    );
    for s in &snap.streams {
        push_sample(
            &mut out,
            "mogpu_slo_deadline_seconds",
            &[dev(), ("stream", s.stream.to_string())],
            report.slo.deadline_s,
        );
    }
    header(
        &mut out,
        "mogpu_slo_burn_rate",
        "gauge",
        "Windowed error-budget burn rate (violation fraction over budget; >1 = out of SLO).",
    );
    for w in &snap.windows {
        push_sample(
            &mut out,
            "mogpu_slo_burn_rate",
            &[dev(), ("stream", w.stream.to_string())],
            w.burn_rate,
        );
    }
    header(
        &mut out,
        "mogpu_streams_at_slo",
        "gauge",
        "Streams served at SLO in the current window (burn rate <= 1).",
    );
    push_sample(
        &mut out,
        "mogpu_streams_at_slo",
        &[dev()],
        snap.streams_at_slo as f64,
    );
    header(
        &mut out,
        "mogpu_streams_serving",
        "gauge",
        "Streams multiplexed onto the device.",
    );
    push_sample(
        &mut out,
        "mogpu_streams_serving",
        &[dev()],
        snap.streams.len() as f64,
    );
    header(
        &mut out,
        "mogpu_serving_window_seconds",
        "gauge",
        "Snapshot window length on the schedule clock.",
    );
    push_sample(
        &mut out,
        "mogpu_serving_window_seconds",
        &[dev()],
        report.window_s,
    );
    header(
        &mut out,
        "mogpu_serving_clock_seconds",
        "gauge",
        "Schedule-clock time of the served snapshot (end of its window).",
    );
    push_sample(&mut out, "mogpu_serving_clock_seconds", &[dev()], snap.t_s);
    header(
        &mut out,
        "mogpu_serving_dram_bytes_total",
        "counter",
        "Cumulative DRAM bytes through the snapshot, from the telemetry counter.",
    );
    push_sample(
        &mut out,
        "mogpu_serving_dram_bytes_total",
        &[dev()],
        snap.dram_bytes_total,
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::GpuConfig;
    use crate::streams::{StageTimes, StreamInput, StreamScheduler};

    fn schedule_of(n_streams: usize, frames: usize, period: f64) -> (StreamSchedule, Vec<f64>) {
        let inputs: Vec<StreamInput> = (0..n_streams)
            .map(|s| StreamInput {
                stages: vec![StageTimes::uniform(1e-3, 2e-3 + s as f64 * 1e-3, 1e-3); frames],
                arrival_period: period,
            })
            .collect();
        let sched = StreamScheduler::double_buffered().schedule(&inputs, &GpuConfig::tesla_c2075());
        (sched, vec![period; n_streams])
    }

    #[test]
    fn bucket_scheme_is_log_spaced_and_covers_the_range() {
        assert!((bucket_bound(0) - 1e-6).abs() < 1e-18);
        assert!((bucket_bound(NUM_BOUNDS - 1) - 1e2).abs() < 1e-10);
        for i in 1..NUM_BOUNDS {
            let ratio = bucket_bound(i) / bucket_bound(i - 1);
            assert!((ratio - 10f64.powf(0.25)).abs() < 1e-12, "bucket {i}");
        }
    }

    #[test]
    fn histogram_sum_count_and_mean_are_exact() {
        let samples = [0.001, 0.002, 0.0035, 0.9, 250.0];
        let h = LatencyHistogram::from_samples(&samples);
        assert_eq!(h.count, 5);
        assert_eq!(h.sum, samples.iter().sum::<f64>());
        assert_eq!(h.mean(), h.sum / 5.0);
        assert_eq!(h.min, 0.001);
        assert_eq!(h.max, 250.0);
        // 250 s overflows the finite range into the +Inf bucket.
        assert_eq!(h.counts[NUM_BOUNDS], 1);
        assert_eq!(h.cumulative(NUM_BOUNDS), h.count);
    }

    #[test]
    fn merge_equals_concatenation() {
        let a = [1e-4, 5e-4, 2e-3, 0.3];
        let b = [7e-5, 2e-3, 1.0, 300.0];
        let mut ha = LatencyHistogram::from_samples(&a);
        let hb = LatencyHistogram::from_samples(&b);
        ha.merge(&hb);
        let concat: Vec<f64> = a.iter().chain(&b).copied().collect();
        let hc = LatencyHistogram::from_samples(&concat);
        assert_eq!(ha, hc);
    }

    #[test]
    fn quantile_is_within_one_bucket_of_exact() {
        let samples: Vec<f64> = (1..=1000).map(|i| i as f64 * 1e-5).collect();
        let h = LatencyHistogram::from_samples(&samples);
        for q in [0.5, 0.95, 0.99, 0.999] {
            let exact = LatencyPercentiles::from_samples(&samples);
            let exact_q = match q {
                0.5 => exact.p50,
                0.95 => exact.p95,
                0.99 => exact.p99,
                _ => exact.p999,
            };
            let (lo, hi) = h.quantile_bounds(q);
            assert!(
                exact_q > lo && exact_q <= hi,
                "q {q}: exact {exact_q} outside ({lo}, {hi}]"
            );
            let est = h.quantile(q);
            assert!((est - exact_q).abs() <= hi - lo, "q {q}");
        }
    }

    /// An empty histogram must answer quantile queries with the NaN
    /// no-data sentinel — `0.0` would read as a perfect p99 when an
    /// all-shed device's histogram is merged into a fleet report.
    #[test]
    fn empty_histogram_quantiles_are_the_nan_sentinel() {
        let h = LatencyHistogram::new();
        assert!(h.quantile(0.99).is_nan());
        let (lo, hi) = h.quantile_bounds(0.5);
        assert!(lo.is_nan() && hi.is_nan());
        assert_eq!(h.mean(), 0.0);
        // One sample flips it back to real answers.
        let h = LatencyHistogram::from_samples(&[0.010]);
        assert!(h.quantile(0.99) > 0.0);
        let (lo, hi) = h.quantile_bounds(0.99);
        assert!(lo < hi && !lo.is_nan());
    }

    #[test]
    fn report_counts_violations_and_orders_events() {
        let (sched, periods) = schedule_of(2, 6, 0.0);
        // Deadline below every sojourn: every frame violates.
        let slo = SloConfig {
            deadline_s: 1e-6,
            error_budget: 0.01,
        };
        let r = serving_report(
            &sched,
            &periods,
            "Tesla C2075",
            "level F",
            &slo,
            &ServingWindowConfig::default(),
            None,
        );
        assert_eq!(r.total_violations(), 12);
        assert_eq!(r.streams_at_slo(), 0);
        let violations = r
            .events
            .iter()
            .filter(|e| e.event == EventKind::SloViolation)
            .count();
        assert_eq!(violations, 12);
        for w in r.events.windows(2) {
            assert!(w[0].t_s <= w[1].t_s, "events out of order");
        }
        // A generous deadline: zero violations, all streams at SLO.
        let r2 = serving_report(
            &sched,
            &periods,
            "Tesla C2075",
            "level F",
            &SloConfig::default(),
            &ServingWindowConfig::default(),
            None,
        );
        assert_eq!(r2.total_violations(), 0);
        assert_eq!(r2.streams_at_slo(), 2);
    }

    #[test]
    fn snapshots_are_monotone_and_end_at_totals() {
        let (sched, periods) = schedule_of(3, 8, 0.0);
        let r = serving_report(
            &sched,
            &periods,
            "dev0",
            "level F",
            &SloConfig {
                deadline_s: 3e-3,
                error_budget: 0.1,
            },
            &ServingWindowConfig { window_s: 0.004 },
            None,
        );
        assert!(r.snapshots.len() > 1, "expect several windows");
        for pair in r.snapshots.windows(2) {
            for (a, b) in pair[0].streams.iter().zip(&pair[1].streams) {
                assert!(b.frames_completed >= a.frames_completed);
                assert!(b.slo_violations >= a.slo_violations);
                for (ca, cb) in a.frame_latency.counts.iter().zip(&b.frame_latency.counts) {
                    assert!(cb >= ca, "histogram bucket decreased across snapshots");
                }
            }
        }
        let last = r.snapshots.last().unwrap();
        assert!((last.t_s - r.makespan_s).abs() < 1e-12);
        assert_eq!(last.streams, r.streams);
        let total: u64 = r.streams.iter().map(|s| s.frames_completed).sum();
        assert_eq!(total, sched.total_frames() as u64);
    }

    #[test]
    fn offline_streams_equate_e2e_with_sojourn_and_paced_streams_do_not() {
        let (sched, periods) = schedule_of(1, 5, 0.0);
        let r = serving_report(
            &sched,
            &periods,
            "d",
            "s",
            &SloConfig::default(),
            &ServingWindowConfig::default(),
            None,
        );
        assert_eq!(r.streams[0].frame_latency, r.streams[0].e2e_latency);

        let (sched, periods) = schedule_of(1, 5, 0.5);
        let r = serving_report(
            &sched,
            &periods,
            "d",
            "s",
            &SloConfig::default(),
            &ServingWindowConfig::default(),
            None,
        );
        // Paced arrivals: e2e is measured from i*period, not upload start.
        assert_eq!(r.streams[0].e2e_latency.count, 5);
    }

    #[test]
    fn jsonl_is_one_canonical_object_per_line() {
        let (sched, periods) = schedule_of(1, 3, 0.0);
        let r = serving_report(
            &sched,
            &periods,
            "d",
            "s",
            &SloConfig::default(),
            &ServingWindowConfig::default(),
            None,
        );
        let text = events_jsonl(&r.events);
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), r.events.len());
        for line in lines {
            let v: serde_json::Value = serde_json::from_str(line).expect("valid JSON");
            for key in ["t_s", "event", "device", "stream", "frame", "site"] {
                assert!(v.get(key).is_some(), "missing {key} in {line}");
            }
        }
    }

    #[test]
    fn exact_percentiles_survive_non_finite_samples() {
        // Regression: sorting used partial_cmp().expect("finite
        // latencies") and panicked on NaN.
        let p = LatencyPercentiles::from_samples(&[0.1, f64::NAN, 0.2]);
        assert!((p.p50 - 0.2).abs() < 1e-12);
        let p = LatencyPercentiles::from_samples(&[0.1, f64::INFINITY, 0.2]);
        assert_eq!(p.p999, f64::INFINITY);
    }

    #[test]
    fn empty_snapshot_report_renders_valid_exposition() {
        // Regression: a truncated/hand-edited report with no snapshots
        // used to panic `prometheus_serving` via `snapshots[0]`.
        let (sched, periods) = schedule_of(1, 3, 0.0);
        let mut r = serving_report(
            &sched,
            &periods,
            "d",
            "s",
            &SloConfig::default(),
            &ServingWindowConfig::default(),
            None,
        );
        assert!(!r.snapshots.is_empty(), "serving_report guarantees >= 1");
        r.snapshots.clear();
        let text = prometheus_serving(&r, 0);
        assert!(text.contains("# TYPE mogpu_frame_latency_seconds histogram"));
        assert!(text.contains("# TYPE mogpu_streams_at_slo gauge"));
        assert!(text.contains("mogpu_streams_serving{device=\"d\"} 0"));
        // Every non-comment line is a well-formed `name{labels} value`.
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            let value = line.rsplit(' ').next().unwrap();
            assert!(
                value.parse::<f64>().is_ok() || value == "+Inf" || value == "NaN",
                "bad sample line: {line}"
            );
        }
        // An empty-schedule report still carries one snapshot.
        let empty = serving_report(
            &StreamScheduler::double_buffered().schedule(&[], &GpuConfig::tesla_c2075()),
            &[],
            "d",
            "s",
            &SloConfig::default(),
            &ServingWindowConfig::default(),
            None,
        );
        assert_eq!(empty.snapshots.len(), 1);
    }

    /// Satellite: the buffered event-log writer must leave a complete,
    /// parseable JSONL file even when the run terminates early — the
    /// writer is dropped mid-run without an explicit flush and the file
    /// must still hold every line written before the termination point.
    #[test]
    fn event_log_writer_leaves_a_complete_file_when_dropped_early() {
        let (sched, periods) = schedule_of(2, 4, 1.0 / 30.0);
        let r = serving_report(
            &sched,
            &periods,
            "d",
            "s",
            &SloConfig::default(),
            &ServingWindowConfig::default(),
            None,
        );
        assert!(r.events.len() >= 8, "schedule produces a real event stream");
        let path = std::env::temp_dir().join(format!(
            "mogpu-eventlog-early-drop-{}.jsonl",
            std::process::id()
        ));
        {
            let mut w = EventLogWriter::create(&path).unwrap();
            w.write_events(&r.events).unwrap();
            // Simulated early termination: drop without flush.
        }
        let text = std::fs::read_to_string(&path).unwrap();
        let _ = std::fs::remove_file(&path);
        // Byte-identical to the in-memory rendering, and every line
        // round-trips back into a ServingEvent.
        assert_eq!(text, events_jsonl(&r.events));
        let parsed: Vec<ServingEvent> = text
            .lines()
            .map(|l| serde_json::from_str(l).expect("parseable line"))
            .collect();
        assert_eq!(parsed, r.events);
    }

    /// Satellite: quantile-derived gauges follow the histogram when it
    /// has data and are skipped entirely — family header only, no `NaN`
    /// sentinel samples — when it is empty.
    #[test]
    fn quantile_gauges_track_the_histogram_and_are_skipped_when_empty() {
        let (sched, periods) = schedule_of(2, 6, 0.0);
        let r = serving_report(
            &sched,
            &periods,
            "d",
            "s",
            &SloConfig::default(),
            &ServingWindowConfig::default(),
            None,
        );
        let text = prometheus_serving(&r, usize::MAX);
        assert!(text.contains("# TYPE mogpu_pipeline_e2e_latency_quantile_seconds gauge"));
        let mut merged = LatencyHistogram::new();
        for s in &r.snapshots.last().unwrap().streams {
            merged.merge(&s.e2e_latency);
        }
        for (label, q) in [("0.5", 0.5), ("0.95", 0.95), ("0.99", 0.99)] {
            let needle = format!(
                "mogpu_pipeline_e2e_latency_quantile_seconds{{device=\"d\",quantile=\"{label}\"}}"
            );
            let line = text
                .lines()
                .find(|l| l.starts_with(&needle))
                .unwrap_or_else(|| panic!("missing {needle}"));
            let v: f64 = line.rsplit(' ').next().unwrap().parse().unwrap();
            assert!(v.is_finite());
            assert_eq!(v, merged.quantile(q));
        }
        // Empty histogram: the family header stays, the samples go.
        let mut empty = r.clone();
        empty.snapshots.clear();
        let text = prometheus_serving(&empty, 0);
        assert!(text.contains("# TYPE mogpu_pipeline_e2e_latency_quantile_seconds gauge"));
        assert!(
            !text.contains("mogpu_pipeline_e2e_latency_quantile_seconds{"),
            "empty histogram must not expose the NaN sentinel"
        );
    }

    #[test]
    fn exposition_buckets_are_cumulative_and_inf_equals_count() {
        let (sched, periods) = schedule_of(2, 6, 0.0);
        let r = serving_report(
            &sched,
            &periods,
            "Tesla C2075",
            "level F",
            &SloConfig::default(),
            &ServingWindowConfig::default(),
            None,
        );
        let text = prometheus_serving(&r, usize::MAX);
        assert!(text.contains("# TYPE mogpu_frame_latency_seconds histogram"));
        assert!(text.contains("device=\"Tesla C2075\""));
        assert!(text.contains("stream=\"1\""));
        assert!(text.contains("le=\"+Inf\""));
        // The +Inf bucket of stream 0's frame-latency histogram equals
        // its _count sample.
        let find = |needle: &str| -> f64 {
            text.lines()
                .find(|l| l.starts_with(needle))
                .unwrap_or_else(|| panic!("missing {needle}"))
                .rsplit(' ')
                .next()
                .unwrap()
                .parse()
                .unwrap()
        };
        let inf = find(
            "mogpu_frame_latency_seconds_bucket{device=\"Tesla C2075\",stream=\"0\",le=\"+Inf\"}",
        );
        let count = find("mogpu_frame_latency_seconds_count{device=\"Tesla C2075\",stream=\"0\"}");
        assert_eq!(inf, count);
        assert_eq!(count, 6.0);
    }
}

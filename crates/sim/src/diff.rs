//! Differential profiling: run-vs-run attribution.
//!
//! Every other observability layer explains a *single* run; this module
//! explains the **difference** between two. [`diff_values`] takes two
//! serialized report documents of the same kind — profile reports (or
//! whole ladder arrays), multi-stream serving reports, fleet reports,
//! bench baselines, or dataflow graphs — and produces a structured
//! [`DiffReport`] answering the question the bench gate alone cannot:
//! *which kernel, which site, which stall bucket, which counter moved?*
//!
//! Attribution semantics, in decreasing strength:
//!
//! * **Stall-bucket deltas are conserved.** Each side's
//!   [`StallBreakdown`] partitions its modelled kernel time exactly, so
//!   the per-bucket deltas sum to the kernel-time delta to the same
//!   floating-point tolerance as the existing conservation tests — the
//!   decomposition never invents or loses time.
//! * **Per-site deltas are conserved and carry `file:line` evidence.**
//!   Each side's site rows sum to its kernel breakdown, so subtracting
//!   the aligned rows (matched on the source string; sites present on
//!   one side only contribute their full time) conserves the kernel
//!   delta; [`KernelDiff::attributed_fraction`] reports how much of the
//!   delta lands on *resolved* sites.
//! * **Counterfactual counter ranking is explanatory, not conserved.**
//!   For each counter set that feeds [`crate::timing::kernel_time`], the
//!   engine re-runs the timing model on side A's counters with that one
//!   set swapped to side B's value — the same machinery the advisor uses
//!   to price a transform. Because the model is a three-way max the
//!   single-swap contributions need not sum to the delta; the remainder
//!   is reported as [`KernelDiff::interaction_s`].
//! * **Telemetry series are re-aligned on the schedule clock.** Two runs
//!   sample different quantum lengths, so both sides are resampled onto
//!   a common normalized clock: byte series by overlap integral
//!   (conserving each side's total), rate/ratio series by
//!   overlap-weighted time average.
//! * **Histogram deltas reuse the serving bucket scheme.** Latency
//!   histograms share one fixed bucket layout, so the diff is plain
//!   per-bucket subtraction plus quantile shifts.
//!
//! Self-diff of any report is all zeros, and serializing a
//! [`DiffReport`] with `to_string_canonical_pretty` is byte-stable.

use crate::config::GpuConfig;
use crate::fleet::FleetReport;
use crate::occupancy::Occupancy;
use crate::profile::{HotspotRow, SiteStats};
use crate::serving::{bucket_bound, LatencyHistogram, ServingReport, NUM_BOUNDS};
use crate::stallreasons::{kernel_stalls, SiteStallRow, StallBreakdown};
use crate::stats::KernelStats;
use crate::telemetry::PipelineTelemetry;
use crate::timing::{kernel_time, KernelTiming};
use serde::{Deserialize, Serialize};
use serde_json::Value;
use std::collections::BTreeMap;

/// Format version of serialized [`DiffReport`] documents.
pub const DIFF_SCHEMA: u32 = 1;

/// Normalized-schedule-clock buckets telemetry series are re-aligned to.
pub const TELEMETRY_DIFF_BUCKETS: usize = 32;

/// Source label for site rows whose `file:line` was not resolved.
const UNRESOLVED: &str = "<unresolved>";

/// One stall-reason bucket compared across the two sides.
#[derive(Debug, Clone, Serialize)]
pub struct ReasonDelta {
    /// Bucket name from [`StallBreakdown::entries`].
    pub reason: String,
    /// Side-A seconds.
    pub a_s: f64,
    /// Side-B seconds.
    pub b_s: f64,
    /// `b_s - a_s`.
    pub delta_s: f64,
}

/// One source site's movement between the two runs.
#[derive(Debug, Clone, Serialize)]
pub struct SiteDiff {
    /// `file:line`, or `"<unresolved>"`.
    pub source: String,
    /// `"both"`, `"a_only"` or `"b_only"`.
    pub presence: String,
    /// Side-A stall seconds at this site.
    pub a_s: f64,
    /// Side-B stall seconds at this site.
    pub b_s: f64,
    /// `b_s - a_s`; summing over all sites reproduces the kernel delta.
    pub delta_s: f64,
    /// Stall bucket with the largest absolute movement at this site.
    pub dominant_reason: String,
    /// Per-bucket movement at this site.
    pub stalls: Vec<ReasonDelta>,
    /// Weighted issue-cycle delta.
    pub issue_cycles_delta: f64,
    /// DRAM transaction delta.
    pub transactions_delta: i64,
    /// Lane-requested byte delta.
    pub bytes_requested_delta: i64,
    /// Divergent branch-slot delta.
    pub divergent_slots_delta: i64,
    /// Shared-memory replay delta.
    pub shared_replays_delta: i64,
}

/// One counter set's movement, priced by a counterfactual re-run of the
/// timing model (side A's counters with this one set swapped to side B's
/// value).
#[derive(Debug, Clone, Serialize)]
pub struct CounterDiff {
    /// Counter set name (e.g. `"global_load_tx"`).
    pub counter: String,
    /// Side-A value.
    pub a: f64,
    /// Side-B value.
    pub b: f64,
    /// `b - a`.
    pub delta: f64,
    /// Modelled kernel-seconds this movement alone would cause.
    pub contribution_s: f64,
}

/// Telemetry series compared on a common normalized schedule clock.
#[derive(Debug, Clone, Serialize)]
pub struct TelemetryDiff {
    /// Aligned buckets per series ([`TELEMETRY_DIFF_BUCKETS`]).
    pub buckets: usize,
    /// Side-A makespan (seconds).
    pub makespan_a_s: f64,
    /// Side-B makespan (seconds).
    pub makespan_b_s: f64,
    /// Makespan delta.
    pub makespan_delta_s: f64,
    /// Side-A total DRAM bytes (bandwidth integral).
    pub dram_bytes_a: f64,
    /// Side-B total DRAM bytes.
    pub dram_bytes_b: f64,
    /// DRAM byte delta.
    pub dram_bytes_delta: f64,
    /// Side-A peak DRAM bandwidth (bytes/s).
    pub peak_dram_bw_a: f64,
    /// Side-B peak DRAM bandwidth.
    pub peak_dram_bw_b: f64,
    /// Peak-bandwidth delta.
    pub peak_dram_bw_delta: f64,
    /// Side-A busy-weighted mean occupancy.
    pub mean_busy_occupancy_a: f64,
    /// Side-B busy-weighted mean occupancy.
    pub mean_busy_occupancy_b: f64,
    /// Occupancy delta.
    pub mean_busy_occupancy_delta: f64,
    /// Side-A mean L2 hit rate (unweighted over quanta).
    pub mean_l2_hit_rate_a: f64,
    /// Side-B mean L2 hit rate.
    pub mean_l2_hit_rate_b: f64,
    /// L2 hit-rate delta.
    pub mean_l2_hit_rate_delta: f64,
    /// Per-bucket DRAM byte delta on the normalized clock; sums to
    /// `dram_bytes_delta` to fp tolerance (each resample conserves its
    /// side's integral).
    pub dram_bytes_series_delta: Vec<f64>,
    /// Per-bucket busy-occupancy delta (overlap-weighted average).
    pub occupancy_series_delta: Vec<f64>,
    /// Per-bucket L2 hit-rate delta (overlap-weighted average).
    pub l2_series_delta: Vec<f64>,
}

/// One kernel (= one run aggregate, or one ladder level) compared across
/// the two sides.
#[derive(Debug, Clone, Serialize)]
pub struct KernelDiff {
    /// Display label, `"A -> F"` style.
    pub label: String,
    /// Side-A level name.
    pub a_level: String,
    /// Side-B level name.
    pub b_level: String,
    /// Frames in side A's run.
    pub frames_a: u64,
    /// Frames in side B's run.
    pub frames_b: u64,
    /// Side-A modelled fps (NaN when the document carries none).
    pub fps_a: f64,
    /// Side-B modelled fps.
    pub fps_b: f64,
    /// Side-A modelled kernel seconds.
    pub time_a_s: f64,
    /// Side-B modelled kernel seconds.
    pub time_b_s: f64,
    /// `time_b_s - time_a_s`.
    pub time_delta_s: f64,
    /// Side-A roofline bound.
    pub bound_a: String,
    /// Side-B roofline bound.
    pub bound_b: String,
    /// Side-A occupancy.
    pub occupancy_a: f64,
    /// Side-B occupancy.
    pub occupancy_b: f64,
    /// Per-bucket stall deltas; their sum equals `time_delta_s` exactly.
    pub stalls: Vec<ReasonDelta>,
    /// Sum of the stall deltas (the conservation check, made explicit).
    pub stall_delta_sum_s: f64,
    /// Kernel-delta seconds landing on sites with resolved `file:line`.
    pub attributed_delta_s: f64,
    /// `attributed_delta_s / time_delta_s` (1.0 when the delta is zero).
    pub attributed_fraction: f64,
    /// Per-site movement, ranked by |delta|.
    pub sites: Vec<SiteDiff>,
    /// Counterfactually priced counter movements, ranked by
    /// |contribution|.
    pub counters: Vec<CounterDiff>,
    /// `time_delta_s - Σ contribution_s`: the model's nonlinear
    /// interaction term the single-swap pricing cannot assign.
    pub interaction_s: f64,
    /// Telemetry series deltas when both sides carry sampled telemetry.
    pub telemetry: Option<TelemetryDiff>,
}

/// One histogram bucket's movement.
#[derive(Debug, Clone, Serialize)]
pub struct BucketDelta {
    /// Inclusive upper bound label (Prometheus `le` convention,
    /// `"+Inf"` for the overflow bucket).
    pub le: String,
    /// Side-A count.
    pub a: u64,
    /// Side-B count.
    pub b: u64,
    /// `b - a`.
    pub delta: i64,
}

/// A latency histogram compared bucket-by-bucket, with quantile shifts.
#[derive(Debug, Clone, Serialize)]
pub struct HistogramDiff {
    /// Which histogram (`"e2e_latency"` / `"frame_latency"`).
    pub name: String,
    /// Side-A sample count.
    pub count_a: u64,
    /// Side-B sample count.
    pub count_b: u64,
    /// Count delta.
    pub count_delta: i64,
    /// Side-A sum of samples (seconds).
    pub sum_a_s: f64,
    /// Side-B sum.
    pub sum_b_s: f64,
    /// Sum delta.
    pub sum_delta_s: f64,
    /// Mean shift (NaN/null when either side is empty).
    pub mean_shift_s: f64,
    /// p50 shift.
    pub p50_shift_s: f64,
    /// p95 shift.
    pub p95_shift_s: f64,
    /// p99 shift.
    pub p99_shift_s: f64,
    /// Buckets whose counts differ (shared fixed bucket scheme).
    pub buckets: Vec<BucketDelta>,
}

/// One stream's movement in a serving diff.
#[derive(Debug, Clone, Serialize)]
pub struct StreamDiff {
    /// Stream index.
    pub stream: usize,
    /// `"both"`, `"a_only"` or `"b_only"`.
    pub presence: String,
    /// Completed-frame delta.
    pub frames_completed_delta: i64,
    /// SLO-violation delta.
    pub slo_violations_delta: i64,
    /// End-to-end p95 shift (NaN when a side is empty).
    pub e2e_p95_shift_s: f64,
}

/// A serving report compared across the two sides.
#[derive(Debug, Clone, Serialize)]
pub struct ServingDiff {
    /// Side-A device label.
    pub device_a: String,
    /// Side-B device label.
    pub device_b: String,
    /// Side-A makespan (seconds).
    pub makespan_a_s: f64,
    /// Side-B makespan.
    pub makespan_b_s: f64,
    /// Makespan delta.
    pub makespan_delta_s: f64,
    /// Streams on side A.
    pub streams_a: usize,
    /// Streams on side B.
    pub streams_b: usize,
    /// Total completed-frame delta.
    pub frames_completed_delta: i64,
    /// Total SLO-violation delta.
    pub slo_violations_delta: i64,
    /// Pipeline frame-latency histogram diff.
    pub frame: HistogramDiff,
    /// Pipeline end-to-end latency histogram diff.
    pub e2e: HistogramDiff,
    /// Per-stream movement, by stream index.
    pub streams: Vec<StreamDiff>,
}

/// One fleet device's movement.
#[derive(Debug, Clone, Serialize)]
pub struct FleetDeviceDiff {
    /// Device label (e.g. `"c2075-0"`).
    pub label: String,
    /// `"both"`, `"a_only"` or `"b_only"`.
    pub presence: String,
    /// Admitted-stream delta.
    pub streams_admitted_delta: i64,
    /// SLO-violation delta.
    pub slo_violations_delta: i64,
    /// Completed-frame delta.
    pub frames_completed_delta: i64,
}

/// A fleet report compared across the two sides.
#[derive(Debug, Clone, Serialize)]
pub struct FleetDiff {
    /// Devices on side A.
    pub devices_a: usize,
    /// Devices on side B.
    pub devices_b: usize,
    /// Makespan delta (seconds).
    pub makespan_delta_s: f64,
    /// Admitted-stream delta.
    pub streams_admitted_delta: i64,
    /// Streams-at-SLO delta.
    pub streams_at_slo_delta: i64,
    /// Shed-frame delta.
    pub frames_dropped_delta: i64,
    /// Fleet-merged end-to-end latency histogram diff.
    pub e2e: HistogramDiff,
    /// Per-device movement, matched by label.
    pub devices: Vec<FleetDeviceDiff>,
}

/// One aggregated dataflow edge's movement (edges matched by
/// producer/consumer kernel name).
#[derive(Debug, Clone, Serialize)]
pub struct DataflowEdgeDiff {
    /// Producer node name.
    pub producer: String,
    /// Consumer node name.
    pub consumer: String,
    /// Side-A bytes over all matching edges.
    pub bytes_a: u64,
    /// Side-B bytes.
    pub bytes_b: u64,
    /// Byte delta.
    pub delta: i64,
}

/// One dataflow node's movement (nodes matched and aggregated by name).
#[derive(Debug, Clone, Serialize)]
pub struct DataflowNodeDiff {
    /// Node name.
    pub name: String,
    /// Node kind (`"kernel"` / transfer).
    pub kind: String,
    /// Stored-byte delta.
    pub stored_delta: i64,
    /// Dead-store byte delta.
    pub dead_store_delta: i64,
}

/// A dataflow graph compared across the two sides, renderable as a
/// "what changed" DOT overlay.
#[derive(Debug, Clone, Serialize)]
pub struct DataflowDiff {
    /// Per-node movement.
    pub nodes: Vec<DataflowNodeDiff>,
    /// Per-edge movement.
    pub edges: Vec<DataflowEdgeDiff>,
    /// Re-read-from-host byte delta.
    pub reread_from_host_delta: i64,
}

/// One flattened bench-baseline metric compared across the two sides.
#[derive(Debug, Clone, Serialize)]
pub struct MetricDelta {
    /// Dotted metric path, e.g. `"levels.F.fps"`.
    pub metric: String,
    /// Side-A value (NaN when absent).
    pub a: f64,
    /// Side-B value.
    pub b: f64,
    /// `b - a`.
    pub delta: f64,
}

/// The full differential-profiling result.
#[derive(Debug, Clone, Serialize)]
pub struct DiffReport {
    /// [`DIFF_SCHEMA`].
    pub schema: u32,
    /// Detected report kind (`"profile"`, `"profile_array"`,
    /// `"streams"`, `"fleet"`, `"bench"`, `"dataflow"`).
    pub kind: String,
    /// Caller-supplied label of side A (e.g. the file name).
    pub a_label: String,
    /// Caller-supplied label of side B.
    pub b_label: String,
    /// Kernel-level diffs (one per compared profile report).
    pub kernels: Vec<KernelDiff>,
    /// Serving diff, for stream/serving documents.
    pub serving: Option<ServingDiff>,
    /// Fleet diff, for fleet documents.
    pub fleet: Option<FleetDiff>,
    /// Dataflow diff, for graph documents.
    pub dataflow: Option<DataflowDiff>,
    /// Flattened metric deltas, for bench baselines.
    pub metrics: Vec<MetricDelta>,
    /// Caveats accumulated while diffing (unmatched levels, missing
    /// attribution data, ...).
    pub notes: Vec<String>,
}

/// Detects which report family a document belongs to.
pub fn detect_kind(v: &Value) -> &'static str {
    if v.as_array().is_some() {
        return "profile_array";
    }
    if v.get("levels").is_some() && v.get("tolerances").is_some() {
        return "bench";
    }
    if v.get("nodes").is_some() && v.get("edges").is_some() {
        return "dataflow";
    }
    let fleet_body = v.get("report").unwrap_or(v);
    if fleet_body.get("devices").is_some() && fleet_body.get("classes").is_some() {
        return "fleet";
    }
    let serving_body = v.get("serving").unwrap_or(v);
    if serving_body.get("pipeline_e2e_latency").is_some() && serving_body.get("streams").is_some() {
        return "streams";
    }
    if v.get("stats").is_some() && v.get("occupancy").is_some() {
        return "profile";
    }
    "unknown"
}

/// One profile-report side, parsed leniently: `timing`/`stalls` are
/// recomputed from the counters when the document omits them, site rows
/// and telemetry are optional.
struct ProfileSide {
    level: String,
    frames: u64,
    fps: f64,
    stats: KernelStats,
    occupancy: Occupancy,
    timing: KernelTiming,
    stalls: StallBreakdown,
    site_stalls: Vec<SiteStallRow>,
    hotspots: Vec<HotspotRow>,
    telemetry: Option<PipelineTelemetry>,
}

fn field<T: Deserialize>(v: &Value, key: &str, what: &str) -> Result<T, String> {
    match v.get(key) {
        Some(f) if !f.is_null() => {
            T::from_json_value(f).map_err(|e| format!("{what}: bad `{key}`: {e}"))
        }
        _ => Err(format!("{what}: missing `{key}`")),
    }
}

fn opt_vec<T: Deserialize>(v: &Value, key: &str, what: &str) -> Result<Vec<T>, String> {
    match v.get(key) {
        Some(f) if !f.is_null() => {
            Vec::<T>::from_json_value(f).map_err(|e| format!("{what}: bad `{key}`: {e}"))
        }
        _ => Ok(Vec::new()),
    }
}

fn parse_profile_side(v: &Value, label: &str, cfg: &GpuConfig) -> Result<ProfileSide, String> {
    let stats: KernelStats = field(v, "stats", label)?;
    let occupancy: Occupancy = field(v, "occupancy", label)?;
    let timing = match v.get("timing") {
        Some(t) if !t.is_null() => {
            KernelTiming::from_json_value(t).map_err(|e| format!("{label}: bad `timing`: {e}"))?
        }
        _ => kernel_time(&stats, &occupancy, cfg),
    };
    let stalls = match v.get("stalls") {
        Some(s) if !s.is_null() => {
            StallBreakdown::from_json_value(s).map_err(|e| format!("{label}: bad `stalls`: {e}"))?
        }
        _ => kernel_stalls(&stats, &timing, &occupancy),
    };
    let telemetry = v
        .get("telemetry")
        .and_then(|t| PipelineTelemetry::from_json_value(t).ok())
        .filter(|t| t.samples() > 0);
    Ok(ProfileSide {
        level: v
            .get("level")
            .and_then(Value::as_str)
            .unwrap_or(label)
            .to_string(),
        frames: v.get("frames").and_then(Value::as_u64).unwrap_or(0),
        fps: v.get("fps").and_then(Value::as_f64).unwrap_or(f64::NAN),
        stats,
        occupancy,
        timing,
        stalls,
        site_stalls: opt_vec(v, "site_stalls", label)?,
        hotspots: opt_vec(v, "hotspots", label)?,
        telemetry,
    })
}

fn add_breakdown(acc: &mut StallBreakdown, x: &StallBreakdown) {
    acc.execute_issue += x.execute_issue;
    acc.branch_divergence += x.branch_divergence;
    acc.shared_replay += x.shared_replay;
    acc.barrier_wait += x.barrier_wait;
    acc.memory_dependency += x.memory_dependency;
    acc.latency_exposure += x.latency_exposure;
}

fn reason_deltas(a: &StallBreakdown, b: &StallBreakdown) -> Vec<ReasonDelta> {
    a.entries()
        .into_iter()
        .zip(b.entries())
        .map(|((reason, av), (_, bv))| ReasonDelta {
            reason: reason.to_string(),
            a_s: av,
            b_s: bv,
            delta_s: bv - av,
        })
        .collect()
}

/// Per-source accumulation of one side's site rows.
#[derive(Default)]
struct SiteAcc {
    present: bool,
    stalls: StallBreakdown,
    counters: SiteStats,
}

fn accumulate_sites(
    site_stalls: &[SiteStallRow],
    hotspots: &[HotspotRow],
) -> BTreeMap<String, SiteAcc> {
    let mut map: BTreeMap<String, SiteAcc> = BTreeMap::new();
    for row in site_stalls {
        let key = row.source.clone().unwrap_or_else(|| UNRESOLVED.into());
        let acc = map.entry(key).or_default();
        acc.present = true;
        add_breakdown(&mut acc.stalls, &row.stalls);
    }
    for row in hotspots {
        let key = row.source.clone().unwrap_or_else(|| UNRESOLVED.into());
        let acc = map.entry(key).or_default();
        acc.present = true;
        acc.counters.merge(&row.stats);
    }
    map
}

fn site_diffs(a: &ProfileSide, b: &ProfileSide) -> Vec<SiteDiff> {
    let ma = accumulate_sites(&a.site_stalls, &a.hotspots);
    let mb = accumulate_sites(&b.site_stalls, &b.hotspots);
    let keys: std::collections::BTreeSet<&String> = ma.keys().chain(mb.keys()).collect();
    let zero = SiteAcc::default();
    let mut out: Vec<SiteDiff> = keys
        .into_iter()
        .map(|key| {
            let sa = ma.get(key).unwrap_or(&zero);
            let sb = mb.get(key).unwrap_or(&zero);
            let presence = match (sa.present, sb.present) {
                (true, true) => "both",
                (true, false) => "a_only",
                _ => "b_only",
            };
            let stalls = reason_deltas(&sa.stalls, &sb.stalls);
            let dominant = stalls
                .iter()
                .fold(("execute_issue".to_string(), f64::MIN), |best, r| {
                    if r.delta_s.abs() > best.1 {
                        (r.reason.clone(), r.delta_s.abs())
                    } else {
                        best
                    }
                })
                .0;
            SiteDiff {
                source: key.clone(),
                presence: presence.to_string(),
                a_s: sa.stalls.sum(),
                b_s: sb.stalls.sum(),
                delta_s: sb.stalls.sum() - sa.stalls.sum(),
                dominant_reason: dominant,
                stalls,
                issue_cycles_delta: sb.counters.issue_cycles - sa.counters.issue_cycles,
                transactions_delta: sb.counters.transactions as i64
                    - sa.counters.transactions as i64,
                bytes_requested_delta: sb.counters.bytes_requested as i64
                    - sa.counters.bytes_requested as i64,
                divergent_slots_delta: sb.counters.divergent_branch_slots as i64
                    - sa.counters.divergent_branch_slots as i64,
                shared_replays_delta: sb.counters.shared_replays as i64
                    - sa.counters.shared_replays as i64,
            }
        })
        .collect();
    out.sort_by(|x, y| {
        y.delta_s
            .abs()
            .total_cmp(&x.delta_s.abs())
            .then_with(|| x.source.cmp(&y.source))
    });
    out
}

/// Counterfactual counter pricing: side A's counters with one set at a
/// time swapped to side B's value, re-run through the timing model —
/// the same machinery the advisor uses to price a transform.
fn counterfactuals(a: &ProfileSide, b: &ProfileSide, cfg: &GpuConfig) -> (Vec<CounterDiff>, f64) {
    let t_a = kernel_time(&a.stats, &a.occupancy, cfg).total;
    let t_b = kernel_time(&b.stats, &b.occupancy, cfg).total;
    let mut out: Vec<CounterDiff> = Vec::new();
    let mut price = |counter: &str, av: f64, bv: f64, swapped: &KernelStats, occ: &Occupancy| {
        let t = kernel_time(swapped, occ, cfg).total;
        out.push(CounterDiff {
            counter: counter.to_string(),
            a: av,
            b: bv,
            delta: bv - av,
            contribution_s: t - t_a,
        });
    };
    {
        let mut s = a.stats.clone();
        s.issue_cycles = b.stats.issue_cycles;
        price(
            "issue_cycles",
            a.stats.issue_cycles,
            b.stats.issue_cycles,
            &s,
            &a.occupancy,
        );
    }
    {
        let mut s = a.stats.clone();
        s.global_load_tx = b.stats.global_load_tx;
        price(
            "global_load_tx",
            a.stats.global_load_tx as f64,
            b.stats.global_load_tx as f64,
            &s,
            &a.occupancy,
        );
    }
    {
        let mut s = a.stats.clone();
        s.global_store_tx = b.stats.global_store_tx;
        price(
            "global_store_tx",
            a.stats.global_store_tx as f64,
            b.stats.global_store_tx as f64,
            &s,
            &a.occupancy,
        );
    }
    {
        let mut s = a.stats.clone();
        s.local_load_tx = b.stats.local_load_tx;
        s.local_store_tx = b.stats.local_store_tx;
        price(
            "local_spill_tx",
            (a.stats.local_load_tx + a.stats.local_store_tx) as f64,
            (b.stats.local_load_tx + b.stats.local_store_tx) as f64,
            &s,
            &a.occupancy,
        );
    }
    {
        let mut s = a.stats.clone();
        s.warps = b.stats.warps;
        price(
            "launched_warps",
            a.stats.warps as f64,
            b.stats.warps as f64,
            &s,
            &a.occupancy,
        );
    }
    price(
        "occupancy",
        a.occupancy.occupancy,
        b.occupancy.occupancy,
        &a.stats.clone(),
        &b.occupancy,
    );
    out.sort_by(|x, y| {
        y.contribution_s
            .abs()
            .total_cmp(&x.contribution_s.abs())
            .then_with(|| x.counter.cmp(&y.counter))
    });
    let sum: f64 = out.iter().map(|c| c.contribution_s).sum();
    (out, (t_b - t_a) - sum)
}

/// Redistributes a per-quantum byte integral onto `k` buckets of a
/// normalized clock, conserving the total (overlap-proportional spread).
fn resample_integral(rates: &[f64], quantum: f64, k: usize) -> Vec<f64> {
    let mut out = vec![0.0; k];
    let n = rates.len();
    if n == 0 || quantum <= 0.0 || k == 0 {
        return out;
    }
    let span = n as f64 * quantum;
    let bw = span / k as f64;
    for (i, &rate) in rates.iter().enumerate() {
        let amount = rate * quantum;
        let q0 = i as f64 * quantum;
        let q1 = q0 + quantum;
        let first = ((q0 / bw) as usize).min(k - 1);
        for (j, slot) in out.iter_mut().enumerate().take(k).skip(first) {
            let b0 = j as f64 * bw;
            if b0 >= q1 {
                break;
            }
            let overlap = (q1.min(b0 + bw) - q0.max(b0)).max(0.0);
            *slot += amount * (overlap / quantum);
        }
    }
    out
}

/// Overlap-weighted time average of a rate/ratio series on `k` buckets
/// of a normalized clock.
fn resample_mean(values: &[f64], quantum: f64, k: usize) -> Vec<f64> {
    let mut vsum = vec![0.0; k];
    let mut wsum = vec![0.0; k];
    let n = values.len();
    if n == 0 || quantum <= 0.0 || k == 0 {
        return vsum;
    }
    let span = n as f64 * quantum;
    let bw = span / k as f64;
    for (i, &v) in values.iter().enumerate() {
        let q0 = i as f64 * quantum;
        let q1 = q0 + quantum;
        let first = ((q0 / bw) as usize).min(k - 1);
        for j in first..k {
            let b0 = j as f64 * bw;
            if b0 >= q1 {
                break;
            }
            let overlap = (q1.min(b0 + bw) - q0.max(b0)).max(0.0);
            vsum[j] += v * overlap;
            wsum[j] += overlap;
        }
    }
    for (v, w) in vsum.iter_mut().zip(&wsum) {
        *v = if *w > 0.0 { *v / *w } else { 0.0 };
    }
    vsum
}

/// Busy-weighted device occupancy per quantum.
fn device_occupancy_series(t: &PipelineTelemetry) -> Vec<f64> {
    (0..t.samples())
        .map(|q| {
            let mut num = 0.0;
            let mut den = 0.0;
            for s in &t.sm {
                num += s.occupancy.get(q).copied().unwrap_or(0.0)
                    * s.active.get(q).copied().unwrap_or(0.0);
                den += s.active.get(q).copied().unwrap_or(0.0);
            }
            if den > 0.0 {
                num / den
            } else {
                0.0
            }
        })
        .collect()
}

fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        0.0
    } else {
        values.iter().sum::<f64>() / values.len() as f64
    }
}

fn telemetry_diff(a: &PipelineTelemetry, b: &PipelineTelemetry) -> TelemetryDiff {
    let k = TELEMETRY_DIFF_BUCKETS;
    let bytes_a = resample_integral(&a.dram_bandwidth, a.quantum, k);
    let bytes_b = resample_integral(&b.dram_bandwidth, b.quantum, k);
    let occ_a = resample_mean(&device_occupancy_series(a), a.quantum, k);
    let occ_b = resample_mean(&device_occupancy_series(b), b.quantum, k);
    let l2_a = resample_mean(&a.l2_hit_rate, a.quantum, k);
    let l2_b = resample_mean(&b.l2_hit_rate, b.quantum, k);
    let peak = |t: &PipelineTelemetry| t.dram_bandwidth.iter().copied().fold(0.0, f64::max);
    TelemetryDiff {
        buckets: k,
        makespan_a_s: a.makespan,
        makespan_b_s: b.makespan,
        makespan_delta_s: b.makespan - a.makespan,
        dram_bytes_a: a.total_dram_bytes(),
        dram_bytes_b: b.total_dram_bytes(),
        dram_bytes_delta: b.total_dram_bytes() - a.total_dram_bytes(),
        peak_dram_bw_a: peak(a),
        peak_dram_bw_b: peak(b),
        peak_dram_bw_delta: peak(b) - peak(a),
        mean_busy_occupancy_a: a.mean_busy_occupancy(),
        mean_busy_occupancy_b: b.mean_busy_occupancy(),
        mean_busy_occupancy_delta: b.mean_busy_occupancy() - a.mean_busy_occupancy(),
        mean_l2_hit_rate_a: mean(&a.l2_hit_rate),
        mean_l2_hit_rate_b: mean(&b.l2_hit_rate),
        mean_l2_hit_rate_delta: mean(&b.l2_hit_rate) - mean(&a.l2_hit_rate),
        dram_bytes_series_delta: bytes_a.iter().zip(&bytes_b).map(|(x, y)| y - x).collect(),
        occupancy_series_delta: occ_a.iter().zip(&occ_b).map(|(x, y)| y - x).collect(),
        l2_series_delta: l2_a.iter().zip(&l2_b).map(|(x, y)| y - x).collect(),
    }
}

fn diff_profile_pair(a: &ProfileSide, b: &ProfileSide, cfg: &GpuConfig) -> KernelDiff {
    let time_delta = b.timing.total - a.timing.total;
    let stalls = reason_deltas(&a.stalls, &b.stalls);
    let stall_sum: f64 = stalls.iter().map(|r| r.delta_s).sum();
    let sites = site_diffs(a, b);
    let attributed: f64 = sites
        .iter()
        .filter(|s| s.source != UNRESOLVED)
        .map(|s| s.delta_s)
        .sum();
    let attributed_fraction = if time_delta.abs() <= 1e-18 {
        1.0
    } else {
        attributed / time_delta
    };
    let (counters, interaction) = counterfactuals(a, b, cfg);
    let telemetry = match (&a.telemetry, &b.telemetry) {
        (Some(ta), Some(tb)) => Some(telemetry_diff(ta, tb)),
        _ => None,
    };
    KernelDiff {
        label: format!("{} -> {}", a.level, b.level),
        a_level: a.level.clone(),
        b_level: b.level.clone(),
        frames_a: a.frames,
        frames_b: b.frames,
        fps_a: a.fps,
        fps_b: b.fps,
        time_a_s: a.timing.total,
        time_b_s: b.timing.total,
        time_delta_s: time_delta,
        bound_a: format!("{:?}", a.timing.bound),
        bound_b: format!("{:?}", b.timing.bound),
        occupancy_a: a.occupancy.occupancy,
        occupancy_b: b.occupancy.occupancy,
        stalls,
        stall_delta_sum_s: stall_sum,
        attributed_delta_s: attributed,
        attributed_fraction,
        sites,
        counters,
        interaction_s: interaction,
        telemetry,
    }
}

/// Diffs two latency histograms: per-bucket subtraction plus quantile
/// shifts, on the shared fixed bucket scheme.
pub fn histogram_diff(name: &str, a: &LatencyHistogram, b: &LatencyHistogram) -> HistogramDiff {
    let buckets = (0..=NUM_BOUNDS)
        .filter_map(|i| {
            let ca = a.counts.get(i).copied().unwrap_or(0);
            let cb = b.counts.get(i).copied().unwrap_or(0);
            if ca == cb {
                return None;
            }
            let le = if i < NUM_BOUNDS {
                format!("{:?}", bucket_bound(i))
            } else {
                "+Inf".to_string()
            };
            Some(BucketDelta {
                le,
                a: ca,
                b: cb,
                delta: cb as i64 - ca as i64,
            })
        })
        .collect();
    HistogramDiff {
        name: name.to_string(),
        count_a: a.count,
        count_b: b.count,
        count_delta: b.count as i64 - a.count as i64,
        sum_a_s: a.sum,
        sum_b_s: b.sum,
        sum_delta_s: b.sum - a.sum,
        mean_shift_s: b.mean() - a.mean(),
        p50_shift_s: b.quantile(0.5) - a.quantile(0.5),
        p95_shift_s: b.quantile(0.95) - a.quantile(0.95),
        p99_shift_s: b.quantile(0.99) - a.quantile(0.99),
        buckets,
    }
}

fn serving_diff(a: &ServingReport, b: &ServingReport) -> ServingDiff {
    let totals = |r: &ServingReport| {
        r.streams.iter().fold((0i64, 0i64), |(f, v), s| {
            (f + s.frames_completed as i64, v + s.slo_violations as i64)
        })
    };
    let (fa, va) = totals(a);
    let (fb, vb) = totals(b);
    let ids: std::collections::BTreeSet<usize> = a
        .streams
        .iter()
        .map(|s| s.stream)
        .chain(b.streams.iter().map(|s| s.stream))
        .collect();
    let streams = ids
        .into_iter()
        .map(|id| {
            let sa = a.streams.iter().find(|s| s.stream == id);
            let sb = b.streams.iter().find(|s| s.stream == id);
            let presence = match (sa.is_some(), sb.is_some()) {
                (true, true) => "both",
                (true, false) => "a_only",
                _ => "b_only",
            };
            let p95 = |s: Option<&crate::serving::StreamServing>| {
                s.map(|s| s.e2e_latency.quantile(0.95)).unwrap_or(f64::NAN)
            };
            StreamDiff {
                stream: id,
                presence: presence.to_string(),
                frames_completed_delta: sb.map_or(0, |s| s.frames_completed as i64)
                    - sa.map_or(0, |s| s.frames_completed as i64),
                slo_violations_delta: sb.map_or(0, |s| s.slo_violations as i64)
                    - sa.map_or(0, |s| s.slo_violations as i64),
                e2e_p95_shift_s: p95(sb) - p95(sa),
            }
        })
        .collect();
    ServingDiff {
        device_a: a.device.clone(),
        device_b: b.device.clone(),
        makespan_a_s: a.makespan_s,
        makespan_b_s: b.makespan_s,
        makespan_delta_s: b.makespan_s - a.makespan_s,
        streams_a: a.streams.len(),
        streams_b: b.streams.len(),
        frames_completed_delta: fb - fa,
        slo_violations_delta: vb - va,
        frame: histogram_diff(
            "frame_latency",
            &a.pipeline_frame_latency,
            &b.pipeline_frame_latency,
        ),
        e2e: histogram_diff(
            "e2e_latency",
            &a.pipeline_e2e_latency,
            &b.pipeline_e2e_latency,
        ),
        streams,
    }
}

fn fleet_diff(a: &FleetReport, b: &FleetReport) -> FleetDiff {
    let labels: std::collections::BTreeSet<&String> = a
        .devices
        .iter()
        .map(|d| &d.label)
        .chain(b.devices.iter().map(|d| &d.label))
        .collect();
    let devices = labels
        .into_iter()
        .map(|label| {
            let da = a.devices.iter().find(|d| &d.label == label);
            let db = b.devices.iter().find(|d| &d.label == label);
            let presence = match (da.is_some(), db.is_some()) {
                (true, true) => "both",
                (true, false) => "a_only",
                _ => "b_only",
            };
            let sums = |d: Option<&crate::fleet::FleetDeviceReport>| {
                d.map_or((0i64, 0i64, 0i64), |d| {
                    let (f, v) = d.serving.streams.iter().fold((0i64, 0i64), |(f, v), s| {
                        (f + s.frames_completed as i64, v + s.slo_violations as i64)
                    });
                    (d.admitted.len() as i64, v, f)
                })
            };
            let (aa, av, af) = sums(da);
            let (ba, bv, bf) = sums(db);
            FleetDeviceDiff {
                label: label.clone(),
                presence: presence.to_string(),
                streams_admitted_delta: ba - aa,
                slo_violations_delta: bv - av,
                frames_completed_delta: bf - af,
            }
        })
        .collect();
    FleetDiff {
        devices_a: a.devices.len(),
        devices_b: b.devices.len(),
        makespan_delta_s: b.makespan_s - a.makespan_s,
        streams_admitted_delta: b.streams_admitted() as i64 - a.streams_admitted() as i64,
        streams_at_slo_delta: b.streams_at_slo() as i64 - a.streams_at_slo() as i64,
        frames_dropped_delta: b.frames_dropped() as i64 - a.frames_dropped() as i64,
        e2e: histogram_diff("e2e_latency", &a.e2e_latency, &b.e2e_latency),
        devices,
    }
}

/// Aggregated (name-keyed) view of one dataflow graph document.
struct DataflowAgg {
    nodes: BTreeMap<String, (String, i64, i64)>, // name -> (kind, stored, dead)
    edges: BTreeMap<(String, String), i64>,
    reread: i64,
}

fn parse_dataflow(v: &Value, what: &str) -> Result<DataflowAgg, String> {
    let nodes = v
        .get("nodes")
        .and_then(Value::as_array)
        .ok_or_else(|| format!("{what}: missing `nodes`"))?;
    let edges = v
        .get("edges")
        .and_then(Value::as_array)
        .ok_or_else(|| format!("{what}: missing `edges`"))?;
    let mut names: Vec<String> = Vec::with_capacity(nodes.len());
    let mut agg = DataflowAgg {
        nodes: BTreeMap::new(),
        edges: BTreeMap::new(),
        reread: v
            .get("reread_from_host_bytes")
            .and_then(Value::as_u64)
            .unwrap_or(0) as i64,
    };
    for n in nodes {
        let name = n
            .get("name")
            .and_then(Value::as_str)
            .unwrap_or("?")
            .to_string();
        let kind = n
            .get("kind")
            .and_then(Value::as_str)
            .unwrap_or("?")
            .to_string();
        let stored = n.get("stored_bytes").and_then(Value::as_u64).unwrap_or(0) as i64;
        let dead = n
            .get("dead_store_bytes")
            .and_then(Value::as_u64)
            .unwrap_or(0) as i64;
        names.push(name.clone());
        let e = agg.nodes.entry(name).or_insert((kind, 0, 0));
        e.1 += stored;
        e.2 += dead;
    }
    for e in edges {
        let p = e.get("producer").and_then(Value::as_u64).unwrap_or(0) as usize;
        let c = e.get("consumer").and_then(Value::as_u64).unwrap_or(0) as usize;
        let bytes = e.get("bytes").and_then(Value::as_u64).unwrap_or(0) as i64;
        let (Some(pn), Some(cn)) = (names.get(p), names.get(c)) else {
            return Err(format!("{what}: edge references unknown node {p}->{c}"));
        };
        *agg.edges.entry((pn.clone(), cn.clone())).or_insert(0) += bytes;
    }
    Ok(agg)
}

/// Diffs two dataflow graph documents (as produced by
/// `mogpu dataflow --json`), matching nodes and edges by kernel name.
pub fn dataflow_diff(a: &Value, b: &Value) -> Result<DataflowDiff, String> {
    let ga = parse_dataflow(a, "side A")?;
    let gb = parse_dataflow(b, "side B")?;
    let node_names: std::collections::BTreeSet<&String> =
        ga.nodes.keys().chain(gb.nodes.keys()).collect();
    let nodes = node_names
        .into_iter()
        .map(|name| {
            let empty = (String::from("?"), 0i64, 0i64);
            let na = ga.nodes.get(name).unwrap_or(&empty);
            let nb = gb.nodes.get(name).unwrap_or(&empty);
            let kind = if na.0 != "?" {
                na.0.clone()
            } else {
                nb.0.clone()
            };
            DataflowNodeDiff {
                name: name.clone(),
                kind,
                stored_delta: nb.1 - na.1,
                dead_store_delta: nb.2 - na.2,
            }
        })
        .collect();
    let edge_keys: std::collections::BTreeSet<&(String, String)> =
        ga.edges.keys().chain(gb.edges.keys()).collect();
    let edges = edge_keys
        .into_iter()
        .map(|key| {
            let ba = ga.edges.get(key).copied().unwrap_or(0);
            let bb = gb.edges.get(key).copied().unwrap_or(0);
            DataflowEdgeDiff {
                producer: key.0.clone(),
                consumer: key.1.clone(),
                bytes_a: ba as u64,
                bytes_b: bb as u64,
                delta: bb - ba,
            }
        })
        .collect();
    Ok(DataflowDiff {
        nodes,
        edges,
        reread_from_host_delta: gb.reread - ga.reread,
    })
}

impl DataflowDiff {
    /// Renders the diff as a Graphviz DOT "what changed" overlay: edges
    /// that grew are red, edges that shrank are green, unchanged edges
    /// gray; edges present on only one side are dashed.
    pub fn to_dot(&self) -> String {
        let mut out = String::from("digraph dataflow_diff {\n  rankdir=LR;\n");
        let ix: BTreeMap<&String, usize> = self
            .nodes
            .iter()
            .enumerate()
            .map(|(i, n)| (&n.name, i))
            .collect();
        for (i, n) in self.nodes.iter().enumerate() {
            let shape = if n.kind == "kernel" { "ellipse" } else { "box" };
            let mut detail = format!("{:+} B stored", n.stored_delta);
            if n.dead_store_delta != 0 {
                detail.push_str(&format!(", {:+} B dead", n.dead_store_delta));
            }
            out.push_str(&format!(
                "  n{i} [label=\"{}\\n{detail}\" shape={shape}];\n",
                n.name
            ));
        }
        for e in &self.edges {
            let (Some(&p), Some(&c)) = (ix.get(&e.producer), ix.get(&e.consumer)) else {
                continue;
            };
            let color = match e.delta.cmp(&0) {
                std::cmp::Ordering::Greater => "red",
                std::cmp::Ordering::Less => "green",
                std::cmp::Ordering::Equal => "gray",
            };
            let style = if e.bytes_a == 0 || e.bytes_b == 0 {
                " style=dashed"
            } else {
                ""
            };
            out.push_str(&format!(
                "  n{p} -> n{c} [label=\"{} -> {} B ({:+})\" color={color}{style}];\n",
                e.bytes_a, e.bytes_b, e.delta
            ));
        }
        out.push_str("}\n");
        out
    }
}

fn flatten_numeric(prefix: &str, v: &Value, out: &mut BTreeMap<String, f64>) {
    match v {
        Value::Object(fields) => {
            for (k, vv) in fields {
                let path = if prefix.is_empty() {
                    k.clone()
                } else {
                    format!("{prefix}.{k}")
                };
                flatten_numeric(&path, vv, out);
            }
        }
        Value::F64(f) => {
            out.insert(prefix.to_string(), *f);
        }
        Value::I64(i) => {
            out.insert(prefix.to_string(), *i as f64);
        }
        Value::U64(u) => {
            out.insert(prefix.to_string(), *u as f64);
        }
        _ => {}
    }
}

/// Flattens two bench baselines into dotted metric paths and diffs the
/// union (tolerances/schema/config/report pointers are bookkeeping, not
/// measurements, and are skipped).
fn bench_metrics(a: &Value, b: &Value) -> Vec<MetricDelta> {
    let flat = |v: &Value| {
        let mut out = BTreeMap::new();
        if let Value::Object(fields) = v {
            for (k, vv) in fields {
                if matches!(k.as_str(), "schema" | "config" | "tolerances" | "reports") {
                    continue;
                }
                flatten_numeric(k, vv, &mut out);
            }
        }
        out
    };
    let fa = flat(a);
    let fb = flat(b);
    let keys: std::collections::BTreeSet<&String> = fa.keys().chain(fb.keys()).collect();
    keys.into_iter()
        .map(|k| {
            let av = fa.get(k).copied().unwrap_or(f64::NAN);
            let bv = fb.get(k).copied().unwrap_or(f64::NAN);
            MetricDelta {
                metric: k.clone(),
                a: av,
                b: bv,
                delta: bv - av,
            }
        })
        .collect()
}

/// Diffs two serialized report documents of the same kind. `a_label` /
/// `b_label` name the sides in output (typically the file names); `cfg`
/// is the device model used for counterfactual re-timing (and for
/// recomputing timing/stalls when a document omits them).
pub fn diff_values(
    a: &Value,
    b: &Value,
    a_label: &str,
    b_label: &str,
    cfg: &GpuConfig,
) -> Result<DiffReport, String> {
    let ka = detect_kind(a);
    let kb = detect_kind(b);
    if ka != kb {
        return Err(format!(
            "cannot diff a {ka:?} document against a {kb:?} document"
        ));
    }
    let mut report = DiffReport {
        schema: DIFF_SCHEMA,
        kind: ka.to_string(),
        a_label: a_label.to_string(),
        b_label: b_label.to_string(),
        kernels: Vec::new(),
        serving: None,
        fleet: None,
        dataflow: None,
        metrics: Vec::new(),
        notes: Vec::new(),
    };
    match ka {
        "profile" => {
            let sa = parse_profile_side(a, a_label, cfg)?;
            let sb = parse_profile_side(b, b_label, cfg)?;
            if sa.frames != sb.frames && sa.frames != 0 && sb.frames != 0 {
                report.notes.push(format!(
                    "frame counts differ ({} vs {}): absolute deltas include the workload change",
                    sa.frames, sb.frames
                ));
            }
            if sa.site_stalls.is_empty() || sb.site_stalls.is_empty() {
                report.notes.push(
                    "a side carries no site_stalls rows; per-site attribution is empty \
                     (profile with `mogpu profile`/`--report-out` for file:line evidence)"
                        .to_string(),
                );
            }
            report.kernels.push(diff_profile_pair(&sa, &sb, cfg));
        }
        "profile_array" => {
            let arr = |v: &Value, what: &str| -> Result<Vec<Value>, String> {
                v.as_array()
                    .map(|a| a.to_vec())
                    .ok_or_else(|| format!("{what}: expected an array"))
            };
            let pa: Vec<ProfileSide> = arr(a, a_label)?
                .iter()
                .map(|v| parse_profile_side(v, a_label, cfg))
                .collect::<Result<_, _>>()?;
            let pb: Vec<ProfileSide> = arr(b, b_label)?
                .iter()
                .map(|v| parse_profile_side(v, b_label, cfg))
                .collect::<Result<_, _>>()?;
            for sa in &pa {
                match pb.iter().find(|sb| sb.level == sa.level) {
                    Some(sb) => report.kernels.push(diff_profile_pair(sa, sb, cfg)),
                    None => report
                        .notes
                        .push(format!("level {} only present in {a_label}", sa.level)),
                }
            }
            for sb in &pb {
                if !pa.iter().any(|sa| sa.level == sb.level) {
                    report
                        .notes
                        .push(format!("level {} only present in {b_label}", sb.level));
                }
            }
        }
        "streams" => {
            let body = |v: &Value| v.get("serving").unwrap_or(v).clone();
            let sa = ServingReport::from_json_value(&body(a))
                .map_err(|e| format!("{a_label}: bad serving report: {e}"))?;
            let sb = ServingReport::from_json_value(&body(b))
                .map_err(|e| format!("{b_label}: bad serving report: {e}"))?;
            report.serving = Some(serving_diff(&sa, &sb));
        }
        "fleet" => {
            let body = |v: &Value| v.get("report").unwrap_or(v).clone();
            let fa = FleetReport::from_json_value(&body(a))
                .map_err(|e| format!("{a_label}: bad fleet report: {e}"))?;
            let fb = FleetReport::from_json_value(&body(b))
                .map_err(|e| format!("{b_label}: bad fleet report: {e}"))?;
            report.fleet = Some(fleet_diff(&fa, &fb));
        }
        "bench" => {
            report.metrics = bench_metrics(a, b);
        }
        "dataflow" => {
            report.dataflow = Some(dataflow_diff(a, b)?);
        }
        _ => {
            return Err(
                "unrecognized report document: expected a profile report (or ladder array), \
                 a streams/serving report, a fleet report, a bench baseline, or a dataflow \
                 graph JSON"
                    .to_string(),
            )
        }
    }
    Ok(report)
}

fn fmt_ms(s: f64) -> String {
    format!("{:.4}", s * 1e3)
}

impl DiffReport {
    /// Renders the diff as an aligned text report; `top` bounds the
    /// site, counter, stream, and metric tables.
    pub fn text(&self, top: usize) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "differential report ({}): {} -> {}\n",
            self.kind, self.a_label, self.b_label
        ));
        for k in &self.kernels {
            out.push_str(&format!(
                "\nkernel {}: {} ms -> {} ms (delta {:+.4} ms), bound {} -> {}, \
                 occupancy {:.3} -> {:.3}\n",
                k.label,
                fmt_ms(k.time_a_s),
                fmt_ms(k.time_b_s),
                k.time_delta_s * 1e3,
                k.bound_a,
                k.bound_b,
                k.occupancy_a,
                k.occupancy_b,
            ));
            out.push_str(&format!(
                "  stall-reason deltas (sum {:+.4} ms = kernel delta):\n",
                k.stall_delta_sum_s * 1e3
            ));
            out.push_str(&format!(
                "    {:<20} {:>12} {:>12} {:>12}\n",
                "reason", "a_ms", "b_ms", "delta_ms"
            ));
            for r in &k.stalls {
                out.push_str(&format!(
                    "    {:<20} {:>12} {:>12} {:>+12.4}\n",
                    r.reason,
                    fmt_ms(r.a_s),
                    fmt_ms(r.b_s),
                    r.delta_s * 1e3
                ));
            }
            out.push_str(&format!(
                "  attribution: {:.1}% of the kernel delta lands on {} resolved site(s)\n",
                k.attributed_fraction * 100.0,
                k.sites.iter().filter(|s| s.source != UNRESOLVED).count()
            ));
            if !k.sites.is_empty() {
                out.push_str(&format!(
                    "    {:<52} {:>12} {:>10} {:<18}\n",
                    "site", "delta_ms", "tx_delta", "dominant"
                ));
                for s in k.sites.iter().take(top) {
                    let shown = if s.source.len() > 52 {
                        &s.source[s.source.len() - 52..]
                    } else {
                        &s.source
                    };
                    out.push_str(&format!(
                        "    {:<52} {:>+12.4} {:>10} {:<18}\n",
                        shown,
                        s.delta_s * 1e3,
                        s.transactions_delta,
                        s.dominant_reason
                    ));
                }
            }
            out.push_str("  counter contributions (one counterfactual swap at a time):\n");
            out.push_str(&format!(
                "    {:<18} {:>14} {:>14} {:>16}\n",
                "counter", "a", "b", "contribution_ms"
            ));
            for c in k.counters.iter().take(top) {
                out.push_str(&format!(
                    "    {:<18} {:>14.1} {:>14.1} {:>+16.4}\n",
                    c.counter,
                    c.a,
                    c.b,
                    c.contribution_s * 1e3
                ));
            }
            out.push_str(&format!(
                "    interaction residual: {:+.4} ms\n",
                k.interaction_s * 1e3
            ));
            if let Some(t) = &k.telemetry {
                out.push_str(&format!(
                    "  telemetry: dram bytes {:+.3e}, peak bw {:+.3e} B/s, \
                     busy occupancy {:+.4}, l2 hit rate {:+.4}, makespan {:+.4} ms\n",
                    t.dram_bytes_delta,
                    t.peak_dram_bw_delta,
                    t.mean_busy_occupancy_delta,
                    t.mean_l2_hit_rate_delta,
                    t.makespan_delta_s * 1e3
                ));
            }
        }
        if let Some(s) = &self.serving {
            out.push_str(&format!(
                "\nserving {} -> {}: makespan {:+.4} s, frames {:+}, violations {:+}\n",
                s.device_a,
                s.device_b,
                s.makespan_delta_s,
                s.frames_completed_delta,
                s.slo_violations_delta
            ));
            for h in [&s.frame, &s.e2e] {
                out.push_str(&format!(
                    "  {}: count {:+}, mean {:+.4} ms, p50 {:+.4} ms, p95 {:+.4} ms, \
                     p99 {:+.4} ms, {} bucket(s) moved\n",
                    h.name,
                    h.count_delta,
                    h.mean_shift_s * 1e3,
                    h.p50_shift_s * 1e3,
                    h.p95_shift_s * 1e3,
                    h.p99_shift_s * 1e3,
                    h.buckets.len()
                ));
            }
            for st in s.streams.iter().take(top) {
                out.push_str(&format!(
                    "  stream {}: frames {:+}, violations {:+}, e2e p95 {:+.4} ms\n",
                    st.stream,
                    st.frames_completed_delta,
                    st.slo_violations_delta,
                    st.e2e_p95_shift_s * 1e3
                ));
            }
        }
        if let Some(f) = &self.fleet {
            out.push_str(&format!(
                "\nfleet: devices {} -> {}, admitted {:+}, at-slo {:+}, dropped {:+}, \
                 makespan {:+.4} s\n",
                f.devices_a,
                f.devices_b,
                f.streams_admitted_delta,
                f.streams_at_slo_delta,
                f.frames_dropped_delta,
                f.makespan_delta_s
            ));
            for d in f.devices.iter().take(top) {
                out.push_str(&format!(
                    "  {} ({}): admitted {:+}, violations {:+}, frames {:+}\n",
                    d.label,
                    d.presence,
                    d.streams_admitted_delta,
                    d.slo_violations_delta,
                    d.frames_completed_delta
                ));
            }
        }
        if let Some(d) = &self.dataflow {
            out.push_str(&format!(
                "\ndataflow: {} node(s), {} edge(s), reread-from-host {:+} B\n",
                d.nodes.len(),
                d.edges.len(),
                d.reread_from_host_delta
            ));
            for e in d.edges.iter().take(top) {
                out.push_str(&format!(
                    "  {} -> {}: {} -> {} B ({:+})\n",
                    e.producer, e.consumer, e.bytes_a, e.bytes_b, e.delta
                ));
            }
        }
        if !self.metrics.is_empty() {
            let moved: Vec<&MetricDelta> = self
                .metrics
                .iter()
                .filter(|m| m.delta != 0.0 || !m.delta.is_finite())
                .collect();
            out.push_str(&format!(
                "\nbench metrics: {} compared, {} moved\n",
                self.metrics.len(),
                moved.len()
            ));
            out.push_str(&format!(
                "  {:<40} {:>14} {:>14} {:>12}\n",
                "metric", "a", "b", "delta"
            ));
            for m in moved.iter().take(top) {
                out.push_str(&format!(
                    "  {:<40} {:>14.4} {:>14.4} {:>+12.4}\n",
                    m.metric, m.a, m.b, m.delta
                ));
            }
        }
        for n in &self.notes {
            out.push_str(&format!("note: {n}\n"));
        }
        out
    }

    /// Prometheus text exposition of the diff: `mogpu_diff_*` gauges for
    /// kernel/stall/counter/site movement, histogram quantile shifts,
    /// and bench metric deltas.
    pub fn prometheus(&self, top_sites: usize) -> String {
        let mut out = String::new();
        fn header(out: &mut String, name: &str, help: &str) {
            out.push_str(&format!("# HELP {name} {help}\n# TYPE {name} gauge\n"));
        }
        fn sample(out: &mut String, name: &str, labels: &[(&str, &str)], v: f64) {
            let body: Vec<String> = labels
                .iter()
                .map(|(k, val)| format!("{k}=\"{}\"", val.replace('"', "'")))
                .collect();
            out.push_str(&format!("{name}{{{}}} {v}\n", body.join(",")));
        }
        if !self.kernels.is_empty() {
            header(
                &mut out,
                "mogpu_diff_kernel_time_delta_seconds",
                "Modelled kernel-time delta (B - A).",
            );
            for k in &self.kernels {
                sample(
                    &mut out,
                    "mogpu_diff_kernel_time_delta_seconds",
                    &[("pair", &k.label)],
                    k.time_delta_s,
                );
            }
            header(
                &mut out,
                "mogpu_diff_stall_delta_seconds",
                "Per-stall-reason kernel-time delta; sums to the kernel delta.",
            );
            for k in &self.kernels {
                for r in &k.stalls {
                    sample(
                        &mut out,
                        "mogpu_diff_stall_delta_seconds",
                        &[("pair", &k.label), ("reason", &r.reason)],
                        r.delta_s,
                    );
                }
            }
            header(
                &mut out,
                "mogpu_diff_counter_contribution_seconds",
                "Counterfactually priced kernel-time movement of one counter set.",
            );
            for k in &self.kernels {
                for c in &k.counters {
                    sample(
                        &mut out,
                        "mogpu_diff_counter_contribution_seconds",
                        &[("pair", &k.label), ("counter", &c.counter)],
                        c.contribution_s,
                    );
                }
            }
            header(
                &mut out,
                "mogpu_diff_site_delta_seconds",
                "Per-source-site stall-time delta.",
            );
            for k in &self.kernels {
                for s in k.sites.iter().take(top_sites) {
                    sample(
                        &mut out,
                        "mogpu_diff_site_delta_seconds",
                        &[("pair", &k.label), ("source", &s.source)],
                        s.delta_s,
                    );
                }
            }
        }
        let mut hist_shifts: Vec<(&HistogramDiff, &'static str)> = Vec::new();
        if let Some(s) = &self.serving {
            hist_shifts.push((&s.frame, "serving"));
            hist_shifts.push((&s.e2e, "serving"));
        }
        if let Some(f) = &self.fleet {
            hist_shifts.push((&f.e2e, "fleet"));
        }
        if !hist_shifts.is_empty() {
            header(
                &mut out,
                "mogpu_diff_latency_quantile_shift_seconds",
                "Latency-quantile shift (B - A).",
            );
            for (h, scope) in &hist_shifts {
                for (q, v) in [
                    ("0.5", h.p50_shift_s),
                    ("0.95", h.p95_shift_s),
                    ("0.99", h.p99_shift_s),
                ] {
                    sample(
                        &mut out,
                        "mogpu_diff_latency_quantile_shift_seconds",
                        &[("scope", scope), ("histogram", &h.name), ("quantile", q)],
                        v,
                    );
                }
            }
        }
        if !self.metrics.is_empty() {
            header(
                &mut out,
                "mogpu_diff_metric_delta",
                "Bench-baseline metric delta (B - A).",
            );
            for m in &self.metrics {
                sample(
                    &mut out,
                    "mogpu_diff_metric_delta",
                    &[("metric", &m.metric)],
                    m.delta,
                );
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::occupancy::Limiter;

    fn occ(o: f64) -> Occupancy {
        Occupancy {
            resident_blocks: 8,
            resident_warps: 32,
            resident_threads: 1024,
            occupancy: o,
            limiter: Limiter::Registers,
        }
    }

    fn side(load_tx: u64, issue: f64) -> Value {
        let stats = KernelStats {
            issue_cycles: issue,
            warps: 100_000,
            divergent_branch_slots: 500,
            global_load_tx: load_tx,
            global_store_tx: load_tx / 2,
            ..Default::default()
        };
        let cfg = GpuConfig::tesla_c2075();
        let o = occ(0.5);
        let timing = kernel_time(&stats, &o, &cfg);
        let stalls = kernel_stalls(&stats, &timing, &o);
        serde_json::json!({
            "level": "X",
            "frames": 4,
            "fps": 10.0,
            "stats": stats,
            "occupancy": o,
            "timing": timing,
            "stalls": stalls,
            "site_stalls": crate::stallreasons::site_stalls(
                &[HotspotRow {
                    source: Some("k.rs:1".to_string()),
                    stats: SiteStats {
                        issue_cycles: issue,
                        divergent_branch_slots: 500,
                        transactions: load_tx + load_tx / 2,
                        ..Default::default()
                    },
                }],
                &stats,
                &timing,
                &o,
            ),
        })
    }

    #[test]
    fn self_diff_is_all_zeros() {
        let v = side(60_000, 10_000.0);
        let cfg = GpuConfig::tesla_c2075();
        let d = diff_values(&v, &v, "a", "b", &cfg).unwrap();
        let k = &d.kernels[0];
        assert_eq!(k.time_delta_s, 0.0);
        assert_eq!(k.stall_delta_sum_s, 0.0);
        assert!(k.stalls.iter().all(|r| r.delta_s == 0.0));
        assert!(k.counters.iter().all(|c| c.contribution_s == 0.0));
        assert_eq!(k.interaction_s, 0.0);
        assert_eq!(k.attributed_fraction, 1.0);
        // Byte-stable canonical serialization.
        let s1 = serde_json::to_string_canonical_pretty(&d).unwrap();
        let s2 =
            serde_json::to_string_canonical_pretty(&diff_values(&v, &v, "a", "b", &cfg).unwrap())
                .unwrap();
        assert_eq!(s1, s2);
    }

    #[test]
    fn stall_deltas_conserve_the_kernel_delta() {
        let a = side(600_000, 10_000.0);
        let b = side(60_000, 8_000.0);
        let cfg = GpuConfig::tesla_c2075();
        let d = diff_values(&a, &b, "a", "b", &cfg).unwrap();
        let k = &d.kernels[0];
        assert!(k.time_delta_s != 0.0);
        assert!(
            (k.stall_delta_sum_s - k.time_delta_s).abs() <= 1e-9 * k.time_delta_s.abs(),
            "bucket deltas {} != kernel delta {}",
            k.stall_delta_sum_s,
            k.time_delta_s
        );
        // The single site carries the whole delta.
        assert!((k.attributed_fraction - 1.0).abs() < 1e-6);
        assert_eq!(k.sites[0].source, "k.rs:1");
    }

    #[test]
    fn counterfactual_ranks_the_moved_counter_first() {
        // Only global_load_tx moves: it must rank first and its
        // contribution must explain the entire delta (no interaction).
        let a = side(600_000, 10_000.0);
        let b = side(60_000, 10_000.0);
        let cfg = GpuConfig::tesla_c2075();
        let d = diff_values(&a, &b, "a", "b", &cfg).unwrap();
        let k = &d.kernels[0];
        assert_eq!(k.counters[0].counter, "global_load_tx");
        assert!(k.counters[0].contribution_s < 0.0);
    }

    #[test]
    fn mismatched_kinds_are_rejected() {
        let p = side(1000, 100.0);
        let bench = serde_json::json!({
            "levels": serde_json::json!({}),
            "tolerances": serde_json::json!({}),
        });
        let cfg = GpuConfig::tesla_c2075();
        assert!(diff_values(&p, &bench, "a", "b", &cfg)
            .unwrap_err()
            .contains("cannot diff"));
    }

    #[test]
    fn histogram_diff_buckets_and_quantiles() {
        let a = LatencyHistogram::from_samples(&[1e-3, 2e-3, 4e-3]);
        let b = LatencyHistogram::from_samples(&[1e-3, 2e-2, 4e-2]);
        let h = histogram_diff("e2e_latency", &a, &b);
        assert_eq!(h.count_delta, 0);
        assert!(h.p95_shift_s > 0.0);
        let moved: i64 = h.buckets.iter().map(|b| b.delta).sum();
        // One sample left the low buckets for each that entered a high
        // one, so the signed bucket movement cancels.
        assert_eq!(moved, 0);
        // Self-diff has no moved buckets and zero shifts.
        let z = histogram_diff("e2e_latency", &a, &a);
        assert!(z.buckets.is_empty());
        assert_eq!(z.p99_shift_s, 0.0);
    }

    #[test]
    fn integral_resample_conserves_bytes() {
        let rates = vec![1e9, 2e9, 0.5e9, 3e9, 0.0, 1e9, 7e9];
        let quantum = 0.003;
        let resampled = resample_integral(&rates, quantum, 32);
        let total: f64 = resampled.iter().sum();
        let expect: f64 = rates.iter().sum::<f64>() * quantum;
        assert!((total - expect).abs() <= 1e-9 * expect);
    }

    #[test]
    fn bench_flatten_diffs_moved_metrics() {
        let level = |fps: f64| serde_json::json!({ "fps": fps });
        let a = serde_json::json!({
            "schema": 4u32,
            "tolerances": serde_json::json!({ "fps_rel": 0.02 }),
            "levels": serde_json::json!({ "A": level(10.0), "F": level(100.0) }),
        });
        let b = serde_json::json!({
            "schema": 4u32,
            "tolerances": serde_json::json!({ "fps_rel": 0.02 }),
            "levels": serde_json::json!({ "A": level(10.0), "F": level(90.0) }),
        });
        let cfg = GpuConfig::tesla_c2075();
        let d = diff_values(&a, &b, "a", "b", &cfg).unwrap();
        let moved: Vec<&MetricDelta> = d.metrics.iter().filter(|m| m.delta != 0.0).collect();
        assert_eq!(moved.len(), 1);
        assert_eq!(moved[0].metric, "levels.F.fps");
        assert!((moved[0].delta + 10.0).abs() < 1e-12);
        // Tolerances are bookkeeping, not metrics.
        assert!(d.metrics.iter().all(|m| !m.metric.contains("tolerances")));
    }

    #[test]
    fn dataflow_diff_aggregates_by_name() {
        let node = |id: u64, name: &str, stored: u64, dead: u64| {
            serde_json::json!({
                "id": id,
                "kind": "kernel",
                "name": name,
                "stored_bytes": stored,
                "dead_store_bytes": dead,
            })
        };
        let edge = |p: u64, c: u64, bytes: u64| serde_json::json!({ "producer": p, "consumer": c, "bytes": bytes });
        let a = serde_json::json!({
            "nodes": [node(0, "mog-update", 100, 0), node(1, "morphology", 50, 10)],
            "edges": [edge(0, 1, 40)],
            "reread_from_host_bytes": 0u64,
        });
        let b = serde_json::json!({
            "nodes": [node(0, "mog-update", 80, 0), node(1, "morphology", 50, 0)],
            "edges": [edge(0, 1, 10)],
            "reread_from_host_bytes": 5u64,
        });
        let d = dataflow_diff(&a, &b).unwrap();
        assert_eq!(d.edges.len(), 1);
        assert_eq!(d.edges[0].delta, -30);
        assert_eq!(d.reread_from_host_delta, 5);
        let dot = d.to_dot();
        assert!(dot.contains("color=green"));
        assert!(dot.contains("mog-update"));
    }
}

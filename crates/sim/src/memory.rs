//! Simulated device (GPU global) memory: a flat byte store with a bump
//! allocator and typed host-side accessors.
//!
//! Kernel-side accesses go through [`crate::kernel::ThreadCtx`], which also
//! records trace events; the accessors here are the host's view (used when
//! initializing Gaussian parameters or reading back results without a DMA
//! timing model — for timed transfers see [`crate::dma`]).

/// A handle to an allocation in [`DeviceMemory`].
///
/// Buffers are plain offset/length pairs: copying one does not alias
/// ownership, it just names the same region (like a raw device pointer).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Buffer {
    pub(crate) offset: usize,
    pub(crate) len: usize,
}

impl Buffer {
    /// Byte length of the allocation.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True for zero-length buffers.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Device byte address of the start of the buffer.
    pub fn addr(&self) -> u64 {
        self.offset as u64
    }

    /// A sub-buffer covering `[byte_off, byte_off + len)`.
    ///
    /// # Panics
    /// Panics if the range exceeds the buffer (including when
    /// `byte_off + len` overflows `usize`).
    pub fn slice(&self, byte_off: usize, len: usize) -> Buffer {
        let end = byte_off
            .checked_add(len)
            .unwrap_or_else(|| panic!("sub-buffer range {byte_off}+{len} overflows usize"));
        assert!(
            end <= self.len,
            "sub-buffer [{byte_off}, {end}) out of range for buffer of {} bytes",
            self.len
        );
        Buffer {
            offset: self.offset + byte_off,
            len,
        }
    }

    /// Byte offset of element `idx` of width `width`, bounds-checked
    /// against this buffer so a mis-sized index can never silently reach
    /// a neighboring allocation.
    #[track_caller]
    fn element_range(&self, idx: usize, width: usize, what: &str) -> usize {
        let end = idx
            .checked_mul(width)
            .and_then(|o| o.checked_add(width))
            .unwrap_or(usize::MAX);
        assert!(
            end <= self.len,
            "{what}: element index {idx} out of bounds for buffer of {} elements ({} bytes)",
            self.len / width,
            self.len
        );
        self.offset + idx * width
    }
}

/// Errors from device memory operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MemoryError {
    /// Allocation would exceed device capacity.
    OutOfMemory {
        /// Bytes requested.
        requested: usize,
        /// Bytes still available.
        available: usize,
    },
}

impl std::fmt::Display for MemoryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MemoryError::OutOfMemory {
                requested,
                available,
            } => {
                write!(
                    f,
                    "device out of memory: requested {requested} B, {available} B available"
                )
            }
        }
    }
}

impl std::error::Error for MemoryError {}

/// Bit-per-byte map of device bytes that hold defined data — written by a
/// host typed accessor, covered by an H2D [`DeviceMemory::upload`], or
/// published by a kernel store. The sanitizer's initcheck reads loads
/// against it; allocation alone does *not* mark bytes (fresh device memory
/// is zeroed by the simulator but semantically undefined, as on real
/// hardware).
#[derive(Debug, Default)]
pub(crate) struct InitMask {
    bits: Vec<u64>,
}

impl InitMask {
    /// Marks `len` bytes starting at `start` as initialized.
    ///
    /// Word-granular: the span is split into a partial head word, full
    /// `!0` middle words, and a partial tail word, instead of setting one
    /// bit per byte — uploads and kernel-store publication mark whole
    /// frames, so the per-byte loop was a measurable share of launch
    /// overhead.
    #[inline]
    pub(crate) fn mark(&mut self, start: usize, len: usize) {
        if len == 0 {
            return;
        }
        let end = start + len;
        let need = end.div_ceil(64);
        if self.bits.len() < need {
            self.bits.resize(need, 0);
        }
        let first = start / 64;
        let last = (end - 1) / 64;
        let head = !0u64 << (start % 64);
        // Bits of the exclusive end position, as a mask of everything
        // strictly below it (`end % 64 == 0` means the last word is full).
        let tail = match end % 64 {
            0 => !0u64,
            b => (1u64 << b) - 1,
        };
        if first == last {
            self.bits[first] |= head & tail;
        } else {
            self.bits[first] |= head;
            self.bits[first + 1..last].fill(!0);
            self.bits[last] |= tail;
        }
    }

    /// Whether `byte` has ever been initialized.
    #[inline]
    pub(crate) fn is_init(&self, byte: usize) -> bool {
        self.bits
            .get(byte / 64)
            .is_some_and(|w| w & (1 << (byte % 64)) != 0)
    }

    /// Forgets all marks (keeps the backing storage).
    pub(crate) fn clear(&mut self) {
        self.bits.iter_mut().for_each(|w| *w = 0);
    }
}

/// Simulated GPU global memory.
///
/// Backed by a host `Vec<u8>` that grows lazily up to the configured device
/// capacity; allocation is a bump allocator with 256-byte alignment
/// (matching `cudaMalloc`'s alignment guarantee, which is what makes the
/// coalescing analysis of aligned structures faithful).
#[derive(Debug)]
pub struct DeviceMemory {
    data: Vec<u8>,
    capacity: usize,
    cursor: usize,
    init: InitMask,
}

const ALLOC_ALIGN: usize = 256;

impl DeviceMemory {
    /// Creates a device memory of `capacity` bytes.
    pub fn new(capacity: usize) -> Self {
        DeviceMemory {
            data: Vec::new(),
            capacity,
            cursor: 0,
            init: InitMask::default(),
        }
    }

    /// Creates a device memory with the capacity from `cfg`.
    pub fn with_config(cfg: &crate::config::GpuConfig) -> Self {
        Self::new(cfg.device_mem_bytes)
    }

    /// Allocates `bytes` bytes, 256-byte aligned.
    ///
    /// # Errors
    /// [`MemoryError::OutOfMemory`] if capacity would be exceeded.
    pub fn alloc(&mut self, bytes: usize) -> Result<Buffer, MemoryError> {
        let start = self.cursor.div_ceil(ALLOC_ALIGN) * ALLOC_ALIGN;
        // `available` is measured from the *aligned* start: alignment
        // padding is unusable, so reporting it as available would
        // overstate what a retry could get.
        let end = start.checked_add(bytes).ok_or(MemoryError::OutOfMemory {
            requested: bytes,
            available: self.capacity.saturating_sub(start.min(self.capacity)),
        })?;
        if end > self.capacity {
            return Err(MemoryError::OutOfMemory {
                requested: bytes,
                available: self.capacity.saturating_sub(start.min(self.capacity)),
            });
        }
        if self.data.len() < end {
            self.data.resize(end, 0);
        }
        self.cursor = end;
        Ok(Buffer {
            offset: start,
            len: bytes,
        })
    }

    /// Allocates room for `n` elements of `T` (sized by `size_of::<T>()`).
    pub fn alloc_array<T>(&mut self, n: usize) -> Result<Buffer, MemoryError> {
        self.alloc(n * std::mem::size_of::<T>())
    }

    /// Bytes currently allocated.
    pub fn allocated(&self) -> usize {
        self.cursor
    }

    /// Device capacity in bytes.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Releases every allocation (buffers become dangling; the backing
    /// store is kept so re-allocation is cheap). Initialization marks are
    /// dropped with the allocations: re-allocated regions are undefined
    /// again.
    pub fn reset(&mut self) {
        self.cursor = 0;
        self.init.clear();
    }

    pub(crate) fn raw(&self) -> &[u8] {
        &self.data
    }

    /// The initialized-byte map (consulted by the sanitizer's initcheck).
    pub(crate) fn init_mask(&self) -> &InitMask {
        &self.init
    }

    /// Applies one write-overlay cell — up to 8 bytes at 8-byte-aligned
    /// `base`, valid where `mask` has a bit set — and marks the bytes
    /// initialized. Only masked bytes are touched, so a cell straddling
    /// the end of the backing store is safe as long as its masked bytes
    /// came from a bounds-checked kernel store.
    pub(crate) fn apply_masked(&mut self, base: u64, mask: u8, bytes: [u8; 8]) {
        let base = base as usize;
        if mask == 0xFF {
            // Fully-written cell — the overwhelmingly common case for
            // f64/f32 stores: one 8-byte copy, one word-granular mark.
            self.data[base..base + 8].copy_from_slice(&bytes);
            self.init.mark(base, 8);
            return;
        }
        for (j, &v) in bytes.iter().enumerate() {
            if mask & (1 << j) != 0 {
                self.data[base + j] = v;
                self.init.mark(base + j, 1);
            }
        }
    }

    // ---- host-side typed access (untimed, untraced) ----
    //
    // All accessors bounds-check `idx` against the buffer's length: a
    // mis-sized buffer panics with a clear message instead of silently
    // reading or corrupting a neighboring allocation (the bump allocator
    // packs allocations contiguously, so an unchecked overrun would
    // land in valid — but foreign — memory).

    /// Host-side read of an `f64` at element index `idx`.
    ///
    /// # Panics
    /// If `idx` is out of bounds for the buffer.
    #[track_caller]
    pub fn read_f64(&self, buf: Buffer, idx: usize) -> f64 {
        let o = buf.element_range(idx, 8, "read_f64");
        f64::from_le_bytes(self.data[o..o + 8].try_into().expect("8 bytes"))
    }

    /// Host-side write of an `f64` at element index `idx`.
    ///
    /// # Panics
    /// If `idx` is out of bounds for the buffer.
    #[track_caller]
    pub fn write_f64(&mut self, buf: Buffer, idx: usize, v: f64) {
        let o = buf.element_range(idx, 8, "write_f64");
        self.data[o..o + 8].copy_from_slice(&v.to_le_bytes());
        self.init.mark(o, 8);
    }

    /// Host-side read of an `f32` at element index `idx`.
    ///
    /// # Panics
    /// If `idx` is out of bounds for the buffer.
    #[track_caller]
    pub fn read_f32(&self, buf: Buffer, idx: usize) -> f32 {
        let o = buf.element_range(idx, 4, "read_f32");
        f32::from_le_bytes(self.data[o..o + 4].try_into().expect("4 bytes"))
    }

    /// Host-side write of an `f32` at element index `idx`.
    ///
    /// # Panics
    /// If `idx` is out of bounds for the buffer.
    #[track_caller]
    pub fn write_f32(&mut self, buf: Buffer, idx: usize, v: f32) {
        let o = buf.element_range(idx, 4, "write_f32");
        self.data[o..o + 4].copy_from_slice(&v.to_le_bytes());
        self.init.mark(o, 4);
    }

    /// Host-side read of a `u8` at element index `idx`.
    ///
    /// # Panics
    /// If `idx` is out of bounds for the buffer.
    #[track_caller]
    pub fn read_u8(&self, buf: Buffer, idx: usize) -> u8 {
        let o = buf.element_range(idx, 1, "read_u8");
        self.data[o]
    }

    /// Host-side write of a `u8` at element index `idx`.
    ///
    /// # Panics
    /// If `idx` is out of bounds for the buffer.
    #[track_caller]
    pub fn write_u8(&mut self, buf: Buffer, idx: usize, v: u8) {
        let o = buf.element_range(idx, 1, "write_u8");
        self.data[o] = v;
        self.init.mark(o, 1);
    }

    /// Copies a host byte slice into the buffer (untimed; for timed
    /// transfers use [`crate::dma`]).
    ///
    /// # Panics
    /// Panics if `src.len() != buf.len()`.
    pub fn upload(&mut self, buf: Buffer, src: &[u8]) {
        assert_eq!(src.len(), buf.len, "upload size mismatch");
        self.data[buf.offset..buf.offset + buf.len].copy_from_slice(src);
        self.init.mark(buf.offset, buf.len);
    }

    /// Copies the buffer out to a host vector (untimed).
    pub fn download(&self, buf: Buffer) -> Vec<u8> {
        self.data[buf.offset..buf.offset + buf.len].to_vec()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_is_aligned_and_disjoint() {
        let mut m = DeviceMemory::new(1 << 20);
        let a = m.alloc(100).unwrap();
        let b = m.alloc(100).unwrap();
        assert_eq!(a.addr() % 256, 0);
        assert_eq!(b.addr() % 256, 0);
        assert!(b.addr() >= a.addr() + 100);
    }

    #[test]
    fn alloc_out_of_memory() {
        let mut m = DeviceMemory::new(1000);
        assert!(m.alloc(512).is_ok());
        let err = m.alloc(512).unwrap_err();
        match err {
            MemoryError::OutOfMemory { requested, .. } => assert_eq!(requested, 512),
        }
    }

    #[test]
    fn typed_round_trips() {
        let mut m = DeviceMemory::new(1 << 16);
        let f = m.alloc_array::<f64>(4).unwrap();
        m.write_f64(f, 2, 3.25);
        assert_eq!(m.read_f64(f, 2), 3.25);
        let g = m.alloc_array::<f32>(4).unwrap();
        m.write_f32(g, 0, -1.5);
        assert_eq!(m.read_f32(g, 0), -1.5);
        let b = m.alloc_array::<u8>(4).unwrap();
        m.write_u8(b, 3, 200);
        assert_eq!(m.read_u8(b, 3), 200);
    }

    #[test]
    fn upload_download_round_trip() {
        let mut m = DeviceMemory::new(1 << 16);
        let buf = m.alloc(5).unwrap();
        m.upload(buf, &[1, 2, 3, 4, 5]);
        assert_eq!(m.download(buf), vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn reset_reclaims_space() {
        let mut m = DeviceMemory::new(1024);
        m.alloc(512).unwrap();
        m.reset();
        assert!(m.alloc(512).is_ok());
    }

    #[test]
    fn sub_buffer_addresses() {
        let mut m = DeviceMemory::new(1 << 16);
        let buf = m.alloc(100).unwrap();
        let sub = buf.slice(40, 20);
        assert_eq!(sub.addr(), buf.addr() + 40);
        assert_eq!(sub.len(), 20);
    }

    /// Regression: typed accessors used to index straight into the flat
    /// store, so an out-of-range index silently read the *next*
    /// allocation instead of failing.
    #[test]
    fn typed_access_cannot_reach_neighbor_allocation() {
        let mut m = DeviceMemory::new(1 << 16);
        let a = m.alloc_array::<f64>(4).unwrap();
        let b = m.alloc_array::<f64>(4).unwrap();
        m.write_f64(b, 0, 42.0);
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            // Index 4 of `a` would land inside the alignment gap / `b`.
            m.read_f64(a, 4)
        }));
        assert!(r.is_err(), "out-of-bounds read must panic, not alias");
    }

    #[test]
    #[should_panic(expected = "write_f32: element index 8 out of bounds")]
    fn typed_write_out_of_bounds_panics() {
        let mut m = DeviceMemory::new(1 << 16);
        let f = m.alloc_array::<f32>(8).unwrap();
        m.write_f32(f, 8, 1.0);
    }

    #[test]
    #[should_panic(expected = "read_u8: element index")]
    fn u8_read_out_of_bounds_panics() {
        let mut m = DeviceMemory::new(1 << 16);
        let b = m.alloc(3).unwrap();
        m.read_u8(b, 3);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn typed_index_overflow_panics() {
        let mut m = DeviceMemory::new(1 << 16);
        let f = m.alloc_array::<f64>(4).unwrap();
        // idx * 8 overflows usize; must panic cleanly, not wrap around.
        m.read_f64(f, usize::MAX / 4);
    }

    #[test]
    #[should_panic(expected = "overflows usize")]
    fn slice_overflow_panics() {
        let mut m = DeviceMemory::new(1 << 16);
        let buf = m.alloc(100).unwrap();
        buf.slice(usize::MAX, 2);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn slice_out_of_range_panics() {
        let mut m = DeviceMemory::new(1 << 16);
        let buf = m.alloc(100).unwrap();
        buf.slice(90, 20);
    }

    #[test]
    fn init_mask_tracks_host_writes_uploads_and_reset() {
        let mut m = DeviceMemory::new(1 << 16);
        let a = m.alloc_array::<f64>(4).unwrap();
        let o = a.addr() as usize;
        // Allocation alone leaves bytes undefined.
        assert!(!m.init_mask().is_init(o));
        m.write_f64(a, 1, 7.0);
        assert!(!m.init_mask().is_init(o));
        for b in o + 8..o + 16 {
            assert!(m.init_mask().is_init(b));
        }
        let u = m.alloc(5).unwrap();
        m.upload(u, &[1, 2, 3, 4, 5]);
        for b in 0..5 {
            assert!(m.init_mask().is_init(u.addr() as usize + b));
        }
        m.reset();
        assert!(!m.init_mask().is_init(o + 8));
        assert!(!m.init_mask().is_init(u.addr() as usize));
    }

    #[test]
    fn apply_masked_writes_only_masked_bytes_and_marks_them() {
        let mut m = DeviceMemory::new(1 << 16);
        let a = m.alloc(8).unwrap();
        m.upload(a, &[9; 8]);
        let base = a.addr();
        m.apply_masked(base, 0b0000_0110, [0, 11, 22, 0, 0, 0, 0, 0]);
        assert_eq!(m.download(a), vec![9, 11, 22, 9, 9, 9, 9, 9]);
        assert!(m.init_mask().is_init(base as usize + 1));
    }

    #[test]
    fn init_mask_out_of_range_is_uninitialized() {
        let m = InitMask::default();
        assert!(!m.is_init(0));
        assert!(!m.is_init(1 << 30));
    }

    /// Regression: `OutOfMemory::available` must be measured from the
    /// 256-byte-aligned allocation start, not the raw cursor — the
    /// alignment padding cannot be allocated, so counting it promises
    /// space a retry can never get.
    #[test]
    fn out_of_memory_reports_aligned_available() {
        let mut m = DeviceMemory::new(1000);
        m.alloc(100).unwrap(); // cursor = 100; next aligned start = 256
        match m.alloc(1000).unwrap_err() {
            MemoryError::OutOfMemory {
                requested,
                available,
            } => {
                assert_eq!(requested, 1000);
                assert_eq!(available, 1000 - 256, "available must discount padding");
            }
        }
        // Overflowing request: same aligned accounting.
        match m.alloc(usize::MAX).unwrap_err() {
            MemoryError::OutOfMemory { available, .. } => {
                assert_eq!(available, 1000 - 256);
            }
        }
    }
}

//! Simulated device (GPU global) memory: a flat byte store with a bump
//! allocator and typed host-side accessors.
//!
//! Kernel-side accesses go through [`crate::kernel::ThreadCtx`], which also
//! records trace events; the accessors here are the host's view (used when
//! initializing Gaussian parameters or reading back results without a DMA
//! timing model — for timed transfers see [`crate::dma`]).

/// A handle to an allocation in [`DeviceMemory`].
///
/// Buffers are plain offset/length pairs: copying one does not alias
/// ownership, it just names the same region (like a raw device pointer).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Buffer {
    pub(crate) offset: usize,
    pub(crate) len: usize,
}

impl Buffer {
    /// Byte length of the allocation.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True for zero-length buffers.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Device byte address of the start of the buffer.
    pub fn addr(&self) -> u64 {
        self.offset as u64
    }

    /// A sub-buffer covering `[byte_off, byte_off + len)`.
    ///
    /// # Panics
    /// Panics if the range exceeds the buffer.
    pub fn slice(&self, byte_off: usize, len: usize) -> Buffer {
        assert!(byte_off + len <= self.len, "sub-buffer out of range");
        Buffer {
            offset: self.offset + byte_off,
            len,
        }
    }
}

/// Errors from device memory operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MemoryError {
    /// Allocation would exceed device capacity.
    OutOfMemory {
        /// Bytes requested.
        requested: usize,
        /// Bytes still available.
        available: usize,
    },
}

impl std::fmt::Display for MemoryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MemoryError::OutOfMemory {
                requested,
                available,
            } => {
                write!(
                    f,
                    "device out of memory: requested {requested} B, {available} B available"
                )
            }
        }
    }
}

impl std::error::Error for MemoryError {}

/// Simulated GPU global memory.
///
/// Backed by a host `Vec<u8>` that grows lazily up to the configured device
/// capacity; allocation is a bump allocator with 256-byte alignment
/// (matching `cudaMalloc`'s alignment guarantee, which is what makes the
/// coalescing analysis of aligned structures faithful).
#[derive(Debug)]
pub struct DeviceMemory {
    data: Vec<u8>,
    capacity: usize,
    cursor: usize,
}

const ALLOC_ALIGN: usize = 256;

impl DeviceMemory {
    /// Creates a device memory of `capacity` bytes.
    pub fn new(capacity: usize) -> Self {
        DeviceMemory {
            data: Vec::new(),
            capacity,
            cursor: 0,
        }
    }

    /// Creates a device memory with the capacity from `cfg`.
    pub fn with_config(cfg: &crate::config::GpuConfig) -> Self {
        Self::new(cfg.device_mem_bytes)
    }

    /// Allocates `bytes` bytes, 256-byte aligned.
    ///
    /// # Errors
    /// [`MemoryError::OutOfMemory`] if capacity would be exceeded.
    pub fn alloc(&mut self, bytes: usize) -> Result<Buffer, MemoryError> {
        let start = self.cursor.div_ceil(ALLOC_ALIGN) * ALLOC_ALIGN;
        let end = start.checked_add(bytes).ok_or(MemoryError::OutOfMemory {
            requested: bytes,
            available: self.capacity.saturating_sub(self.cursor),
        })?;
        if end > self.capacity {
            return Err(MemoryError::OutOfMemory {
                requested: bytes,
                available: self.capacity.saturating_sub(start.min(self.capacity)),
            });
        }
        if self.data.len() < end {
            self.data.resize(end, 0);
        }
        self.cursor = end;
        Ok(Buffer {
            offset: start,
            len: bytes,
        })
    }

    /// Allocates room for `n` elements of `T` (sized by `size_of::<T>()`).
    pub fn alloc_array<T>(&mut self, n: usize) -> Result<Buffer, MemoryError> {
        self.alloc(n * std::mem::size_of::<T>())
    }

    /// Bytes currently allocated.
    pub fn allocated(&self) -> usize {
        self.cursor
    }

    /// Device capacity in bytes.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Releases every allocation (buffers become dangling; the backing
    /// store is kept so re-allocation is cheap).
    pub fn reset(&mut self) {
        self.cursor = 0;
    }

    pub(crate) fn raw(&self) -> &[u8] {
        &self.data
    }

    pub(crate) fn raw_mut(&mut self) -> &mut [u8] {
        &mut self.data
    }

    // ---- host-side typed access (untimed, untraced) ----

    /// Host-side read of an `f64` at element index `idx`.
    pub fn read_f64(&self, buf: Buffer, idx: usize) -> f64 {
        let o = buf.offset + idx * 8;
        f64::from_le_bytes(self.data[o..o + 8].try_into().expect("8 bytes"))
    }

    /// Host-side write of an `f64` at element index `idx`.
    pub fn write_f64(&mut self, buf: Buffer, idx: usize, v: f64) {
        let o = buf.offset + idx * 8;
        self.data[o..o + 8].copy_from_slice(&v.to_le_bytes());
    }

    /// Host-side read of an `f32` at element index `idx`.
    pub fn read_f32(&self, buf: Buffer, idx: usize) -> f32 {
        let o = buf.offset + idx * 4;
        f32::from_le_bytes(self.data[o..o + 4].try_into().expect("4 bytes"))
    }

    /// Host-side write of an `f32` at element index `idx`.
    pub fn write_f32(&mut self, buf: Buffer, idx: usize, v: f32) {
        let o = buf.offset + idx * 4;
        self.data[o..o + 4].copy_from_slice(&v.to_le_bytes());
    }

    /// Host-side read of a `u8` at element index `idx`.
    pub fn read_u8(&self, buf: Buffer, idx: usize) -> u8 {
        self.data[buf.offset + idx]
    }

    /// Host-side write of a `u8` at element index `idx`.
    pub fn write_u8(&mut self, buf: Buffer, idx: usize, v: u8) {
        self.data[buf.offset + idx] = v;
    }

    /// Copies a host byte slice into the buffer (untimed; for timed
    /// transfers use [`crate::dma`]).
    ///
    /// # Panics
    /// Panics if `src.len() != buf.len()`.
    pub fn upload(&mut self, buf: Buffer, src: &[u8]) {
        assert_eq!(src.len(), buf.len, "upload size mismatch");
        self.data[buf.offset..buf.offset + buf.len].copy_from_slice(src);
    }

    /// Copies the buffer out to a host vector (untimed).
    pub fn download(&self, buf: Buffer) -> Vec<u8> {
        self.data[buf.offset..buf.offset + buf.len].to_vec()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_is_aligned_and_disjoint() {
        let mut m = DeviceMemory::new(1 << 20);
        let a = m.alloc(100).unwrap();
        let b = m.alloc(100).unwrap();
        assert_eq!(a.addr() % 256, 0);
        assert_eq!(b.addr() % 256, 0);
        assert!(b.addr() >= a.addr() + 100);
    }

    #[test]
    fn alloc_out_of_memory() {
        let mut m = DeviceMemory::new(1000);
        assert!(m.alloc(512).is_ok());
        let err = m.alloc(512).unwrap_err();
        match err {
            MemoryError::OutOfMemory { requested, .. } => assert_eq!(requested, 512),
        }
    }

    #[test]
    fn typed_round_trips() {
        let mut m = DeviceMemory::new(1 << 16);
        let f = m.alloc_array::<f64>(4).unwrap();
        m.write_f64(f, 2, 3.25);
        assert_eq!(m.read_f64(f, 2), 3.25);
        let g = m.alloc_array::<f32>(4).unwrap();
        m.write_f32(g, 0, -1.5);
        assert_eq!(m.read_f32(g, 0), -1.5);
        let b = m.alloc_array::<u8>(4).unwrap();
        m.write_u8(b, 3, 200);
        assert_eq!(m.read_u8(b, 3), 200);
    }

    #[test]
    fn upload_download_round_trip() {
        let mut m = DeviceMemory::new(1 << 16);
        let buf = m.alloc(5).unwrap();
        m.upload(buf, &[1, 2, 3, 4, 5]);
        assert_eq!(m.download(buf), vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn reset_reclaims_space() {
        let mut m = DeviceMemory::new(1024);
        m.alloc(512).unwrap();
        m.reset();
        assert!(m.alloc(512).is_ok());
    }

    #[test]
    fn sub_buffer_addresses() {
        let mut m = DeviceMemory::new(1 << 16);
        let buf = m.alloc(100).unwrap();
        let sub = buf.slice(40, 20);
        assert_eq!(sub.addr(), buf.addr() + 40);
        assert_eq!(sub.len(), 20);
    }
}

//! Multi-stream pipeline scheduler: CUDA-streams-style list scheduling of
//! H2D/kernel/D2H stages from N independent frame streams onto one compute
//! engine and `cfg.copy_engines` copy engines.
//!
//! This generalizes the single-stream double-buffered pipeline of
//! [`crate::dma`] (which now delegates its `DoubleBuffered` arm here) to
//! the production-scale setting the ROADMAP targets: many concurrent
//! camera streams sharing one device. Two properties distinguish it from
//! a naive "every stream queues everything" model:
//!
//! * **Bounded in-flight buffers per stream.** A stream owns
//!   `buffers_per_stream` frame/mask buffer pairs on the device (2 =
//!   classic double buffering), so frame `i`'s upload cannot start until
//!   frame `i - buffers` has been consumed by its kernel, and frame `i`'s
//!   kernel cannot start until frame `i - buffers`'s mask has been
//!   downloaded. Without this cap the model describes *infinite* device
//!   buffering: uploads queue arbitrarily far ahead of the kernel and
//!   per-frame device latency grows without bound.
//! * **Per-stream arrival pacing.** A stream may deliver frames at a
//!   camera rate (`arrival_period` seconds between frames); frame `i` of
//!   such a stream cannot upload before `i * arrival_period`. This is
//!   what makes cross-stream concurrency pay off: one 30 fps camera
//!   leaves the engines mostly idle, and additional streams fill the
//!   idle time until an engine saturates.
//!
//! The scheduler is an exact greedy list scheduler: among all stage
//! operations whose dependencies are satisfied it repeatedly starts the
//! one with the earliest feasible start time (ties broken by frame, then
//! stream, then stage, so the schedule is deterministic and FIFO-fair
//! across streams).

use crate::config::GpuConfig;
use crate::dma::{FrameSpans, Span};
use serde::{Deserialize, Serialize};

/// Classic double buffering: two in-flight frame buffers per stream.
pub const DOUBLE_BUFFER: usize = 2;

/// Per-frame stage durations (seconds) of one frame of one stream.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StageTimes {
    /// Host-to-device upload time.
    pub h2d: f64,
    /// Kernel execution time.
    pub kernel: f64,
    /// Device-to-host download time.
    pub d2h: f64,
}

impl StageTimes {
    /// Uniform stage times, convenient for homogeneous streams.
    pub fn uniform(h2d: f64, kernel: f64, d2h: f64) -> Self {
        StageTimes { h2d, kernel, d2h }
    }
}

/// One stream's workload: per-frame stage times plus its arrival pacing.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StreamInput {
    /// Stage durations, one entry per frame, in arrival order.
    pub stages: Vec<StageTimes>,
    /// Seconds between successive frame arrivals at the host; frame `i`
    /// cannot begin uploading before `i * arrival_period`. `0.0` means
    /// the whole sequence is available up front (offline processing).
    pub arrival_period: f64,
}

impl StreamInput {
    /// An offline stream (all frames available immediately).
    pub fn offline(stages: Vec<StageTimes>) -> Self {
        StreamInput {
            stages,
            arrival_period: 0.0,
        }
    }

    /// A live stream delivering one frame every `period` seconds.
    pub fn live(stages: Vec<StageTimes>, period: f64) -> Self {
        StreamInput {
            stages,
            arrival_period: period.max(0.0),
        }
    }
}

/// Summary of per-frame device sojourn latency (upload start to download
/// end) for one stream: mean/max plus exact nearest-rank percentiles —
/// the tail the SLO accounting of [`crate::serving`] judges, which a
/// mean/max pair hides.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LatencyStats {
    /// Mean sojourn seconds.
    pub mean: f64,
    /// Worst-case sojourn seconds.
    pub max: f64,
    /// Median sojourn seconds (nearest-rank).
    pub p50: f64,
    /// 95th-percentile sojourn seconds (nearest-rank).
    pub p95: f64,
    /// 99th-percentile sojourn seconds (nearest-rank).
    pub p99: f64,
    /// 99.9th-percentile sojourn seconds (nearest-rank).
    pub p999: f64,
}

impl LatencyStats {
    /// Summarizes a latency sample slice (zeros when empty).
    pub fn from_samples(samples: &[f64]) -> Self {
        if samples.is_empty() {
            return LatencyStats {
                mean: 0.0,
                max: 0.0,
                p50: 0.0,
                p95: 0.0,
                p99: 0.0,
                p999: 0.0,
            };
        }
        // total_cmp keeps the sort total even if a NaN slips in (it sorts
        // after +inf), so a poisoned sample degrades the percentiles
        // instead of panicking the whole report. Admission validation in
        // `try_schedule` rejects such inputs up front.
        let mut sorted = samples.to_vec();
        sorted.sort_by(f64::total_cmp);
        let at = |q: f64| -> f64 {
            let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
            sorted[rank - 1]
        };
        LatencyStats {
            mean: samples.iter().sum::<f64>() / samples.len() as f64,
            max: *sorted.last().expect("non-empty"),
            p50: at(0.50),
            p95: at(0.95),
            p99: at(0.99),
            p999: at(0.999),
        }
    }
}

/// Result of scheduling N streams: per-stream, per-frame stage intervals
/// on the shared engines.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StreamSchedule {
    /// `streams[s][i]` is the placement of frame `i` of stream `s`.
    pub streams: Vec<Vec<FrameSpans>>,
    /// The in-flight buffer cap the schedule was built under.
    pub buffers_per_stream: usize,
}

impl StreamSchedule {
    /// Total frames across all streams.
    pub fn total_frames(&self) -> usize {
        self.streams.iter().map(Vec::len).sum()
    }

    /// End of the last download — the schedule's makespan in seconds.
    pub fn makespan(&self) -> f64 {
        self.streams
            .iter()
            .flatten()
            .map(|f| f.d2h.end())
            .fold(0.0f64, f64::max)
    }

    /// Aggregate steady throughput: total frames over the makespan.
    pub fn aggregate_fps(&self) -> f64 {
        let t = self.makespan();
        if t > 0.0 {
            self.total_frames() as f64 / t
        } else {
            0.0
        }
    }

    /// Fraction of the makespan during which the compute engine was busy.
    pub fn kernel_utilization(&self) -> f64 {
        let t = self.makespan();
        if t > 0.0 {
            self.streams
                .iter()
                .flatten()
                .map(|f| f.kernel.dur)
                .sum::<f64>()
                / t
        } else {
            0.0
        }
    }

    /// Per-frame device sojourn latencies (upload start to download end)
    /// of stream `s`, in frame order — the raw samples behind
    /// [`Self::stream_latency`] and the serving histograms.
    pub fn frame_latencies(&self, s: usize) -> Vec<f64> {
        self.streams[s]
            .iter()
            .map(|f| f.d2h.end() - f.h2d.start)
            .collect()
    }

    /// Device sojourn latency (upload start to download end) of stream
    /// `s`. Returns zeros for an empty stream.
    pub fn stream_latency(&self, s: usize) -> LatencyStats {
        LatencyStats::from_samples(&self.frame_latencies(s))
    }

    /// Completion time (last download end) of stream `s`; 0 if empty.
    pub fn stream_completion(&self, s: usize) -> f64 {
        self.streams[s]
            .iter()
            .map(|f| f.d2h.end())
            .fold(0.0f64, f64::max)
    }
}

/// Why a stream set was rejected at scheduler admission: some stage time
/// or arrival period was non-finite or negative, which would otherwise
/// surface much later as a panic deep inside the latency statistics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScheduleError {
    /// Index of the offending stream.
    pub stream: usize,
    /// Frame index within the stream, or `None` when the stream-level
    /// `arrival_period` is at fault.
    pub frame: Option<usize>,
    /// The field that failed validation (`"h2d"`, `"kernel"`, `"d2h"` or
    /// `"arrival_period"`).
    pub field: String,
    /// The rejected value, rendered as text so NaN/inf survive JSON.
    pub value: String,
}

impl std::fmt::Display for ScheduleError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.frame {
            Some(i) => write!(
                f,
                "stream {} frame {}: {} = {} (must be finite and >= 0)",
                self.stream, i, self.field, self.value
            ),
            None => write!(
                f,
                "stream {}: {} = {} (must be finite and >= 0)",
                self.stream, self.field, self.value
            ),
        }
    }
}

impl std::error::Error for ScheduleError {}

/// The three schedulable stages, in per-frame dependency order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Stage {
    H2d,
    Kernel,
    D2h,
}

/// Per-stream scheduling frontier: the next unscheduled frame index of
/// each stage chain, plus the already-placed spans.
struct StreamState {
    next: [usize; 3],
    h2d: Vec<Span>,
    kernel: Vec<Span>,
    d2h: Vec<Span>,
}

/// List-schedules N streams onto one compute engine and
/// `cfg.copy_engines` copy engines with a bounded per-stream in-flight
/// buffer count.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamScheduler {
    buffers_per_stream: usize,
}

impl Default for StreamScheduler {
    fn default() -> Self {
        Self::double_buffered()
    }
}

impl StreamScheduler {
    /// A scheduler with `buffers` in-flight frame buffers per stream
    /// (clamped to at least 1: one buffer fully serializes a stream's
    /// stages against each other).
    pub fn new(buffers: usize) -> Self {
        StreamScheduler {
            buffers_per_stream: buffers.max(1),
        }
    }

    /// The classic two-buffer configuration (paper level C).
    pub fn double_buffered() -> Self {
        Self::new(DOUBLE_BUFFER)
    }

    /// The configured in-flight cap.
    pub fn buffers_per_stream(&self) -> usize {
        self.buffers_per_stream
    }

    /// Schedules all frames of all `streams`.
    ///
    /// Engines: one compute engine runs every kernel; with
    /// `cfg.copy_engines >= 2` uploads and downloads run on dedicated
    /// engines (C2075), with 1 both directions share one engine. Within a
    /// stream, stages of one frame are ordered, each stage chain is FIFO,
    /// and the in-flight buffer cap gates uploads (on the consuming
    /// kernel `buffers` frames back) and kernels (on the download that
    /// frees the mask buffer `buffers` frames back).
    ///
    /// # Panics
    ///
    /// Panics if any stage duration or arrival period is non-finite or
    /// negative; use [`Self::try_schedule`] to get a structured
    /// [`ScheduleError`] instead.
    pub fn schedule(&self, streams: &[StreamInput], cfg: &GpuConfig) -> StreamSchedule {
        match self.try_schedule(streams, cfg) {
            Ok(s) => s,
            Err(e) => panic!("invalid stream input: {e}"),
        }
    }

    /// Validates every stage duration and arrival period (finite, `>= 0`)
    /// and then schedules; the fallible twin of [`Self::schedule`] that
    /// the serving paths use so a poisoned input (NaN stage time from a
    /// corrupt report, negative period from a CLI typo) becomes a
    /// structured [`ScheduleError`] at admission instead of a panic deep
    /// inside the latency statistics.
    pub fn try_schedule(
        &self,
        streams: &[StreamInput],
        cfg: &GpuConfig,
    ) -> Result<StreamSchedule, ScheduleError> {
        validate_stream_inputs(streams)?;
        Ok(self.schedule_validated(streams, cfg))
    }

    fn schedule_validated(&self, streams: &[StreamInput], cfg: &GpuConfig) -> StreamSchedule {
        let cap = self.buffers_per_stream;
        let two_copy_engines = cfg.copy_engines >= 2;
        // Engine availability. With a single copy engine, h2d and d2h
        // share slot 0.
        let mut copy_free = [0.0f64; 2];
        let mut kernel_free = 0.0f64;

        let mut states: Vec<StreamState> = streams
            .iter()
            .map(|s| StreamState {
                next: [0, 0, 0],
                h2d: Vec::with_capacity(s.stages.len()),
                kernel: Vec::with_capacity(s.stages.len()),
                d2h: Vec::with_capacity(s.stages.len()),
            })
            .collect();
        let total_ops: usize = streams.iter().map(|s| 3 * s.stages.len()).sum();

        for _ in 0..total_ops {
            // Gather the ready operation of each stage chain of each
            // stream and its earliest feasible start.
            let mut best: Option<(f64, usize, usize, Stage)> = None;
            for (s, (input, st)) in streams.iter().zip(&states).enumerate() {
                let n = input.stages.len();
                // Upload chain.
                let i = st.next[0];
                if i < n && (i < cap || st.kernel.len() + cap > i) {
                    let mut est = copy_free[0];
                    if let Some(prev) = st.h2d.last() {
                        est = est.max(prev.end());
                    }
                    if i >= cap {
                        est = est.max(st.kernel[i - cap].end());
                    }
                    est = est.max(i as f64 * input.arrival_period);
                    consider(&mut best, est, i, s, Stage::H2d);
                }
                // Kernel chain: needs its upload, and the download that
                // frees its output buffer `cap` frames back.
                let i = st.next[1];
                if i < n && st.h2d.len() > i && (i < cap || st.d2h.len() + cap > i) {
                    let mut est = kernel_free.max(st.h2d[i].end());
                    if let Some(prev) = st.kernel.last() {
                        est = est.max(prev.end());
                    }
                    if i >= cap {
                        est = est.max(st.d2h[i - cap].end());
                    }
                    consider(&mut best, est, i, s, Stage::Kernel);
                }
                // Download chain: needs its kernel.
                let i = st.next[2];
                if i < n && st.kernel.len() > i {
                    let engine = if two_copy_engines { 1 } else { 0 };
                    let mut est = copy_free[engine].max(st.kernel[i].end());
                    if let Some(prev) = st.d2h.last() {
                        est = est.max(prev.end());
                    }
                    consider(&mut best, est, i, s, Stage::D2h);
                }
            }
            let (start, i, s, stage) = best.expect("a ready operation always exists");
            let st = &mut states[s];
            match stage {
                Stage::H2d => {
                    let span = Span {
                        start,
                        dur: streams[s].stages[i].h2d,
                    };
                    copy_free[0] = span.end();
                    st.h2d.push(span);
                    st.next[0] += 1;
                }
                Stage::Kernel => {
                    let span = Span {
                        start,
                        dur: streams[s].stages[i].kernel,
                    };
                    kernel_free = span.end();
                    st.kernel.push(span);
                    st.next[1] += 1;
                }
                Stage::D2h => {
                    let span = Span {
                        start,
                        dur: streams[s].stages[i].d2h,
                    };
                    let engine = if two_copy_engines { 1 } else { 0 };
                    copy_free[engine] = span.end();
                    st.d2h.push(span);
                    st.next[2] += 1;
                }
            }
        }

        StreamSchedule {
            streams: states
                .into_iter()
                .map(|st| {
                    st.h2d
                        .into_iter()
                        .zip(st.kernel)
                        .zip(st.d2h)
                        .map(|((h2d, kernel), d2h)| FrameSpans { h2d, kernel, d2h })
                        .collect()
                })
                .collect(),
            buffers_per_stream: cap,
        }
    }
}

/// The scheduler's admission rules as a standalone check: every stage
/// duration and arrival period must be finite and non-negative. The
/// fleet dispatcher validates each device class's view of the demands
/// through this before any schedule is built.
pub fn validate_stream_inputs(streams: &[StreamInput]) -> Result<(), ScheduleError> {
    let bad = |v: f64| !v.is_finite() || v < 0.0;
    for (s, input) in streams.iter().enumerate() {
        if bad(input.arrival_period) {
            return Err(ScheduleError {
                stream: s,
                frame: None,
                field: "arrival_period".to_string(),
                value: format!("{}", input.arrival_period),
            });
        }
        for (i, st) in input.stages.iter().enumerate() {
            for (field, v) in [("h2d", st.h2d), ("kernel", st.kernel), ("d2h", st.d2h)] {
                if bad(v) {
                    return Err(ScheduleError {
                        stream: s,
                        frame: Some(i),
                        field: field.to_string(),
                        value: format!("{v}"),
                    });
                }
            }
        }
    }
    Ok(())
}

/// Keeps the candidate with the smallest (start, frame, stream, stage).
fn consider(
    best: &mut Option<(f64, usize, usize, Stage)>,
    est: f64,
    i: usize,
    s: usize,
    st: Stage,
) {
    let rank = |st: Stage| match st {
        Stage::H2d => 0u8,
        Stage::Kernel => 1,
        Stage::D2h => 2,
    };
    let better = match best {
        None => true,
        Some((b_est, b_i, b_s, b_st)) => (est, i, s, rank(st)) < (*b_est, *b_i, *b_s, rank(*b_st)),
    };
    if better {
        *best = Some((est, i, s, st));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> GpuConfig {
        GpuConfig::tesla_c2075()
    }

    fn uniform_stream(n: usize, h2d: f64, k: f64, d2h: f64) -> StreamInput {
        StreamInput::offline(vec![StageTimes::uniform(h2d, k, d2h); n])
    }

    #[test]
    fn empty_inputs() {
        let sched = StreamScheduler::double_buffered().schedule(&[], &cfg());
        assert_eq!(sched.total_frames(), 0);
        assert_eq!(sched.makespan(), 0.0);
        assert_eq!(sched.aggregate_fps(), 0.0);
        let sched =
            StreamScheduler::double_buffered().schedule(&[StreamInput::offline(vec![])], &cfg());
        assert_eq!(sched.total_frames(), 0);
        assert_eq!(sched.stream_latency(0).max, 0.0);
    }

    #[test]
    fn single_stream_kernel_bound_matches_pipeline_model() {
        // Kernel 2 s dominates 1 s / 0.5 s transfers: makespan is
        // fill + n*kernel + drain, as the dma pipeline model predicts.
        let n = 50;
        let sched = StreamScheduler::double_buffered()
            .schedule(&[uniform_stream(n, 1.0, 2.0, 0.5)], &cfg());
        assert!((sched.makespan() - (1.0 + 2.0 * n as f64 + 0.5)).abs() < 1e-9);
        assert!(sched.kernel_utilization() > 0.97);
    }

    #[test]
    fn uploads_never_run_more_than_cap_ahead() {
        // Tiny uploads, big kernel: an unbounded model would finish all
        // uploads almost immediately; the cap gates upload i on kernel
        // i-2's completion.
        let sched = StreamScheduler::double_buffered()
            .schedule(&[uniform_stream(10, 0.01, 1.0, 0.01)], &cfg());
        let frames = &sched.streams[0];
        for i in 2..frames.len() {
            assert!(
                frames[i].h2d.start >= frames[i - 2].kernel.end() - 1e-12,
                "upload {i} started at {} before kernel {} finished at {}",
                frames[i].h2d.start,
                i - 2,
                frames[i - 2].kernel.end()
            );
        }
        // Device sojourn latency is bounded by cap * worst stage chain,
        // not growing with frame index.
        let lat = sched.stream_latency(0);
        assert!(lat.max < 2.5, "latency must stay bounded, got {}", lat.max);
    }

    #[test]
    fn two_streams_share_engines_exclusively() {
        let s = uniform_stream(8, 0.5, 1.0, 0.5);
        let sched = StreamScheduler::double_buffered().schedule(&[s.clone(), s], &cfg());
        let mut kernels: Vec<Span> = sched.streams.iter().flatten().map(|f| f.kernel).collect();
        kernels.sort_by(|a, b| a.start.total_cmp(&b.start));
        for w in kernels.windows(2) {
            assert!(w[1].start >= w[0].end() - 1e-12, "kernels overlap: {w:?}");
        }
        // Kernel engine saturates: 16 kernels of 1 s each, makespan just
        // above 16 s.
        assert!(sched.makespan() < 16.0 + 2.5);
        assert!(sched.kernel_utilization() > 0.85);
    }

    #[test]
    fn live_streams_fill_idle_capacity() {
        // One paced stream leaves the engines mostly idle; four of them
        // roughly quadruple aggregate throughput.
        let mk = |n: usize| {
            StreamInput::live(
                vec![StageTimes::uniform(0.002, 0.004, 0.002); n],
                1.0 / 30.0,
            )
        };
        let one = StreamScheduler::double_buffered().schedule(&[mk(30)], &cfg());
        let four =
            StreamScheduler::double_buffered().schedule(&[mk(30), mk(30), mk(30), mk(30)], &cfg());
        let r = four.aggregate_fps() / one.aggregate_fps();
        assert!(r > 3.5 && r < 4.5, "expected ~4x, got {r}");
    }

    #[test]
    fn single_copy_engine_serializes_all_transfers() {
        let mut c = cfg();
        c.copy_engines = 1;
        let s = uniform_stream(6, 1.0, 0.1, 1.0);
        let sched = StreamScheduler::double_buffered().schedule(&[s.clone(), s], &c);
        let mut copies: Vec<Span> = sched
            .streams
            .iter()
            .flatten()
            .flat_map(|f| [f.h2d, f.d2h])
            .collect();
        copies.sort_by(|a, b| a.start.total_cmp(&b.start));
        for w in copies.windows(2) {
            assert!(w[1].start >= w[0].end() - 1e-12, "copies overlap: {w:?}");
        }
        // 24 transfers of 1 s on one engine: makespan >= 24 s.
        assert!(sched.makespan() >= 24.0 - 1e-9);
    }

    #[test]
    fn heterogeneous_streams_keep_per_stream_fifo_order() {
        let a = uniform_stream(5, 0.3, 0.7, 0.2);
        let b = uniform_stream(7, 0.1, 0.2, 0.1);
        let sched = StreamScheduler::new(3).schedule(&[a, b], &cfg());
        for frames in &sched.streams {
            for w in frames.windows(2) {
                assert!(w[1].h2d.start >= w[0].h2d.end() - 1e-12);
                assert!(w[1].kernel.start >= w[0].kernel.end() - 1e-12);
                assert!(w[1].d2h.start >= w[0].d2h.end() - 1e-12);
            }
            for f in frames {
                assert!(f.kernel.start >= f.h2d.end() - 1e-12);
                assert!(f.d2h.start >= f.kernel.end() - 1e-12);
            }
        }
    }

    #[test]
    fn latency_stats_percentiles_are_nearest_rank() {
        // 100 samples 0.01..=1.00: nearest-rank pXX is exactly XX/100.
        let samples: Vec<f64> = (1..=100).map(|i| i as f64 / 100.0).collect();
        let l = LatencyStats::from_samples(&samples);
        assert!((l.p50 - 0.50).abs() < 1e-12);
        assert!((l.p95 - 0.95).abs() < 1e-12);
        assert!((l.p99 - 0.99).abs() < 1e-12);
        assert!((l.p999 - 1.00).abs() < 1e-12);
        assert!((l.mean - 0.505).abs() < 1e-12);
        assert_eq!(l.max, 1.0);
        // Percentiles are monotone and bracketed by the schedule's own
        // mean/max on a real schedule.
        let sched = StreamScheduler::double_buffered()
            .schedule(&[uniform_stream(20, 0.01, 1.0, 0.01)], &cfg());
        let lat = sched.stream_latency(0);
        assert!(lat.p50 <= lat.p95 && lat.p95 <= lat.p99);
        assert!(lat.p99 <= lat.p999 && lat.p999 <= lat.max);
        assert_eq!(sched.frame_latencies(0).len(), sched.streams[0].len());
    }

    #[test]
    fn latency_stats_survive_non_finite_samples() {
        // Regression: this used to panic via
        // partial_cmp().expect("finite latencies").
        let l = LatencyStats::from_samples(&[0.1, f64::NAN, 0.3]);
        assert!(l.p50.is_finite() || l.p50.is_nan()); // no panic is the contract
        let l = LatencyStats::from_samples(&[0.1, f64::INFINITY, 0.3]);
        assert_eq!(l.max, f64::INFINITY);
        assert!((l.p50 - 0.3).abs() < 1e-12);
    }

    #[test]
    fn try_schedule_rejects_non_finite_and_negative_inputs() {
        let sch = StreamScheduler::double_buffered();
        let nan_kernel = StreamInput::offline(vec![StageTimes::uniform(1e-3, f64::NAN, 1e-3)]);
        let err = sch.try_schedule(&[nan_kernel], &cfg()).unwrap_err();
        assert_eq!((err.stream, err.frame), (0, Some(0)));
        assert_eq!(err.field, "kernel");
        assert!(err.to_string().contains("NaN"), "{err}");

        let inf_h2d = StreamInput::offline(vec![StageTimes::uniform(f64::INFINITY, 1e-3, 1e-3)]);
        let ok = uniform_stream(2, 1e-3, 1e-3, 1e-3);
        let err = sch
            .try_schedule(&[ok.clone(), inf_h2d], &cfg())
            .unwrap_err();
        assert_eq!((err.stream, err.frame), (1, Some(0)));
        assert_eq!(err.field, "h2d");

        let neg_period = StreamInput {
            stages: vec![StageTimes::uniform(1e-3, 1e-3, 1e-3)],
            arrival_period: -0.5,
        };
        let err = sch.try_schedule(&[neg_period], &cfg()).unwrap_err();
        assert_eq!((err.stream, err.frame), (0, None));
        assert_eq!(err.field, "arrival_period");

        // Valid inputs still schedule identically through both entry
        // points.
        assert_eq!(
            sch.try_schedule(std::slice::from_ref(&ok), &cfg()).unwrap(),
            sch.schedule(&[ok], &cfg())
        );
    }

    #[test]
    #[should_panic(expected = "invalid stream input")]
    fn schedule_panics_with_structured_message_on_bad_input() {
        let bad = StreamInput::offline(vec![StageTimes::uniform(1e-3, -1.0, 1e-3)]);
        StreamScheduler::double_buffered().schedule(&[bad], &cfg());
    }

    #[test]
    fn cap_clamps_to_one() {
        assert_eq!(StreamScheduler::new(0).buffers_per_stream(), 1);
        // Cap 1 serializes a stream's kernel i against its d2h i-1.
        let sched = StreamScheduler::new(0).schedule(&[uniform_stream(4, 0.1, 1.0, 0.5)], &cfg());
        let f = &sched.streams[0];
        for i in 1..f.len() {
            assert!(f[i].kernel.start >= f[i - 1].d2h.end() - 1e-12);
            assert!(f[i].h2d.start >= f[i - 1].kernel.end() - 1e-12);
        }
    }
}

//! Warp-level slot accumulation: merging the 32 lanes of a warp into
//! warp instructions and deriving coalescing / divergence / bank-conflict
//! statistics.

use crate::config::GpuConfig;
use crate::profile::{SiteProfile, SiteStats};
use crate::stats::KernelStats;
use crate::trace::{BuildPtrHasher, OpClass, Site, SiteCounters, Space};
use std::collections::HashMap;
use std::panic::Location;

/// One warp-level instruction slot under construction.
#[derive(Debug)]
enum SlotAccum {
    Op {
        class: OpClass,
        max_count: u32,
        lanes: u32,
    },
    Mem {
        space: Space,
        write: bool,
        bytes_requested: u64,
        accesses: Vec<(u64, u8)>,
    },
    Branch {
        taken: u32,
        not_taken: u32,
    },
    Sync {
        lanes: u32,
    },
}

/// Accumulates the events of one warp's 32 lanes and flushes warp-level
/// statistics into a [`KernelStats`].
///
/// Lanes execute sequentially; [`WarpAccumulator::begin_lane`] resets the
/// per-lane occurrence counters, and [`WarpAccumulator::end_warp`] analyses
/// and clears the slot table.
#[derive(Debug)]
pub struct WarpAccumulator {
    occ: SiteCounters,
    slots: HashMap<(Site, u32), SlotAccum, BuildPtrHasher>,
    lanes_seen: u32,
    /// Per-site aggregation sink; `None` (the default) skips all
    /// attribution work.
    site_profile: Option<SiteProfile>,
}

impl WarpAccumulator {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        WarpAccumulator {
            occ: SiteCounters::new(),
            slots: HashMap::default(),
            lanes_seen: 0,
            site_profile: None,
        }
    }

    /// Creates an accumulator that additionally attributes every slot's
    /// counters to its source site.
    pub fn with_site_profile() -> Self {
        WarpAccumulator {
            site_profile: Some(SiteProfile::new()),
            ..Self::new()
        }
    }

    /// Takes the accumulated per-site profile (if site profiling was
    /// enabled), leaving an empty one behind.
    pub fn take_site_profile(&mut self) -> Option<SiteProfile> {
        self.site_profile.as_mut().map(std::mem::take)
    }

    /// Starts recording a new lane of the current warp.
    pub fn begin_lane(&mut self) {
        self.occ.clear();
        self.lanes_seen += 1;
    }

    #[inline]
    fn key(&mut self, site: Site) -> (Site, u32) {
        (site, self.occ.next(site))
    }

    /// Records `count` arithmetic operations of `class`.
    #[inline]
    pub fn record_op(&mut self, loc: &'static Location<'static>, class: OpClass, count: u32) {
        let key = self.key(loc as *const _ as usize);
        match self.slots.entry(key).or_insert(SlotAccum::Op {
            class,
            max_count: 0,
            lanes: 0,
        }) {
            SlotAccum::Op {
                max_count, lanes, ..
            } => {
                *max_count = (*max_count).max(count);
                *lanes += 1;
            }
            other => debug_assert!(false, "slot kind mismatch at op slot: {other:?}"),
        }
    }

    /// Records a memory access of `width` bytes at `addr` in `space`.
    #[inline]
    pub fn record_mem(
        &mut self,
        loc: &'static Location<'static>,
        space: Space,
        write: bool,
        addr: u64,
        width: u8,
    ) {
        let key = self.key(loc as *const _ as usize);
        match self.slots.entry(key).or_insert_with(|| SlotAccum::Mem {
            space,
            write,
            bytes_requested: 0,
            accesses: Vec::with_capacity(32),
        }) {
            SlotAccum::Mem {
                bytes_requested,
                accesses,
                ..
            } => {
                *bytes_requested += width as u64;
                accesses.push((addr, width));
            }
            other => debug_assert!(false, "slot kind mismatch at mem slot: {other:?}"),
        }
    }

    /// Records a data-dependent branch outcome.
    #[inline]
    pub fn record_branch(&mut self, loc: &'static Location<'static>, taken: bool) {
        let key = self.key(loc as *const _ as usize);
        match self.slots.entry(key).or_insert(SlotAccum::Branch {
            taken: 0,
            not_taken: 0,
        }) {
            SlotAccum::Branch {
                taken: t,
                not_taken: n,
            } => {
                if taken {
                    *t += 1;
                } else {
                    *n += 1;
                }
            }
            other => debug_assert!(false, "slot kind mismatch at branch slot: {other:?}"),
        }
    }

    /// Records a `__syncthreads()`-style barrier.
    #[inline]
    pub fn record_sync(&mut self, loc: &'static Location<'static>) {
        let key = self.key(loc as *const _ as usize);
        match self
            .slots
            .entry(key)
            .or_insert(SlotAccum::Sync { lanes: 0 })
        {
            SlotAccum::Sync { lanes } => *lanes += 1,
            other => debug_assert!(false, "slot kind mismatch at sync slot: {other:?}"),
        }
    }

    /// Analyses the accumulated warp and folds its statistics into `stats`,
    /// then resets for the next warp. Convenience wrapper for the
    /// cache-less configuration.
    pub fn end_warp(&mut self, cfg: &GpuConfig, stats: &mut KernelStats) {
        self.end_warp_cached(cfg, stats, None);
    }

    /// Like [`WarpAccumulator::end_warp`], filtering DRAM transactions
    /// through an optional L2 cache slice: segments that hit do not count
    /// as transactions.
    pub fn end_warp_cached(
        &mut self,
        cfg: &GpuConfig,
        stats: &mut KernelStats,
        cache: Option<&mut crate::cache::CacheModel>,
    ) {
        // Monomorphize so the common unprofiled path carries no
        // per-slot attribution work at all.
        if self.site_profile.is_some() {
            self.end_warp_impl::<true>(cfg, stats, cache);
        } else {
            self.end_warp_impl::<false>(cfg, stats, cache);
        }
    }

    fn end_warp_impl<const PROFILE: bool>(
        &mut self,
        cfg: &GpuConfig,
        stats: &mut KernelStats,
        mut cache: Option<&mut crate::cache::CacheModel>,
    ) {
        let seg = cfg.segment_bytes;
        let mut segments: Vec<u64> = Vec::with_capacity(64);
        for ((site, _occ), slot) in &self.slots {
            // Per-slot contribution, also attributed to the slot's source
            // site when profiling is on.
            let mut delta = SiteStats {
                warp_slots: 1,
                ..Default::default()
            };
            match slot {
                SlotAccum::Op {
                    class,
                    max_count,
                    lanes,
                } => {
                    let cost = match class {
                        OpClass::F64 => cfg.f64_issue_cost,
                        _ => 1.0,
                    };
                    stats.issue_cycles += *max_count as f64 * cost;
                    let scalar = *max_count as u64 * *lanes as u64;
                    if PROFILE {
                        delta.issue_cycles = *max_count as f64 * cost;
                        delta.scalar_ops = scalar;
                    }
                    match class {
                        OpClass::Int => stats.int_ops += scalar,
                        OpClass::F32 => stats.flops_f32 += scalar,
                        OpClass::F64 => stats.flops_f64 += scalar,
                    }
                }
                SlotAccum::Mem {
                    space,
                    write,
                    bytes_requested,
                    accesses,
                } => {
                    stats.issue_cycles += 1.0;
                    if PROFILE {
                        delta.issue_cycles = 1.0;
                    }
                    match space {
                        Space::Shared => {
                            // Bank conflicts: replays = max number of
                            // *distinct 4-byte words* mapping to one bank.
                            let mut per_bank: HashMap<u32, Vec<u64>, BuildPtrHasher> =
                                HashMap::default();
                            for &(addr, width) in accesses {
                                let mut w = addr / 4;
                                let end = (addr + width as u64).div_ceil(4);
                                while w < end.max(w + 1) {
                                    let bank = (w % cfg.shared_banks as u64) as u32;
                                    let words = per_bank.entry(bank).or_default();
                                    if !words.contains(&w) {
                                        words.push(w);
                                    }
                                    w += 1;
                                    if w >= end {
                                        break;
                                    }
                                }
                            }
                            let degree =
                                per_bank.values().map(|v| v.len()).max().unwrap_or(1) as u64;
                            stats.shared_accesses += accesses.len() as u64;
                            stats.shared_replays += degree.saturating_sub(1);
                            // Each replay is an extra issue of this slot.
                            stats.issue_cycles += degree.saturating_sub(1) as f64;
                            if PROFILE {
                                delta.shared_replays = degree.saturating_sub(1);
                                delta.issue_cycles += degree.saturating_sub(1) as f64;
                            }
                        }
                        Space::Global | Space::Local => {
                            segments.clear();
                            for &(addr, width) in accesses {
                                let first = addr / seg;
                                let last = (addr + width as u64 - 1) / seg;
                                for s in first..=last {
                                    if !segments.contains(&s) {
                                        segments.push(s);
                                    }
                                }
                            }
                            let tx = match cache.as_deref_mut() {
                                Some(c) => {
                                    let mut misses = 0u64;
                                    for &s in segments.iter() {
                                        if c.access_segment(s) {
                                            stats.l2_hits += 1;
                                        } else {
                                            stats.l2_misses += 1;
                                            misses += 1;
                                        }
                                    }
                                    misses
                                }
                                None => segments.len() as u64,
                            };
                            stats.mem_slots += 1;
                            stats.lane_mem_accesses += accesses.len() as u64;
                            if PROFILE {
                                delta.transactions = tx;
                                delta.bytes_requested = *bytes_requested;
                            }
                            match (space, write) {
                                (Space::Global, false) => {
                                    stats.global_load_tx += tx;
                                    stats.global_load_bytes_requested += bytes_requested;
                                }
                                (Space::Global, true) => {
                                    stats.global_store_tx += tx;
                                    stats.global_store_bytes_requested += bytes_requested;
                                }
                                (Space::Local, false) => {
                                    stats.local_load_tx += tx;
                                    stats.local_load_bytes_requested += bytes_requested;
                                }
                                (Space::Local, true) => {
                                    stats.local_store_tx += tx;
                                    stats.local_store_bytes_requested += bytes_requested;
                                }
                                (Space::Shared, _) => unreachable!(),
                            }
                        }
                    }
                }
                SlotAccum::Branch { taken, not_taken } => {
                    stats.issue_cycles += 1.0;
                    stats.branch_slots += 1;
                    stats.lane_branches += (*taken + *not_taken) as u64;
                    if PROFILE {
                        delta.issue_cycles = 1.0;
                        delta.branch_slots = 1;
                    }
                    if *taken > 0 && *not_taken > 0 {
                        stats.divergent_branch_slots += 1;
                        if PROFILE {
                            delta.divergent_branch_slots = 1;
                        }
                    }
                }
                SlotAccum::Sync { .. } => {
                    stats.issue_cycles += 1.0;
                    stats.sync_slots += 1;
                    if PROFILE {
                        delta.issue_cycles = 1.0;
                        delta.sync_slots = 1;
                    }
                }
            }
            if PROFILE {
                if let Some(profile) = &mut self.site_profile {
                    if profile.add(*site, &delta) {
                        // First sighting of this site in the profile:
                        // resolve its source position. Sound cast: sites
                        // only enter `slots` through `record_*`, which
                        // takes `&'static Location`.
                        let loc = unsafe { &*(*site as *const Location<'static>) };
                        crate::trace::register_site(*site, loc);
                    }
                }
            }
        }
        stats.warp_slots += self.slots.len() as u64;
        stats.warps += 1;
        stats.lanes += self.lanes_seen as u64;
        self.slots.clear();
        self.lanes_seen = 0;
    }
}

impl Default for WarpAccumulator {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> GpuConfig {
        GpuConfig::tesla_c2075()
    }

    /// Helper: run `f(lane, acc)` for `n` lanes and flush.
    fn run_warp(n: u32, mut f: impl FnMut(u32, &mut WarpAccumulator)) -> KernelStats {
        let mut acc = WarpAccumulator::new();
        let mut stats = KernelStats::default();
        for lane in 0..n {
            acc.begin_lane();
            f(lane, &mut acc);
        }
        acc.end_warp(&cfg(), &mut stats);
        stats
    }

    // Two distinct real call sites: the typed `record_*` API requires
    // genuine `Location`s (their addresses are the site keys).
    fn site_a() -> &'static Location<'static> {
        Location::caller()
    }
    fn site_b() -> &'static Location<'static> {
        Location::caller()
    }

    fn sid(loc: &'static Location<'static>) -> Site {
        loc as *const _ as usize
    }

    #[test]
    fn coalesced_f64_warp_access_is_two_transactions() {
        // 32 lanes x 8 B contiguous = 256 B = 2 x 128 B segments.
        let stats = run_warp(32, |lane, acc| {
            acc.record_mem(site_a(), Space::Global, false, lane as u64 * 8, 8);
        });
        assert_eq!(stats.global_load_tx, 2);
        assert_eq!(stats.global_load_bytes_requested, 256);
        assert!((stats.gld_efficiency(&cfg()) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn strided_aos_access_explodes_transactions() {
        // Stride 72 B (3 Gaussians x 3 f64 params, AoS): 32 lanes span
        // 32*72 = 2304 B => 18-19 segments.
        let stats = run_warp(32, |lane, acc| {
            acc.record_mem(site_a(), Space::Global, true, lane as u64 * 72, 8);
        });
        assert!(
            stats.global_store_tx >= 18,
            "tx = {}",
            stats.global_store_tx
        );
        let eff = stats.gst_efficiency(&cfg());
        assert!(eff < 0.15, "efficiency {eff} should be poor");
    }

    #[test]
    fn u8_coalesced_access_is_one_quarter_efficient() {
        let stats = run_warp(32, |lane, acc| {
            acc.record_mem(site_a(), Space::Global, false, lane as u64, 1);
        });
        assert_eq!(stats.global_load_tx, 1);
        assert!((stats.gld_efficiency(&cfg()) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn uniform_branch_is_not_divergent() {
        let stats = run_warp(32, |_, acc| {
            acc.record_branch(site_a(), true);
        });
        assert_eq!(stats.branch_slots, 1);
        assert_eq!(stats.divergent_branch_slots, 0);
        assert!((stats.branch_efficiency() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn mixed_branch_is_divergent() {
        let stats = run_warp(32, |lane, acc| {
            acc.record_branch(site_a(), lane % 2 == 0);
        });
        assert_eq!(stats.branch_slots, 1);
        assert_eq!(stats.divergent_branch_slots, 1);
        assert_eq!(stats.branch_efficiency(), 0.0);
    }

    #[test]
    fn divergent_paths_serialize_into_extra_slots() {
        // Half the lanes do work at site_a(), half at site_b(): both slots
        // must be issued (serialization).
        let stats = run_warp(32, |lane, acc| {
            if lane < 16 {
                acc.record_op(site_a(), OpClass::F32, 4);
            } else {
                acc.record_op(site_b(), OpClass::F32, 4);
            }
        });
        assert_eq!(stats.warp_slots, 2);
        assert!((stats.issue_cycles - 8.0).abs() < 1e-12);
        // Scalar FLOP count still reflects actual work: 32 lanes x 4.
        assert_eq!(stats.flops_f32, 128);
    }

    #[test]
    fn f64_ops_cost_double_issue() {
        let s32 = run_warp(32, |_, acc| acc.record_op(site_a(), OpClass::F32, 10));
        let s64 = run_warp(32, |_, acc| acc.record_op(site_a(), OpClass::F64, 10));
        assert!((s64.issue_cycles - 2.0 * s32.issue_cycles).abs() < 1e-12);
    }

    #[test]
    fn loop_iterations_occupy_distinct_slots() {
        // Each lane executes the same site 3 times: occurrences align
        // across lanes => 3 slots, not 1 or 96.
        let stats = run_warp(32, |_, acc| {
            for _ in 0..3 {
                acc.record_op(site_a(), OpClass::Int, 1);
            }
        });
        assert_eq!(stats.warp_slots, 3);
        assert_eq!(stats.int_ops, 96);
    }

    #[test]
    fn shared_conflict_free_access() {
        // Lane i -> word i: all 32 banks hit once.
        let stats = run_warp(32, |lane, acc| {
            acc.record_mem(site_a(), Space::Shared, false, lane as u64 * 4, 4);
        });
        assert_eq!(stats.shared_accesses, 32);
        assert_eq!(stats.shared_replays, 0);
    }

    #[test]
    fn shared_two_way_bank_conflict() {
        // Lane i -> word 2*i: banks 0,2,4,... each hit twice => 1 replay.
        let stats = run_warp(32, |lane, acc| {
            acc.record_mem(site_a(), Space::Shared, false, lane as u64 * 8, 4);
        });
        assert_eq!(stats.shared_replays, 1);
    }

    #[test]
    fn shared_broadcast_is_conflict_free() {
        // All lanes read the same word: broadcast, no replay.
        let stats = run_warp(32, |_, acc| {
            acc.record_mem(site_a(), Space::Shared, false, 64, 4);
        });
        assert_eq!(stats.shared_replays, 0);
    }

    #[test]
    fn local_space_counted_separately() {
        let stats = run_warp(32, |lane, acc| {
            acc.record_mem(site_a(), Space::Local, true, lane as u64 * 8, 8);
        });
        assert_eq!(stats.local_store_tx, 2);
        assert_eq!(stats.global_store_tx, 0);
    }

    #[test]
    fn site_profile_attributes_slots_to_sites() {
        let mut acc = WarpAccumulator::with_site_profile();
        let mut stats = KernelStats::default();
        for lane in 0..32 {
            acc.begin_lane();
            // site_a(): divergent branch; site_b(): coalesced f64 store.
            acc.record_branch(site_a(), lane % 2 == 0);
            acc.record_mem(site_b(), Space::Global, true, lane as u64 * 8, 8);
        }
        acc.end_warp(&cfg(), &mut stats);
        let profile = acc.take_site_profile().unwrap();
        assert_eq!(profile.len(), 2);
        let a = profile.get(sid(site_a())).unwrap();
        assert_eq!(a.branch_slots, 1);
        assert_eq!(a.divergent_branch_slots, 1);
        assert_eq!(a.transactions, 0);
        let b = profile.get(sid(site_b())).unwrap();
        assert_eq!(b.transactions, 2); // 256 B coalesced = 2 segments
        assert_eq!(b.bytes_requested, 256);
        assert_eq!(b.branch_slots, 0);
        // Site totals must sum to the whole-kernel counters.
        assert_eq!(a.transactions + b.transactions, stats.total_tx());
        assert!((a.issue_cycles + b.issue_cycles - stats.issue_cycles).abs() < 1e-12);
    }

    #[test]
    fn site_profile_absent_by_default() {
        let mut acc = WarpAccumulator::new();
        let mut stats = KernelStats::default();
        acc.begin_lane();
        acc.record_op(site_a(), OpClass::Int, 1);
        acc.end_warp(&cfg(), &mut stats);
        assert!(acc.take_site_profile().is_none());
    }

    #[test]
    fn site_profile_survives_multiple_warps() {
        let mut acc = WarpAccumulator::with_site_profile();
        let mut stats = KernelStats::default();
        for _warp in 0..3 {
            for _lane in 0..32 {
                acc.begin_lane();
                acc.record_op(site_a(), OpClass::F64, 2);
            }
            acc.end_warp(&cfg(), &mut stats);
        }
        let profile = acc.take_site_profile().unwrap();
        let a = profile.get(sid(site_a())).unwrap();
        assert_eq!(a.warp_slots, 3);
        assert_eq!(a.scalar_ops, 3 * 32 * 2);
    }

    #[test]
    fn partial_warp_counts_lanes() {
        let stats = run_warp(7, |lane, acc| {
            acc.record_mem(site_a(), Space::Global, false, lane as u64 * 8, 8);
        });
        assert_eq!(stats.lanes, 7);
        assert_eq!(stats.global_load_tx, 1); // 56 B within one segment
    }
}

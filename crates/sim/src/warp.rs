//! Warp-level slot accumulation: merging the 32 lanes of a warp into
//! warp instructions and deriving coalescing / divergence / bank-conflict
//! statistics.
//!
//! This is the simulator's hottest data structure — every recorded event
//! of every lane passes through it — so it is laid out
//! structure-of-arrays style around dense site indices: a
//! [`SiteInterner`] maps `&'static Location` addresses to small integers
//! once, and from then on the per-lane occurrence counters and the
//! occurrence → slot table are flat arrays indexed directly. The hot
//! `record_*` path performs no hashing (one multiply-shift probe in the
//! interner) and no allocation (access vectors are recycled through a
//! pool across warps). Slots are kept in program/insertion order, which
//! is also what makes the fold deterministic.
//!
//! Statistics semantics are pinned bit-for-bit against the pre-SoA
//! implementation preserved in [`crate::warp_reference`]; see
//! `tests/soa_equivalence.rs`.

use crate::config::GpuConfig;
use crate::profile::{SiteProfile, SiteStats};
use crate::stats::KernelStats;
use crate::trace::{OpClass, Site, SiteInterner, Space};
use std::panic::Location;

/// One warp-level instruction slot under construction.
#[derive(Debug)]
struct Slot {
    /// Original site pointer (for profile attribution).
    site: Site,
    /// Dense site index (to reset the slot table at warp end).
    dense: u32,
    /// Per-lane occurrence index this slot represents.
    occ: u32,
    kind: SlotKind,
}

#[derive(Debug)]
enum SlotKind {
    Op {
        class: OpClass,
        max_count: u32,
        lanes: u32,
    },
    Mem {
        space: Space,
        write: bool,
        bytes_requested: u64,
        accesses: Vec<(u64, u8)>,
    },
    Branch {
        taken: u32,
        not_taken: u32,
    },
    Sync {
        lanes: u32,
    },
}

/// Accumulates the events of one warp's 32 lanes and flushes warp-level
/// statistics into a [`KernelStats`].
///
/// Lanes execute sequentially; [`WarpAccumulator::begin_lane`] resets the
/// per-lane occurrence counters, and [`WarpAccumulator::end_warp`] analyses
/// and clears the slot table.
#[derive(Debug)]
pub struct WarpAccumulator {
    interner: SiteInterner,
    /// Per dense site: the current lane's occurrence counter.
    occ: Vec<u32>,
    /// Per dense site: occurrence → slot index for the current warp
    /// (`u32::MAX` = no slot yet). Rows keep their allocation across
    /// warps; entries are un-set per slot at warp end.
    slot_of: Vec<Vec<u32>>,
    /// Slots of the current warp, in first-recorded (program) order.
    slots: Vec<Slot>,
    /// Predicted slot index of the current lane's next event. Lanes of a
    /// warp usually replay the previous lane's event sequence in program
    /// order, so the common case needs no interner probe at all — just
    /// an exact `(site, occurrence)` check against `slots[cursor]`.
    cursor: u32,
    lanes_seen: u32,
    /// Whether per-site attribution is on (off by default).
    profiling: bool,
    /// Per dense site: batched attribution accumulator. Indexed by
    /// `Slot::dense`, so the profiled warp-end path is a plain vector
    /// add instead of a per-slot hash probe; materialized into a
    /// [`SiteProfile`] only in [`WarpAccumulator::take_site_profile`].
    site_acc: Vec<SiteStats>,
    /// Per dense site: whether the site was already registered with the
    /// global source-location registry (registration is idempotent, the
    /// flag just avoids re-taking the registry lock per warp).
    site_registered: Vec<bool>,
    /// Recycled access vectors for `SlotKind::Mem`, refilled at warp end
    /// so steady-state recording never allocates.
    access_pool: Vec<Vec<(u64, u8)>>,
    /// Warp-end scratch: first-touch-ordered segment list of one slot.
    segments: Vec<u64>,
    /// Warp-end scratch: the 4-byte shared words of one slot.
    words: Vec<u64>,
    /// Warp-end scratch: distinct-word counts per shared bank.
    bank_counts: Vec<u32>,
}

impl WarpAccumulator {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        WarpAccumulator {
            interner: SiteInterner::new(),
            occ: Vec::new(),
            slot_of: Vec::new(),
            slots: Vec::new(),
            cursor: 0,
            lanes_seen: 0,
            profiling: false,
            site_acc: Vec::new(),
            site_registered: Vec::new(),
            access_pool: Vec::new(),
            segments: Vec::with_capacity(64),
            words: Vec::with_capacity(64),
            bank_counts: Vec::new(),
        }
    }

    /// Creates an accumulator that additionally attributes every slot's
    /// counters to its source site.
    pub fn with_site_profile() -> Self {
        WarpAccumulator {
            profiling: true,
            ..Self::new()
        }
    }

    /// Takes the accumulated per-site profile (if site profiling was
    /// enabled), leaving an empty one behind.
    ///
    /// This is where the dense per-site accumulator is materialized into
    /// a keyed [`SiteProfile`] — once per block, not once per warp slot.
    pub fn take_site_profile(&mut self) -> Option<SiteProfile> {
        if !self.profiling {
            return None;
        }
        let mut profile = SiteProfile::new();
        for (dense, acc) in self.site_acc.iter_mut().enumerate() {
            // Sites the profiled warps never touched keep the default
            // all-zero entry; every touched site has `warp_slots >= 1`.
            if acc.warp_slots > 0 {
                profile.add(self.interner.site(dense as u32), acc);
                *acc = SiteStats::default();
            }
        }
        Some(profile)
    }

    /// Switches site profiling on or off — used when a pooled accumulator
    /// is reused by a launch with different [`crate::kernel::LaunchOptions`].
    /// Turning it on starts from an empty profile.
    pub fn set_profiling(&mut self, on: bool) {
        if on && !self.profiling {
            self.site_acc.fill_with(SiteStats::default);
        }
        self.profiling = on;
    }

    /// Starts recording a new lane of the current warp.
    pub fn begin_lane(&mut self) {
        self.occ.fill(0);
        self.cursor = 0;
        self.lanes_seen += 1;
    }

    /// Resolves the warp slot for one event at `site`: `Ok(index)` when
    /// the slot exists (an earlier lane reached this `(site, occurrence)`
    /// first), `Err((dense, occ))` when the caller must push a new slot —
    /// the table already points at `self.slots.len()`.
    ///
    /// The fast path predicts the slot from the cursor: when the lane is
    /// replaying the warp's program order (the overwhelmingly common,
    /// divergence-free case), `slots[cursor]` *is* this event's slot, and
    /// the exact `(site, occurrence)` check proves it without touching
    /// the interner — equivalent to the table lookup in `locate_slow`
    /// because `slot_of[dense][occ]` was set to exactly this index when
    /// the slot was created and is never overwritten within a warp.
    #[inline]
    fn locate(&mut self, site: Site) -> Result<usize, (u32, u32)> {
        let cur = self.cursor as usize;
        if let Some(slot) = self.slots.get(cur) {
            if slot.site == site && slot.occ == self.occ[slot.dense as usize] {
                self.occ[slot.dense as usize] += 1;
                self.cursor = cur as u32 + 1;
                return Ok(cur);
            }
        }
        self.locate_slow(site)
    }

    #[cold]
    fn locate_slow(&mut self, site: Site) -> Result<usize, (u32, u32)> {
        let dense = self.interner.intern(site) as usize;
        if dense >= self.occ.len() {
            self.occ.resize(dense + 1, 0);
            self.slot_of.resize_with(dense + 1, Vec::new);
        }
        let occ = self.occ[dense];
        self.occ[dense] = occ + 1;
        let row = &mut self.slot_of[dense];
        if (occ as usize) < row.len() {
            let ix = row[occ as usize];
            if ix != u32::MAX {
                self.cursor = ix + 1;
                return Ok(ix as usize);
            }
        } else {
            row.resize(occ as usize + 1, u32::MAX);
        }
        let ix = self.slots.len() as u32;
        row[occ as usize] = ix;
        // The caller pushes the new slot at `ix`; predict the event after
        // it at `ix + 1`.
        self.cursor = ix + 1;
        Err((dense as u32, occ))
    }

    /// Records `count` arithmetic operations of `class`.
    #[inline]
    pub fn record_op(&mut self, loc: &'static Location<'static>, class: OpClass, count: u32) {
        let site = loc as *const _ as usize;
        match self.locate(site) {
            Ok(ix) => match &mut self.slots[ix].kind {
                SlotKind::Op {
                    max_count, lanes, ..
                } => {
                    *max_count = (*max_count).max(count);
                    *lanes += 1;
                }
                other => debug_assert!(false, "slot kind mismatch at op slot: {other:?}"),
            },
            Err((dense, occ)) => self.slots.push(Slot {
                site,
                dense,
                occ,
                kind: SlotKind::Op {
                    class,
                    max_count: count,
                    lanes: 1,
                },
            }),
        }
    }

    /// Records a memory access of `width` bytes at `addr` in `space`.
    #[inline]
    pub fn record_mem(
        &mut self,
        loc: &'static Location<'static>,
        space: Space,
        write: bool,
        addr: u64,
        width: u8,
    ) {
        let site = loc as *const _ as usize;
        match self.locate(site) {
            Ok(ix) => match &mut self.slots[ix].kind {
                SlotKind::Mem {
                    bytes_requested,
                    accesses,
                    ..
                } => {
                    *bytes_requested += width as u64;
                    accesses.push((addr, width));
                }
                other => debug_assert!(false, "slot kind mismatch at mem slot: {other:?}"),
            },
            Err((dense, occ)) => {
                let mut accesses = self
                    .access_pool
                    .pop()
                    .unwrap_or_else(|| Vec::with_capacity(32));
                accesses.push((addr, width));
                self.slots.push(Slot {
                    site,
                    dense,
                    occ,
                    kind: SlotKind::Mem {
                        space,
                        write,
                        bytes_requested: width as u64,
                        accesses,
                    },
                });
            }
        }
    }

    /// Records a data-dependent branch outcome.
    #[inline]
    pub fn record_branch(&mut self, loc: &'static Location<'static>, taken: bool) {
        let site = loc as *const _ as usize;
        match self.locate(site) {
            Ok(ix) => match &mut self.slots[ix].kind {
                SlotKind::Branch {
                    taken: t,
                    not_taken: n,
                } => {
                    if taken {
                        *t += 1;
                    } else {
                        *n += 1;
                    }
                }
                other => debug_assert!(false, "slot kind mismatch at branch slot: {other:?}"),
            },
            Err((dense, occ)) => self.slots.push(Slot {
                site,
                dense,
                occ,
                kind: SlotKind::Branch {
                    taken: taken as u32,
                    not_taken: !taken as u32,
                },
            }),
        }
    }

    /// Records a `__syncthreads()`-style barrier.
    #[inline]
    pub fn record_sync(&mut self, loc: &'static Location<'static>) {
        let site = loc as *const _ as usize;
        match self.locate(site) {
            Ok(ix) => match &mut self.slots[ix].kind {
                SlotKind::Sync { lanes } => *lanes += 1,
                other => debug_assert!(false, "slot kind mismatch at sync slot: {other:?}"),
            },
            Err((dense, occ)) => self.slots.push(Slot {
                site,
                dense,
                occ,
                kind: SlotKind::Sync { lanes: 1 },
            }),
        }
    }

    /// Analyses the accumulated warp and folds its statistics into `stats`,
    /// then resets for the next warp. Convenience wrapper for the
    /// cache-less configuration.
    pub fn end_warp(&mut self, cfg: &GpuConfig, stats: &mut KernelStats) {
        self.end_warp_cached(cfg, stats, None);
    }

    /// Like [`WarpAccumulator::end_warp`], filtering DRAM transactions
    /// through an optional L2 cache slice: segments that hit do not count
    /// as transactions.
    pub fn end_warp_cached(
        &mut self,
        cfg: &GpuConfig,
        stats: &mut KernelStats,
        cache: Option<&mut crate::cache::CacheModel>,
    ) {
        // Monomorphize so the common unprofiled path carries no
        // per-slot attribution work at all.
        if self.profiling {
            self.end_warp_impl::<true>(cfg, stats, cache);
        } else {
            self.end_warp_impl::<false>(cfg, stats, cache);
        }
    }

    fn end_warp_impl<const PROFILE: bool>(
        &mut self,
        cfg: &GpuConfig,
        stats: &mut KernelStats,
        mut cache: Option<&mut crate::cache::CacheModel>,
    ) {
        let seg = cfg.segment_bytes;
        if self.bank_counts.len() < cfg.shared_banks as usize {
            self.bank_counts.resize(cfg.shared_banks as usize, 0);
        }
        // Move the slot list out so the scratch fields stay borrowable;
        // it is drained (capacity retained) and swapped back below.
        let mut slots = std::mem::take(&mut self.slots);
        for slot in &slots {
            // Per-slot contribution, also attributed to the slot's source
            // site when profiling is on.
            let mut delta = SiteStats {
                warp_slots: 1,
                ..Default::default()
            };
            match &slot.kind {
                SlotKind::Op {
                    class,
                    max_count,
                    lanes,
                } => {
                    let cost = match class {
                        OpClass::F64 => cfg.f64_issue_cost,
                        _ => 1.0,
                    };
                    stats.issue_cycles += *max_count as f64 * cost;
                    let scalar = *max_count as u64 * *lanes as u64;
                    if PROFILE {
                        delta.issue_cycles = *max_count as f64 * cost;
                        delta.scalar_ops = scalar;
                    }
                    match class {
                        OpClass::Int => stats.int_ops += scalar,
                        OpClass::F32 => stats.flops_f32 += scalar,
                        OpClass::F64 => stats.flops_f64 += scalar,
                    }
                }
                SlotKind::Mem {
                    space,
                    write,
                    bytes_requested,
                    accesses,
                } => {
                    stats.issue_cycles += 1.0;
                    if PROFILE {
                        delta.issue_cycles = 1.0;
                    }
                    match space {
                        Space::Shared => {
                            // Bank conflicts: replays = max number of
                            // *distinct 4-byte words* mapping to one bank.
                            // A word lives on exactly one bank, so global
                            // sort+dedup then per-bank counting gives the
                            // same per-bank distinct-word sets as the
                            // per-bank lists the reference kept.
                            self.words.clear();
                            for &(addr, width) in accesses {
                                let mut w = addr / 4;
                                let end = (addr + width as u64).div_ceil(4);
                                loop {
                                    self.words.push(w);
                                    w += 1;
                                    if w >= end {
                                        break;
                                    }
                                }
                            }
                            self.words.sort_unstable();
                            self.words.dedup();
                            let banks = cfg.shared_banks as u64;
                            let mut degree = 1u64;
                            for &w in &self.words {
                                let b = (w % banks) as usize;
                                self.bank_counts[b] += 1;
                                degree = degree.max(self.bank_counts[b] as u64);
                            }
                            for &w in &self.words {
                                self.bank_counts[(w % banks) as usize] = 0;
                            }
                            stats.shared_accesses += accesses.len() as u64;
                            stats.shared_replays += degree - 1;
                            // Each replay is an extra issue of this slot.
                            stats.issue_cycles += (degree - 1) as f64;
                            if PROFILE {
                                delta.shared_replays = degree - 1;
                                delta.issue_cycles += (degree - 1) as f64;
                            }
                        }
                        Space::Global | Space::Local => {
                            let tx = match cache.as_deref_mut() {
                                Some(c) => {
                                    // First-touch segment order is
                                    // preserved: the L2 model is stateful,
                                    // so the sequence of `access_segment`
                                    // calls is semantics.
                                    self.segments.clear();
                                    for &(addr, width) in accesses {
                                        let first = addr / seg;
                                        let last = (addr + width as u64 - 1) / seg;
                                        for s in first..=last {
                                            if self.segments.last() != Some(&s)
                                                && !self.segments.contains(&s)
                                            {
                                                self.segments.push(s);
                                            }
                                        }
                                    }
                                    let mut misses = 0u64;
                                    for &s in self.segments.iter() {
                                        if c.access_segment(s) {
                                            stats.l2_hits += 1;
                                        } else {
                                            stats.l2_misses += 1;
                                            misses += 1;
                                        }
                                    }
                                    misses
                                }
                                None => {
                                    // Without a cache only the *count* of
                                    // distinct segments matters, so the
                                    // quadratic first-touch dedupe can be
                                    // replaced by sort + dedup — ~5x
                                    // cheaper for the strided slots of the
                                    // unoptimized ladder levels. The
                                    // `last()` check strips the runs of
                                    // equal segments coalesced accesses
                                    // produce before paying for the sort.
                                    self.segments.clear();
                                    for &(addr, width) in accesses {
                                        let first = addr / seg;
                                        let last = (addr + width as u64 - 1) / seg;
                                        let mut s = first;
                                        loop {
                                            if self.segments.last() != Some(&s) {
                                                self.segments.push(s);
                                            }
                                            if s >= last {
                                                break;
                                            }
                                            s += 1;
                                        }
                                    }
                                    self.segments.sort_unstable();
                                    self.segments.dedup();
                                    self.segments.len() as u64
                                }
                            };
                            stats.mem_slots += 1;
                            stats.lane_mem_accesses += accesses.len() as u64;
                            if PROFILE {
                                delta.transactions = tx;
                                delta.bytes_requested = *bytes_requested;
                            }
                            match (space, write) {
                                (Space::Global, false) => {
                                    stats.global_load_tx += tx;
                                    stats.global_load_bytes_requested += bytes_requested;
                                }
                                (Space::Global, true) => {
                                    stats.global_store_tx += tx;
                                    stats.global_store_bytes_requested += bytes_requested;
                                }
                                (Space::Local, false) => {
                                    stats.local_load_tx += tx;
                                    stats.local_load_bytes_requested += bytes_requested;
                                }
                                (Space::Local, true) => {
                                    stats.local_store_tx += tx;
                                    stats.local_store_bytes_requested += bytes_requested;
                                }
                                (Space::Shared, _) => unreachable!(),
                            }
                        }
                    }
                }
                SlotKind::Branch { taken, not_taken } => {
                    stats.issue_cycles += 1.0;
                    stats.branch_slots += 1;
                    stats.lane_branches += (*taken + *not_taken) as u64;
                    if PROFILE {
                        delta.issue_cycles = 1.0;
                        delta.branch_slots = 1;
                    }
                    if *taken > 0 && *not_taken > 0 {
                        stats.divergent_branch_slots += 1;
                        if PROFILE {
                            delta.divergent_branch_slots = 1;
                        }
                    }
                }
                SlotKind::Sync { .. } => {
                    stats.issue_cycles += 1.0;
                    stats.sync_slots += 1;
                    if PROFILE {
                        delta.issue_cycles = 1.0;
                        delta.sync_slots = 1;
                    }
                }
            }
            if PROFILE {
                // Batched attribution: fold the slot's delta into the
                // dense per-site row; the keyed profile is materialized
                // once per block in `take_site_profile`.
                let dense = slot.dense as usize;
                if dense >= self.site_acc.len() {
                    self.site_acc.resize_with(dense + 1, SiteStats::default);
                    self.site_registered.resize(dense + 1, false);
                }
                self.site_acc[dense].merge(&delta);
                if !self.site_registered[dense] {
                    self.site_registered[dense] = true;
                    // First sighting of this site in the profile:
                    // resolve its source position. Sound cast: sites
                    // only enter `slots` through `record_*`, which
                    // takes `&'static Location`.
                    let loc = unsafe { &*(slot.site as *const Location<'static>) };
                    crate::trace::register_site(slot.site, loc);
                }
            }
        }
        stats.warp_slots += slots.len() as u64;
        stats.warps += 1;
        stats.lanes += self.lanes_seen as u64;
        // Reset the occurrence → slot table and recycle access vectors.
        for slot in slots.drain(..) {
            self.slot_of[slot.dense as usize][slot.occ as usize] = u32::MAX;
            if let SlotKind::Mem { mut accesses, .. } = slot.kind {
                accesses.clear();
                self.access_pool.push(accesses);
            }
        }
        self.slots = slots;
        self.lanes_seen = 0;
    }
}

impl Default for WarpAccumulator {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::Site;

    fn cfg() -> GpuConfig {
        GpuConfig::tesla_c2075()
    }

    /// Helper: run `f(lane, acc)` for `n` lanes and flush.
    fn run_warp(n: u32, mut f: impl FnMut(u32, &mut WarpAccumulator)) -> KernelStats {
        let mut acc = WarpAccumulator::new();
        let mut stats = KernelStats::default();
        for lane in 0..n {
            acc.begin_lane();
            f(lane, &mut acc);
        }
        acc.end_warp(&cfg(), &mut stats);
        stats
    }

    // Two distinct real call sites: the typed `record_*` API requires
    // genuine `Location`s (their addresses are the site keys).
    fn site_a() -> &'static Location<'static> {
        Location::caller()
    }
    fn site_b() -> &'static Location<'static> {
        Location::caller()
    }

    fn sid(loc: &'static Location<'static>) -> Site {
        loc as *const _ as usize
    }

    #[test]
    fn coalesced_f64_warp_access_is_two_transactions() {
        // 32 lanes x 8 B contiguous = 256 B = 2 x 128 B segments.
        let stats = run_warp(32, |lane, acc| {
            acc.record_mem(site_a(), Space::Global, false, lane as u64 * 8, 8);
        });
        assert_eq!(stats.global_load_tx, 2);
        assert_eq!(stats.global_load_bytes_requested, 256);
        assert!((stats.gld_efficiency(&cfg()) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn strided_aos_access_explodes_transactions() {
        // Stride 72 B (3 Gaussians x 3 f64 params, AoS): 32 lanes span
        // 32*72 = 2304 B => 18-19 segments.
        let stats = run_warp(32, |lane, acc| {
            acc.record_mem(site_a(), Space::Global, true, lane as u64 * 72, 8);
        });
        assert!(
            stats.global_store_tx >= 18,
            "tx = {}",
            stats.global_store_tx
        );
        let eff = stats.gst_efficiency(&cfg());
        assert!(eff < 0.15, "efficiency {eff} should be poor");
    }

    #[test]
    fn u8_coalesced_access_is_one_quarter_efficient() {
        let stats = run_warp(32, |lane, acc| {
            acc.record_mem(site_a(), Space::Global, false, lane as u64, 1);
        });
        assert_eq!(stats.global_load_tx, 1);
        assert!((stats.gld_efficiency(&cfg()) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn uniform_branch_is_not_divergent() {
        let stats = run_warp(32, |_, acc| {
            acc.record_branch(site_a(), true);
        });
        assert_eq!(stats.branch_slots, 1);
        assert_eq!(stats.divergent_branch_slots, 0);
        assert!((stats.branch_efficiency() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn mixed_branch_is_divergent() {
        let stats = run_warp(32, |lane, acc| {
            acc.record_branch(site_a(), lane % 2 == 0);
        });
        assert_eq!(stats.branch_slots, 1);
        assert_eq!(stats.divergent_branch_slots, 1);
        assert_eq!(stats.branch_efficiency(), 0.0);
    }

    #[test]
    fn divergent_paths_serialize_into_extra_slots() {
        // Half the lanes do work at site_a(), half at site_b(): both slots
        // must be issued (serialization).
        let stats = run_warp(32, |lane, acc| {
            if lane < 16 {
                acc.record_op(site_a(), OpClass::F32, 4);
            } else {
                acc.record_op(site_b(), OpClass::F32, 4);
            }
        });
        assert_eq!(stats.warp_slots, 2);
        assert!((stats.issue_cycles - 8.0).abs() < 1e-12);
        // Scalar FLOP count still reflects actual work: 32 lanes x 4.
        assert_eq!(stats.flops_f32, 128);
    }

    #[test]
    fn f64_ops_cost_double_issue() {
        let s32 = run_warp(32, |_, acc| acc.record_op(site_a(), OpClass::F32, 10));
        let s64 = run_warp(32, |_, acc| acc.record_op(site_a(), OpClass::F64, 10));
        assert!((s64.issue_cycles - 2.0 * s32.issue_cycles).abs() < 1e-12);
    }

    #[test]
    fn loop_iterations_occupy_distinct_slots() {
        // Each lane executes the same site 3 times: occurrences align
        // across lanes => 3 slots, not 1 or 96.
        let stats = run_warp(32, |_, acc| {
            for _ in 0..3 {
                acc.record_op(site_a(), OpClass::Int, 1);
            }
        });
        assert_eq!(stats.warp_slots, 3);
        assert_eq!(stats.int_ops, 96);
    }

    #[test]
    fn shared_conflict_free_access() {
        // Lane i -> word i: all 32 banks hit once.
        let stats = run_warp(32, |lane, acc| {
            acc.record_mem(site_a(), Space::Shared, false, lane as u64 * 4, 4);
        });
        assert_eq!(stats.shared_accesses, 32);
        assert_eq!(stats.shared_replays, 0);
    }

    #[test]
    fn shared_two_way_bank_conflict() {
        // Lane i -> word 2*i: banks 0,2,4,... each hit twice => 1 replay.
        let stats = run_warp(32, |lane, acc| {
            acc.record_mem(site_a(), Space::Shared, false, lane as u64 * 8, 4);
        });
        assert_eq!(stats.shared_replays, 1);
    }

    #[test]
    fn shared_broadcast_is_conflict_free() {
        // All lanes read the same word: broadcast, no replay.
        let stats = run_warp(32, |_, acc| {
            acc.record_mem(site_a(), Space::Shared, false, 64, 4);
        });
        assert_eq!(stats.shared_replays, 0);
    }

    #[test]
    fn local_space_counted_separately() {
        let stats = run_warp(32, |lane, acc| {
            acc.record_mem(site_a(), Space::Local, true, lane as u64 * 8, 8);
        });
        assert_eq!(stats.local_store_tx, 2);
        assert_eq!(stats.global_store_tx, 0);
    }

    #[test]
    fn site_profile_attributes_slots_to_sites() {
        let mut acc = WarpAccumulator::with_site_profile();
        let mut stats = KernelStats::default();
        for lane in 0..32 {
            acc.begin_lane();
            // site_a(): divergent branch; site_b(): coalesced f64 store.
            acc.record_branch(site_a(), lane % 2 == 0);
            acc.record_mem(site_b(), Space::Global, true, lane as u64 * 8, 8);
        }
        acc.end_warp(&cfg(), &mut stats);
        let profile = acc.take_site_profile().unwrap();
        assert_eq!(profile.len(), 2);
        let a = profile.get(sid(site_a())).unwrap();
        assert_eq!(a.branch_slots, 1);
        assert_eq!(a.divergent_branch_slots, 1);
        assert_eq!(a.transactions, 0);
        let b = profile.get(sid(site_b())).unwrap();
        assert_eq!(b.transactions, 2); // 256 B coalesced = 2 segments
        assert_eq!(b.bytes_requested, 256);
        assert_eq!(b.branch_slots, 0);
        // Site totals must sum to the whole-kernel counters.
        assert_eq!(a.transactions + b.transactions, stats.total_tx());
        assert!((a.issue_cycles + b.issue_cycles - stats.issue_cycles).abs() < 1e-12);
    }

    #[test]
    fn site_profile_absent_by_default() {
        let mut acc = WarpAccumulator::new();
        let mut stats = KernelStats::default();
        acc.begin_lane();
        acc.record_op(site_a(), OpClass::Int, 1);
        acc.end_warp(&cfg(), &mut stats);
        assert!(acc.take_site_profile().is_none());
    }

    #[test]
    fn site_profile_survives_multiple_warps() {
        let mut acc = WarpAccumulator::with_site_profile();
        let mut stats = KernelStats::default();
        for _warp in 0..3 {
            for _lane in 0..32 {
                acc.begin_lane();
                acc.record_op(site_a(), OpClass::F64, 2);
            }
            acc.end_warp(&cfg(), &mut stats);
        }
        let profile = acc.take_site_profile().unwrap();
        let a = profile.get(sid(site_a())).unwrap();
        assert_eq!(a.warp_slots, 3);
        assert_eq!(a.scalar_ops, 3 * 32 * 2);
    }

    #[test]
    fn partial_warp_counts_lanes() {
        let stats = run_warp(7, |lane, acc| {
            acc.record_mem(site_a(), Space::Global, false, lane as u64 * 8, 8);
        });
        assert_eq!(stats.lanes, 7);
        assert_eq!(stats.global_load_tx, 1); // 56 B within one segment
    }

    #[test]
    fn accumulator_reuse_across_warps_is_clean() {
        // The SoA tables persist across warps (occurrence resets, slot
        // table un-set, access vectors pooled): a second identical warp
        // must fold identical statistics.
        let mut acc = WarpAccumulator::new();
        let mut first = KernelStats::default();
        let mut second = KernelStats::default();
        for (warp, stats) in [&mut first, &mut second].into_iter().enumerate() {
            for lane in 0..32u32 {
                acc.begin_lane();
                for i in 0..3 {
                    acc.record_op(site_a(), OpClass::Int, i + 1);
                }
                acc.record_mem(site_b(), Space::Global, warp == 1, lane as u64 * 8, 8);
                acc.record_branch(site_a(), lane < 16);
            }
            acc.end_warp(&cfg(), stats);
        }
        assert_eq!(first.warp_slots, second.warp_slots);
        assert_eq!(first.int_ops, second.int_ops);
        assert_eq!(first.global_load_tx, second.global_store_tx);
        assert_eq!(first.branch_slots, 1);
        assert_eq!(second.divergent_branch_slots, 1);
    }
}

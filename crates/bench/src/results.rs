//! Result persistence (`results/experiments.json`) and table rendering.

use serde::Serialize;
use std::io::Write;
use std::path::Path;

/// Accumulates experiment outputs for the `exp_all` JSON dump.
#[derive(Debug, Default, Serialize)]
pub struct ResultsFile {
    /// Arbitrary per-experiment JSON payloads keyed by experiment id.
    pub experiments: std::collections::BTreeMap<String, serde_json::Value>,
}

impl ResultsFile {
    /// Creates an empty results accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a serializable payload under `id`.
    pub fn record<T: Serialize>(&mut self, id: &str, payload: &T) {
        self.experiments.insert(
            id.to_string(),
            serde_json::to_value(payload).expect("serializable"),
        );
    }

    /// Writes the accumulated results as canonical pretty JSON (keys
    /// recursively sorted), so regenerating `results/experiments.json`
    /// diffs byte-stably in git.
    ///
    /// # Errors
    /// I/O errors from file creation or writing.
    pub fn write_to(&self, path: &Path) -> std::io::Result<()> {
        if let Some(dir) = path.parent() {
            std::fs::create_dir_all(dir)?;
        }
        let mut f = std::fs::File::create(path)?;
        writeln!(
            f,
            "{}",
            serde_json::to_string_canonical_pretty(self).expect("serializable")
        )?;
        Ok(())
    }
}

/// Prints a horizontal rule sized to `width`.
pub fn rule(width: usize) {
    println!("{}", "-".repeat(width));
}

/// Formats a ratio as a percentage string.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", 100.0 * x)
}

/// Formats a count with engineering suffixes (k/M).
pub fn eng(x: f64) -> String {
    if x >= 1e6 {
        format!("{:.2}M", x / 1e6)
    } else if x >= 1e3 {
        format!("{:.1}k", x / 1e3)
    } else {
        format!("{x:.0}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eng_formats() {
        assert_eq!(eng(13_300_000.0), "13.30M");
        assert_eq!(eng(2_000.0), "2.0k");
        assert_eq!(eng(42.0), "42");
    }

    #[test]
    fn pct_formats() {
        assert_eq!(pct(0.785), "78.5%");
    }

    #[test]
    fn results_round_trip() {
        let mut r = ResultsFile::new();
        r.record("exp_test", &serde_json::json!({"speedup": 97.0}));
        let dir = std::env::temp_dir().join("mogpu_results_test");
        let path = dir.join("experiments.json");
        r.write_to(&path).unwrap();
        let back: serde_json::Value =
            serde_json::from_str(&std::fs::read_to_string(&path).unwrap()).unwrap();
        assert_eq!(back["experiments"]["exp_test"]["speedup"], 97.0);
        std::fs::remove_dir_all(&dir).ok();
    }
}

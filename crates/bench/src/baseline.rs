//! Performance-regression baselines: `mogpu bench record` / `bench check`.
//!
//! A [`Baseline`] freezes the reproduced headline numbers — per ladder
//! level (A–F and W(8)): modelled full-HD fps, speedup over the serial
//! CPU reference, memory access efficiency, store transactions per frame,
//! and occupancy; plus the multi-stream aggregate — together with the
//! per-metric tolerances a later [`check`] applies. The workload is the
//! deterministic [`harness::standard_scene`](crate::harness) sequence, so
//! an unmodified rerun reproduces the recorded values exactly and any
//! diff beyond tolerance is a real model/code change, not noise. The
//! check is two-sided on purpose: silent *improvements* also invalidate
//! the reproduced paper numbers and must be re-recorded deliberately.

use crate::harness::{
    cpu_serial_hd_per_frame, default_params, ladder_row, run_level, standard_scene,
    standard_scene_seeded, SIM_RESOLUTION,
};
use mogpu_core::{FleetPipeline, MultiGpuMog, OptLevel, ProfileReport as CoreProfileReport};
use mogpu_frame::Frame;
use mogpu_sim::GpuConfig;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::path::Path;

/// Format version of baseline files. Schema 2 added host-side simulator
/// throughput (`multi_stream.sim_frames_per_sec`, gated by a one-sided
/// floor) to schema 1's modelled metrics. Schema 3 added the fleet
/// record (`fleet.*`): a deterministic heterogeneous two-device run
/// whose admission counts are gated exactly and whose modelled
/// aggregate throughput is gated like the other fps metrics. Schema 4
/// added `reports`: per-level slim profile-report pointers (paths
/// relative to the baseline file) that let a failing `bench check`
/// attribute the drift with `mogpu diff` instead of only naming it.
pub const BASELINE_SCHEMA: u32 = 4;

/// Device preset keys of the baseline fleet run: intentionally fewer
/// devices than `BenchConfig::streams` offline streams, so admission
/// control and shedding are both exercised by the gate.
pub const FLEET_DEVICE_KEYS: [&str; 2] = ["c2075", "hbm"];

/// Default baseline location relative to the repository root.
pub const DEFAULT_BASELINE_PATH: &str = "results/baselines/default.json";

/// Workload shape a baseline is measured over.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BenchConfig {
    /// Frames rendered per run (the first seeds the model).
    pub frames: usize,
    /// Gaussian components per pixel.
    pub k: usize,
    /// Streams in the multi-stream run.
    pub streams: usize,
}

impl Default for BenchConfig {
    fn default() -> Self {
        // Small enough for a CI gate (seconds), large enough that one
        // frame's counters cannot hide in pipeline fill/drain effects.
        BenchConfig {
            frames: 9,
            k: 3,
            streams: 3,
        }
    }
}

/// Per-metric drift tolerances. Relative tolerances are fractions of the
/// recorded value; absolute ones are plain differences. The simulator is
/// deterministic, so these only need to absorb cross-platform libm
/// differences — they are *not* a noise budget.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Tolerances {
    /// Relative tolerance on modelled full-HD fps.
    pub fps_rel: f64,
    /// Relative tolerance on speedup over the serial CPU reference.
    pub speedup_rel: f64,
    /// Absolute tolerance on memory access efficiency (a [0, 1] ratio).
    pub mem_eff_abs: f64,
    /// Relative tolerance on store transactions per frame.
    pub store_tx_rel: f64,
    /// Absolute tolerance on occupancy (a [0, 1] ratio).
    pub occupancy_abs: f64,
    /// Absolute tolerance on multi-stream kernel utilization.
    pub utilization_abs: f64,
    /// One-sided floor on host-side simulator throughput: the fresh
    /// measurement fails only when it drops below
    /// `baseline * (1 - sim_throughput_floor_rel)`. Unlike every other
    /// metric this one is wall-clock (machine-dependent and noisy), so
    /// the band is wide and improvements never fail — the gate exists to
    /// catch *order-of-magnitude* simulator slowdowns, not to freeze a
    /// number.
    pub sim_throughput_floor_rel: f64,
}

impl Default for Tolerances {
    fn default() -> Self {
        Tolerances {
            fps_rel: 0.02,
            speedup_rel: 0.02,
            mem_eff_abs: 0.005,
            store_tx_rel: 0.01,
            occupancy_abs: 0.001,
            utilization_abs: 0.02,
            sim_throughput_floor_rel: 0.75,
        }
    }
}

/// Recorded numbers of one ladder level.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LevelRecord {
    /// Modelled full-HD frames per second.
    pub fps: f64,
    /// Speedup over the modelled serial CPU.
    pub speedup: f64,
    /// Memory access efficiency in [0, 1].
    pub mem_access_efficiency: f64,
    /// DRAM store transactions per full-HD frame.
    pub store_tx_per_frame: f64,
    /// Theoretical SM occupancy in [0, 1].
    pub occupancy: f64,
}

/// Recorded numbers of the multi-stream run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StreamRecord {
    /// Streams multiplexed onto the device.
    pub streams: usize,
    /// Frames processed per stream.
    pub frames_per_stream: usize,
    /// Aggregate throughput across streams (simulated-resolution fps).
    pub aggregate_fps: f64,
    /// Compute-engine busy fraction of the makespan.
    pub kernel_utilization: f64,
    /// Host-side simulator throughput: frames *simulated* per wall-clock
    /// second during the multi-stream run. The only non-deterministic
    /// metric in the baseline; checked against a one-sided floor.
    pub sim_frames_per_sec: f64,
}

/// Recorded numbers of the fleet run (heterogeneous devices, offline
/// streams, admission control). Everything here is modelled, so every
/// metric is deterministic.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetRecord {
    /// Device preset keys of the fleet, in device order.
    pub devices: Vec<String>,
    /// Streams offered to the dispatcher.
    pub streams: usize,
    /// Streams admission control placed on a device.
    pub streams_admitted: usize,
    /// Admitted streams served within their SLO for the whole run.
    pub streams_at_slo: u64,
    /// Frames shed by admission control (attributed drop events).
    pub frames_dropped: u64,
    /// Completed frames per modelled second of fleet makespan.
    pub aggregate_fps: f64,
}

/// A tolerance-annotated performance baseline.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Baseline {
    /// Baseline file format version ([`BASELINE_SCHEMA`]).
    pub schema: u32,
    /// Workload shape the numbers were measured over.
    pub config: BenchConfig,
    /// Per-metric drift tolerances [`check`] applies.
    pub tolerances: Tolerances,
    /// Ladder levels keyed by level name ("A".."F", "W(8)").
    pub levels: BTreeMap<String, LevelRecord>,
    /// Multi-stream aggregate.
    pub multi_stream: StreamRecord,
    /// Fleet-dispatch aggregate ([`FLEET_DEVICE_KEYS`]).
    pub fleet: FleetRecord,
    /// Per-level slim profile reports recorded next to the baseline,
    /// keyed by level name; values are paths relative to the baseline
    /// file. Empty when the baseline was measured without attribution
    /// (e.g. in-memory comparisons).
    pub reports: BTreeMap<String, String>,
}

/// One compared metric in a [`check`] outcome.
#[derive(Debug, Clone, Serialize)]
pub struct MetricDiff {
    /// Metric id, e.g. `"F.fps"` or `"streams.aggregate_fps"`.
    pub metric: String,
    /// Recorded value.
    pub baseline: f64,
    /// Freshly measured value.
    pub current: f64,
    /// `current - baseline`.
    pub delta: f64,
    /// Allowed drift (relative fraction or absolute difference).
    pub tolerance: f64,
    /// `"relative"` or `"absolute"`.
    pub kind: String,
    /// Whether the drift is within tolerance.
    pub pass: bool,
}

/// Outcome of diffing a fresh measurement against a baseline.
#[derive(Debug, Clone, Serialize)]
pub struct CheckReport {
    /// True when every metric is within tolerance.
    pub pass: bool,
    /// Per-metric comparison, in deterministic order.
    pub diffs: Vec<MetricDiff>,
}

/// Measures a fresh [`Baseline`] over the standard deterministic
/// workload: the full ladder A–F plus W(8), and a level-F multi-stream
/// run with per-stream scene variants.
pub fn measure(cfg: &BenchConfig, tolerances: Tolerances) -> Baseline {
    let frames = standard_scene(SIM_RESOLUTION)
        .render_sequence(cfg.frames)
        .0
        .into_frames();
    let c_report = run_level::<f64>(OptLevel::C, default_params(cfg.k), &frames);
    let serial = cpu_serial_hd_per_frame(&c_report);
    let mut levels = BTreeMap::new();
    for level in OptLevel::LADDER
        .into_iter()
        .chain([OptLevel::Windowed { group: 8 }])
    {
        let row = ladder_row::<f64>(level, default_params(cfg.k), &frames, serial);
        levels.insert(
            row.level.clone(),
            LevelRecord {
                fps: 1e3 / row.hd.e2e_ms,
                speedup: row.speedup,
                mem_access_efficiency: row.mem_eff,
                store_tx_per_frame: row.hd.store_tx_per_frame,
                occupancy: row.occupancy,
            },
        );
    }

    // Multi-stream: distinct scene per camera (varied seed), level F.
    let scenes: Vec<Vec<Frame<u8>>> = (0..cfg.streams)
        .map(|s| {
            standard_scene_seeded(SIM_RESOLUTION, 0x1CC_2014 + 1 + s as u64)
                .render_sequence(cfg.frames)
                .0
                .into_frames()
        })
        .collect();
    let seeds: Vec<&[u8]> = scenes.iter().map(|f| f[0].as_slice()).collect();
    let mut multi = MultiGpuMog::<f64>::new(
        SIM_RESOLUTION,
        default_params(cfg.k),
        OptLevel::F,
        &seeds,
        GpuConfig::tesla_c2075(),
    )
    .expect("multi-stream construction");
    let inputs: Vec<Vec<Frame<u8>>> = scenes.iter().map(|f| f[1..].to_vec()).collect();
    let started = std::time::Instant::now();
    let r = multi.process_all(&inputs).expect("multi-stream run");
    let wall_s = started.elapsed().as_secs_f64();

    // Fleet dispatch: the same per-stream scenes offered offline to a
    // smaller heterogeneous fleet, so both admission and shedding are
    // exercised. All metrics are modelled and deterministic.
    let mut fleet_pipe = FleetPipeline::<f64>::new(
        SIM_RESOLUTION,
        default_params(cfg.k),
        OptLevel::F,
        &seeds,
        &FLEET_DEVICE_KEYS,
    )
    .expect("fleet construction");
    let fleet_run = fleet_pipe.process_all(&inputs).expect("fleet run");
    let fleet_report = &fleet_run.report;
    let completed = fleet_report.streams_admitted() * cfg.frames.saturating_sub(1);
    let fleet = FleetRecord {
        devices: FLEET_DEVICE_KEYS.iter().map(|k| k.to_string()).collect(),
        streams: cfg.streams,
        streams_admitted: fleet_report.streams_admitted(),
        streams_at_slo: fleet_report.streams_at_slo(),
        frames_dropped: fleet_report.frames_dropped(),
        aggregate_fps: if fleet_report.makespan_s > 0.0 {
            completed as f64 / fleet_report.makespan_s
        } else {
            0.0
        },
    };

    Baseline {
        schema: BASELINE_SCHEMA,
        config: *cfg,
        tolerances,
        levels,
        multi_stream: StreamRecord {
            streams: cfg.streams,
            frames_per_stream: cfg.frames.saturating_sub(1),
            aggregate_fps: r.aggregate_fps,
            kernel_utilization: r.kernel_utilization,
            sim_frames_per_sec: if wall_s > 0.0 {
                r.total_frames as f64 / wall_s
            } else {
                f64::NAN
            },
        },
        fleet,
        reports: BTreeMap::new(),
    }
}

/// Slims a full profile report down to the fields `mogpu diff` consumes
/// for attribution: identity, headline fps, the summed counters, and the
/// per-site decomposition. Drops the bulky per-launch/telemetry series
/// so per-level files stay a few KB in git.
pub fn slim_report(report: &CoreProfileReport) -> serde_json::Value {
    let full = serde_json::to_value(report).expect("serializable");
    let keys = [
        "level",
        "frames",
        "fps",
        "stats",
        "metrics",
        "occupancy",
        "timing",
        "stalls",
        "site_stalls",
        "hotspots",
    ];
    serde_json::Value::Object(
        keys.iter()
            .filter_map(|k| full.get(k).map(|v| (k.to_string(), v.clone())))
            .collect(),
    )
}

/// File-system-safe name of a ladder level ("W(8)" -> "W8").
fn level_file_name(level: &str) -> String {
    level
        .chars()
        .filter(|c| c.is_ascii_alphanumeric())
        .collect()
}

/// Resolves a recorded level name back to its [`OptLevel`].
fn level_from_name(name: &str) -> Option<OptLevel> {
    OptLevel::LADDER
        .into_iter()
        .chain([OptLevel::Windowed { group: 8 }])
        .find(|l| l.name() == name)
}

/// Profiles a level over the baseline workload and returns its slim
/// report document.
fn slim_level_value(cfg: &BenchConfig, level: OptLevel) -> serde_json::Value {
    let frames = standard_scene(SIM_RESOLUTION)
        .render_sequence(cfg.frames)
        .0
        .into_frames();
    slim_report(&crate::harness::profile_level::<f64>(
        level,
        default_params(cfg.k),
        &frames,
    ))
}

/// Profiles every recorded ladder level over the baseline's workload and
/// writes slim per-level reports into `reports/` next to the baseline
/// file, filling [`Baseline::reports`] with the relative paths.
///
/// # Errors
/// I/O errors creating the reports directory or writing a report file.
pub fn attach_reports(baseline: &mut Baseline, baseline_path: &Path) -> Result<(), String> {
    let dir = baseline_path
        .parent()
        .unwrap_or(Path::new("."))
        .to_path_buf();
    let levels: Vec<String> = baseline.levels.keys().cloned().collect();
    for name in levels {
        let Some(level) = level_from_name(&name) else {
            return Err(format!("unknown recorded level {name:?}"));
        };
        let slim = slim_level_value(&baseline.config, level);
        let rel = format!("reports/{}.json", level_file_name(&name));
        let path = dir.join(&rel);
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent).map_err(|e| format!("{}: {e}", parent.display()))?;
        }
        let text = serde_json::to_string_canonical_pretty(&slim).expect("serializable");
        std::fs::write(&path, format!("{text}\n"))
            .map_err(|e| format!("{}: {e}", path.display()))?;
        baseline.reports.insert(name, rel);
    }
    Ok(())
}

/// Attributes a failing [`check`] with `sim::diff`: for every ladder
/// level with a failing metric and a stored slim report, the stored
/// (baseline-side) report is diffed against a freshly profiled one over
/// the baseline's workload. Failing stream/fleet metrics carry no stored
/// reports and are listed in the diff's notes instead. Returns `None`
/// when the check passed.
///
/// # Errors
/// Unreadable/malformed stored reports, or a diff-engine error.
pub fn attribute_failures(
    baseline: &Baseline,
    report: &CheckReport,
    baseline_path: &Path,
) -> Result<Option<mogpu_sim::diff::DiffReport>, String> {
    if report.pass {
        return Ok(None);
    }
    let dir = baseline_path.parent().unwrap_or(Path::new("."));
    // A metric id is "<level>.<field>" for ladder metrics; everything
    // else (streams.*, fleet.*) has no per-level report behind it.
    let mut failing_levels: Vec<String> = Vec::new();
    let mut unattributed: Vec<String> = Vec::new();
    for d in report.diffs.iter().filter(|d| !d.pass) {
        let prefix = d.metric.split('.').next().unwrap_or("");
        if baseline.levels.contains_key(prefix) {
            if !failing_levels.iter().any(|l| l == prefix) {
                failing_levels.push(prefix.to_string());
            }
        } else {
            unattributed.push(d.metric.clone());
        }
    }
    let mut stored: Vec<serde_json::Value> = Vec::new();
    let mut fresh: Vec<serde_json::Value> = Vec::new();
    let mut notes: Vec<String> = Vec::new();
    for name in &failing_levels {
        let Some(rel) = baseline.reports.get(name) else {
            notes.push(format!(
                "level {name} failed but the baseline carries no stored report \
                 (re-record with `mogpu bench record`)"
            ));
            continue;
        };
        let path = dir.join(rel);
        let text = std::fs::read_to_string(&path)
            .map_err(|e| format!("stored report {}: {e}", path.display()))?;
        let value: serde_json::Value = serde_json::from_str(&text)
            .map_err(|e| format!("stored report {}: {e}", path.display()))?;
        let Some(level) = level_from_name(name) else {
            notes.push(format!("unknown recorded level {name:?}"));
            continue;
        };
        stored.push(value);
        fresh.push(slim_level_value(&baseline.config, level));
    }
    let gpu = GpuConfig::tesla_c2075();
    let mut diff_report = mogpu_sim::diff::diff_values(
        &serde_json::Value::Array(stored),
        &serde_json::Value::Array(fresh),
        "baseline",
        "current",
        &gpu,
    )?;
    diff_report.notes.extend(notes);
    for metric in unattributed {
        diff_report.notes.push(format!(
            "failing metric {metric} has no per-level profile report; \
             see the check table for its raw delta"
        ));
    }
    Ok(Some(diff_report))
}

/// Writes a baseline as canonical pretty JSON (byte-stable for git).
///
/// # Errors
/// I/O errors from directory creation or writing.
pub fn write_baseline(b: &Baseline, path: &Path) -> std::io::Result<()> {
    if let Some(dir) = path.parent() {
        std::fs::create_dir_all(dir)?;
    }
    let text = serde_json::to_string_canonical_pretty(b).expect("serializable");
    std::fs::write(path, format!("{text}\n"))
}

/// Reads and validates a baseline file.
///
/// # Errors
/// Missing file, malformed JSON, or an unsupported schema version.
pub fn read_baseline(path: &Path) -> Result<Baseline, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read baseline {}: {e}", path.display()))?;
    let b: Baseline = serde_json::from_str(&text)
        .map_err(|e| format!("malformed baseline {}: {e}", path.display()))?;
    if b.schema != BASELINE_SCHEMA {
        return Err(format!(
            "baseline {} has schema {}, this binary supports {}",
            path.display(),
            b.schema,
            BASELINE_SCHEMA
        ));
    }
    Ok(b)
}

fn diff(metric: String, base: f64, cur: f64, tolerance: f64, relative: bool) -> MetricDiff {
    let delta = cur - base;
    let allowed = if relative {
        tolerance * base.abs().max(1e-12)
    } else {
        tolerance
    };
    MetricDiff {
        metric,
        baseline: base,
        current: cur,
        delta,
        tolerance,
        kind: if relative { "relative" } else { "absolute" }.to_string(),
        // NaN anywhere (delta or allowed) must fail the comparison.
        pass: delta.is_finite() && delta.abs() <= allowed,
    }
}

/// One-sided floor comparison for wall-clock metrics: passes while
/// `cur >= base * (1 - tolerance)`; improvements always pass.
fn diff_floor(metric: String, base: f64, cur: f64, tolerance: f64) -> MetricDiff {
    let delta = cur - base;
    MetricDiff {
        metric,
        baseline: base,
        current: cur,
        delta,
        tolerance,
        kind: "floor".to_string(),
        pass: delta.is_finite() && cur >= base * (1.0 - tolerance),
    }
}

/// Diffs a fresh measurement against a recorded baseline using the
/// baseline's tolerances. Two-sided: regressions *and* unexplained
/// improvements both fail, since either means the recorded numbers no
/// longer describe the code.
pub fn check(baseline: &Baseline, current: &Baseline) -> CheckReport {
    let t = baseline.tolerances;
    let mut diffs = Vec::new();
    for (level, b) in &baseline.levels {
        let c = current.levels.get(level).copied().unwrap_or(LevelRecord {
            fps: f64::NAN,
            speedup: f64::NAN,
            mem_access_efficiency: f64::NAN,
            store_tx_per_frame: f64::NAN,
            occupancy: f64::NAN,
        });
        diffs.push(diff(format!("{level}.fps"), b.fps, c.fps, t.fps_rel, true));
        diffs.push(diff(
            format!("{level}.speedup"),
            b.speedup,
            c.speedup,
            t.speedup_rel,
            true,
        ));
        diffs.push(diff(
            format!("{level}.mem_access_efficiency"),
            b.mem_access_efficiency,
            c.mem_access_efficiency,
            t.mem_eff_abs,
            false,
        ));
        diffs.push(diff(
            format!("{level}.store_tx_per_frame"),
            b.store_tx_per_frame,
            c.store_tx_per_frame,
            t.store_tx_rel,
            true,
        ));
        diffs.push(diff(
            format!("{level}.occupancy"),
            b.occupancy,
            c.occupancy,
            t.occupancy_abs,
            false,
        ));
    }
    diffs.push(diff(
        "streams.aggregate_fps".to_string(),
        baseline.multi_stream.aggregate_fps,
        current.multi_stream.aggregate_fps,
        t.fps_rel,
        true,
    ));
    diffs.push(diff(
        "streams.kernel_utilization".to_string(),
        baseline.multi_stream.kernel_utilization,
        current.multi_stream.kernel_utilization,
        t.utilization_abs,
        false,
    ));
    diffs.push(diff_floor(
        "streams.sim_frames_per_sec".to_string(),
        baseline.multi_stream.sim_frames_per_sec,
        current.multi_stream.sim_frames_per_sec,
        t.sim_throughput_floor_rel,
    ));
    // Fleet: admission counts are integers produced by a deterministic
    // planner — any drift at all is a behavior change, so the tolerance
    // is exactly zero. Throughput is modelled time, gated like fps.
    diffs.push(diff(
        "fleet.aggregate_fps".to_string(),
        baseline.fleet.aggregate_fps,
        current.fleet.aggregate_fps,
        t.fps_rel,
        true,
    ));
    for (metric, base, cur) in [
        (
            "fleet.streams_admitted",
            baseline.fleet.streams_admitted as f64,
            current.fleet.streams_admitted as f64,
        ),
        (
            "fleet.streams_at_slo",
            baseline.fleet.streams_at_slo as f64,
            current.fleet.streams_at_slo as f64,
        ),
        (
            "fleet.frames_dropped",
            baseline.fleet.frames_dropped as f64,
            current.fleet.frames_dropped as f64,
        ),
    ] {
        diffs.push(diff(metric.to_string(), base, cur, 0.0, false));
    }
    CheckReport {
        pass: diffs.iter().all(|d| d.pass),
        diffs,
    }
}

/// Renders a check outcome as a human-readable table.
pub fn render_table(report: &CheckReport) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<30} {:>14} {:>14} {:>10} {:>10}  {}\n",
        "metric", "baseline", "current", "delta", "tol", "status"
    ));
    out.push_str(&format!("{}\n", "-".repeat(88)));
    for d in &report.diffs {
        let delta = if d.kind != "absolute" && d.baseline.abs() > 1e-12 {
            format!("{:+.2}%", 100.0 * d.delta / d.baseline)
        } else {
            format!("{:+.4}", d.delta)
        };
        let tol = match d.kind.as_str() {
            "relative" => format!("±{:.1}%", 100.0 * d.tolerance),
            "floor" => format!(">-{:.0}%", 100.0 * d.tolerance),
            _ => format!("±{}", d.tolerance),
        };
        out.push_str(&format!(
            "{:<30} {:>14.4} {:>14.4} {:>10} {:>10}  {}\n",
            d.metric,
            d.baseline,
            d.current,
            delta,
            tol,
            if d.pass { "ok" } else { "FAIL" }
        ));
    }
    out.push_str(&format!(
        "{}\n{}",
        "-".repeat(88),
        if report.pass {
            "all metrics within tolerance"
        } else {
            "REGRESSION: at least one metric drifted beyond tolerance"
        }
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_cfg() -> BenchConfig {
        BenchConfig {
            frames: 4,
            k: 3,
            streams: 2,
        }
    }

    #[test]
    fn unmodified_rerun_passes() {
        let cfg = tiny_cfg();
        let recorded = measure(&cfg, Tolerances::default());
        let fresh = measure(&cfg, Tolerances::default());
        let report = check(&recorded, &fresh);
        assert!(report.pass, "{}", render_table(&report));
        // Determinism means the diffs are exactly zero, not merely small
        // — except the one wall-clock metric, which is gated by its
        // floor instead.
        for d in &report.diffs {
            if d.kind == "floor" {
                assert!(d.pass, "{}", d.metric);
            } else {
                assert_eq!(d.delta, 0.0, "{}", d.metric);
            }
        }
    }

    #[test]
    fn sim_throughput_floor_is_one_sided() {
        let cfg = tiny_cfg();
        let mut recorded = measure(&cfg, Tolerances::default());
        let fresh = measure(&cfg, Tolerances::default());
        let floor_of = |r: &CheckReport| {
            r.diffs
                .iter()
                .find(|d| d.metric == "streams.sim_frames_per_sec")
                .cloned()
                .expect("floor metric present")
        };
        // A recorded value far above reality reads as a collapse and
        // fails the floor.
        recorded.multi_stream.sim_frames_per_sec = fresh.multi_stream.sim_frames_per_sec * 100.0;
        let d = floor_of(&check(&recorded, &fresh));
        assert!(!d.pass, "a 100x throughput collapse must fail the floor");
        assert_eq!(d.kind, "floor");
        // A recorded value far below reality is an improvement: floors
        // are one-sided, so it passes.
        recorded.multi_stream.sim_frames_per_sec = fresh.multi_stream.sim_frames_per_sec / 100.0;
        assert!(floor_of(&check(&recorded, &fresh)).pass);
    }

    #[test]
    fn seeded_fps_regression_fails() {
        let cfg = tiny_cfg();
        let mut recorded = measure(&cfg, Tolerances::default());
        let fresh = measure(&cfg, Tolerances::default());
        // Inflate recorded level-F fps by 10%: the fresh run now reads as
        // a 10% regression and must fail the 2% gate.
        recorded.levels.get_mut("F").unwrap().fps *= 1.1;
        let report = check(&recorded, &fresh);
        assert!(!report.pass);
        let failed: Vec<&str> = report
            .diffs
            .iter()
            .filter(|d| !d.pass)
            .map(|d| d.metric.as_str())
            .collect();
        assert_eq!(failed, ["F.fps"]);
        assert!(render_table(&report).contains("FAIL"));
    }

    #[test]
    fn improvements_also_fail_the_two_sided_gate() {
        let cfg = tiny_cfg();
        let mut recorded = measure(&cfg, Tolerances::default());
        let fresh = measure(&cfg, Tolerances::default());
        recorded.levels.get_mut("A").unwrap().speedup *= 0.9;
        let report = check(&recorded, &fresh);
        assert!(!report.pass);
    }

    #[test]
    fn fleet_record_exercises_shedding_and_gates_counts_exactly() {
        // One more offline stream than the fleet has devices, so the
        // recorded run must shed.
        let cfg = BenchConfig {
            streams: FLEET_DEVICE_KEYS.len() + 1,
            ..tiny_cfg()
        };
        let mut recorded = measure(&cfg, Tolerances::default());
        let fresh = measure(&cfg, Tolerances::default());
        // The baseline fleet has fewer devices than offline streams, so
        // the recorded run must show both admitted and shed streams.
        assert!(recorded.fleet.streams_admitted > 0);
        assert!(recorded.fleet.frames_dropped > 0);
        assert!(recorded.fleet.aggregate_fps > 0.0);
        // A single dropped-frame difference fails the zero-tolerance gate.
        recorded.fleet.frames_dropped += 1;
        let report = check(&recorded, &fresh);
        assert!(!report.pass);
        let failed: Vec<&str> = report
            .diffs
            .iter()
            .filter(|d| !d.pass)
            .map(|d| d.metric.as_str())
            .collect();
        assert_eq!(failed, ["fleet.frames_dropped"]);
    }

    #[test]
    fn baseline_round_trips_canonically() {
        let cfg = tiny_cfg();
        let b = measure(&cfg, Tolerances::default());
        let dir = std::env::temp_dir().join("mogpu_baseline_test");
        let path = dir.join("default.json");
        write_baseline(&b, &path).unwrap();
        let first = std::fs::read_to_string(&path).unwrap();
        let back = read_baseline(&path).unwrap();
        assert_eq!(back, b);
        // Re-writing the parsed baseline reproduces identical bytes.
        write_baseline(&back, &path).unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), first);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn wrong_schema_is_rejected() {
        let cfg = tiny_cfg();
        let mut b = measure(&cfg, Tolerances::default());
        b.schema = 99;
        let dir = std::env::temp_dir().join("mogpu_baseline_schema_test");
        let path = dir.join("bad.json");
        write_baseline(&b, &path).unwrap();
        assert!(read_baseline(&path).unwrap_err().contains("schema"));
        std::fs::remove_dir_all(&dir).ok();
    }
}

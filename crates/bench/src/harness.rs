//! Shared experiment machinery: the standard workload, level runners, and
//! the full-HD projection.

use mogpu_core::{DeviceReal, GpuMog, OptLevel, ProfileMode, ProfileReport, RunReport};
use mogpu_frame::{Frame, Resolution, Scene, SceneBuilder};
use mogpu_mog::MogParams;
use mogpu_sim::cpu::CpuModel;
use mogpu_sim::dma::{pipeline_time, transfer_time};
use mogpu_sim::GpuConfig;
use serde::{Deserialize, Serialize};

/// Resolution the experiments simulate at. The functional simulator
/// interprets every lane of every warp, so full HD (2M threads/frame) is
/// impractical; 160x120 keeps >50 blocks per SM — deep in the saturated
/// regime where the analytic model is linear in warp count — while running
/// a whole ladder sweep in seconds.
pub const SIM_RESOLUTION: Resolution = Resolution::QQVGA;

/// Frames per experiment run (first frame seeds the model).
pub const SIM_FRAMES: usize = 33;

/// The standard surveillance workload of the experiments: multimodal
/// background (5% flicker pixels), three walkers, moderate sensor noise.
pub fn standard_scene(res: Resolution) -> Scene {
    standard_scene_seeded(res, 0x1CC_2014)
}

/// The standard workload content with a caller-chosen RNG seed — distinct
/// per-camera variants for multi-stream runs.
pub fn standard_scene_seeded(res: Resolution, seed: u64) -> Scene {
    SceneBuilder::new(res)
        .seed(seed)
        .walkers(3)
        .bimodal_fraction(0.05)
        .bimodal_contrast(60.0)
        .noise_sd(2.0)
        .build()
}

/// The paper's algorithm configuration: K components, slow adaptation.
pub fn default_params(k: usize) -> MogParams {
    MogParams::new(k)
}

/// Renders the standard frame sequence at the simulation resolution.
pub fn standard_frames(n: usize) -> Vec<Frame<u8>> {
    standard_scene(SIM_RESOLUTION)
        .render_sequence(n)
        .0
        .into_frames()
}

/// Runs one optimization level over a frame sequence.
pub fn run_level<T: DeviceReal>(
    level: OptLevel,
    params: MogParams,
    frames: &[Frame<u8>],
) -> RunReport {
    let mut gpu = GpuMog::<T>::new(
        frames[0].resolution(),
        params,
        level,
        frames[0].as_slice(),
        GpuConfig::tesla_c2075(),
    )
    .expect("pipeline construction");
    gpu.process_all(&frames[1..]).expect("processing")
}

/// Runs one optimization level with the source-attributed profiler on
/// and returns the full profile report — the attribution side-channel of
/// the bench gate (`mogpu diff` consumes the slimmed serialization).
pub fn profile_level<T: DeviceReal>(
    level: OptLevel,
    params: MogParams,
    frames: &[Frame<u8>],
) -> ProfileReport {
    let mut gpu = GpuMog::<T>::new(
        frames[0].resolution(),
        params,
        level,
        frames[0].as_slice(),
        GpuConfig::tesla_c2075(),
    )
    .expect("pipeline construction");
    gpu.set_profile_mode(ProfileMode::On);
    gpu.process_all(&frames[1..]).expect("processing");
    gpu.take_profile_report().expect("profiling was enabled")
}

/// Per-frame numbers projected from the simulation resolution to the
/// paper's full-HD 450-frame setting.
///
/// The projection multiplies per-frame kernel time and counters by the
/// pixel (= warp) ratio — exact for the analytic model once the launch
/// saturates the SMs — and re-schedules the pipeline with full-HD PCIe
/// transfer times.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct HdProjection {
    /// Modelled kernel milliseconds per full-HD frame.
    pub kernel_ms: f64,
    /// Modelled end-to-end milliseconds per full-HD frame (overlap mode of
    /// the level applied).
    pub e2e_ms: f64,
    /// Modelled seconds for the paper's 450-frame run.
    pub total_450_s: f64,
    /// Store transactions per full-HD frame.
    pub store_tx_per_frame: f64,
    /// Branch slots per full-HD frame.
    pub branch_slots_per_frame: f64,
}

/// Projects a run to full HD (see [`HdProjection`]).
pub fn project_full_hd(report: &RunReport, level: OptLevel, cfg: &GpuConfig) -> HdProjection {
    let scale = Resolution::FULL_HD.pixels() as f64 / SIM_RESOLUTION.pixels() as f64;
    let kernel_hd = report.kernel_time_per_frame() * scale;
    let t_h2d = transfer_time(Resolution::FULL_HD.pixels(), cfg);
    let t_d2h = t_h2d;
    let frames = 450;
    let sched = pipeline_time(frames, t_h2d, kernel_hd, t_d2h, level.overlap(), cfg);
    HdProjection {
        kernel_ms: 1e3 * kernel_hd,
        e2e_ms: 1e3 * sched.per_frame,
        total_450_s: sched.total,
        store_tx_per_frame: report.metrics.store_transactions as f64 / report.frames as f64 * scale,
        branch_slots_per_frame: report.metrics.branch_slots as f64 / report.frames as f64 * scale,
    }
}

/// Modelled full-HD serial CPU seconds per frame, derived from a run's
/// traced scalar work. Pass a *sorted-level* report (C) so the work
/// matches the serial algorithm.
pub fn cpu_serial_hd_per_frame(sorted_report: &RunReport) -> f64 {
    let scale = Resolution::FULL_HD.pixels() as f64 / SIM_RESOLUTION.pixels() as f64;
    CpuModel::default().serial_time(&sorted_report.stats) / sorted_report.frames as f64 * scale
}

/// One row of the ladder tables the experiments print.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LadderRow {
    /// Level name ("A".."F", "W(g)").
    pub level: String,
    /// Projection to the paper's setting.
    pub hd: HdProjection,
    /// Speedup vs the modelled serial CPU.
    pub speedup: f64,
    /// Branch efficiency.
    pub branch_eff: f64,
    /// Memory access efficiency.
    pub mem_eff: f64,
    /// Theoretical SM occupancy.
    pub occupancy: f64,
    /// Declared registers per thread.
    pub registers: u32,
}

/// Runs a level and assembles its ladder row. `cpu_serial_hd` is the
/// per-frame serial reference from [`cpu_serial_hd_per_frame`].
pub fn ladder_row<T: DeviceReal>(
    level: OptLevel,
    params: MogParams,
    frames: &[Frame<u8>],
    cpu_serial_hd: f64,
) -> LadderRow {
    let cfg = GpuConfig::tesla_c2075();
    let report = run_level::<T>(level, params, frames);
    let hd = project_full_hd(&report, level, &cfg);
    LadderRow {
        level: level.name(),
        speedup: cpu_serial_hd / (hd.e2e_ms / 1e3),
        branch_eff: report.metrics.branch_efficiency,
        mem_eff: report.metrics.mem_access_efficiency,
        occupancy: report.occupancy.occupancy,
        registers: level.registers(T::BYTES, params.k),
        hd,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn projection_scales_linearly() {
        let frames = standard_frames(4);
        let report = run_level::<f64>(OptLevel::F, default_params(3), &frames);
        let cfg = GpuConfig::tesla_c2075();
        let hd = project_full_hd(&report, OptLevel::F, &cfg);
        let scale = Resolution::FULL_HD.pixels() as f64 / SIM_RESOLUTION.pixels() as f64;
        assert!((hd.kernel_ms / (1e3 * report.kernel_time_per_frame()) - scale).abs() < 1e-6);
        assert!(hd.total_450_s > 0.0);
    }

    #[test]
    fn standard_scene_is_deterministic_across_calls() {
        let a = standard_frames(3);
        let b = standard_frames(3);
        assert_eq!(a, b);
    }

    #[test]
    fn cpu_reference_calibration_is_near_the_paper() {
        // Guards the one calibrated CPU constant: the modelled serial
        // full-HD frame must stay within 15% of the paper's 505 ms.
        let frames = standard_frames(6);
        let c = run_level::<f64>(OptLevel::C, default_params(3), &frames);
        let per_frame = cpu_serial_hd_per_frame(&c);
        assert!(
            (per_frame - 0.505).abs() / 0.505 < 0.15,
            "serial full-HD frame modelled at {per_frame:.3} s (paper: 0.505 s)"
        );
    }

    #[test]
    fn ladder_row_is_coherent() {
        let frames = standard_frames(4);
        let c = run_level::<f64>(OptLevel::C, default_params(3), &frames);
        let serial = cpu_serial_hd_per_frame(&c);
        let row = ladder_row::<f64>(OptLevel::F, default_params(3), &frames, serial);
        assert!(row.speedup > 1.0);
        assert_eq!(row.registers, 31);
        assert!(row.mem_eff > 0.5);
    }
}

//! The paper's published numbers, embedded for side-by-side reporting.
//!
//! Sources: Section IV (measured runtimes and speedups), Figs. 6–12
//! (profiler metrics read off the plots), Table IV (MS-SSIM).

/// Seconds for 450 full-HD frames, serial double-precision 3-Gaussian CPU.
pub const CPU_SERIAL_450_FRAMES_S: f64 = 227.3;
/// Seconds for the "customized for SIMD" CPU build.
pub const CPU_SIMD_450_FRAMES_S: f64 = 163.0;
/// Seconds for the 8-thread OpenMP CPU build.
pub const CPU_MT_450_FRAMES_S: f64 = 99.8;
/// Seconds for the serial single-precision CPU build.
pub const CPU_SERIAL_F32_450_FRAMES_S: f64 = 180.0;
/// Seconds for the serial 5-Gaussian CPU build.
pub const CPU_SERIAL_5G_450_FRAMES_S: f64 = 406.6;
/// Seconds for the base GPU implementation (level A), 450 frames.
pub const GPU_BASE_450_FRAMES_S: f64 = 17.5;

/// Paper speedups over the serial CPU for levels A–F (Fig. 8a).
pub const SPEEDUPS_LADDER: [(char, f64); 6] = [
    ('A', 13.0),
    ('B', 41.0),
    ('C', 57.0),
    ('D', 85.0),
    ('E', 86.0),
    ('F', 97.0),
];
/// Peak windowed speedup (group size 8).
pub const SPEEDUP_WINDOWED: f64 = 101.0;
/// Single-precision level-F speedup (Fig. 12a).
pub const SPEEDUP_F32_LEVEL_F: f64 = 105.0;
/// 5-Gaussian speedups: end of general opts (C) and algorithm-specific (F).
pub const SPEEDUP_5G_GENERAL: f64 = 44.0;
pub const SPEEDUP_5G_ALG_SPECIFIC: f64 = 92.0;

/// Memory access efficiency at levels A and B (Fig. 6a).
pub const MEM_EFF_A: f64 = 0.17;
pub const MEM_EFF_B: f64 = 0.78;
/// Store transactions per full-HD frame at levels A and B (Fig. 6a).
pub const STORE_TX_A: f64 = 13.3e6;
pub const STORE_TX_B: f64 = 2.0e6;

/// Branch slots per full-HD frame at C and D (Fig. 7a).
pub const BRANCHES_C: f64 = 6.7e6;
pub const BRANCHES_D: f64 = 6.2e6;
/// Branch efficiency at level E (Fig. 7a).
pub const BRANCH_EFF_E: f64 = 0.995;

/// Registers per thread (Fig. 6b / 7c), f64, 3 Gaussians.
pub const REGISTERS: [(char, u32); 6] = [
    ('A', 30),
    ('B', 36),
    ('C', 36),
    ('D', 32),
    ('E', 33),
    ('F', 31),
];
/// Achieved SM occupancy the paper's profiler reports.
pub const OCCUPANCY_ACHIEVED: [(char, f64); 4] =
    [('C', 0.52), ('D', 0.61), ('E', 0.56), ('F', 0.65)];
/// Windowed-kernel occupancy (Fig. 10b), group sizes 1 and 32.
pub const OCCUPANCY_W1: f64 = 0.40;
pub const OCCUPANCY_W32: f64 = 0.38;

/// Table IV: MS-SSIM of background/foreground vs the CPU ground truth.
pub const TABLE4_BACKGROUND: [(char, f64); 6] = [
    ('A', 0.99),
    ('B', 0.99),
    ('C', 0.99),
    ('D', 0.99),
    ('E', 0.99),
    ('F', 0.99),
];
pub const TABLE4_FOREGROUND: [(char, f64); 6] = [
    ('A', 0.99),
    ('B', 0.99),
    ('C', 0.96),
    ('D', 0.97),
    ('E', 0.97),
    ('F', 0.95),
];

/// Frames in the paper's measurement runs.
pub const PAPER_FRAMES: usize = 450;

//! Regenerates `tests/data/soa_golden.json`: the reference interpreter's
//! raw warp statistics and mask digests for the standard workload across
//! every ladder level, the windowed level, the adaptive path, and a
//! sanitized run.
//!
//! `tests/soa_equivalence.rs` pins the current interpreter against this
//! file bit for bit. The file is committed; rerun this tool ONLY when an
//! intentional statistics-semantics change is being made (and say so in
//! the commit message), never to paper over an accidental drift.

use mogpu_bench::harness::{default_params, run_level, standard_frames, SIM_RESOLUTION};
use mogpu_core::{AdaptiveGpuMog, GpuMog, OptLevel, RunReport};
use mogpu_sim::GpuConfig;
use serde_json::Value;

/// Frames rendered per golden run (first seeds the model, 8 processed —
/// one full level-W(8) group).
const FRAMES: usize = 9;

/// FNV-1a 64-bit over all mask bytes in frame order — a stable,
/// dependency-free digest of the functional output.
fn mask_digest(report: &RunReport) -> String {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for mask in &report.masks {
        for &b in mask.as_slice() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    format!("{h:016x}")
}

fn entry(report: &RunReport) -> Value {
    Value::Object(vec![
        ("mask_digest".into(), Value::String(mask_digest(report))),
        ("stats".into(), serde_json::to_value(&report.stats).unwrap()),
    ])
}

fn main() {
    let frames = standard_frames(FRAMES);
    let mut levels: Vec<(String, Value)> = Vec::new();
    for level in OptLevel::LADDER
        .into_iter()
        .chain([OptLevel::Windowed { group: 8 }])
    {
        let report = run_level::<f64>(level, default_params(3), &frames);
        levels.push((level.name(), entry(&report)));
        eprintln!("{:<6} {}", level.name(), mask_digest(&report));
    }

    // f32 exercises the half-width model layout and f32 flop counters.
    let f32_report = run_level::<f32>(OptLevel::F, default_params(3), &frames);

    // Sanitized level-F run: must be finding-free and statistically
    // indistinguishable from the plain run.
    let mut san_gpu = GpuMog::<f64>::new(
        SIM_RESOLUTION,
        default_params(3),
        OptLevel::F,
        frames[0].as_slice(),
        GpuConfig::tesla_c2075(),
    )
    .expect("pipeline");
    san_gpu.set_sanitize(true);
    let san_report = san_gpu.process_all(&frames[1..]).expect("processing");
    let san = san_gpu.take_san_report().expect("sanitizer report");

    // The adaptive comparator path (one launch per frame, SoA layout,
    // k_max = 5, scattered-complexity scene as in exp_adaptive).
    let adaptive_frames = mogpu_frame::SceneBuilder::new(SIM_RESOLUTION)
        .seed(0x1CC_2014)
        .walkers(3)
        .bimodal_fraction(0.25)
        .bimodal_contrast(60.0)
        .noise_sd(2.0)
        .build()
        .render_sequence(FRAMES)
        .0
        .into_frames();
    let mut adaptive = AdaptiveGpuMog::<f64>::new(
        SIM_RESOLUTION,
        default_params(5),
        adaptive_frames[0].as_slice(),
        GpuConfig::tesla_c2075(),
    )
    .expect("pipeline");
    let adaptive_report = adaptive
        .process_all(&adaptive_frames[1..])
        .expect("processing");

    let mut sanitized = entry(&san_report);
    if let Value::Object(fields) = &mut sanitized {
        fields.push(("findings".into(), Value::U64(san.findings().len() as u64)));
    }
    let golden = Value::Object(vec![
        (
            "resolution".into(),
            Value::String(format!("{SIM_RESOLUTION}")),
        ),
        ("frames".into(), Value::U64(FRAMES as u64)),
        ("levels".into(), Value::Object(levels)),
        ("f32_f".into(), entry(&f32_report)),
        ("sanitized_f".into(), sanitized),
        ("adaptive".into(), entry(&adaptive_report)),
    ]);
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../tests/data/soa_golden.json"
    );
    std::fs::create_dir_all(std::path::Path::new(path).parent().unwrap()).unwrap();
    std::fs::write(path, serde_json::to_string_pretty(&golden).unwrap()).unwrap();
    println!("wrote {path}");
}

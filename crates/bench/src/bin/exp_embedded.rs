//! Standalone runner for the embedded-GPU future-work experiment (paper
//! Section VI).
fn main() {
    mogpu_bench::experiments::exp_embedded();
}

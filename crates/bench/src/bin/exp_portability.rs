//! Standalone runner for the cross-generation portability study.
fn main() {
    mogpu_bench::experiments::exp_portability();
}

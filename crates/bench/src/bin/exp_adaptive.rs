//! Standalone runner for the Section II adaptive-component-count
//! comparison (related work \[18\]).
fn main() {
    mogpu_bench::experiments::exp_adaptive();
}

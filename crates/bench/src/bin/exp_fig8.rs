//! Standalone runner for the `exp_fig8` experiment (see mogpu-bench docs
//! and DESIGN.md's experiment index).
fn main() {
    mogpu_bench::experiments::exp_fig8();
}

//! Standalone runner for the `exp_streams` experiment (see mogpu-bench docs
//! and DESIGN.md's experiment index).
fn main() {
    mogpu_bench::experiments::exp_streams();
}

//! Standalone runner for the `exp_fig7` experiment (see mogpu-bench docs
//! and DESIGN.md's experiment index).
fn main() {
    mogpu_bench::experiments::exp_fig7();
}

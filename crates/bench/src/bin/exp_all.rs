//! Runs every experiment of the reproduction in sequence and persists the
//! machine-readable results to `results/experiments.json` (the source of
//! EXPERIMENTS.md's measured columns).
use mogpu_bench::experiments as exp;
use mogpu_bench::results::ResultsFile;
use std::path::PathBuf;

fn main() {
    let mut results = ResultsFile::new();
    results.record("exp_baseline", &exp::exp_baseline());
    results.record("exp_fig6", &exp::exp_fig6());
    results.record("exp_overlap", &exp::exp_overlap());
    results.record("exp_fig7", &exp::exp_fig7());
    results.record("exp_fig8", &exp::exp_fig8());
    results.record("exp_fig10", &exp::exp_fig10());
    results.record("exp_table4", &exp::exp_table4());
    results.record("exp_fig11", &exp::exp_fig11());
    results.record("exp_fig12", &exp::exp_fig12());
    results.record("exp_ablation", &exp::exp_ablation());
    results.record("exp_embedded", &exp::exp_embedded());
    results.record("exp_adaptive", &exp::exp_adaptive());
    results.record("exp_portability", &exp::exp_portability());
    results.record("exp_streams", &exp::exp_streams());

    let path = std::env::args()
        .nth(1)
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("results/experiments.json"));
    results.write_to(&path).expect("write results");
    println!("wrote {}", path.display());
}

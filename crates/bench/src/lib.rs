//! # mogpu-bench
//!
//! The experiment harness reproducing **every table and figure** of the
//! ICPP 2014 paper's evaluation on the simulated Tesla C2075. One binary
//! per experiment (see DESIGN.md's experiment index):
//!
//! | binary | paper artifact |
//! |---|---|
//! | `exp_baseline` | Section IV-A CPU/GPU baseline numbers + Table I |
//! | `exp_fig6` | Fig. 6 general-optimization architecture effects |
//! | `exp_overlap` | Fig. 5 transfer/kernel overlap |
//! | `exp_fig7` | Fig. 7 algorithm-specific optimization effects |
//! | `exp_fig8` | Fig. 8 speedup + efficiency summary A–F |
//! | `exp_fig10` | Fig. 10 windowed MoG group-size sweep |
//! | `exp_table4` | Table IV MS-SSIM output quality |
//! | `exp_fig11` | Fig. 11 3- vs 5-Gaussian study |
//! | `exp_fig12` | Fig. 12 double- vs single-precision study |
//! | `exp_ablation` | design-choice ablations (shared layout, latency model) |
//! | `exp_streams` | multi-stream scaling (live cameras sharing one device) |
//! | `exp_all` | everything above, persisted to `results/experiments.json` |
//!
//! Experiments simulate at a reduced resolution (the functional simulator
//! interprets every lane) and project per-frame times to the paper's
//! full-HD setting — exact under the analytic timing model, which is
//! linear in warp count once the machine is saturated (see
//! [`harness::project_full_hd`]).

pub mod baseline;
pub mod experiments;
pub mod harness;
pub mod paper;
pub mod results;

pub use baseline::{Baseline, BenchConfig, CheckReport, MetricDiff, Tolerances};
pub use harness::{
    default_params, ladder_row, project_full_hd, run_level, standard_scene, HdProjection,
    LadderRow, SIM_FRAMES, SIM_RESOLUTION,
};

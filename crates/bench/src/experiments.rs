//! The experiment implementations, one per paper table/figure. Each
//! prints a human-readable table (ours vs. the paper's published value)
//! and returns a serializable summary for `results/experiments.json`.

use crate::harness::{
    cpu_serial_hd_per_frame, default_params, ladder_row, project_full_hd, run_level,
    standard_frames, standard_scene, LadderRow, SIM_FRAMES, SIM_RESOLUTION,
};
use crate::paper;
use crate::results::{eng, pct, rule};
use mogpu_core::kernels::TiledKernel;
use mogpu_core::pipeline::THREADS_PER_BLOCK;
use mogpu_core::{GpuMog, OptLevel};
use mogpu_frame::Resolution;
use mogpu_metrics::ms_ssim;
use mogpu_mog::{SerialMog, Variant};
use mogpu_sim::cpu::CpuModel;
use mogpu_sim::dma::{pipeline_time, transfer_time, OverlapMode};
use mogpu_sim::GpuConfig;
use serde_json::json;

/// E1 + E11: Table I hardware configuration and the Section IV-A baseline
/// numbers (CPU serial/SIMD/OpenMP, GPU base).
pub fn exp_baseline() -> serde_json::Value {
    let gpu = GpuConfig::tesla_c2075();
    let cpu_cfg = mogpu_sim::CpuConfig::xeon_e5_2620();
    println!("== E1/E11: hardware configuration (Table I) and baselines (Sec. IV-A) ==\n");
    println!(
        "GPU: {} — {} SMs x {} cores @ {:.2} GHz, {:.0} GB/s GDDR5",
        gpu.name,
        gpu.num_sms,
        gpu.cores_per_sm,
        gpu.clock_hz / 1e9,
        gpu.dram_peak_bw / 1e9
    );
    println!(
        "     peak single-precision: {:.2} TFLOPS (paper: 1.03)",
        gpu.peak_f32_flops() / 1e12
    );
    println!(
        "CPU: {} — {} cores @ {:.1} GHz, {:.1} GB/s DDR3\n",
        cpu_cfg.name,
        cpu_cfg.cores,
        cpu_cfg.clock_hz / 1e9,
        cpu_cfg.dram_bw / 1e9
    );

    let frames = standard_frames(SIM_FRAMES);
    let c = run_level::<f64>(OptLevel::C, default_params(3), &frames);
    let cpu = CpuModel::new(cpu_cfg);
    let scale = Resolution::FULL_HD.pixels() as f64 / SIM_RESOLUTION.pixels() as f64;
    let n = c.frames as f64;
    let serial_450 = cpu.serial_time(&c.stats) / n * scale * 450.0;
    let simd_450 = cpu.simd_time(&c.stats) / n * scale * 450.0;
    let mt_450 = cpu.multi_threaded_time(&c.stats) / n * scale * 450.0;

    let a = run_level::<f64>(OptLevel::A, default_params(3), &frames);
    let cfg = GpuConfig::tesla_c2075();
    let a_hd = project_full_hd(&a, OptLevel::A, &cfg);

    println!("450 full-HD frames, 3 Gaussians, double precision (modelled vs paper):");
    rule(64);
    println!(
        "{:<28} {:>10} {:>10} {:>10}",
        "build", "ours [s]", "paper [s]", "ratio"
    );
    rule(64);
    for (name, ours, paper_s) in [
        ("CPU serial -O3", serial_450, paper::CPU_SERIAL_450_FRAMES_S),
        (
            "CPU SIMD-customized",
            simd_450,
            paper::CPU_SIMD_450_FRAMES_S,
        ),
        ("CPU OpenMP 8 threads", mt_450, paper::CPU_MT_450_FRAMES_S),
        (
            "GPU base (level A)",
            a_hd.total_450_s,
            paper::GPU_BASE_450_FRAMES_S,
        ),
    ] {
        println!(
            "{:<28} {:>10.1} {:>10.1} {:>10.2}",
            name,
            ours,
            paper_s,
            ours / paper_s
        );
    }
    rule(64);
    let base_speedup = serial_450 / a_hd.total_450_s;
    println!("base GPU speedup: {base_speedup:.1}x (paper: 13x)\n");
    json!({
        "cpu_serial_450_s": serial_450,
        "cpu_simd_450_s": simd_450,
        "cpu_mt_450_s": mt_450,
        "gpu_base_450_s": a_hd.total_450_s,
        "base_speedup": base_speedup,
    })
}

/// E2 + E3: Fig. 6 — memory access efficiency, store transactions,
/// registers and occupancy across the general optimizations A, B, C.
pub fn exp_fig6() -> serde_json::Value {
    println!("== E2/E3: general GPU optimizations (Fig. 6) ==\n");
    let frames = standard_frames(SIM_FRAMES);
    let mut rows = Vec::new();
    for level in [OptLevel::A, OptLevel::B, OptLevel::C] {
        let r = run_level::<f64>(level, default_params(3), &frames);
        let hd = project_full_hd(&r, level, &GpuConfig::tesla_c2075());
        rows.push((level, r, hd));
    }
    println!(
        "{:<6} {:>10} {:>14} {:>8} {:>8}",
        "level", "memEff", "storeTx/frame", "regs", "occup"
    );
    rule(52);
    for (level, r, hd) in &rows {
        println!(
            "{:<6} {:>10} {:>14} {:>8} {:>8}",
            level.name(),
            pct(r.metrics.mem_access_efficiency),
            eng(hd.store_tx_per_frame),
            level.registers(8, 3),
            pct(r.occupancy.occupancy)
        );
    }
    rule(52);
    println!(
        "paper: memEff A {} -> B {}; storeTx A {} -> B {}; regs A 30 -> B 36\n",
        pct(paper::MEM_EFF_A),
        pct(paper::MEM_EFF_B),
        eng(paper::STORE_TX_A),
        eng(paper::STORE_TX_B)
    );
    json!(rows
        .iter()
        .map(|(level, r, hd)| json!({
            "level": level.name(),
            "mem_eff": r.metrics.mem_access_efficiency,
            "store_tx_per_frame": hd.store_tx_per_frame,
            "registers": level.registers(8, 3),
            "occupancy": r.occupancy.occupancy,
        }))
        .collect::<Vec<_>>())
}

/// E4: Fig. 5 — overlapped vs sequential transfers.
pub fn exp_overlap() -> serde_json::Value {
    println!("== E4: transfer/kernel overlap (Fig. 5, level B -> C) ==\n");
    let frames = standard_frames(SIM_FRAMES);
    let cfg = GpuConfig::tesla_c2075();
    let b = run_level::<f64>(OptLevel::B, default_params(3), &frames);
    let scale = Resolution::FULL_HD.pixels() as f64 / SIM_RESOLUTION.pixels() as f64;
    let kernel_hd = b.kernel_time_per_frame() * scale;
    let t_dir = transfer_time(Resolution::FULL_HD.pixels(), &cfg);
    let seq = pipeline_time(450, t_dir, kernel_hd, t_dir, OverlapMode::Sequential, &cfg);
    let ovl = pipeline_time(
        450,
        t_dir,
        kernel_hd,
        t_dir,
        OverlapMode::DoubleBuffered,
        &cfg,
    );
    println!("full-HD per-frame (same kernel, modelled):");
    println!("  H2D transfer      : {:.2} ms/direction", 1e3 * t_dir);
    println!("  kernel            : {:.2} ms", 1e3 * kernel_hd);
    println!("  sequential (B)    : {:.2} ms/frame", 1e3 * seq.per_frame);
    println!("  overlapped (C)    : {:.2} ms/frame", 1e3 * ovl.per_frame);
    println!(
        "  kernel utilization: {} -> {}",
        pct(seq.kernel_utilization),
        pct(ovl.kernel_utilization)
    );
    let transfer_share = 2.0 * t_dir / seq.per_frame;
    println!(
        "  transfer share of sequential frame: {} (paper: ~one third)",
        pct(transfer_share)
    );
    // What pinning host buffers (cudaMallocHost) would have bought: the
    // paper's ~1 GB/s effective PCIe implies pageable staging copies.
    let t_pinned = mogpu_sim::dma::transfer_time_pinned(Resolution::FULL_HD.pixels(), &cfg);
    let seq_pinned = pipeline_time(
        450,
        t_pinned,
        kernel_hd,
        t_pinned,
        OverlapMode::Sequential,
        &cfg,
    );
    println!(
        "  with pinned host memory, even sequential transfers shrink to {:.2} ms/frame",
        1e3 * seq_pinned.per_frame
    );
    println!();
    json!({
        "h2d_ms": 1e3 * t_dir,
        "kernel_ms": 1e3 * kernel_hd,
        "sequential_ms": 1e3 * seq.per_frame,
        "overlapped_ms": 1e3 * ovl.per_frame,
        "sequential_pinned_ms": 1e3 * seq_pinned.per_frame,
        "transfer_share_sequential": transfer_share,
    })
}

/// E5: Fig. 7 — branch/memory/register effects of the algorithm-specific
/// optimizations C -> F.
pub fn exp_fig7() -> serde_json::Value {
    println!("== E5: algorithm-specific optimizations (Fig. 7) ==\n");
    let frames = standard_frames(SIM_FRAMES);
    let cfg = GpuConfig::tesla_c2075();
    let mut rows = Vec::new();
    for level in [OptLevel::C, OptLevel::D, OptLevel::E, OptLevel::F] {
        let r = run_level::<f64>(level, default_params(3), &frames);
        let hd = project_full_hd(&r, level, &cfg);
        rows.push((level, r, hd));
    }
    println!(
        "{:<6} {:>14} {:>10} {:>10} {:>6} {:>8}",
        "level", "branches/frm", "brEff", "memEff", "regs", "occup"
    );
    rule(60);
    for (level, r, hd) in &rows {
        println!(
            "{:<6} {:>14} {:>10} {:>10} {:>6} {:>8}",
            level.name(),
            eng(hd.branch_slots_per_frame),
            pct(r.metrics.branch_efficiency),
            pct(r.metrics.mem_access_efficiency),
            level.registers(8, 3),
            pct(r.occupancy.occupancy)
        );
    }
    rule(60);
    println!(
        "paper: branches C {} -> D {}; branch eff E {}; regs 36/32/33/31;",
        eng(paper::BRANCHES_C),
        eng(paper::BRANCHES_D),
        pct(paper::BRANCH_EFF_E)
    );
    println!("       achieved occupancy C 52% / D 61% / E 56% / F 65%\n");
    json!(rows
        .iter()
        .map(|(level, r, hd)| json!({
            "level": level.name(),
            "branches_per_frame": hd.branch_slots_per_frame,
            "branch_eff": r.metrics.branch_efficiency,
            "mem_eff": r.metrics.mem_access_efficiency,
            "registers": level.registers(8, 3),
            "occupancy": r.occupancy.occupancy,
        }))
        .collect::<Vec<_>>())
}

/// E6: Fig. 8 — the headline speedup ladder A–F (+ W(8)) and the
/// efficiency summary.
pub fn exp_fig8() -> serde_json::Value {
    println!("== E6: speedup and efficiency summary (Fig. 8) ==\n");
    let frames = standard_frames(SIM_FRAMES);
    let c_ref = run_level::<f64>(OptLevel::C, default_params(3), &frames);
    let serial_hd = cpu_serial_hd_per_frame(&c_ref);
    let mut rows: Vec<LadderRow> = Vec::new();
    for level in OptLevel::LADDER
        .into_iter()
        .chain([OptLevel::Windowed { group: 8 }])
    {
        rows.push(ladder_row::<f64>(
            level,
            default_params(3),
            &frames,
            serial_hd,
        ));
    }
    print_ladder(&rows, &[13.0, 41.0, 57.0, 85.0, 86.0, 97.0, 101.0]);
    json!(rows)
}

fn print_ladder(rows: &[LadderRow], paper_speedups: &[f64]) {
    println!(
        "{:<6} {:>10} {:>9} {:>9} {:>9} {:>9} {:>8} {:>8}",
        "level", "kern ms", "e2e ms", "speedup", "paper", "brEff", "memEff", "occup"
    );
    rule(76);
    for (row, paper_s) in rows.iter().zip(paper_speedups) {
        println!(
            "{:<6} {:>10.2} {:>9.2} {:>8.1}x {:>8.0}x {:>9} {:>8} {:>8}",
            row.level,
            row.hd.kernel_ms,
            row.hd.e2e_ms,
            row.speedup,
            paper_s,
            pct(row.branch_eff),
            pct(row.mem_eff),
            pct(row.occupancy)
        );
    }
    rule(76);
    println!();
}

/// E7: Fig. 10 — windowed MoG group-size sweep.
pub fn exp_fig10() -> serde_json::Value {
    println!("== E7: windowed MoG vs frame-group size (Fig. 10) ==\n");
    let frames = standard_frames(SIM_FRAMES);
    let c_ref = run_level::<f64>(OptLevel::C, default_params(3), &frames);
    let serial_hd = cpu_serial_hd_per_frame(&c_ref);
    let mut rows = Vec::new();
    let f_row = ladder_row::<f64>(OptLevel::F, default_params(3), &frames, serial_hd);
    println!(
        "{:<8} {:>10} {:>9} {:>9} {:>8} {:>8}",
        "group", "kern ms", "e2e ms", "speedup", "memEff", "occup"
    );
    rule(58);
    println!(
        "{:<8} {:>10.2} {:>9.2} {:>8.1}x {:>8} {:>8}",
        "F (ref)",
        f_row.hd.kernel_ms,
        f_row.hd.e2e_ms,
        f_row.speedup,
        pct(f_row.mem_eff),
        pct(f_row.occupancy)
    );
    for group in [1usize, 2, 4, 8, 16, 32] {
        let row = ladder_row::<f64>(
            OptLevel::Windowed { group },
            default_params(3),
            &frames,
            serial_hd,
        );
        println!(
            "{:<8} {:>10.2} {:>9.2} {:>8.1}x {:>8} {:>8}",
            row.level,
            row.hd.kernel_ms,
            row.hd.e2e_ms,
            row.speedup,
            pct(row.mem_eff),
            pct(row.occupancy)
        );
        rows.push(row);
    }
    rule(58);
    println!("paper: peak 101x at group 8, flat beyond; occupancy ~40%;");
    println!("       memory efficiency >90% (g=1) declining to <60% (g=32)\n");
    json!({"f_ref": f_row, "sweep": rows})
}

/// E8: Table IV — MS-SSIM output quality of every level vs the CPU
/// double-precision ground truth.
pub fn exp_table4() -> serde_json::Value {
    println!("== E8: output quality (Table IV, MS-SSIM vs CPU f64 ground truth) ==\n");
    // QVGA so MS-SSIM gets its full 5 scales.
    let res = Resolution::QVGA;
    let scene = standard_scene(res);
    let n_frames = 48;
    let (frames, _) = scene.render_sequence(n_frames);
    let frames = frames.into_frames();
    let mut cpu = SerialMog::<f64>::new(
        res,
        default_params(3),
        Variant::Sorted,
        frames[0].as_slice(),
    );
    let truth = cpu.process_all(&frames[1..]);
    let start = truth.len() * 2 / 3;

    let mut rows = Vec::new();
    println!(
        "{:<8} {:>11} {:>11} {:>11} {:>11} {:>12}",
        "level", "bg ours", "bg paper", "fg ours", "fg paper", "px disagree"
    );
    rule(70);
    for (i, level) in OptLevel::LADDER.into_iter().enumerate() {
        let mut gpu = GpuMog::<f64>::new(
            res,
            default_params(3),
            level,
            frames[0].as_slice(),
            GpuConfig::tesla_c2075(),
        )
        .expect("pipeline");
        let report = gpu.process_all(&frames[1..]).expect("processing");
        let mut fg_sum = 0.0;
        let mut bg_sum = 0.0;
        let mut n = 0.0;
        let mut differing = 0usize;
        let mut total_px = 0usize;
        for fi in start..truth.len() {
            fg_sum += ms_ssim(&report.masks[fi], &truth[fi]).expect("5 scales fit");
            let bg_a = background_image(&frames[fi + 1], &report.masks[fi]);
            let bg_b = background_image(&frames[fi + 1], &truth[fi]);
            bg_sum += ms_ssim(&bg_a, &bg_b).expect("5 scales fit");
            n += 1.0;
            total_px += truth[fi].len();
            differing += report.masks[fi]
                .as_slice()
                .iter()
                .zip(truth[fi].as_slice())
                .filter(|(a, b)| a != b)
                .count();
        }
        let (fg, bg) = (fg_sum / n, bg_sum / n);
        let disagree = differing as f64 / total_px as f64;
        println!(
            "{:<8} {:>11} {:>11} {:>11} {:>11} {:>12}",
            level.name(),
            pct(bg),
            pct(paper::TABLE4_BACKGROUND[i].1),
            pct(fg),
            pct(paper::TABLE4_FOREGROUND[i].1),
            format!("{:.4}%", 100.0 * disagree)
        );
        rows.push(json!({
            "level": level.name(),
            "bg_msssim": bg,
            "fg_msssim": fg,
            "pixel_disagreement": disagree,
        }));
    }
    rule(70);
    println!("note: levels A-E are arithmetically bit-identical to the sorted CPU");
    println!("reference by construction (MS-SSIM exactly 1); only level F's");
    println!("recomputed diff can disagree, and only on threshold-straddling");
    println!("pixels. The paper's larger drops stem from FP reorderings its");
    println!("hand-tuned CUDA introduced, which this reimplementation avoids.\n");
    json!(rows)
}

fn background_image(
    frame: &mogpu_frame::Frame<u8>,
    mask: &mogpu_frame::Mask,
) -> mogpu_frame::Frame<u8> {
    let mut out = frame.clone();
    for (o, &m) in out.as_mut_slice().iter_mut().zip(mask.as_slice()) {
        if m != 0 {
            *o = 0;
        }
    }
    out
}

/// E9: Fig. 11 — 3 vs 5 Gaussian components.
pub fn exp_fig11() -> serde_json::Value {
    println!("== E9: 3 vs 5 Gaussian components (Fig. 11) ==\n");
    let frames = standard_frames(SIM_FRAMES);
    let mut out = Vec::new();
    for k in [3usize, 5] {
        let c_ref = run_level::<f64>(OptLevel::C, default_params(k), &frames);
        let serial_hd = cpu_serial_hd_per_frame(&c_ref);
        let mut rows = Vec::new();
        println!(
            "{k} Gaussians (serial CPU full-HD: {:.0} ms/frame):",
            1e3 * serial_hd
        );
        for level in OptLevel::LADDER {
            rows.push(ladder_row::<f64>(
                level,
                default_params(k),
                &frames,
                serial_hd,
            ));
        }
        let paper_s: [f64; 6] = if k == 3 {
            [13.0, 41.0, 57.0, 85.0, 86.0, 97.0]
        } else {
            // Paper gives 44x at the end of general opts and 92x at the
            // end of algorithm-specific opts for 5G.
            [f64::NAN, f64::NAN, 44.0, f64::NAN, f64::NAN, 92.0]
        };
        print_ladder(&rows, &paper_s);
        out.push(json!({"k": k, "serial_hd_ms": 1e3 * serial_hd, "ladder": rows}));
    }
    println!(
        "paper 5G CPU serial: {:.1} s/450 frames (ours above x450); speedups 44x/92x\n",
        paper::CPU_SERIAL_5G_450_FRAMES_S
    );
    json!(out)
}

/// E10: Fig. 12 — double vs single precision.
pub fn exp_fig12() -> serde_json::Value {
    println!("== E10: double vs float (Fig. 12) ==\n");
    let frames = standard_frames(SIM_FRAMES);
    let mut out = Vec::new();
    // Double.
    {
        let c_ref = run_level::<f64>(OptLevel::C, default_params(3), &frames);
        let serial_hd = cpu_serial_hd_per_frame(&c_ref);
        let mut rows = Vec::new();
        println!(
            "double precision (serial CPU full-HD: {:.0} ms/frame):",
            1e3 * serial_hd
        );
        for level in OptLevel::LADDER {
            rows.push(ladder_row::<f64>(
                level,
                default_params(3),
                &frames,
                serial_hd,
            ));
        }
        print_ladder(&rows, &[13.0, 41.0, 57.0, 85.0, 86.0, 97.0]);
        out.push(json!({"precision": "double", "serial_hd_ms": 1e3 * serial_hd, "ladder": rows}));
    }
    // Float.
    {
        let c_ref = run_level::<f32>(OptLevel::C, default_params(3), &frames);
        let serial_hd = cpu_serial_hd_per_frame(&c_ref);
        let mut rows = Vec::new();
        println!(
            "single precision (serial CPU full-HD: {:.0} ms/frame):",
            1e3 * serial_hd
        );
        for level in OptLevel::LADDER {
            rows.push(ladder_row::<f32>(
                level,
                default_params(3),
                &frames,
                serial_hd,
            ));
        }
        print_ladder(
            &rows,
            &[f64::NAN, f64::NAN, f64::NAN, f64::NAN, f64::NAN, 105.0],
        );
        out.push(json!({"precision": "float", "serial_hd_ms": 1e3 * serial_hd, "ladder": rows}));
    }
    println!("paper: float F = 105x (vs double 97x); float serial CPU 180 s/450\n");
    json!(out)
}

/// Ablations of design choices DESIGN.md calls out: (a) shared-memory
/// layout bank conflicts in the tiled kernel; (b) timing-model latency
/// sensitivity.
pub fn exp_ablation() -> serde_json::Value {
    println!("== ablations ==\n");
    // (a) Tiled-kernel shared record stride: the tight paper-faithful
    // 18-word stride (2-way conflicts) vs records "aligned" to a power of
    // two (32-word stride: every lane lands in one bank, 32-way replays,
    // and the padding also costs occupancy).
    let frames = standard_frames(9);
    let res = SIM_RESOLUTION;
    let group = 8;
    let mut shared_rows = Vec::new();
    println!("(a) tiled-kernel shared record stride, group {group}:");
    println!(
        "{:<16} {:>14} {:>12} {:>12}",
        "stride", "sharedReplays", "issue cyc", "kern ms"
    );
    rule(58);
    for (name, stride) in [("9 doubles", None), ("16 doubles", Some(16usize))] {
        let report = run_tiled_with_layout(&frames, res, group, stride);
        println!(
            "{:<16} {:>14} {:>12.0} {:>12.4}",
            name,
            report.0,
            report.1,
            1e3 * report.2
        );
        shared_rows.push(json!({
            "stride": name,
            "shared_replays": report.0,
            "issue_cycles": report.1,
            "kernel_ms_per_frame": 1e3 * report.2,
        }));
    }
    rule(58);
    println!();

    // (b) Latency-model sensitivity: the calibrated 1100-cycle effective
    // latency vs a +-30% band, on the level-F speedup.
    let frames = standard_frames(SIM_FRAMES);
    let c_ref = run_level::<f64>(OptLevel::C, default_params(3), &frames);
    let serial_hd = cpu_serial_hd_per_frame(&c_ref);
    println!("(b) timing-model sensitivity to effective DRAM latency (level F):");
    println!("{:<12} {:>10} {:>10}", "latency", "kern ms", "speedup");
    rule(36);
    let mut lat_rows = Vec::new();
    for factor in [0.7, 1.0, 1.3] {
        let mut cfg = GpuConfig::tesla_c2075();
        cfg.mem_latency_cycles *= factor;
        let mut gpu = GpuMog::<f64>::new(
            res,
            default_params(3),
            OptLevel::F,
            frames[0].as_slice(),
            cfg.clone(),
        )
        .unwrap();
        let r = gpu.process_all(&frames[1..]).unwrap();
        let hd = project_full_hd(&r, OptLevel::F, &cfg);
        let speedup = serial_hd / (hd.e2e_ms / 1e3);
        println!(
            "{:<12} {:>10.2} {:>9.1}x",
            format!("{:.0} cyc", cfg.mem_latency_cycles),
            hd.kernel_ms,
            speedup
        );
        lat_rows.push(json!({
            "latency_cycles": cfg.mem_latency_cycles,
            "kernel_ms": hd.kernel_ms,
            "speedup": speedup,
        }));
    }
    rule(36);
    println!();

    // (c) The L2 cache model: verifies the base model's assumption that
    // MoG streams (cache off = cache on for coalesced kernels), and
    // quantifies the one exception — level A's interleaved AoS records,
    // where consecutive warp slots re-touch the same 128 B lines.
    println!("(c) 768 KB L2 cache model on/off:");
    println!(
        "{:<10} {:>12} {:>12} {:>10}",
        "level", "tx (off)", "tx (on)", "L2 hit%"
    );
    rule(48);
    let mut cache_rows = Vec::new();
    for level in [OptLevel::A, OptLevel::F] {
        let off =
            run_level_with_cfg::<f64>(level, default_params(3), &frames, GpuConfig::tesla_c2075());
        let on = run_level_with_cfg::<f64>(
            level,
            default_params(3),
            &frames,
            GpuConfig::tesla_c2075_with_l2(),
        );
        let hit_rate =
            on.stats.l2_hits as f64 / (on.stats.l2_hits + on.stats.l2_misses).max(1) as f64;
        println!(
            "{:<10} {:>12} {:>12} {:>10}",
            level.name(),
            eng(off.stats.total_tx() as f64),
            eng(on.stats.total_tx() as f64),
            pct(hit_rate)
        );
        cache_rows.push(json!({
            "level": level.name(),
            "tx_no_cache": off.stats.total_tx(),
            "tx_with_cache": on.stats.total_tx(),
            "l2_hit_rate": hit_rate,
        }));
    }
    rule(48);
    println!();
    json!({
        "shared_layout": shared_rows,
        "latency_sensitivity": lat_rows,
        "l2_cache": cache_rows,
    })
}

/// Future work of the paper's Section VI: MoG on an **embedded GPU**,
/// where "achieving real-time performance will require to trade off
/// quality for speed". Sweeps precision and component count on the
/// Tegra-class integrated-GPU preset and reports which configurations
/// reach 30/60 Hz at which resolution.
pub fn exp_embedded() -> serde_json::Value {
    println!("== future work: MoG on an embedded integrated GPU ==\n");
    let cfg = GpuConfig::embedded_tegra();
    println!(
        "device: {} ({:.0} GFLOPS f32, {:.1} GB/s shared LPDDR3)\n",
        cfg.name,
        cfg.peak_f32_flops() / 1e9,
        cfg.dram_peak_bw / 1e9
    );

    let frames = standard_frames(17);
    let mut rows = Vec::new();
    println!(
        "{:<24} {:>10} {:>10} {:>10} {:>8}",
        "config (level F/W8)", "QVGA fps", "720p fps", "1080p fps", "occup"
    );
    rule(68);
    for (name, k, f32p, windowed) in [
        ("double, 5G", 5usize, false, false),
        ("double, 3G", 3, false, false),
        ("float, 3G", 3, true, false),
        ("float, 3G, W(8)", 3, true, true),
    ] {
        let level = if windowed {
            OptLevel::Windowed { group: 8 }
        } else {
            OptLevel::F
        };
        let run = |frames: &[mogpu_frame::Frame<u8>]| {
            if f32p {
                run_level_with_cfg::<f32>(level, default_params(k), frames, cfg.clone())
            } else {
                run_level_with_cfg::<f64>(level, default_params(k), frames, cfg.clone())
            }
        };
        let report = run(&frames);
        // Project per-frame time to each target resolution and re-schedule
        // the pipeline with the embedded transfer path.
        let fps_at = |res: Resolution| {
            let scale = res.pixels() as f64 / SIM_RESOLUTION.pixels() as f64;
            let kernel = report.kernel_time_per_frame() * scale;
            let t_dir = transfer_time(res.pixels(), &cfg);
            let sched = pipeline_time(120, t_dir, kernel, t_dir, level.overlap(), &cfg);
            1.0 / sched.per_frame
        };
        let (qvga, hd, fhd) = (
            fps_at(Resolution::QVGA),
            fps_at(Resolution::HD),
            fps_at(Resolution::FULL_HD),
        );
        println!(
            "{:<24} {:>10.0} {:>10.0} {:>10.0} {:>8}",
            name,
            qvga,
            hd,
            fhd,
            pct(report.occupancy.occupancy)
        );
        rows.push(json!({
            "config": name, "fps_qvga": qvga, "fps_720p": hd, "fps_1080p": fhd,
            "occupancy": report.occupancy.occupancy,
        }));
    }
    rule(68);
    println!("real-time (>=30/60 fps) full-HD needs the quality-for-speed trades the");
    println!("paper anticipates: single precision and windowed shared-memory staging.\n");
    json!(rows)
}

/// Like [`run_level`] but with an explicit GPU configuration.
fn run_level_with_cfg<T: mogpu_core::DeviceReal>(
    level: OptLevel,
    params: mogpu_mog::MogParams,
    frames: &[mogpu_frame::Frame<u8>],
    cfg: GpuConfig,
) -> mogpu_core::RunReport {
    let mut gpu = GpuMog::<T>::new(
        frames[0].resolution(),
        params,
        level,
        frames[0].as_slice(),
        cfg,
    )
    .expect("pipeline construction");
    gpu.process_all(&frames[1..]).expect("processing")
}

/// Runs the tiled kernel directly (bypassing `GpuMog`) to toggle the
/// shared-memory layout. Returns (shared replays, issue cycles, modelled
/// kernel seconds per frame).
fn run_tiled_with_layout(
    frames: &[mogpu_frame::Frame<u8>],
    res: Resolution,
    group: usize,
    record_stride: Option<usize>,
) -> (u64, f64, f64) {
    use mogpu_core::kernels::FramePass;
    use mogpu_core::{DeviceModel, Layout};
    use mogpu_mog::HostModel;
    use mogpu_sim::{launch, DeviceMemory, LaunchConfig};

    let cfg = GpuConfig::tesla_c2075();
    let params = default_params(3);
    let pixels = res.pixels();
    let mut mem = DeviceMemory::with_config(&cfg);
    let model = DeviceModel::<f64>::alloc(&mut mem, Layout::Soa, pixels, params.k).unwrap();
    let host = HostModel::<f64>::init(pixels, params.k, &params, frames[0].as_slice());
    model.upload(&mut mem, &host);
    let mut frame_bufs = Vec::new();
    let mut fg_bufs = Vec::new();
    for _ in 0..group {
        frame_bufs.push(mem.alloc(pixels).unwrap());
        fg_bufs.push(mem.alloc(pixels).unwrap());
    }
    for (slot, f) in frames[1..1 + group].iter().enumerate() {
        mem.upload(frame_bufs[slot], f.as_slice());
    }
    let level = OptLevel::Windowed { group };
    let kernel = TiledKernel {
        pass: FramePass {
            model,
            frame: frame_bufs[0],
            fg: fg_bufs[0],
            pixels,
            prm: params.resolve(),
            resources: {
                let mut r = level.resources(THREADS_PER_BLOCK, params.k, 8);
                if let Some(stride) = record_stride {
                    r.shared_bytes_per_block = THREADS_PER_BLOCK as usize * stride * 8;
                }
                r
            },
        },
        frames: frame_bufs.clone(),
        fgs: fg_bufs.clone(),
        record_stride,
    };
    let report = launch(
        &mut mem,
        &cfg,
        LaunchConfig::cover(pixels, THREADS_PER_BLOCK),
        &kernel,
    )
    .unwrap();
    (
        report.stats.shared_replays,
        report.stats.issue_cycles,
        report.timing.total / group as f64,
    )
}

/// Section II validation: the variable-component-count approach of
/// related work \[18\]. The paper argues it helps CPUs ("boosts the
/// performance") but "may only yield limited benefits" on a GPU because
/// lockstep warps pay for their most complex pixel. This experiment runs
/// both sides on the same scene and reports the asymmetry.
pub fn exp_adaptive() -> serde_json::Value {
    use mogpu_core::AdaptiveGpuMog;
    println!("== Section II: fixed K=5 vs adaptive component count ([18]) ==\n");
    // A scene with *scattered* complexity: 25% bimodal pixels means
    // nearly every warp contains at least one multi-component pixel,
    // which is exactly the regime the paper's lockstep argument targets.
    let res = SIM_RESOLUTION;
    let frames = mogpu_frame::SceneBuilder::new(res)
        .seed(0x1CC_2014)
        .walkers(3)
        .bimodal_fraction(0.25)
        .bimodal_contrast(60.0)
        .noise_sd(2.0)
        .build()
        .render_sequence(SIM_FRAMES)
        .0
        .into_frames();
    let params = default_params(5);

    // Fixed K = 5, level-D-style kernel (branchy, no sort) for a fair
    // algorithmic comparison.
    let fixed = run_level::<f64>(OptLevel::D, params, &frames);

    // Adaptive, k_max = 5.
    let mut gpu =
        AdaptiveGpuMog::<f64>::new(res, params, frames[0].as_slice(), GpuConfig::tesla_c2075())
            .expect("pipeline");
    let adaptive = gpu.process_all(&frames[1..]).expect("processing");
    let mean_active = gpu.mean_active();

    let cpu = CpuModel::default();
    let cpu_fixed = cpu.serial_time(&fixed.stats) / fixed.frames as f64;
    let cpu_adaptive = cpu.serial_time(&adaptive.stats) / adaptive.frames as f64;
    let gpu_fixed = fixed.kernel_time_per_frame();
    let gpu_adaptive = adaptive.kernel_time_per_frame();

    println!("mean active components: {mean_active:.2} of 5\n");
    println!(
        "{:<26} {:>12} {:>12} {:>10}",
        "metric", "fixed K=5", "adaptive", "gain"
    );
    rule(64);
    println!(
        "{:<26} {:>12.3} {:>12.3} {:>9.2}x",
        "CPU serial ms/frame (model)",
        1e3 * cpu_fixed,
        1e3 * cpu_adaptive,
        cpu_fixed / cpu_adaptive
    );
    println!(
        "{:<26} {:>12.4} {:>12.4} {:>9.2}x",
        "GPU kernel ms/frame",
        1e3 * gpu_fixed,
        1e3 * gpu_adaptive,
        gpu_fixed / gpu_adaptive
    );
    println!(
        "{:<26} {:>12.0} {:>12.0} {:>9.2}x",
        "GPU issue cycles/frame",
        fixed.stats.issue_cycles / fixed.frames as f64,
        adaptive.stats.issue_cycles / adaptive.frames as f64,
        fixed.stats.issue_cycles / adaptive.stats.issue_cycles
    );
    println!(
        "{:<26} {:>12} {:>12}",
        "branch efficiency",
        pct(fixed.metrics.branch_efficiency),
        pct(adaptive.metrics.branch_efficiency)
    );
    println!(
        "{:<26} {:>12} {:>12}",
        "memory access efficiency",
        pct(fixed.metrics.mem_access_efficiency),
        pct(adaptive.metrics.mem_access_efficiency)
    );
    rule(64);
    let cpu_gain = cpu_fixed / cpu_adaptive;
    let gpu_gain = gpu_fixed / gpu_adaptive;
    let issue_gain = fixed.stats.issue_cycles / adaptive.stats.issue_cycles;
    let ideal = 5.0 / mean_active;
    println!("ideal (average-work) reduction: {ideal:.2}x.");
    println!("The paper's two arguments against adaptivity on GPUs, quantified:");
    println!("  1. lockstep: warps pay for their most complex pixel — the issue-");
    println!("     cycle gain ({issue_gain:.2}x) trails the ideal {ideal:.2}x;");
    println!(
        "  2. unbalanced accesses cut memory efficiency ({} -> {}).",
        pct(fixed.metrics.mem_access_efficiency),
        pct(adaptive.metrics.mem_access_efficiency)
    );
    println!("End-to-end, the latency-bound kernel still keeps much of the gain");
    println!("({gpu_gain:.2}x vs CPU {cpu_gain:.2}x) because partial warps issue fewer DRAM");
    println!("transactions — a nuance the first-order argument misses.\n");
    json!({
        "mean_active": mean_active,
        "cpu_ms_fixed": 1e3 * cpu_fixed,
        "cpu_ms_adaptive": 1e3 * cpu_adaptive,
        "gpu_ms_fixed": 1e3 * gpu_fixed,
        "gpu_ms_adaptive": 1e3 * gpu_adaptive,
        "cpu_gain": cpu_gain,
        "gpu_gain": gpu_gain,
        "branch_eff_fixed": fixed.metrics.branch_efficiency,
        "branch_eff_adaptive": adaptive.metrics.branch_efficiency,
        "mem_eff_fixed": fixed.metrics.mem_access_efficiency,
        "mem_eff_adaptive": adaptive.metrics.mem_access_efficiency,
    })
}

/// Portability study: the optimization ladder re-run on a Kepler-class
/// Tesla K20. The register-usage tricks (D -> F) were tuned to Fermi's
/// 32 K-register SM; on Kepler the register file stops being the
/// occupancy limiter and those steps flatten, while coalescing (A -> B)
/// and divergence/predication discipline keep paying — the
/// architecture-specificity the paper's title announces.
pub fn exp_portability() -> serde_json::Value {
    println!("== portability: the ladder on the next GPU generation ==\n");
    let frames = standard_frames(SIM_FRAMES);
    let mut out = Vec::new();
    for (name, cfg) in [
        ("Tesla C2075 (Fermi)", GpuConfig::tesla_c2075()),
        ("Tesla K20 (Kepler)", GpuConfig::tesla_k20()),
    ] {
        println!("{name}:");
        println!(
            "{:<6} {:>10} {:>8} {:>10}",
            "level", "kern ms", "occup", "vs A"
        );
        rule(40);
        let mut rows = Vec::new();
        let mut a_time = None;
        for level in OptLevel::LADDER {
            let r = run_level_with_cfg::<f64>(level, default_params(3), &frames, cfg.clone());
            let scale = Resolution::FULL_HD.pixels() as f64 / SIM_RESOLUTION.pixels() as f64;
            let kern_ms = 1e3 * r.kernel_time_per_frame() * scale;
            let a = *a_time.get_or_insert(kern_ms);
            println!(
                "{:<6} {:>10.2} {:>8} {:>9.2}x",
                level.name(),
                kern_ms,
                pct(r.occupancy.occupancy),
                a / kern_ms
            );
            rows.push(json!({
                "level": level.name(),
                "kernel_ms": kern_ms,
                "occupancy": r.occupancy.occupancy,
            }));
        }
        rule(40);
        println!();
        out.push(json!({"gpu": name, "ladder": rows}));
    }
    println!("on Kepler the D->F occupancy steps flatten (the register file no longer");
    println!("limits residency) while the A->B coalescing jump persists: the paper's");
    println!("algorithm/architecture co-tuning is, as titled, architecture-specific.\n");
    json!(out)
}

/// Multi-stream scaling: N live cameras multiplexed onto one device via
/// the CUDA-streams-style scheduler (per-stream model state, shared
/// compute/copy engines, double-buffered frames per stream). Aggregate
/// throughput must rise with stream count until the compute engine
/// saturates, while per-stream device latency stays bounded by the
/// 2-buffer cap.
pub fn exp_streams() -> serde_json::Value {
    use mogpu_core::MultiGpuMog;
    println!("== multi-stream scaling: live cameras sharing one device ==\n");
    let frames_per_stream = 13usize;
    let res = SIM_RESOLUTION;
    let scenes = |n: usize| -> Vec<Vec<mogpu_frame::Frame<u8>>> {
        (0..n)
            .map(|s| {
                mogpu_frame::SceneBuilder::new(res)
                    .seed(0x57_2014 + s as u64)
                    .walkers(2 + s % 3)
                    .bimodal_fraction(0.05)
                    .build()
                    .render_sequence(frames_per_stream)
                    .0
                    .into_frames()
            })
            .collect()
    };
    let run = |streams: &[Vec<mogpu_frame::Frame<u8>>], period: f64| {
        let seeds: Vec<&[u8]> = streams.iter().map(|f| f[0].as_slice()).collect();
        let mut multi = MultiGpuMog::<f64>::new(
            res,
            default_params(3),
            OptLevel::F,
            &seeds,
            GpuConfig::tesla_c2075(),
        )
        .expect("multi-stream pipeline")
        .with_arrival_period(period);
        let frames: Vec<Vec<mogpu_frame::Frame<u8>>> =
            streams.iter().map(|f| f[1..].to_vec()).collect();
        multi.process_all(&frames).expect("processing")
    };

    // Calibrate the camera rate off the single-stream offline run: each
    // camera delivers a frame every 6 kernel times, so one paced stream
    // leaves the compute engine ~5/6 idle.
    let one = scenes(1);
    let offline = run(&one, 0.0);
    let t_kernel = offline.per_stream[0].kernel_time_total / offline.per_stream[0].frames as f64;
    let period = 6.0 * t_kernel;
    let camera_fps = 1.0 / period;
    println!(
        "level F at {res}; cameras paced at {camera_fps:.0} fps (1 frame per 6 kernel times)\n"
    );

    println!(
        "{:<9} {:>11} {:>11} {:>10} {:>9} {:>9} {:>9} {:>9} {:>9}",
        "streams",
        "aggr fps",
        "ideal fps",
        "kern busy",
        "mean ms",
        "p50 ms",
        "p95 ms",
        "p99 ms",
        "max ms"
    );
    rule(96);
    let mut rows = Vec::new();
    for n in [1usize, 2, 4, 8, 16] {
        let report = run(&scenes(n), period);
        let lat_mean = report
            .per_stream
            .iter()
            .map(|s| s.latency.mean)
            .sum::<f64>()
            / n as f64;
        // Tail latency across the whole fleet: percentiles of every
        // frame's sojourn pooled over streams (not a mean of per-stream
        // percentiles, which would understate the tail).
        let pooled: Vec<f64> = (0..n)
            .flat_map(|s| report.schedule.frame_latencies(s))
            .collect();
        let lat = mogpu_sim::streams::LatencyStats::from_samples(&pooled);
        let ideal = (n as f64 * camera_fps).min(1.0 / t_kernel);
        println!(
            "{:<9} {:>11.0} {:>11.0} {:>10} {:>9.4} {:>9.4} {:>9.4} {:>9.4} {:>9.4}",
            n,
            report.aggregate_fps,
            ideal,
            pct(report.kernel_utilization),
            1e3 * lat_mean,
            1e3 * lat.p50,
            1e3 * lat.p95,
            1e3 * lat.p99,
            1e3 * report.worst_latency()
        );
        rows.push(json!({
            "streams": n,
            "aggregate_fps": report.aggregate_fps,
            "ideal_fps": ideal,
            "kernel_utilization": report.kernel_utilization,
            "latency_mean_ms": 1e3 * lat_mean,
            "latency_p50_ms": 1e3 * lat.p50,
            "latency_p95_ms": 1e3 * lat.p95,
            "latency_p99_ms": 1e3 * lat.p99,
            "latency_p999_ms": 1e3 * lat.p999,
            "latency_max_ms": 1e3 * report.worst_latency(),
        }));
    }
    rule(96);
    println!("aggregate throughput tracks n x camera rate until the compute engine");
    println!("saturates (~6 streams at this pacing), then plateaus at 1/kernel-time.");
    println!("Past saturation latency grows with cross-stream queueing but stays");
    println!("bounded by the 2-buffer cap — independent of how long the run is.\n");
    json!({
        "camera_fps": camera_fps,
        "kernel_s_per_frame": t_kernel,
        "sweep": rows,
    })
}
